#include "serve/service/tenant.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "factor/graph_io.h"
#include "incremental/optimizer.h"
#include "inference/compiled_inference.h"
#include "storage/text_io.h"
#include "util/string_util.h"

namespace deepdive::serve::service {
namespace {

/// Parses one relation's TSV payload against the tenant's schema — the
/// writer-thread half of the data path (rows travel as raw text precisely so
/// that nothing outside the serving thread needs the program).
StatusOr<std::vector<Tuple>> ParseRows(const core::DeepDive& dd,
                                       const std::string& relation,
                                       const std::string& tsv)
    REQUIRES(serving_thread) {
  const dsl::RelationDecl* decl = dd.program().FindRelation(relation);
  if (decl == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  std::istringstream in(tsv);
  std::vector<Tuple> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto tuple = ParseTsvLine(decl->schema, line);
    if (!tuple.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: %s", relation.c_str(), line_number,
                    tuple.status().message().c_str()));
    }
    rows.push_back(std::move(tuple).value());
  }
  return rows;
}

}  // namespace

TenantInstance::TenantInstance(std::string name, std::string program_source,
                               comm::TenantConfig config,
                               std::vector<comm::DataPayload> data)
    : name_(std::move(name)),
      program_source_(std::move(program_source)),
      config_(config),
      base_data_(std::move(data)),
      queue_(config_.queue_capacity == 0 ? 1 : config_.queue_capacity,
             config_.shed_watermark),
      writer_(std::make_unique<ThreadPool>(1, /*inline_when_single=*/false)) {
  writer_->Submit([this] { ServeLoop(); });
}

TenantInstance::~TenantInstance() { Stop(); }

Status TenantInstance::WaitReady() const {
  MutexLock lock(mu_);
  while (phase_ == Phase::kStarting) ready_cv_.Wait(mu_);
  if (phase_ == Phase::kFailed) return init_status_;
  if (phase_ == Phase::kStopped) {
    return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
  }
  return Status::OK();
}

StatusOr<comm::CreateTenantResult> TenantInstance::InitInfo() const {
  DD_RETURN_IF_ERROR(WaitReady());
  MutexLock lock(mu_);
  return init_info_;
}

std::shared_ptr<const core::DeepDive> TenantInstance::deepdive() const {
  MutexLock lock(mu_);
  return engine_;
}

StatusOr<comm::UpdateResult> TenantInstance::SubmitUpdate(
    comm::UpdateRequest request) {
  Job job;
  job.kind = Job::Kind::kUpdate;
  job.update = std::move(request);
  std::future<StatusOr<comm::UpdateResult>> done = job.update_done.get_future();
  if (!queue_.TryPush(std::move(job))) {
    if (queue_.closed()) {
      return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
    }
    // ordering: relaxed — monotone shed counter, reported by GetStatus; the
    // rejection itself travels by return value.
    updates_shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("update queue for tenant '" + name_ +
                               "' is at its admission watermark; retry later");
  }
  return done.get();
}

StatusOr<comm::SaveGraphResult> TenantInstance::SaveGraph(
    const std::string& path) {
  Job job;
  job.kind = Job::Kind::kSaveGraph;
  job.save_path = path;
  std::future<StatusOr<comm::SaveGraphResult>> done =
      job.save_done.get_future();
  if (!queue_.Push(std::move(job))) {
    return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
  }
  return done.get();
}

StatusOr<comm::AddRuleResult> TenantInstance::SubmitAddRule(
    comm::AddRuleRequest request) {
  Job job;
  job.kind = Job::Kind::kAddRule;
  job.add_rule = std::move(request);
  std::future<StatusOr<comm::AddRuleResult>> done =
      job.add_rule_done.get_future();
  if (!queue_.Push(std::move(job))) {
    return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
  }
  return done.get();
}

StatusOr<comm::RetractRuleResult> TenantInstance::SubmitRetractRule(
    comm::RetractRuleRequest request) {
  Job job;
  job.kind = Job::Kind::kRetractRule;
  job.retract_rule = std::move(request);
  std::future<StatusOr<comm::RetractRuleResult>> done =
      job.retract_rule_done.get_future();
  if (!queue_.Push(std::move(job))) {
    return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
  }
  return done.get();
}

StatusOr<comm::MineResult> TenantInstance::SubmitMine(
    comm::MineRequest request) {
  Job job;
  job.kind = Job::Kind::kMine;
  job.mine = request;
  std::future<StatusOr<comm::MineResult>> done = job.mine_done.get_future();
  if (!queue_.Push(std::move(job))) {
    return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
  }
  return done.get();
}

StatusOr<TenantInstance::DrainReport> TenantInstance::Drain() {
  Job job;
  job.kind = Job::Kind::kDrain;
  std::future<StatusOr<DrainReport>> done = job.drain_done.get_future();
  if (!queue_.Push(std::move(job))) {
    return Status::FailedPrecondition("tenant '" + name_ + "' is stopped");
  }
  return done.get();
}

comm::TenantStatus TenantInstance::GetStatus() const {
  comm::TenantStatus status;
  status.name = name_;
  std::shared_ptr<const core::DeepDive> dd;
  {
    MutexLock lock(mu_);
    status.ready = phase_ == Phase::kReady;
    status.failed = phase_ == Phase::kFailed;
    dd = engine_;
  }
  if (dd != nullptr) {
    const auto view = dd->Query();
    status.epoch = view->epoch;
    status.num_variables = view->marginals.size();
    // Program identity travels inside the published view, so any thread can
    // report it without touching the serving-thread-only program() surface.
    status.program_version = view->program_version;
    status.rule_count = view->rule_count;
    status.rules_fingerprint = view->rules_fingerprint;
  }
  // ordering: relaxed — monotone counters; the status snapshot is
  // statistical, not a synchronization point.
  status.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  status.updates_shed = updates_shed_.load(std::memory_order_relaxed);
  status.queue_depth = static_cast<uint32_t>(queue_.depth());
  status.queue_capacity = static_cast<uint32_t>(queue_.capacity());
  status.shed_watermark = static_cast<uint32_t>(queue_.shed_watermark());
  return status;
}

void TenantInstance::Stop() {
  queue_.Close();
  // Joining the pool waits for ServeLoop to drain queued jobs, finish any
  // background materialization, and unpublish the engine.
  writer_.reset();
}

void TenantInstance::SetPreUpdateHookForTest(std::function<void()> hook) {
  MutexLock lock(mu_);
  pre_update_hook_ = std::move(hook);
}

void TenantInstance::ServeLoop() {
  // Trusted root: this dedicated pool worker is the tenant's serving thread
  // for its entire life — the only thread that touches the engine's
  // REQUIRES(serving_thread) surface.
  serving_thread.AssertHeld();

  auto built = BuildEngine();
  if (!built.ok()) {
    {
      MutexLock lock(mu_);
      phase_ = Phase::kFailed;
      init_status_ = built.status();
    }
    ready_cv_.NotifyAll();
    // Keep consuming so queued/incoming jobs fail fast instead of hanging,
    // until the registry closes the queue.
    while (std::optional<Job> job = queue_.Pop()) {
      RejectJob(&*job, Status::FailedPrecondition(
                           "tenant '" + name_ + "' failed to initialize: " +
                           built.status().message()));
    }
    return;
  }

  std::shared_ptr<core::DeepDive> dd = std::move(built).value();
  {
    comm::CreateTenantResult info;
    info.epoch = dd->Query()->epoch;
    info.num_variables = dd->ground().graph.NumVariables();
    info.num_factors = dd->ground().graph.NumActiveClauses();
    MutexLock lock(mu_);
    phase_ = Phase::kReady;
    init_info_ = info;
    engine_ = dd;
  }
  ready_cv_.NotifyAll();

  while (std::optional<Job> job = queue_.Pop()) {
    switch (job->kind) {
      case Job::Kind::kUpdate: {
        std::function<void()> hook;
        {
          MutexLock lock(mu_);
          hook = pre_update_hook_;
        }
        if (hook) hook();
        auto result = ExecuteUpdate(dd.get(), std::move(job->update));
        if (result.ok()) {
          // ordering: relaxed — monotone counter read by GetStatus; the
          // waiting submitter is synchronized by the promise below.
          updates_applied_.fetch_add(1, std::memory_order_relaxed);
        }
        job->update_done.set_value(std::move(result));
        break;
      }
      case Job::Kind::kSaveGraph:
        job->save_done.set_value(ExecuteSaveGraph(dd.get(), job->save_path));
        break;
      case Job::Kind::kDrain:
        job->drain_done.set_value(ExecuteDrain(dd.get()));
        break;
      case Job::Kind::kAddRule:
        job->add_rule_done.set_value(ExecuteAddRule(dd.get(), job->add_rule));
        break;
      case Job::Kind::kRetractRule:
        job->retract_rule_done.set_value(
            ExecuteRetractRule(dd.get(), job->retract_rule));
        break;
      case Job::Kind::kMine:
        job->mine_done.set_value(ExecuteMine(dd.get(), job->mine));
        break;
    }
  }

  // The miner unregisters its relation-delta listener on destruction, so it
  // must go before the engine is unpublished (and on this thread).
  miner_.reset();

  // Queue closed and drained. Finish background materialization so no
  // engine-owned worker outlives this loop, then unpublish; readers holding
  // a shared_ptr keep the (now quiescent) engine alive until their last pin
  // drops.
  if (auto* engine = dd->incremental_engine(); engine != nullptr) {
    const Status drained = engine->WaitForMaterialization();
    if (!drained.ok()) {
      std::fprintf(stderr, "tenant %s: materialization drain failed: %s\n",
                   name_.c_str(), drained.ToString().c_str());
    }
  }
  {
    MutexLock lock(mu_);
    phase_ = Phase::kStopped;
    engine_.reset();
  }
  ready_cv_.NotifyAll();
}

StatusOr<std::shared_ptr<core::DeepDive>> TenantInstance::BuildEngine() {
  core::DeepDiveConfig config;
  config.mode = config_.rerun_mode ? core::ExecutionMode::kRerun
                                   : core::ExecutionMode::kIncremental;
  config.seed = config_.seed;
  config.learner.epochs = config_.epochs;
  // Parallel grounding and inference everywhere a chain or rule evaluation
  // runs (0 = hardware threads) — the same wiring as deepdive_cli run, so a
  // tenant and the in-process CLI produce identical results for identical
  // settings.
  config.grounding.num_threads = config_.threads;
  config.gibbs.num_threads = config_.threads;
  config.learner.num_threads = config_.threads;
  config.materialization.num_threads = config_.threads;
  config.materialization.variational.num_threads = config_.threads;
  config.engine.gibbs.num_threads = config_.threads;
  config.engine.rerun_gibbs.num_threads = config_.threads;
  config.gibbs.num_replicas = config_.replicas;
  config.gibbs.sync_every_sweeps = config_.sync_every;
  config.learner.num_replicas = config_.replicas;
  config.materialization.num_replicas = config_.replicas;
  config.materialization.sync_every_sweeps = config_.sync_every;
  config.engine.rerun_gibbs.num_replicas = config_.replicas;
  config.engine.rerun_gibbs.sync_every_sweeps = config_.sync_every;
  config.materialization.async = config_.async_materialize;
  config.materialization.save_sample_store = config_.save_materialization;
  config.materialization.load_sample_store = config_.load_materialization;
  DD_ASSIGN_OR_RETURN(std::unique_ptr<core::DeepDive> dd,
                      core::DeepDive::Create(program_source_, config));
  for (const comm::DataPayload& payload : base_data_) {
    DD_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                        ParseRows(*dd, payload.relation, payload.tsv));
    DD_RETURN_IF_ERROR(dd->LoadRows(payload.relation, rows));
    std::fprintf(stderr, "tenant %s: loaded %zu rows into %s\n", name_.c_str(),
                 rows.size(), payload.relation.c_str());
  }
  base_data_.clear();
  DD_RETURN_IF_ERROR(dd->Initialize());
  return std::shared_ptr<core::DeepDive>(std::move(dd));
}

StatusOr<comm::UpdateResult> TenantInstance::ExecuteUpdate(
    core::DeepDive* dd, comm::UpdateRequest request) {
  core::UpdateSpec spec;
  if (request.label.empty()) {
    // ordering: relaxed — the writer thread is the only incrementer, so the
    // read is simply its own last value.
    spec.label = StrFormat(
        "update#%llu",
        static_cast<unsigned long long>(
            updates_applied_.load(std::memory_order_relaxed) + 1));
  } else {
    spec.label = request.label;
  }
  spec.add_rules = request.rules;
  for (const comm::DataPayload& payload : request.inserts) {
    // Fragment relations must exist before parsing their data, so apply a
    // rules-only spec first if the data targets a fragment relation.
    if (dd->program().FindRelation(payload.relation) == nullptr &&
        !spec.add_rules.empty()) {
      core::UpdateSpec rules_only;
      rules_only.label = spec.label + "/rules";
      rules_only.add_rules = spec.add_rules;
      DD_RETURN_IF_ERROR(dd->ApplyUpdate(rules_only).status());
      spec.add_rules.clear();
    }
    DD_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                        ParseRows(*dd, payload.relation, payload.tsv));
    spec.inserts[payload.relation] = std::move(rows);
  }
  DD_ASSIGN_OR_RETURN(incremental::UpdateReport report, dd->ApplyUpdate(spec));
  comm::UpdateResult result;
  result.epoch = report.epoch;
  result.label = report.label;
  result.strategy = incremental::StrategyName(report.strategy);
  result.grounding_seconds = report.grounding_seconds;
  result.learning_seconds = report.learning_seconds;
  result.inference_seconds = report.inference_seconds;
  result.affected_vars = report.affected_vars;
  return result;
}

StatusOr<comm::SaveGraphResult> TenantInstance::ExecuteSaveGraph(
    core::DeepDive* dd, const std::string& path) {
  const factor::CompiledGraph compiled =
      factor::CompiledGraph::Compile(dd->ground().graph);
  DD_RETURN_IF_ERROR(factor::SaveCompiledGraph(compiled, path));
  comm::SaveGraphResult result;
  result.checksum = compiled.Checksum();
  result.image_bytes = compiled.image_bytes();
  result.fingerprint = inference::CompiledMarginalsFingerprint(
      compiled, config_.seed, config_.threads, config_.replicas,
      config_.sync_every);
  return result;
}

StatusOr<TenantInstance::DrainReport> TenantInstance::ExecuteDrain(
    core::DeepDive* dd) {
  DrainReport report;
  if (auto* engine = dd->incremental_engine(); engine != nullptr) {
    DD_RETURN_IF_ERROR(engine->WaitForMaterialization());
    report.snapshot_generation = engine->snapshot_generation();
    report.samples_collected = dd->materialization_stats().samples_collected;
  }
  return report;
}

StatusOr<comm::AddRuleResult> TenantInstance::ExecuteAddRule(
    core::DeepDive* dd, const comm::AddRuleRequest& r) {
  DD_ASSIGN_OR_RETURN(incremental::UpdateReport report, dd->AddRule(r.rule));
  comm::AddRuleResult result;
  result.epoch = report.epoch;
  result.label = report.label;
  result.strategy = incremental::StrategyName(report.strategy);
  result.grounding_work = report.grounding_work;
  result.grounding_seconds = report.grounding_seconds;
  result.inference_seconds = report.inference_seconds;
  result.program_version = dd->program_version();
  result.rule_count = dd->NumRules();
  result.rules_fingerprint = dd->RulesFingerprint();
  return result;
}

StatusOr<comm::RetractRuleResult> TenantInstance::ExecuteRetractRule(
    core::DeepDive* dd, const comm::RetractRuleRequest& r) {
  DD_ASSIGN_OR_RETURN(incremental::UpdateReport report,
                      dd->RetractRule(r.label));
  comm::RetractRuleResult result;
  result.epoch = report.epoch;
  result.strategy = incremental::StrategyName(report.strategy);
  result.acceptance = report.acceptance_rate;
  result.program_version = dd->program_version();
  result.rule_count = dd->NumRules();
  result.rules_fingerprint = dd->RulesFingerprint();
  return result;
}

StatusOr<comm::MineResult> TenantInstance::ExecuteMine(
    core::DeepDive* dd, const comm::MineRequest& r) {
  const bool thresholds_changed =
      miner_ != nullptr && (miner_request_.min_support != r.min_support ||
                            miner_request_.min_confidence != r.min_confidence ||
                            miner_request_.max_body_atoms != r.max_body_atoms);
  if (miner_ == nullptr || thresholds_changed) {
    mining::MinerOptions options;
    options.candidates.min_support = r.min_support;
    options.candidates.min_confidence = r.min_confidence;
    options.candidates.max_body_atoms = r.max_body_atoms;
    miner_ = std::make_unique<mining::RuleMiner>(dd, options);
    miner_request_ = r;
  }
  DD_ASSIGN_OR_RETURN(mining::MineReport report,
                      miner_->Mine(r.max_promotions));
  comm::MineResult result;
  result.epoch = dd->Query()->epoch;
  result.candidates_considered = report.candidates_considered;
  result.candidates_trialed = report.candidates_trialed;
  result.promoted = report.promoted;
  result.program_version = dd->program_version();
  result.rule_count = dd->NumRules();
  result.rules_fingerprint = dd->RulesFingerprint();
  return result;
}

void TenantInstance::RejectJob(Job* job, const Status& status) {
  switch (job->kind) {
    case Job::Kind::kUpdate:
      job->update_done.set_value(status);
      break;
    case Job::Kind::kSaveGraph:
      job->save_done.set_value(status);
      break;
    case Job::Kind::kDrain:
      job->drain_done.set_value(status);
      break;
    case Job::Kind::kAddRule:
      job->add_rule_done.set_value(status);
      break;
    case Job::Kind::kRetractRule:
      job->retract_rule_done.set_value(status);
      break;
    case Job::Kind::kMine:
      job->mine_done.set_value(status);
      break;
  }
}

}  // namespace deepdive::serve::service
