#ifndef DEEPDIVE_SERVE_SERVICE_REGISTRY_H_
#define DEEPDIVE_SERVE_SERVICE_REGISTRY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/comm/messages.h"
#include "serve/service/tenant.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace deepdive::serve::service {

/// The service tier's root object: N independent KB instances by name, each
/// with its own writer thread and update queue, so one tenant's load (or
/// shed state) never touches another's. Tenants are created concurrently
/// from any thread and never removed while the registry lives — returned
/// pointers stay valid until StopAll()/destruction, which is why handlers
/// can hold a TenantInstance* across a request without refcounting.
class TenantRegistry {
 public:
  TenantRegistry() = default;
  ~TenantRegistry() { StopAll(); }

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Registers and starts a tenant. Returns immediately after spawning its
  /// writer thread (engine construction is asynchronous — rendezvous with
  /// WaitReady/InitInfo); fails on empty or duplicate names.
  StatusOr<TenantInstance*> CreateTenant(const comm::CreateTenantRequest& request)
      EXCLUDES(mu_);

  /// Looks up a tenant; nullptr when unknown.
  TenantInstance* Find(const std::string& name) const EXCLUDES(mu_);

  /// Tenant names in creation order (the order status reports iterate).
  std::vector<std::string> Names() const EXCLUDES(mu_);

  /// All tenants in creation order.
  std::vector<TenantInstance*> All() const EXCLUDES(mu_);

  /// Stops every tenant (queue close + writer join), keeping the instances
  /// so late readers fail softly instead of dangling. Idempotent.
  void StopAll() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  /// Creation-ordered; entries are never erased, so TenantInstance pointers
  /// handed out by Find/All are stable for the registry's lifetime.
  std::vector<std::pair<std::string, std::unique_ptr<TenantInstance>>>
      tenants_ GUARDED_BY(mu_);
};

}  // namespace deepdive::serve::service

#endif  // DEEPDIVE_SERVE_SERVICE_REGISTRY_H_
