#ifndef DEEPDIVE_SERVE_SERVICE_TENANT_H_
#define DEEPDIVE_SERVE_SERVICE_TENANT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/deepdive.h"
#include "mining/miner.h"
#include "serve/comm/messages.h"
#include "util/bounded_queue.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace deepdive::serve::service {

/// One hosted KB instance: a DeepDive engine owned by a dedicated writer
/// thread, fed by a bounded update queue with admission control.
///
/// Threading model (the service tier's whole point):
///   - The constructor spawns a single-worker ThreadPool whose worker runs
///     ServeLoop() for the tenant's entire life. That worker claims the
///     `serving_thread` role (the trusted root for this instance) and is the
///     ONLY thread that ever touches the DeepDive's REQUIRES(serving_thread)
///     surface — creation, LoadRows, Initialize, ApplyUpdate, snapshot
///     compilation, materialization drain, and destruction all happen there.
///   - SubmitUpdate / SaveGraph / Drain run on arbitrary connection threads:
///     they enqueue a job carrying a promise and block on its future. The
///     queue sheds at its watermark (Status::Unavailable — the caller turns
///     that into a retry-after response); admin jobs use the blocking Push
///     and are never shed.
///   - Query/WaitReady/GetStatus are the read plane: they touch only the
///     capability-free surfaces (Query(), WaitForView(), config()) through a
///     shared_ptr published once the tenant is ready, so readers are safe
///     against tenant shutdown (their pin keeps the engine alive).
///
/// TSA note: `serving_thread` is one global role, and thread-safety analysis
/// is function-local, so N tenants' writer threads may each assert it — the
/// annotation enforces "only code that claimed the role calls the writer
/// surface"; the structural guarantee that each DeepDive is touched by
/// exactly one writer comes from the queue (one consumer per instance).
class TenantInstance {
 public:
  /// Starts the writer thread; it builds the engine (program + base data +
  /// Initialize) asynchronously. Use WaitReady()/InitInfo() to rendezvous.
  TenantInstance(std::string name, std::string program_source,
                 comm::TenantConfig config,
                 std::vector<comm::DataPayload> data);

  /// Stops and joins the writer (Stop()).
  ~TenantInstance();

  TenantInstance(const TenantInstance&) = delete;
  TenantInstance& operator=(const TenantInstance&) = delete;

  /// Immutable after construction, so the reference is safe from any thread.
  const std::string& name() const { return name_; }
  const comm::TenantConfig& config() const { return config_; }

  /// Blocks until Initialize finished (either way); returns its outcome.
  Status WaitReady() const EXCLUDES(mu_);

  /// WaitReady + the creation summary (first-view epoch, graph size).
  StatusOr<comm::CreateTenantResult> InitInfo() const EXCLUDES(mu_);

  /// The engine, for the capability-free read plane (Query / WaitForView /
  /// config). Null until ready and after Stop(); holders keep the engine
  /// alive across a concurrent Stop, so pinned views never dangle.
  std::shared_ptr<const core::DeepDive> deepdive() const EXCLUDES(mu_);

  /// Enqueues one update for the writer thread and blocks until it has been
  /// applied (or rejected). Sheds with Status::Unavailable once the queue
  /// depth reaches the config watermark — the admission-control contract;
  /// callers attach config().retry_after_ms. FailedPrecondition after Stop.
  StatusOr<comm::UpdateResult> SubmitUpdate(comm::UpdateRequest request);

  /// Compiles + saves the current graph snapshot on the writer thread and
  /// returns its identity (checksum, size, marginals fingerprint). Admin
  /// job: blocks for queue space instead of shedding.
  StatusOr<comm::SaveGraphResult> SaveGraph(const std::string& path);

  /// Program evolution on the writer thread. Rule deltas are rare relative
  /// to data updates, so like admin jobs they block for queue space instead
  /// of shedding.
  StatusOr<comm::AddRuleResult> SubmitAddRule(comm::AddRuleRequest request);
  StatusOr<comm::RetractRuleResult> SubmitRetractRule(
      comm::RetractRuleRequest request);
  /// One rule-mining pass (candidate generation + engine trials). The miner
  /// and its co-occurrence statistics are created lazily on the writer
  /// thread at the first mine and kept incremental afterwards; a request
  /// with different thresholds rebuilds it.
  StatusOr<comm::MineResult> SubmitMine(comm::MineRequest request);

  /// Outcome of a Drain(): where the materialization pipeline ended up
  /// (both zero in rerun mode, which has no materialization).
  struct DrainReport {
    uint64_t snapshot_generation = 0;
    size_t samples_collected = 0;
  };

  /// Waits until the writer has drained background materialization, and
  /// surfaces any async build failure (the in-process CLI's pre-export
  /// barrier). Admin job, never shed.
  StatusOr<DrainReport> Drain();

  /// Serving statistics snapshot; callable from any thread at any phase.
  comm::TenantStatus GetStatus() const EXCLUDES(mu_);

  /// Closes the queue, lets the writer drain queued jobs and background
  /// materialization, then joins it and unpublishes the engine. Idempotent;
  /// call from the owning (registry) thread only.
  void Stop();

  /// Test hook: runs on the writer thread at the start of every update job
  /// (before ApplyUpdate). Lets saturation tests stall the consumer
  /// deterministically. Set before submitting updates.
  void SetPreUpdateHookForTest(std::function<void()> hook) EXCLUDES(mu_);

 private:
  enum class Phase { kStarting, kReady, kFailed, kStopped };

  struct Job {
    enum class Kind { kUpdate, kSaveGraph, kDrain, kAddRule, kRetractRule, kMine };
    Kind kind = Kind::kUpdate;
    comm::UpdateRequest update;
    std::string save_path;
    comm::AddRuleRequest add_rule;
    comm::RetractRuleRequest retract_rule;
    comm::MineRequest mine;
    std::promise<StatusOr<comm::UpdateResult>> update_done;
    std::promise<StatusOr<comm::SaveGraphResult>> save_done;
    std::promise<StatusOr<DrainReport>> drain_done;
    std::promise<StatusOr<comm::AddRuleResult>> add_rule_done;
    std::promise<StatusOr<comm::RetractRuleResult>> retract_rule_done;
    std::promise<StatusOr<comm::MineResult>> mine_done;
  };

  /// The writer thread's whole life: build + init the engine, publish
  /// readiness, consume jobs until the queue closes, drain, unpublish.
  void ServeLoop();

  StatusOr<std::shared_ptr<core::DeepDive>> BuildEngine()
      REQUIRES(serving_thread);
  StatusOr<comm::UpdateResult> ExecuteUpdate(core::DeepDive* dd,
                                             comm::UpdateRequest request)
      REQUIRES(serving_thread);
  StatusOr<comm::SaveGraphResult> ExecuteSaveGraph(core::DeepDive* dd,
                                                   const std::string& path)
      REQUIRES(serving_thread);
  StatusOr<DrainReport> ExecuteDrain(core::DeepDive* dd)
      REQUIRES(serving_thread);
  StatusOr<comm::AddRuleResult> ExecuteAddRule(core::DeepDive* dd,
                                               const comm::AddRuleRequest& r)
      REQUIRES(serving_thread);
  StatusOr<comm::RetractRuleResult> ExecuteRetractRule(
      core::DeepDive* dd, const comm::RetractRuleRequest& r)
      REQUIRES(serving_thread);
  StatusOr<comm::MineResult> ExecuteMine(core::DeepDive* dd,
                                         const comm::MineRequest& r)
      REQUIRES(serving_thread);
  /// Fulfils a job's promise with `status` (used to reject queued jobs when
  /// the tenant failed to initialize or is stopping).
  static void RejectJob(Job* job, const Status& status);

  const std::string name_;
  const std::string program_source_;
  const comm::TenantConfig config_;
  std::vector<comm::DataPayload> base_data_;  // consumed by BuildEngine

  BoundedQueue<Job> queue_;

  mutable Mutex mu_;
  mutable CondVar ready_cv_;
  Phase phase_ GUARDED_BY(mu_) = Phase::kStarting;
  Status init_status_ GUARDED_BY(mu_);
  comm::CreateTenantResult init_info_ GUARDED_BY(mu_);
  /// Published once ready; reset when the writer exits. shared_ptr (not the
  /// unique owner) so the read plane can hold the engine across Stop().
  std::shared_ptr<core::DeepDive> engine_ GUARDED_BY(mu_);
  std::function<void()> pre_update_hook_ GUARDED_BY(mu_);

  /// Writer-thread-only rule miner, created lazily by the first kMine job
  /// and destroyed by ServeLoop before the engine is unpublished (its
  /// destructor unregisters the engine's relation-delta listener).
  std::unique_ptr<mining::RuleMiner> miner_ GUARDED_BY(serving_thread);
  comm::MineRequest miner_request_ GUARDED_BY(serving_thread);

  /// Monotone serving counters, read by GetStatus from any thread.
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_shed_{0};

  /// Single dedicated worker hosting ServeLoop (inline_when_single = false):
  /// the tenant's serving thread. Reset (joined) by Stop().
  std::unique_ptr<ThreadPool> writer_;
};

}  // namespace deepdive::serve::service

#endif  // DEEPDIVE_SERVE_SERVICE_TENANT_H_
