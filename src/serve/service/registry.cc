#include "serve/service/registry.h"

namespace deepdive::serve::service {

StatusOr<TenantInstance*> TenantRegistry::CreateTenant(
    const comm::CreateTenantRequest& request) {
  if (request.name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  // Construct outside the lock: the constructor spawns a thread, and holding
  // mu_ across that would serialize unrelated lookups behind it.
  auto instance = std::make_unique<TenantInstance>(
      request.name, request.program, request.config, request.data);
  TenantInstance* raw = instance.get();
  {
    MutexLock lock(mu_);
    for (const auto& [name, tenant] : tenants_) {
      if (name == request.name) {
        return Status::AlreadyExists("tenant '" + request.name +
                                     "' already exists");
      }
    }
    tenants_.emplace_back(request.name, std::move(instance));
  }
  return raw;
}

TenantInstance* TenantRegistry::Find(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& [tenant_name, tenant] : tenants_) {
    if (tenant_name == name) return tenant.get();
  }
  return nullptr;
}

std::vector<std::string> TenantRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

std::vector<TenantInstance*> TenantRegistry::All() const {
  MutexLock lock(mu_);
  std::vector<TenantInstance*> all;
  all.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) all.push_back(tenant.get());
  return all;
}

void TenantRegistry::StopAll() {
  // Snapshot under the lock, stop outside it: Stop() joins writer threads,
  // and a concurrent Find/status must not block on that.
  std::vector<TenantInstance*> all = All();
  for (TenantInstance* tenant : all) tenant->Stop();
}

}  // namespace deepdive::serve::service
