#ifndef DEEPDIVE_SERVE_SERVE_H_
#define DEEPDIVE_SERVE_SERVE_H_

/// Umbrella header for the layered serving stack:
///
///   serve/comm     — transport: framing, codec, client (no engine types)
///   serve/handlers — verb dispatch onto typed requests (no engine access)
///   serve/service  — TenantRegistry / TenantInstance: per-tenant writer
///                    threads, bounded update queues, admission control
///   serve/srv      — the daemon's accept loop and connection workers
///
/// Embedding hosts (tools/deepdive_serve.cc, deepdive_cli's in-process run
/// path) include this; everything else should include the single tier it
/// talks to.

#include "serve/comm/client.h"
#include "serve/comm/frame.h"
#include "serve/comm/messages.h"
#include "serve/comm/wire.h"
#include "serve/handlers/handlers.h"
#include "serve/service/registry.h"
#include "serve/service/tenant.h"
#include "serve/srv/server.h"

#endif  // DEEPDIVE_SERVE_SERVE_H_
