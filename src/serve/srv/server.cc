#include "serve/srv/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstdio>

#include "serve/comm/frame.h"

namespace deepdive::serve::srv {

Server::Server(handlers::Dispatcher* dispatcher, ServerOptions options)
    : dispatcher_(dispatcher),
      options_(std::move(options)),
      pending_(options_.pending_connections == 0
                   ? 1
                   : options_.pending_connections) {}

Status Server::Start() {
  DD_ASSIGN_OR_RETURN(Listener listener, Listen(options_.listen_address));
  listener_ = std::move(listener.socket);
  address_ = listener.address;
  port_ = listener.port;
  const size_t workers = std::max<size_t>(1, options_.connection_workers);
  acceptor_ = std::make_unique<ThreadPool>(1, /*inline_when_single=*/false);
  workers_ = std::make_unique<ThreadPool>(workers,
                                          /*inline_when_single=*/false);
  for (size_t i = 0; i < workers; ++i) {
    workers_->Submit([this] { WorkerLoop(); });
  }
  acceptor_->Submit([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Wake the acceptor out of accept(2); it exits on the NotFound it gets.
  listener_.ShutdownBoth();
  // Workers blocked on the hand-off queue drain out; accepted-but-unserved
  // sockets left inside are closed by the queue's destructor (the worker
  // loop drops them once stopping_ is set).
  pending_.Close();
  // Wake workers blocked mid-recv on live connections. Raw ::shutdown, not
  // a Socket wrapper: the fds stay owned (and closed) by their workers.
  {
    MutexLock lock(mu_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  acceptor_.reset();
  workers_.reset();
  listener_.Close();
}

void Server::AcceptLoop() {
  while (true) {
    auto accepted = Accept(listener_);
    if (!accepted.ok()) {
      // NotFound = listener shut down (our Stop); anything else is logged
      // and ends the loop too — a dead listener cannot recover.
      if (accepted.status().code() != StatusCode::kNotFound) {
        std::fprintf(stderr, "deepdive_serve: accept failed: %s\n",
                     accepted.status().ToString().c_str());
      }
      return;
    }
    if (!pending_.TryPush(std::move(accepted).value())) {
      // Hand-off queue full (or stopping): shed the connection. The Socket
      // temporary closes it, which the client observes as a hangup.
    }
  }
}

void Server::WorkerLoop() {
  while (std::optional<Socket> connection = pending_.Pop()) {
    {
      MutexLock lock(mu_);
      if (stopping_) continue;  // drain mode: drop, don't serve
      active_fds_.push_back(connection->fd());
    }
    ServeConnection(*connection);
    {
      // Deregister before the socket closes (end of this iteration), so
      // Stop() can never shut down a recycled fd.
      MutexLock lock(mu_);
      active_fds_.erase(
          std::find(active_fds_.begin(), active_fds_.end(), connection->fd()));
    }
  }
}

void Server::ServeConnection(const Socket& connection) {
  std::string payload;
  while (true) {
    const Status read = comm::ReadFrame(connection, &payload);
    if (!read.ok()) {
      // NotFound = clean hangup between frames; everything else (including
      // the mid-frame truncation Internal) just ends the connection.
      return;
    }
    auto request = comm::DecodeRequest(payload);
    comm::Response response = request.ok()
                                  ? dispatcher_->Dispatch(*request)
                                  : comm::Response::Error(request.status());
    if (!comm::WriteFrame(connection, comm::EncodeResponse(response)).ok()) {
      return;
    }
  }
}

}  // namespace deepdive::serve::srv
