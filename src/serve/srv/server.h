#ifndef DEEPDIVE_SERVE_SRV_SERVER_H_
#define DEEPDIVE_SERVE_SRV_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/handlers/handlers.h"
#include "util/bounded_queue.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace deepdive::serve::srv {

struct ServerOptions {
  /// "HOST:PORT" (port 0 = ephemeral, see Server::port()) or "unix:PATH".
  std::string listen_address = "127.0.0.1:0";
  /// Connection worker threads; each serves one connection at a time, so
  /// this is also the concurrent-connection ceiling.
  size_t connection_workers = 8;
  /// Accepted connections waiting for a free worker; beyond this the accept
  /// loop sheds the connection (closes it immediately).
  size_t pending_connections = 128;
};

/// The daemon's transport loop: one dedicated acceptor thread feeds accepted
/// sockets into a bounded hand-off queue drained by a fixed pool of
/// connection workers. Each worker speaks the framed request/response
/// protocol (serve/comm) and forwards every decoded request to the shared
/// Dispatcher — the server knows nothing about verbs or tenants.
///
/// Stop() is the graceful-drain half of SIGTERM handling: it wakes the
/// acceptor (listener shutdown), closes the hand-off queue, shuts down every
/// active connection socket (waking workers blocked in recv), and joins all
/// threads. Idempotent.
class Server {
 public:
  Server(handlers::Dispatcher* dispatcher, ServerOptions options);
  ~Server() { Stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + connection workers.
  Status Start();

  /// The bound address ("IP:PORT" with the real port, or "unix:PATH").
  /// Written once by Start(); immutable (and safe to read from any thread)
  /// afterwards.
  const std::string& address() const { return address_; }
  uint16_t port() const { return port_; }

  void Stop();

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection until EOF, transport error, or Stop(). The
  /// caller (WorkerLoop) owns the socket and closes it afterwards.
  void ServeConnection(const Socket& connection);

  handlers::Dispatcher* dispatcher_;  // not owned
  ServerOptions options_;
  std::string address_;
  uint16_t port_ = 0;

  Socket listener_;
  /// Accepted-socket hand-off from the acceptor to the workers.
  BoundedQueue<Socket> pending_;

  mutable Mutex mu_;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// File descriptors of connections currently inside ServeConnection; Stop
  /// shuts them down to wake workers blocked mid-recv. The sockets
  /// themselves are owned by the workers' stack frames.
  std::vector<int> active_fds_ GUARDED_BY(mu_);

  /// 1 acceptor + N connection workers, all dedicated threads
  /// (inline_when_single = false for the acceptor).
  std::unique_ptr<ThreadPool> acceptor_;
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace deepdive::serve::srv

#endif  // DEEPDIVE_SERVE_SRV_SERVER_H_
