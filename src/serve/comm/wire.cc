#include "serve/comm/wire.h"

#include <cstring>

namespace deepdive::serve::comm {

void WireWriter::PutU32(uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>((v >> 24) & 0xff);
  buf[1] = static_cast<char>((v >> 16) & 0xff);
  buf[2] = static_cast<char>((v >> 8) & 0xff);
  buf[3] = static_cast<char>(v & 0xff);
  out_.append(buf, sizeof(buf));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v & 0xffffffffull));
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view v) {
  PutU32(static_cast<uint32_t>(v.size()));
  out_.append(v.data(), v.size());
}

bool WireReader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (data_.size() - pos_ < n) {
    status_ = Status::InvalidArgument("wire message truncated at byte " +
                                      std::to_string(pos_));
    return false;
  }
  return true;
}

uint8_t WireReader::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t WireReader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
  }
  pos_ += 4;
  return v;
}

uint64_t WireReader::GetU64() {
  const uint64_t hi = GetU32();
  const uint64_t lo = GetU32();
  return (hi << 32) | lo;
}

double WireReader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::GetString() {
  const uint32_t len = GetU32();
  if (!Need(len)) return std::string();
  std::string v(data_.substr(pos_, len));
  pos_ += len;
  return v;
}

Status WireReader::ExpectDone() {
  if (!status_.ok()) return status_;
  if (!done()) {
    return Status::InvalidArgument(
        std::to_string(data_.size() - pos_) +
        " trailing bytes after a complete wire message");
  }
  return Status::OK();
}

}  // namespace deepdive::serve::comm
