#include "serve/comm/client.h"

#include "serve/comm/frame.h"

namespace deepdive::serve::comm {

StatusOr<Client> Client::Dial(const std::string& address) {
  DD_ASSIGN_OR_RETURN(Socket socket, Connect(address));
  return Client(std::move(socket));
}

StatusOr<Response> Client::Call(const Request& request) {
  DD_RETURN_IF_ERROR(WriteFrame(socket_, EncodeRequest(request)));
  std::string payload;
  DD_RETURN_IF_ERROR(ReadFrame(socket_, &payload));
  return DecodeResponse(payload);
}

}  // namespace deepdive::serve::comm
