#ifndef DEEPDIVE_SERVE_COMM_CLIENT_H_
#define DEEPDIVE_SERVE_COMM_CLIENT_H_

#include <string>

#include "serve/comm/messages.h"
#include "util/socket.h"
#include "util/status.h"

namespace deepdive::serve::comm {

/// Blocking request/response client for the deepdive_serve wire protocol:
/// one connection, serial Calls (frame out, frame in). The thin end of the
/// communication tier — deepdive_cli's client mode and the saturation bench
/// both drive the daemon through this class, with the exact request structs
/// the in-process handler path uses, so the two transports cannot drift.
///
/// Thread contract: one thread per Client (callers wanting concurrency open
/// one connection per thread, like any real client fleet would).
class Client {
 public:
  /// Connects to "HOST:PORT" or "unix:PATH".
  static StatusOr<Client> Dial(const std::string& address);

  /// Sends `request` and awaits its response envelope. A transport error
  /// poisons the connection (the daemon closes it after a framing error);
  /// application-level failures arrive as Response::code instead.
  StatusOr<Response> Call(const Request& request);

 private:
  explicit Client(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

}  // namespace deepdive::serve::comm

#endif  // DEEPDIVE_SERVE_COMM_CLIENT_H_
