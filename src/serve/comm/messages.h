#ifndef DEEPDIVE_SERVE_COMM_MESSAGES_H_
#define DEEPDIVE_SERVE_COMM_MESSAGES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace deepdive::serve::comm {

/// The serving stack's verb set. One verb per request; the dispatch table in
/// serve/handlers maps each onto its typed handler. Values are wire-stable:
/// never renumber, only append.
enum class Verb : uint8_t {
  kQuery = 1,         // pin a result view, look up a relation/tuple
  kApplyUpdate = 2,   // enqueue one update on the tenant's writer thread
  kExport = 3,        // TSV export of query relations from one pinned view
  kStatus = 4,        // tenant (or server-wide) serving statistics
  kCreateTenant = 5,  // admin: host a new KB instance
  kListTenants = 6,   // admin: tenant names only
  kSaveGraph = 7,     // admin: compiled-graph snapshot via the writer thread
  kShutdown = 8,      // admin: graceful daemon drain
  kAddRule = 9,       // first-class rule addition on the writer thread
  kRetractRule = 10,  // first-class rule retraction (journal-exact when possible)
  kMine = 11,         // one incremental rule-mining pass on the writer thread
};

const char* VerbName(Verb verb);

/// One relation's worth of TSV rows (the unit of data both at tenant
/// creation and inside updates). Rows travel as raw TSV text and are parsed
/// against the tenant's schema on its writer thread — the only place the
/// program is legal to read.
struct DataPayload {
  std::string relation;
  std::string tsv;
};

/// Engine configuration a tenant is created with; mirrors the deepdive_cli
/// run flags so the daemon and the in-process CLI cannot drift.
struct TenantConfig {
  bool rerun_mode = false;  // false = incremental (the full system)
  uint64_t seed = 42;
  uint32_t epochs = 60;
  uint32_t threads = 1;
  uint32_t replicas = 1;
  uint32_t sync_every = 50;
  bool async_materialize = false;
  /// Server-side sample-store paths (overnight-materialization reuse);
  /// empty = disabled. Only meaningful in incremental mode.
  std::string save_materialization;
  std::string load_materialization;
  /// Per-tenant update-queue admission control: TryPush sheds once the
  /// queue depth reaches `shed_watermark` (0 = capacity); shed responses
  /// carry `retry_after_ms`.
  uint32_t queue_capacity = 64;
  uint32_t shed_watermark = 48;
  uint32_t retry_after_ms = 100;
};

struct QueryRequest {
  std::string relation;
  /// Optional tuple, TSV-encoded. Empty = relation-level query (entry count
  /// above `threshold`); set = marginal lookup of that tuple.
  std::string tuple_tsv;
  double threshold = 0.0;
};

struct UpdateRequest {
  std::string label;
  /// DSL rule fragment (may declare new relations); empty = data-only.
  std::string rules;
  std::vector<DataPayload> inserts;
};

struct ExportRequest {
  /// Relations to export; empty = every query relation, in declaration
  /// order, each chunk answered from the same pinned view.
  std::vector<std::string> relations;
  double threshold = 0.0;
};

struct StatusRequest {};

struct CreateTenantRequest {
  std::string name;
  std::string program;  // DDL source
  TenantConfig config;
  std::vector<DataPayload> data;  // base rows loaded before Initialize
};

struct ListTenantsRequest {};

struct SaveGraphRequest {
  std::string path;  // server-side file path for the compiled snapshot
};

struct ShutdownRequest {};

/// First-class rule addition: `rule` is a DSL fragment with exactly one
/// labeled factor rule over already-declared relations. Grounded alone on
/// the tenant's writer thread (work proportional to the rule's matches).
struct AddRuleRequest {
  std::string rule;
};

struct RetractRuleRequest {
  std::string label;
};

/// One rule-mining pass: propose candidates from the tenant's co-occurrence
/// statistics, trial each through the engine, promote up to
/// `max_promotions`. The thresholds parameterize the candidate generator.
struct MineRequest {
  uint64_t max_promotions = 1;
  int64_t min_support = 2;
  double min_confidence = 0.6;
  uint32_t max_body_atoms = 2;
};

/// One request envelope: target tenant (empty for server-wide/admin verbs)
/// plus the verb-specific body. The variant index is the wire verb tag.
struct Request {
  std::string tenant;
  std::variant<QueryRequest, UpdateRequest, ExportRequest, StatusRequest,
               CreateTenantRequest, ListTenantsRequest, SaveGraphRequest,
               ShutdownRequest, AddRuleRequest, RetractRuleRequest,
               MineRequest>
      body;

  Verb verb() const;
};

struct QueryResult {
  uint64_t epoch = 0;
  /// Tuple lookups: whether the tuple was found, and its marginal (0.5 when
  /// unknown — the same convention as ResultView::MarginalOf).
  bool found = false;
  double marginal = 0.5;
  /// Relation-level queries: entries at or above the request threshold.
  uint64_t entries = 0;
};

struct UpdateResult {
  uint64_t epoch = 0;
  std::string label;
  std::string strategy;
  double grounding_seconds = 0.0;
  double learning_seconds = 0.0;
  double inference_seconds = 0.0;
  uint64_t affected_vars = 0;
};

struct ExportChunk {
  std::string relation;
  std::string tsv;  // "<marginal>\t<cols...>" lines, threshold applied
};

struct ExportResult {
  uint64_t epoch = 0;  // every chunk came from this one pinned view
  std::vector<ExportChunk> chunks;
};

struct TenantStatus {
  std::string name;
  bool ready = false;          // Initialize finished OK
  bool failed = false;         // Initialize (or the serve loop) errored
  uint64_t epoch = 0;          // latest published result-view epoch
  uint64_t num_variables = 0;  // size of the view's marginal vector
  uint64_t updates_applied = 0;
  uint64_t updates_shed = 0;
  uint32_t queue_depth = 0;
  uint32_t queue_capacity = 0;
  uint32_t shed_watermark = 0;
  /// Program-evolution identity, read from the latest published view: bumped
  /// on every rule addition/retraction, plus the rule count and the FNV-1a
  /// fingerprint over the canonical rule text (replica-comparable).
  uint64_t program_version = 0;
  uint64_t rule_count = 0;
  uint64_t rules_fingerprint = 0;
};

struct StatusResult {
  std::vector<TenantStatus> tenants;
};

struct CreateTenantResult {
  uint64_t epoch = 0;
  uint64_t num_variables = 0;
  uint64_t num_factors = 0;
};

struct ListTenantsResult {
  std::vector<std::string> names;
};

struct SaveGraphResult {
  uint64_t checksum = 0;
  uint64_t image_bytes = 0;
  /// Marginals fingerprint of the snapshot (evidence clamped), computed on
  /// the writer thread with the tenant's sampling configuration — the same
  /// identity line `load-graph` recomputes to prove a cold start reproduces
  /// this process's inference bit-for-bit.
  uint64_t fingerprint = 0;
};

struct AddRuleResult {
  uint64_t epoch = 0;
  std::string label;
  std::string strategy;
  /// Groundings emitted while adding the rule — the proportional-work
  /// witness (equals the rule's match count, never the whole program's).
  uint64_t grounding_work = 0;
  double grounding_seconds = 0.0;
  double inference_seconds = 0.0;
  uint64_t program_version = 0;
  uint64_t rule_count = 0;
  uint64_t rules_fingerprint = 0;
};

struct RetractRuleResult {
  uint64_t epoch = 0;
  /// "sampling" with acceptance 1.0 when the rule journal restored the
  /// pre-add state exactly; otherwise the incremental strategy that re-ran.
  std::string strategy;
  double acceptance = -1.0;
  uint64_t program_version = 0;
  uint64_t rule_count = 0;
  uint64_t rules_fingerprint = 0;
};

struct MineResult {
  uint64_t epoch = 0;
  uint64_t candidates_considered = 0;
  uint64_t candidates_trialed = 0;
  /// Labels of the rules promoted into the program, in promotion order.
  std::vector<std::string> promoted;
  uint64_t program_version = 0;
  uint64_t rule_count = 0;
  uint64_t rules_fingerprint = 0;
};

struct EmptyResult {};

/// One response envelope. `code`/`message` mirror util/status.h; a shed
/// update answers kUnavailable with `retry_after_ms` > 0 — the structured
/// retry-after contract of the admission controller. The body variant is
/// EmptyResult on errors and for bodyless verbs (shutdown).
struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint32_t retry_after_ms = 0;
  std::variant<EmptyResult, QueryResult, UpdateResult, ExportResult,
               StatusResult, CreateTenantResult, ListTenantsResult,
               SaveGraphResult, AddRuleResult, RetractRuleResult, MineResult>
      body;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }

  static Response Error(const Status& status) {
    Response response;
    response.code = status.code();
    response.message = status.message();
    return response;
  }
};

/// Codec between the typed envelopes and frame payloads. Decoding is fully
/// bounds-checked (WireReader) and rejects unknown verbs/tags and trailing
/// bytes, so a hostile frame degrades into a Status, never UB.
std::string EncodeRequest(const Request& request);
StatusOr<Request> DecodeRequest(std::string_view payload);
std::string EncodeResponse(const Response& response);
StatusOr<Response> DecodeResponse(std::string_view payload);

}  // namespace deepdive::serve::comm

#endif  // DEEPDIVE_SERVE_COMM_MESSAGES_H_
