#ifndef DEEPDIVE_SERVE_COMM_FRAME_H_
#define DEEPDIVE_SERVE_COMM_FRAME_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/socket.h"
#include "util/status.h"

namespace deepdive::serve::comm {

/// Frame size ceiling (64 MiB): a peer announcing more is a protocol error,
/// not an allocation request — the guard that keeps one bad length prefix
/// from OOMing the daemon.
inline constexpr size_t kMaxFrameBytes = 64ull << 20;

/// Writes one length-prefixed frame: u32 big-endian payload size, then the
/// payload bytes. The framing layer under every request and response.
Status WriteFrame(const Socket& socket, std::string_view payload);

/// Reads one frame into `payload`. NotFound when the peer hung up cleanly
/// between frames (a normal connection end); InvalidArgument when the length
/// prefix exceeds kMaxFrameBytes; Internal on mid-frame truncation.
Status ReadFrame(const Socket& socket, std::string* payload);

}  // namespace deepdive::serve::comm

#endif  // DEEPDIVE_SERVE_COMM_FRAME_H_
