#ifndef DEEPDIVE_SERVE_COMM_WIRE_H_
#define DEEPDIVE_SERVE_COMM_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace deepdive::serve::comm {

/// Append-only binary serializer for wire messages. Fixed-width integers are
/// big-endian; doubles travel as their IEEE-754 bit pattern; strings and
/// blobs are u32-length-prefixed. The matching WireReader rejects any
/// truncation with a sticky error instead of reading past the end, so a
/// malformed (or hostile) frame can never become out-of-bounds access.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view v);

  /// Aliases the buffer; WireWriter is a single-thread value type (no
  /// concurrent use), the reference lives only as long as the writer.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over one received frame. Every Get* returns a
/// default value once the reader has failed; callers check status() after
/// decoding a whole message (the sticky error names the first failure).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  bool GetBool() { return GetU8() != 0; }
  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  std::string GetString();

  /// True once every byte has been consumed (trailing garbage is a protocol
  /// error the decoder surfaces via ExpectDone).
  bool done() const { return pos_ >= data_.size(); }
  Status ExpectDone();

  /// Sticky first error; WireReader is a single-thread value type, the
  /// reference is only valid while the reader is.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace deepdive::serve::comm

#endif  // DEEPDIVE_SERVE_COMM_WIRE_H_
