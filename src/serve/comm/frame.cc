#include "serve/comm/frame.h"

namespace deepdive::serve::comm {

Status WriteFrame(const Socket& socket, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>((len >> 24) & 0xff);
  prefix[1] = static_cast<char>((len >> 16) & 0xff);
  prefix[2] = static_cast<char>((len >> 8) & 0xff);
  prefix[3] = static_cast<char>(len & 0xff);
  DD_RETURN_IF_ERROR(socket.SendAll(prefix, sizeof(prefix)));
  return socket.SendAll(payload.data(), payload.size());
}

Status ReadFrame(const Socket& socket, std::string* payload) {
  char prefix[4];
  DD_RETURN_IF_ERROR(socket.RecvAll(prefix, sizeof(prefix)));
  uint32_t len = 0;
  for (const char c : prefix) len = (len << 8) | static_cast<uint8_t>(c);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("peer announced a " + std::to_string(len) +
                                   "-byte frame (limit " +
                                   std::to_string(kMaxFrameBytes) + ")");
  }
  payload->resize(len);
  if (len == 0) return Status::OK();
  const Status status = socket.RecvAll(payload->data(), len);
  if (status.code() == StatusCode::kNotFound) {
    // EOF after a length prefix is truncation, not a clean hangup.
    return Status::Internal("connection closed mid-frame");
  }
  return status;
}

}  // namespace deepdive::serve::comm
