#include "serve/comm/messages.h"

#include "serve/comm/wire.h"

namespace deepdive::serve::comm {
namespace {

void PutDataPayloads(WireWriter* w, const std::vector<DataPayload>& data) {
  w->PutU32(static_cast<uint32_t>(data.size()));
  for (const DataPayload& d : data) {
    w->PutString(d.relation);
    w->PutString(d.tsv);
  }
}

std::vector<DataPayload> GetDataPayloads(WireReader* r) {
  const uint32_t n = r->GetU32();
  std::vector<DataPayload> data;
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    DataPayload d;
    d.relation = r->GetString();
    d.tsv = r->GetString();
    data.push_back(std::move(d));
  }
  return data;
}

void PutStrings(WireWriter* w, const std::vector<std::string>& strings) {
  w->PutU32(static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) w->PutString(s);
}

std::vector<std::string> GetStrings(WireReader* r) {
  const uint32_t n = r->GetU32();
  std::vector<std::string> strings;
  for (uint32_t i = 0; i < n && r->ok(); ++i) strings.push_back(r->GetString());
  return strings;
}

void PutTenantConfig(WireWriter* w, const TenantConfig& c) {
  w->PutBool(c.rerun_mode);
  w->PutU64(c.seed);
  w->PutU32(c.epochs);
  w->PutU32(c.threads);
  w->PutU32(c.replicas);
  w->PutU32(c.sync_every);
  w->PutBool(c.async_materialize);
  w->PutString(c.save_materialization);
  w->PutString(c.load_materialization);
  w->PutU32(c.queue_capacity);
  w->PutU32(c.shed_watermark);
  w->PutU32(c.retry_after_ms);
}

TenantConfig GetTenantConfig(WireReader* r) {
  TenantConfig c;
  c.rerun_mode = r->GetBool();
  c.seed = r->GetU64();
  c.epochs = r->GetU32();
  c.threads = r->GetU32();
  c.replicas = r->GetU32();
  c.sync_every = r->GetU32();
  c.async_materialize = r->GetBool();
  c.save_materialization = r->GetString();
  c.load_materialization = r->GetString();
  c.queue_capacity = r->GetU32();
  c.shed_watermark = r->GetU32();
  c.retry_after_ms = r->GetU32();
  return c;
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kQuery:
      return "query";
    case Verb::kApplyUpdate:
      return "apply_update";
    case Verb::kExport:
      return "export";
    case Verb::kStatus:
      return "status";
    case Verb::kCreateTenant:
      return "create_tenant";
    case Verb::kListTenants:
      return "list_tenants";
    case Verb::kSaveGraph:
      return "save_graph";
    case Verb::kShutdown:
      return "shutdown";
    case Verb::kAddRule:
      return "add_rule";
    case Verb::kRetractRule:
      return "retract_rule";
    case Verb::kMine:
      return "mine";
  }
  return "unknown";
}

Verb Request::verb() const {
  // The variant order IS the verb numbering (kQuery = 1 = index 0 + 1).
  return static_cast<Verb>(body.index() + 1);
}

std::string EncodeRequest(const Request& request) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(request.verb()));
  w.PutString(request.tenant);
  std::visit(
      [&w](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, QueryRequest>) {
          w.PutString(body.relation);
          w.PutString(body.tuple_tsv);
          w.PutDouble(body.threshold);
        } else if constexpr (std::is_same_v<T, UpdateRequest>) {
          w.PutString(body.label);
          w.PutString(body.rules);
          PutDataPayloads(&w, body.inserts);
        } else if constexpr (std::is_same_v<T, ExportRequest>) {
          PutStrings(&w, body.relations);
          w.PutDouble(body.threshold);
        } else if constexpr (std::is_same_v<T, CreateTenantRequest>) {
          w.PutString(body.name);
          w.PutString(body.program);
          PutTenantConfig(&w, body.config);
          PutDataPayloads(&w, body.data);
        } else if constexpr (std::is_same_v<T, SaveGraphRequest>) {
          w.PutString(body.path);
        } else if constexpr (std::is_same_v<T, AddRuleRequest>) {
          w.PutString(body.rule);
        } else if constexpr (std::is_same_v<T, RetractRuleRequest>) {
          w.PutString(body.label);
        } else if constexpr (std::is_same_v<T, MineRequest>) {
          w.PutU64(body.max_promotions);
          w.PutU64(static_cast<uint64_t>(body.min_support));
          w.PutDouble(body.min_confidence);
          w.PutU32(body.max_body_atoms);
        }
        // StatusRequest / ListTenantsRequest / ShutdownRequest: no body.
      },
      request.body);
  return w.Take();
}

StatusOr<Request> DecodeRequest(std::string_view payload) {
  WireReader r(payload);
  const uint8_t verb = r.GetU8();
  Request request;
  request.tenant = r.GetString();
  switch (static_cast<Verb>(verb)) {
    case Verb::kQuery: {
      QueryRequest body;
      body.relation = r.GetString();
      body.tuple_tsv = r.GetString();
      body.threshold = r.GetDouble();
      request.body = std::move(body);
      break;
    }
    case Verb::kApplyUpdate: {
      UpdateRequest body;
      body.label = r.GetString();
      body.rules = r.GetString();
      body.inserts = GetDataPayloads(&r);
      request.body = std::move(body);
      break;
    }
    case Verb::kExport: {
      ExportRequest body;
      body.relations = GetStrings(&r);
      body.threshold = r.GetDouble();
      request.body = std::move(body);
      break;
    }
    case Verb::kStatus:
      request.body = StatusRequest{};
      break;
    case Verb::kCreateTenant: {
      CreateTenantRequest body;
      body.name = r.GetString();
      body.program = r.GetString();
      body.config = GetTenantConfig(&r);
      body.data = GetDataPayloads(&r);
      request.body = std::move(body);
      break;
    }
    case Verb::kListTenants:
      request.body = ListTenantsRequest{};
      break;
    case Verb::kSaveGraph: {
      SaveGraphRequest body;
      body.path = r.GetString();
      request.body = std::move(body);
      break;
    }
    case Verb::kShutdown:
      request.body = ShutdownRequest{};
      break;
    case Verb::kAddRule: {
      AddRuleRequest body;
      body.rule = r.GetString();
      request.body = std::move(body);
      break;
    }
    case Verb::kRetractRule: {
      RetractRuleRequest body;
      body.label = r.GetString();
      request.body = std::move(body);
      break;
    }
    case Verb::kMine: {
      MineRequest body;
      body.max_promotions = r.GetU64();
      body.min_support = static_cast<int64_t>(r.GetU64());
      body.min_confidence = r.GetDouble();
      body.max_body_atoms = r.GetU32();
      request.body = std::move(body);
      break;
    }
    default:
      return Status::InvalidArgument("unknown request verb " +
                                     std::to_string(verb));
  }
  DD_RETURN_IF_ERROR(r.ExpectDone());
  return request;
}

std::string EncodeResponse(const Response& response) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutString(response.message);
  w.PutU32(response.retry_after_ms);
  w.PutU8(static_cast<uint8_t>(response.body.index()));
  std::visit(
      [&w](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, QueryResult>) {
          w.PutU64(body.epoch);
          w.PutBool(body.found);
          w.PutDouble(body.marginal);
          w.PutU64(body.entries);
        } else if constexpr (std::is_same_v<T, UpdateResult>) {
          w.PutU64(body.epoch);
          w.PutString(body.label);
          w.PutString(body.strategy);
          w.PutDouble(body.grounding_seconds);
          w.PutDouble(body.learning_seconds);
          w.PutDouble(body.inference_seconds);
          w.PutU64(body.affected_vars);
        } else if constexpr (std::is_same_v<T, ExportResult>) {
          w.PutU64(body.epoch);
          w.PutU32(static_cast<uint32_t>(body.chunks.size()));
          for (const ExportChunk& chunk : body.chunks) {
            w.PutString(chunk.relation);
            w.PutString(chunk.tsv);
          }
        } else if constexpr (std::is_same_v<T, StatusResult>) {
          w.PutU32(static_cast<uint32_t>(body.tenants.size()));
          for (const TenantStatus& t : body.tenants) {
            w.PutString(t.name);
            w.PutBool(t.ready);
            w.PutBool(t.failed);
            w.PutU64(t.epoch);
            w.PutU64(t.num_variables);
            w.PutU64(t.updates_applied);
            w.PutU64(t.updates_shed);
            w.PutU32(t.queue_depth);
            w.PutU32(t.queue_capacity);
            w.PutU32(t.shed_watermark);
            w.PutU64(t.program_version);
            w.PutU64(t.rule_count);
            w.PutU64(t.rules_fingerprint);
          }
        } else if constexpr (std::is_same_v<T, CreateTenantResult>) {
          w.PutU64(body.epoch);
          w.PutU64(body.num_variables);
          w.PutU64(body.num_factors);
        } else if constexpr (std::is_same_v<T, ListTenantsResult>) {
          w.PutU32(static_cast<uint32_t>(body.names.size()));
          for (const std::string& name : body.names) w.PutString(name);
        } else if constexpr (std::is_same_v<T, SaveGraphResult>) {
          w.PutU64(body.checksum);
          w.PutU64(body.image_bytes);
          w.PutU64(body.fingerprint);
        } else if constexpr (std::is_same_v<T, AddRuleResult>) {
          w.PutU64(body.epoch);
          w.PutString(body.label);
          w.PutString(body.strategy);
          w.PutU64(body.grounding_work);
          w.PutDouble(body.grounding_seconds);
          w.PutDouble(body.inference_seconds);
          w.PutU64(body.program_version);
          w.PutU64(body.rule_count);
          w.PutU64(body.rules_fingerprint);
        } else if constexpr (std::is_same_v<T, RetractRuleResult>) {
          w.PutU64(body.epoch);
          w.PutString(body.strategy);
          w.PutDouble(body.acceptance);
          w.PutU64(body.program_version);
          w.PutU64(body.rule_count);
          w.PutU64(body.rules_fingerprint);
        } else if constexpr (std::is_same_v<T, MineResult>) {
          w.PutU64(body.epoch);
          w.PutU64(body.candidates_considered);
          w.PutU64(body.candidates_trialed);
          PutStrings(&w, body.promoted);
          w.PutU64(body.program_version);
          w.PutU64(body.rule_count);
          w.PutU64(body.rules_fingerprint);
        }
        // EmptyResult: nothing.
      },
      response.body);
  return w.Take();
}

StatusOr<Response> DecodeResponse(std::string_view payload) {
  WireReader r(payload);
  Response response;
  const uint8_t code = r.GetU8();
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("unknown response status code " +
                                   std::to_string(code));
  }
  response.code = static_cast<StatusCode>(code);
  response.message = r.GetString();
  response.retry_after_ms = r.GetU32();
  const uint8_t tag = r.GetU8();
  switch (tag) {
    case 0:
      response.body = EmptyResult{};
      break;
    case 1: {
      QueryResult body;
      body.epoch = r.GetU64();
      body.found = r.GetBool();
      body.marginal = r.GetDouble();
      body.entries = r.GetU64();
      response.body = body;
      break;
    }
    case 2: {
      UpdateResult body;
      body.epoch = r.GetU64();
      body.label = r.GetString();
      body.strategy = r.GetString();
      body.grounding_seconds = r.GetDouble();
      body.learning_seconds = r.GetDouble();
      body.inference_seconds = r.GetDouble();
      body.affected_vars = r.GetU64();
      response.body = std::move(body);
      break;
    }
    case 3: {
      ExportResult body;
      body.epoch = r.GetU64();
      const uint32_t n = r.GetU32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        ExportChunk chunk;
        chunk.relation = r.GetString();
        chunk.tsv = r.GetString();
        body.chunks.push_back(std::move(chunk));
      }
      response.body = std::move(body);
      break;
    }
    case 4: {
      StatusResult body;
      const uint32_t n = r.GetU32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        TenantStatus t;
        t.name = r.GetString();
        t.ready = r.GetBool();
        t.failed = r.GetBool();
        t.epoch = r.GetU64();
        t.num_variables = r.GetU64();
        t.updates_applied = r.GetU64();
        t.updates_shed = r.GetU64();
        t.queue_depth = r.GetU32();
        t.queue_capacity = r.GetU32();
        t.shed_watermark = r.GetU32();
        t.program_version = r.GetU64();
        t.rule_count = r.GetU64();
        t.rules_fingerprint = r.GetU64();
        body.tenants.push_back(std::move(t));
      }
      response.body = std::move(body);
      break;
    }
    case 5: {
      CreateTenantResult body;
      body.epoch = r.GetU64();
      body.num_variables = r.GetU64();
      body.num_factors = r.GetU64();
      response.body = body;
      break;
    }
    case 6: {
      ListTenantsResult body;
      body.names = GetStrings(&r);
      response.body = std::move(body);
      break;
    }
    case 7: {
      SaveGraphResult body;
      body.checksum = r.GetU64();
      body.image_bytes = r.GetU64();
      body.fingerprint = r.GetU64();
      response.body = body;
      break;
    }
    case 8: {
      AddRuleResult body;
      body.epoch = r.GetU64();
      body.label = r.GetString();
      body.strategy = r.GetString();
      body.grounding_work = r.GetU64();
      body.grounding_seconds = r.GetDouble();
      body.inference_seconds = r.GetDouble();
      body.program_version = r.GetU64();
      body.rule_count = r.GetU64();
      body.rules_fingerprint = r.GetU64();
      response.body = std::move(body);
      break;
    }
    case 9: {
      RetractRuleResult body;
      body.epoch = r.GetU64();
      body.strategy = r.GetString();
      body.acceptance = r.GetDouble();
      body.program_version = r.GetU64();
      body.rule_count = r.GetU64();
      body.rules_fingerprint = r.GetU64();
      response.body = std::move(body);
      break;
    }
    case 10: {
      MineResult body;
      body.epoch = r.GetU64();
      body.candidates_considered = r.GetU64();
      body.candidates_trialed = r.GetU64();
      body.promoted = GetStrings(&r);
      body.program_version = r.GetU64();
      body.rule_count = r.GetU64();
      body.rules_fingerprint = r.GetU64();
      response.body = std::move(body);
      break;
    }
    default:
      return Status::InvalidArgument("unknown response body tag " +
                                     std::to_string(tag));
  }
  DD_RETURN_IF_ERROR(r.ExpectDone());
  return response;
}

}  // namespace deepdive::serve::comm
