#ifndef DEEPDIVE_SERVE_HANDLERS_HANDLERS_H_
#define DEEPDIVE_SERVE_HANDLERS_HANDLERS_H_

#include <functional>
#include <map>

#include "serve/comm/messages.h"
#include "util/status.h"

namespace deepdive::serve::service {
class TenantRegistry;
class TenantInstance;
}  // namespace deepdive::serve::service

namespace deepdive::serve::handlers {

/// The handlers tier: a dispatch table mapping each wire verb onto its typed
/// handler. Handlers speak only the comm::* request/result structs and the
/// service tier's tenant API — never the engine directly (enforced by the
/// layering rule in tools/concurrency_lint.py: nothing under serve/handlers
/// or serve/comm includes incremental/engine.h). Both transports share this
/// class: deepdive_serve's connection workers and deepdive_cli's in-process
/// run path dispatch the exact same Request values, so the daemon and the
/// CLI cannot drift.
///
/// Thread contract: Dispatch is called concurrently from any number of
/// connection threads. Query/export handlers ride the lock-free view-pin
/// path; updates go through the tenant's admission-controlled queue (a shed
/// surfaces as StatusCode::kUnavailable with retry_after_ms attached).
class Dispatcher {
 public:
  explicit Dispatcher(service::TenantRegistry* registry);

  /// Routes one request to its verb handler. Never throws; every failure is
  /// a Response whose code/message carry the Status.
  comm::Response Dispatch(const comm::Request& request) const;

  /// Invoked (on the dispatching thread) when a shutdown verb is accepted;
  /// must be fast and non-blocking — typically flips the daemon's drain
  /// flag. The shutdown response is still delivered to the client.
  void SetShutdownCallback(std::function<void()> callback) {
    shutdown_callback_ = std::move(callback);
  }

 private:
  comm::Response HandleQuery(const comm::Request& request) const;
  comm::Response HandleUpdate(const comm::Request& request) const;
  comm::Response HandleExport(const comm::Request& request) const;
  comm::Response HandleStatus(const comm::Request& request) const;
  comm::Response HandleCreateTenant(const comm::Request& request) const;
  comm::Response HandleListTenants(const comm::Request& request) const;
  comm::Response HandleSaveGraph(const comm::Request& request) const;
  comm::Response HandleShutdown(const comm::Request& request) const;
  comm::Response HandleAddRule(const comm::Request& request) const;
  comm::Response HandleRetractRule(const comm::Request& request) const;
  comm::Response HandleMine(const comm::Request& request) const;

  /// Looks up the tenant a request addresses and waits for its readiness
  /// signal (first published view) — the explicit rendezvous that replaced
  /// the old grace-window sleep.
  StatusOr<service::TenantInstance*> ReadyTenant(
      const comm::Request& request) const;

  service::TenantRegistry* registry_;  // not owned
  std::function<void()> shutdown_callback_;
  /// The verb dispatch table; immutable after construction, so concurrent
  /// Dispatch calls read it without synchronization.
  std::map<comm::Verb, comm::Response (Dispatcher::*)(const comm::Request&)
                           const>
      table_;
};

}  // namespace deepdive::serve::handlers

#endif  // DEEPDIVE_SERVE_HANDLERS_HANDLERS_H_
