#include "serve/handlers/handlers.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "serve/service/registry.h"
#include "serve/service/tenant.h"
#include "storage/text_io.h"

namespace deepdive::serve::handlers {
namespace {

bool IsQueryRelationOf(const incremental::ResultView& view,
                       const std::string& relation) {
  return std::find(view.query_relations.begin(), view.query_relations.end(),
                   relation) != view.query_relations.end();
}

/// Renders one relation's export chunk from a pinned view — exactly the
/// lines incremental::WriteRelationTsv would print (same threshold filter,
/// same unprintable-tuple skip), so the daemon's export is byte-identical
/// to the in-process path.
std::string RenderRelationTsv(const incremental::ResultView& view,
                              const std::string& relation, double threshold) {
  std::string tsv;
  const auto* entries = view.Relation(relation);
  if (entries == nullptr) return tsv;
  for (const auto& [tuple, marginal] : *entries) {
    if (marginal < threshold) continue;
    auto line = FormatMarginalLine(marginal, tuple);
    if (!line.ok()) continue;  // unprintable tuple: same skip as FormatTsvLine
    tsv += *line;
    tsv += '\n';
  }
  return tsv;
}

}  // namespace

Dispatcher::Dispatcher(service::TenantRegistry* registry)
    : registry_(registry) {
  table_[comm::Verb::kQuery] = &Dispatcher::HandleQuery;
  table_[comm::Verb::kApplyUpdate] = &Dispatcher::HandleUpdate;
  table_[comm::Verb::kExport] = &Dispatcher::HandleExport;
  table_[comm::Verb::kStatus] = &Dispatcher::HandleStatus;
  table_[comm::Verb::kCreateTenant] = &Dispatcher::HandleCreateTenant;
  table_[comm::Verb::kListTenants] = &Dispatcher::HandleListTenants;
  table_[comm::Verb::kSaveGraph] = &Dispatcher::HandleSaveGraph;
  table_[comm::Verb::kShutdown] = &Dispatcher::HandleShutdown;
  table_[comm::Verb::kAddRule] = &Dispatcher::HandleAddRule;
  table_[comm::Verb::kRetractRule] = &Dispatcher::HandleRetractRule;
  table_[comm::Verb::kMine] = &Dispatcher::HandleMine;
}

comm::Response Dispatcher::Dispatch(const comm::Request& request) const {
  const auto it = table_.find(request.verb());
  if (it == table_.end()) {
    return comm::Response::Error(Status::Unimplemented(
        std::string("no handler for verb ") + comm::VerbName(request.verb())));
  }
  return (this->*(it->second))(request);
}

StatusOr<service::TenantInstance*> Dispatcher::ReadyTenant(
    const comm::Request& request) const {
  service::TenantInstance* tenant = registry_->Find(request.tenant);
  if (tenant == nullptr) {
    return Status::NotFound("unknown tenant '" + request.tenant + "'");
  }
  DD_RETURN_IF_ERROR(tenant->WaitReady());
  return tenant;
}

comm::Response Dispatcher::HandleQuery(const comm::Request& request) const {
  const auto& body = std::get<comm::QueryRequest>(request.body);
  if (body.relation.empty()) {
    return comm::Response::Error(
        Status::InvalidArgument("query needs a relation"));
  }
  auto tenant = ReadyTenant(request);
  if (!tenant.ok()) return comm::Response::Error(tenant.status());
  const std::shared_ptr<const core::DeepDive> dd = (*tenant)->deepdive();
  if (dd == nullptr) {
    return comm::Response::Error(Status::FailedPrecondition(
        "tenant '" + request.tenant + "' is stopped"));
  }
  // One lock-free pin answers the whole request; the writer thread keeps
  // publishing newer epochs underneath without blocking us.
  const auto view = dd->Query();
  if (!IsQueryRelationOf(*view, body.relation)) {
    return comm::Response::Error(Status::InvalidArgument(
        "'" + body.relation + "' is not a query relation"));
  }
  comm::QueryResult result;
  result.epoch = view->epoch;
  const auto* entries = view->Relation(body.relation);
  if (body.tuple_tsv.empty()) {
    if (entries != nullptr) {
      for (const auto& [tuple, marginal] : *entries) {
        if (marginal >= body.threshold) ++result.entries;
      }
    }
  } else if (entries != nullptr) {
    // Tuple lookup by its TSV rendering: connection threads have no schema
    // (the program is serving-thread-only), so tuples travel as text.
    for (const auto& [tuple, marginal] : *entries) {
      auto line = FormatTsvLine(tuple);
      if (line.ok() && *line == body.tuple_tsv) {
        result.found = true;
        result.marginal = marginal;
        break;
      }
    }
  }
  comm::Response response;
  response.body = result;
  return response;
}

comm::Response Dispatcher::HandleUpdate(const comm::Request& request) const {
  service::TenantInstance* tenant = registry_->Find(request.tenant);
  if (tenant == nullptr) {
    return comm::Response::Error(
        Status::NotFound("unknown tenant '" + request.tenant + "'"));
  }
  auto result = tenant->SubmitUpdate(std::get<comm::UpdateRequest>(request.body));
  if (!result.ok()) {
    comm::Response response = comm::Response::Error(result.status());
    if (result.status().code() == StatusCode::kUnavailable) {
      // The admission controller shed this update: tell the client when to
      // come back instead of letting it hammer the queue.
      response.retry_after_ms = tenant->config().retry_after_ms;
    }
    return response;
  }
  comm::Response response;
  response.body = std::move(result).value();
  return response;
}

comm::Response Dispatcher::HandleExport(const comm::Request& request) const {
  const auto& body = std::get<comm::ExportRequest>(request.body);
  auto tenant = ReadyTenant(request);
  if (!tenant.ok()) return comm::Response::Error(tenant.status());
  const std::shared_ptr<const core::DeepDive> dd = (*tenant)->deepdive();
  if (dd == nullptr) {
    return comm::Response::Error(Status::FailedPrecondition(
        "tenant '" + request.tenant + "' is stopped"));
  }
  // Every chunk comes from this one pinned view: the export is a consistent
  // snapshot even while updates keep publishing.
  const auto view = dd->Query();
  comm::ExportResult result;
  result.epoch = view->epoch;
  const std::vector<std::string>& relations =
      body.relations.empty() ? view->query_relations : body.relations;
  for (const std::string& relation : relations) {
    if (!IsQueryRelationOf(*view, relation)) {
      return comm::Response::Error(Status::InvalidArgument(
          "'" + relation + "' is not a query relation"));
    }
    comm::ExportChunk chunk;
    chunk.relation = relation;
    chunk.tsv = RenderRelationTsv(*view, relation, body.threshold);
    result.chunks.push_back(std::move(chunk));
  }
  comm::Response response;
  response.body = std::move(result);
  return response;
}

comm::Response Dispatcher::HandleStatus(const comm::Request& request) const {
  comm::StatusResult result;
  if (request.tenant.empty()) {
    for (service::TenantInstance* tenant : registry_->All()) {
      result.tenants.push_back(tenant->GetStatus());
    }
  } else {
    service::TenantInstance* tenant = registry_->Find(request.tenant);
    if (tenant == nullptr) {
      return comm::Response::Error(
          Status::NotFound("unknown tenant '" + request.tenant + "'"));
    }
    result.tenants.push_back(tenant->GetStatus());
  }
  comm::Response response;
  response.body = std::move(result);
  return response;
}

comm::Response Dispatcher::HandleCreateTenant(
    const comm::Request& request) const {
  const auto& body = std::get<comm::CreateTenantRequest>(request.body);
  auto created = registry_->CreateTenant(body);
  if (!created.ok()) return comm::Response::Error(created.status());
  // Rendezvous with the new writer thread: the response carries the first
  // view's epoch and the grounded graph size, or the Initialize error (the
  // failed tenant stays registered and reports failed=1 in status).
  auto info = (*created)->InitInfo();
  if (!info.ok()) return comm::Response::Error(info.status());
  comm::Response response;
  response.body = std::move(info).value();
  return response;
}

comm::Response Dispatcher::HandleListTenants(const comm::Request&) const {
  comm::ListTenantsResult result;
  result.names = registry_->Names();
  comm::Response response;
  response.body = std::move(result);
  return response;
}

comm::Response Dispatcher::HandleSaveGraph(const comm::Request& request) const {
  const auto& body = std::get<comm::SaveGraphRequest>(request.body);
  if (body.path.empty()) {
    return comm::Response::Error(
        Status::InvalidArgument("save_graph needs a path"));
  }
  auto tenant = ReadyTenant(request);
  if (!tenant.ok()) return comm::Response::Error(tenant.status());
  auto saved = (*tenant)->SaveGraph(body.path);
  if (!saved.ok()) return comm::Response::Error(saved.status());
  comm::Response response;
  response.body = std::move(saved).value();
  return response;
}

comm::Response Dispatcher::HandleAddRule(const comm::Request& request) const {
  const auto& body = std::get<comm::AddRuleRequest>(request.body);
  if (body.rule.empty()) {
    return comm::Response::Error(
        Status::InvalidArgument("add_rule needs a rule fragment"));
  }
  auto tenant = ReadyTenant(request);
  if (!tenant.ok()) return comm::Response::Error(tenant.status());
  auto result = (*tenant)->SubmitAddRule(body);
  if (!result.ok()) return comm::Response::Error(result.status());
  comm::Response response;
  response.body = std::move(result).value();
  return response;
}

comm::Response Dispatcher::HandleRetractRule(
    const comm::Request& request) const {
  const auto& body = std::get<comm::RetractRuleRequest>(request.body);
  if (body.label.empty()) {
    return comm::Response::Error(
        Status::InvalidArgument("retract_rule needs a label"));
  }
  auto tenant = ReadyTenant(request);
  if (!tenant.ok()) return comm::Response::Error(tenant.status());
  auto result = (*tenant)->SubmitRetractRule(body);
  if (!result.ok()) return comm::Response::Error(result.status());
  comm::Response response;
  response.body = std::move(result).value();
  return response;
}

comm::Response Dispatcher::HandleMine(const comm::Request& request) const {
  const auto& body = std::get<comm::MineRequest>(request.body);
  auto tenant = ReadyTenant(request);
  if (!tenant.ok()) return comm::Response::Error(tenant.status());
  auto result = (*tenant)->SubmitMine(body);
  if (!result.ok()) return comm::Response::Error(result.status());
  comm::Response response;
  response.body = std::move(result).value();
  return response;
}

comm::Response Dispatcher::HandleShutdown(const comm::Request&) const {
  if (shutdown_callback_) shutdown_callback_();
  comm::Response response;
  response.message = "draining";
  return response;
}

}  // namespace deepdive::serve::handlers
