#include "storage/text_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace deepdive {

namespace {

StatusOr<Value> ParseField(const Column& column, const std::string& field) {
  if (field == "\\N") return Value::Null();
  switch (column.type) {
    case ValueType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("column '" + column.name +
                                       "': not an int: '" + field + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("column '" + column.name +
                                       "': not a double: '" + field + "'");
      }
      return Value(v);
    }
    case ValueType::kBool:
      if (field == "true" || field == "t" || field == "1") return Value(true);
      if (field == "false" || field == "f" || field == "0") return Value(false);
      return Status::InvalidArgument("column '" + column.name + "': not a bool: '" +
                                     field + "'");
    case ValueType::kString:
      return Value(field);
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unhandled column type");
}

std::vector<std::string> SplitTsv(const std::string& line) {
  // Unlike SplitString, empty fields are preserved.
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

StatusOr<Tuple> ParseTsvLine(const Schema& schema, const std::string& line) {
  const std::vector<std::string> fields = SplitTsv(line);
  if (fields.size() != schema.arity()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu fields, got %zu in line: %s", schema.arity(),
                  fields.size(), line.c_str()));
  }
  Tuple tuple;
  tuple.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    DD_ASSIGN_OR_RETURN(Value v, ParseField(schema.column(i), fields[i]));
    tuple.push_back(std::move(v));
  }
  return tuple;
}

namespace {

StatusOr<size_t> LoadTsvStream(std::istream& in, Table* table) {
  size_t inserted = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto tuple = ParseTsvLine(table->schema(), line);
    if (!tuple.ok()) {
      return Status::InvalidArgument(StrFormat("line %zu: %s", line_number,
                                               tuple.status().message().c_str()));
    }
    const size_t before = table->size();
    DD_RETURN_IF_ERROR(table->Insert(std::move(tuple).value()).status());
    if (table->size() > before) ++inserted;
  }
  return inserted;
}

}  // namespace

StatusOr<size_t> LoadTsvFile(const std::string& path, Table* table) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return LoadTsvStream(in, table);
}

StatusOr<size_t> LoadTsvString(const std::string& content, Table* table) {
  std::istringstream in(content);
  return LoadTsvStream(in, table);
}

StatusOr<std::string> FormatTsvLine(const Tuple& tuple) {
  std::string out;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i) out += '\t';
    if (tuple[i].is_null()) {
      out += "\\N";
      continue;
    }
    const std::string field = tuple[i].ToString();
    if (field.find('\t') != std::string::npos ||
        field.find('\n') != std::string::npos) {
      return Status::InvalidArgument("field contains tab/newline: " + field);
    }
    out += field;
  }
  return out;
}

StatusOr<std::string> FormatMarginalLine(double marginal, const Tuple& tuple) {
  DD_ASSIGN_OR_RETURN(std::string cols, FormatTsvLine(tuple));
  return StrFormat("%.6f\t%s", marginal, cols.c_str());
}

Status DumpTsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  Status status = Status::OK();
  table.Scan([&](RowId, const Tuple& tuple) {
    if (!status.ok()) return;
    auto line = FormatTsvLine(tuple);
    if (!line.ok()) {
      status = line.status();
      return;
    }
    out << *line << '\n';
  });
  if (status.ok() && !out) status = Status::Internal("write to '" + path + "' failed");
  return status;
}

}  // namespace deepdive
