#ifndef DEEPDIVE_STORAGE_TEXT_IO_H_
#define DEEPDIVE_STORAGE_TEXT_IO_H_

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"
#include "util/status.h"

namespace deepdive {

/// Parses one tab-separated line into a tuple under `schema`. Fields are
/// converted by column type; the literal `\N` is NULL. Errors carry the
/// column name.
StatusOr<Tuple> ParseTsvLine(const Schema& schema, const std::string& line);

/// Loads tab-separated rows from `path` into `table` (one row per line,
/// empty lines and `#` comments skipped). Returns the number of rows
/// inserted (duplicates are counted once, set semantics).
StatusOr<size_t> LoadTsvFile(const std::string& path, Table* table);

/// Parses TSV content from a string (testing / in-memory use).
StatusOr<size_t> LoadTsvString(const std::string& content, Table* table);

/// Renders a tuple as a TSV line (strings are written verbatim; they must
/// not contain tabs or newlines — validated).
StatusOr<std::string> FormatTsvLine(const Tuple& tuple);

/// Renders the marginal-export line "<marginal>\t<cols...>" — the format
/// shared by the CLI --output writer and the ResultView TSV exporter
/// (incremental::WriteRelationTsv).
StatusOr<std::string> FormatMarginalLine(double marginal, const Tuple& tuple);

/// Writes all rows of `table` to `path` as TSV.
Status DumpTsvFile(const Table& table, const std::string& path);

}  // namespace deepdive

#endif  // DEEPDIVE_STORAGE_TEXT_IO_H_
