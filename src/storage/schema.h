#ifndef DEEPDIVE_STORAGE_SCHEMA_H_
#define DEEPDIVE_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace deepdive {

/// One column: a name plus its declared type.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered column list for a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t arity() const { return columns_.size(); }
  /// Schemas are immutable after construction; references are safe wherever
  /// the schema is.
  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the named column, or -1.
  int FindColumn(const std::string& name) const;

  /// Verifies a tuple's arity and per-column types (nulls allowed anywhere).
  Status ValidateTuple(const Tuple& tuple) const;

  bool operator==(const Schema& other) const { return columns_ == other.columns_; }

  /// e.g. "(sent_id: int, mention: string)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace deepdive

#endif  // DEEPDIVE_STORAGE_SCHEMA_H_
