#include "storage/database.h"

#include <algorithm>

namespace deepdive {

StatusOr<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  names_.push_back(name);
  return ptr;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  tables_.erase(it);
  names_.erase(std::remove(names_.begin(), names_.end(), name), names_.end());
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table->size();
  return total;
}

}  // namespace deepdive
