#ifndef DEEPDIVE_STORAGE_VALUE_H_
#define DEEPDIVE_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/hash.h"

namespace deepdive {

/// Column types supported by the relational substrate. KBC schemas use
/// integers for ids, strings for mentions/features, doubles for scores.
enum class ValueType { kNull = 0, kBool, kInt, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// A single typed cell. Small, copyable, hashable, totally ordered within a
/// type (cross-type comparison orders by type tag, which gives tables a
/// deterministic sort order).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(int i) : rep_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  /// Aliases this Value; Values are value types owned by one thread (or
  /// frozen inside an immutable ResultView).
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return rep_ != other.rep_; }
  bool operator<(const Value& other) const;

  uint64_t Hash() const;

  /// Debug/CSV rendering; strings are not quoted.
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

uint64_t HashTuple(const Tuple& tuple);
std::string TupleToString(const Tuple& tuple);

}  // namespace deepdive

#endif  // DEEPDIVE_STORAGE_VALUE_H_
