#include "storage/schema.h"

#include "util/string_util.h"

namespace deepdive {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu does not match schema arity %zu", tuple.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    if (tuple[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          StrFormat("column '%s' expects %s but tuple has %s", columns_[i].name.c_str(),
                    ValueTypeName(columns_[i].type), ValueTypeName(tuple[i].type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ": ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace deepdive
