#include "storage/delta_table.h"

#include "util/hash.h"

namespace deepdive {

uint64_t DeltaTable::KeyFor(const Tuple& tuple) const {
  // Open-addressing over the hash value: advance until we find either an
  // empty slot or the slot holding exactly this tuple. Collisions are rare;
  // the loop nearly always exits on the first probe.
  uint64_t key = HashTuple(tuple);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.tuple == tuple) return key;
    key = HashMix(key + 1);
  }
}

void DeltaTable::Add(const Tuple& tuple, int64_t count) {
  if (count == 0) return;
  const uint64_t key = KeyFor(tuple);
  auto it = entries_.find(key);
  int64_t old_count = 0;
  int64_t new_count = count;
  if (it == entries_.end()) {
    entries_.emplace(key, Entry{tuple, count});
  } else {
    // Zero-count entries are kept (not erased) so probe chains built by
    // KeyFor stay intact; ForEach/size skip them.
    old_count = it->second.count;
    it->second.count += count;
    new_count = it->second.count;
  }
  if ((old_count < 0) != (new_count < 0)) {
    if (new_count < 0) {
      ++negative_entries_;
    } else {
      --negative_entries_;
    }
  }
}

int64_t DeltaTable::Count(const Tuple& tuple) const {
  uint64_t key = HashTuple(tuple);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return 0;
    if (it->second.tuple == tuple) return it->second.count;
    key = HashMix(key + 1);
  }
}

bool DeltaTable::empty() const { return size() == 0; }

size_t DeltaTable::size() const {
  size_t n = 0;
  // analysis:allow(determinism-unordered): pure count — the fold is
  // commutative, so visit order cannot reach the result.
  for (const auto& [_, entry] : entries_) {
    if (entry.count != 0) ++n;
  }
  return n;
}

std::vector<Tuple> DeltaTable::Insertions() const {
  std::vector<Tuple> out;
  ForEachOrdered([&](const Tuple& t, int64_t c) {
    if (c > 0) out.push_back(t);
  });
  return out;
}

std::vector<Tuple> DeltaTable::Deletions() const {
  std::vector<Tuple> out;
  ForEachOrdered([&](const Tuple& t, int64_t c) {
    if (c < 0) out.push_back(t);
  });
  return out;
}

}  // namespace deepdive
