#ifndef DEEPDIVE_STORAGE_DELTA_TABLE_H_
#define DEEPDIVE_STORAGE_DELTA_TABLE_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace deepdive {

/// A counted multiset of tuples: the DRed "delta relation" R^δ of [21].
/// Each tuple carries a signed derivation-count change; +k means the tuple
/// gained k derivations, -k lost k. DRed view maintenance (engine/
/// view_maintenance) folds these into per-view derivation counts and decides
/// which tuples appear in / disappear from the view.
class DeltaTable {
 public:
  DeltaTable() = default;
  explicit DeltaTable(std::string name) : name_(std::move(name)) {}

  /// Immutable after construction; the table itself is single-owner state
  /// of the serving thread's view-maintenance pass.
  const std::string& name() const { return name_; }

  /// Adds `count` derivations for the tuple (negative for removals).
  void Add(const Tuple& tuple, int64_t count = 1);

  /// Signed count for a tuple (0 if absent).
  int64_t Count(const Tuple& tuple) const;

  bool empty() const;

  /// Distinct tuples with non-zero count.
  size_t size() const;

  /// Distinct tuples with negative count (O(1); maintained by Add). The
  /// sharded grounder sizes OLD-mode driver domains with this.
  size_t DeletionEntries() const { return negative_entries_; }

  /// Visits every (tuple, count) pair with count != 0, in hash-table order.
  /// For commutative folds only (count accumulation, set insertion); any
  /// consumer whose *output* depends on visit order (variable enumeration,
  /// emission) must use ForEachOrdered instead.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    // analysis:allow(determinism-unordered): visit order is unordered by
    // contract; order-sensitive consumers are required to use ForEachOrdered.
    for (const auto& [key, entry] : entries_) {
      (void)key;
      if (entry.count != 0) fn(entry.tuple, entry.count);
    }
  }

  /// Visits every (tuple, count) pair with count != 0 in tuple order —
  /// deterministic regardless of hash layout. O(n log n); the blessed
  /// helper for order-sensitive consumers.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    std::vector<const Entry*> ordered;
    ordered.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      (void)key;
      if (entry.count != 0) ordered.push_back(&entry);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) { return a->tuple < b->tuple; });
    for (const Entry* e : ordered) fn(e->tuple, e->count);
  }

  /// Splits into insertion-side (count>0) and deletion-side (count<0) tuples.
  std::vector<Tuple> Insertions() const;
  std::vector<Tuple> Deletions() const;

  void Clear() {
    entries_.clear();
    negative_entries_ = 0;
  }

 private:
  struct Entry {
    Tuple tuple;
    int64_t count = 0;
  };
  // Keyed by tuple hash; collisions resolved by probing alternate keys.
  std::unordered_map<uint64_t, Entry> entries_;

  uint64_t KeyFor(const Tuple& tuple) const;

  std::string name_;
  size_t negative_entries_ = 0;
};

}  // namespace deepdive

#endif  // DEEPDIVE_STORAGE_DELTA_TABLE_H_
