#ifndef DEEPDIVE_STORAGE_TABLE_H_
#define DEEPDIVE_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace deepdive {

/// Row identifier within a table. Stable for the lifetime of the row.
using RowId = uint32_t;
inline constexpr RowId kInvalidRowId = static_cast<RowId>(-1);

/// In-memory relation with set semantics: a row store plus
///   * a whole-tuple hash index (duplicate elimination, point deletes), and
///   * lazily built per-column hash indexes used by the join evaluator.
///
/// Deletions tombstone the row; Scan and index probes skip tombstones. This is
/// the Postgres stand-in described in DESIGN.md §4.2.
class Table {
 public:
  Table(std::string name, Schema schema);

  /// Name and schema are immutable after construction; row storage below is
  /// serving-thread state like the Database that owns the table.
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Inserts a tuple. Returns the new RowId, or the existing row's id if the
  /// tuple is already present (set semantics). Error on schema mismatch.
  StatusOr<RowId> Insert(Tuple tuple);

  /// Returns true iff the tuple was present (and is now removed).
  bool Erase(const Tuple& tuple);

  /// True if the tuple is present.
  bool Contains(const Tuple& tuple) const;

  /// Row id of an existing tuple, or kInvalidRowId.
  RowId Find(const Tuple& tuple) const;

  /// The tuple stored at `id`; id must refer to a live row. Aliases row
  /// storage: serving-thread only, invalidated by compaction.
  const Tuple& row(RowId id) const;

  bool IsLive(RowId id) const { return id < rows_.size() && !dead_[id]; }

  /// Calls `fn` for every live row.
  void Scan(const std::function<void(RowId, const Tuple&)>& fn) const;

  /// Number of row slots, live or dead. The scan domain of ScanRange: shard
  /// boundaries are expressed in slots so contiguous shards tile the table
  /// deterministically regardless of tombstones.
  size_t RowSlots() const { return rows_.size(); }

  /// Calls `fn` for every live row with id in [begin, end).
  void ScanRange(RowId begin, RowId end,
                 const std::function<void(RowId, const Tuple&)>& fn) const;

  /// Builds the per-column index for `col` if not yet built. Lookup does this
  /// lazily; call it up front before probing the same table from multiple
  /// threads (index construction is not thread-safe, probing a built one is).
  void WarmColumnIndex(size_t col) const { EnsureColumnIndex(col); }

  /// All live rows, in insertion order (copy).
  std::vector<Tuple> Rows() const;

  /// Probes the per-column index: ids of live rows whose `col` equals `v`.
  /// Builds the index on first use for that column.
  std::vector<RowId> Lookup(size_t col, const Value& v) const;

  /// Removes all rows.
  void Clear();

 private:
  void EnsureColumnIndex(size_t col) const;

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<bool> dead_;
  size_t live_count_ = 0;

  // Whole-tuple index: hash -> row ids with that hash (collision chains).
  std::unordered_map<uint64_t, std::vector<RowId>> tuple_index_;

  // Per-column indexes (built lazily, invalidated on delete only via the
  // liveness filter in Lookup). value-hash -> row ids.
  mutable std::vector<std::unordered_map<uint64_t, std::vector<RowId>>> column_indexes_;
  mutable std::vector<bool> column_index_built_;
};

}  // namespace deepdive

#endif  // DEEPDIVE_STORAGE_TABLE_H_
