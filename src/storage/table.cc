#include "storage/table.h"

#include <algorithm>

#include "util/logging.h"

namespace deepdive {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  column_indexes_.resize(schema_.arity());
  column_index_built_.assign(schema_.arity(), false);
}

StatusOr<RowId> Table::Insert(Tuple tuple) {
  DD_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  const uint64_t h = HashTuple(tuple);
  auto it = tuple_index_.find(h);
  if (it != tuple_index_.end()) {
    for (RowId id : it->second) {
      if (!dead_[id] && rows_[id] == tuple) return id;  // already present
    }
  }
  const RowId id = static_cast<RowId>(rows_.size());
  tuple_index_[h].push_back(id);
  // Maintain any already-built column indexes before moving the tuple in.
  for (size_t c = 0; c < schema_.arity(); ++c) {
    if (column_index_built_[c]) {
      column_indexes_[c][tuple[c].Hash()].push_back(id);
    }
  }
  rows_.push_back(std::move(tuple));
  dead_.push_back(false);
  ++live_count_;
  return id;
}

bool Table::Erase(const Tuple& tuple) {
  const RowId id = Find(tuple);
  if (id == kInvalidRowId) return false;
  dead_[id] = true;
  --live_count_;
  return true;
}

bool Table::Contains(const Tuple& tuple) const { return Find(tuple) != kInvalidRowId; }

RowId Table::Find(const Tuple& tuple) const {
  auto it = tuple_index_.find(HashTuple(tuple));
  if (it == tuple_index_.end()) return kInvalidRowId;
  for (RowId id : it->second) {
    if (!dead_[id] && rows_[id] == tuple) return id;
  }
  return kInvalidRowId;
}

const Tuple& Table::row(RowId id) const {
  DD_CHECK(IsLive(id)) << "dead or out-of-range row " << id << " in " << name_;
  return rows_[id];
}

void Table::Scan(const std::function<void(RowId, const Tuple&)>& fn) const {
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!dead_[id]) fn(id, rows_[id]);
  }
}

void Table::ScanRange(RowId begin, RowId end,
                      const std::function<void(RowId, const Tuple&)>& fn) const {
  const RowId limit = std::min<RowId>(end, static_cast<RowId>(rows_.size()));
  for (RowId id = begin; id < limit; ++id) {
    if (!dead_[id]) fn(id, rows_[id]);
  }
}

std::vector<Tuple> Table::Rows() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!dead_[id]) out.push_back(rows_[id]);
  }
  return out;
}

void Table::EnsureColumnIndex(size_t col) const {
  if (column_index_built_[col]) return;
  auto& index = column_indexes_[col];
  index.clear();
  for (RowId id = 0; id < rows_.size(); ++id) {
    index[rows_[id][col].Hash()].push_back(id);
  }
  column_index_built_[col] = true;
}

std::vector<RowId> Table::Lookup(size_t col, const Value& v) const {
  DD_CHECK_LT(col, schema_.arity());
  EnsureColumnIndex(col);
  std::vector<RowId> out;
  auto it = column_indexes_[col].find(v.Hash());
  if (it != column_indexes_[col].end()) {
    for (RowId id : it->second) {
      if (!dead_[id] && rows_[id][col] == v) out.push_back(id);
    }
  }
  return out;
}

void Table::Clear() {
  rows_.clear();
  dead_.clear();
  live_count_ = 0;
  tuple_index_.clear();
  for (auto& idx : column_indexes_) idx.clear();
  column_index_built_.assign(schema_.arity(), false);
}

}  // namespace deepdive
