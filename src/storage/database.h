#ifndef DEEPDIVE_STORAGE_DATABASE_H_
#define DEEPDIVE_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace deepdive {

/// A named collection of tables: the "user schema" of a DeepDive program.
/// Pointers returned by GetTable remain valid for the database's lifetime.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table. Error if the name is taken.
  StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Looks up a table by name; nullptr if absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  /// Drops a table. Error if absent.
  Status DropTable(const std::string& name);

  /// Names of all tables, in creation order.
  std::vector<std::string> TableNames() const { return names_; }

  /// Total live rows across all tables.
  size_t TotalRows() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> names_;
};

}  // namespace deepdive

#endif  // DEEPDIVE_STORAGE_DATABASE_H_
