#include "storage/value.h"

#include <cmath>

#include "util/string_util.h"

namespace deepdive {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (rep_.index() != other.rep_.index()) return rep_.index() < other.rep_.index();
  return rep_ < other.rep_;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6eed0e9da4d94a4fULL;
    case ValueType::kBool:
      return HashMix(AsBool() ? 0x2545f491ULL : 0x9e3779b9ULL);
    case ValueType::kInt:
      return HashMix(static_cast<uint64_t>(AsInt()) + 0x51afd7edULL);
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashMix(bits + 0xc4ceb9feULL);
    }
    case ValueType::kString:
      return HashString(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return StrFormat("%g", AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

uint64_t HashTuple(const Tuple& tuple) { return TupleHash{}(tuple); }

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace deepdive
