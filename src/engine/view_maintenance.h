#ifndef DEEPDIVE_ENGINE_VIEW_MAINTENANCE_H_
#define DEEPDIVE_ENGINE_VIEW_MAINTENANCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsl/program.h"
#include "engine/rule_evaluator.h"
#include "storage/database.h"
#include "storage/delta_table.h"
#include "util/status.h"

namespace deepdive::engine {

/// Set-level changes per relation: count +1 = tuple appeared, -1 = vanished.
using RelationDeltas = std::map<std::string, DeltaTable>;

/// Incremental maintenance of the deductive (candidate-generation /
/// supervision) layer via the counting/DRed algorithm of Gupta, Mumick &
/// Subrahmanian [21], as used by DeepDive (Section 3.1): every relation keeps
/// per-tuple derivation counts; "delta rules" (CompiledRuleBody::
/// EvaluateDelta) compute exactly the derivations gained/lost, and a tuple
/// enters/leaves its table when the count crosses zero. The rule set must be
/// non-recursive (KBC pipelines are); Initialize errors on cycles.
class ViewMaintainer {
 public:
  /// `db` must contain a table per program relation; both must outlive this.
  ViewMaintainer(const dsl::Program* program, Database* db);

  /// Compiles the program's deductive rules, absorbs pre-existing rows as
  /// external derivations (count 1), and evaluates all rules to fixpoint in
  /// topological order.
  Status Initialize();

  /// Applies external data changes (count-level; tables not yet modified by
  /// the caller) and propagates through all rules. Returns the set-level
  /// delta of every relation that changed. Tables are updated in place.
  StatusOr<RelationDeltas> ApplyUpdate(const RelationDeltas& external_deltas);

  /// Adds a deductive rule to the running system: evaluates it fully over
  /// the current state and propagates the new derivations downstream.
  /// Returns the set-level deltas.
  StatusOr<RelationDeltas> AddRule(const dsl::DeductiveRule& rule);

  /// Removes a previously added rule (by label), retracting its derivations.
  StatusOr<RelationDeltas> RemoveRule(const std::string& label);

  /// Re-reads the (shared) program's relation list — call after new
  /// relations were merged in, so updates targeting them propagate.
  Status RefreshRelations();

  /// Current derivation count of a tuple (0 if absent). Exposed for tests.
  int64_t DerivationCount(const std::string& relation, const Tuple& tuple) const;

  size_t NumRules() const { return rules_.size(); }

 private:
  struct MaintainedRule {
    dsl::DeductiveRule rule;
    CompiledRuleBody body;
  };

  /// Core pass shared by Initialize/ApplyUpdate/AddRule/RemoveRule: walks
  /// relations in topological order; for each relation folds (a) external
  /// count deltas, (b) delta-rule evaluation against upstream set deltas,
  /// (c) full evaluation of `full_rules` with the given sign.
  StatusOr<RelationDeltas> Propagate(const RelationDeltas& external_deltas,
                                     const std::vector<size_t>& full_rules,
                                     int64_t full_sign);

  Status CompileRule(const dsl::DeductiveRule& rule);
  Status RecomputeTopoOrder();

  /// Folds accumulated count changes for `relation` into counts_, applies
  /// table inserts/erases, and records set-level transitions in `out`.
  Status FoldCounts(const std::string& relation, const DeltaTable& count_delta,
                    RelationDeltas* out);

  const dsl::Program* program_;
  Database* db_;
  std::vector<MaintainedRule> rules_;
  std::map<std::string, DeltaTable> counts_;   // relation -> tuple -> #derivations
  std::vector<std::string> topo_order_;        // relations, upstream first
  bool initialized_ = false;
};

}  // namespace deepdive::engine

#endif  // DEEPDIVE_ENGINE_VIEW_MAINTENANCE_H_
