#ifndef DEEPDIVE_ENGINE_RULE_EVALUATOR_H_
#define DEEPDIVE_ENGINE_RULE_EVALUATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "dsl/program.h"
#include "storage/database.h"
#include "storage/delta_table.h"
#include "util/status.h"

namespace deepdive::engine {

/// Callback invoked once per derivation. `values` holds the binding of every
/// rule variable (indexed by the compiled slot map); `sign` is +1 for a
/// derivation gained, -1 for one lost (always +1 in full evaluation).
using BindingCallback =
    std::function<void(const std::vector<Value>& values, int64_t sign)>;

/// A compiled conjunctive rule body: atoms bound to tables, variables mapped
/// to slots. Supports
///   * full evaluation (all derivations over the current database), and
///   * delta evaluation: given per-relation set-level deltas, enumerates
///     exactly the derivations gained/lost, using the standard telescoping
///     expansion  Join(N...) - Join(O...) = sum_j N..N Δ_j O..O
///     which is the "delta rule" evaluation of DRed/counting [21] and
///     handles self-joins (e.g. rule R1 of Example 2.2) correctly.
///
/// The compiled body holds Table pointers; it must be recompiled if tables
/// are dropped/recreated (not merely mutated).
class CompiledRuleBody {
 public:
  static StatusOr<CompiledRuleBody> Compile(const dsl::Program& program,
                                            const Database& db,
                                            const std::vector<dsl::Atom>& body,
                                            const std::vector<dsl::Condition>& conditions);

  /// Slot index for each variable name appearing in the body.
  const std::map<std::string, int>& var_slots() const { return var_slots_; }
  size_t num_slots() const { return var_slots_.size(); }

  /// Enumerates all derivations in the current database state.
  void EvaluateFull(const BindingCallback& fn) const;

  /// Enumerates derivations gained/lost given set-level deltas (count sign
  /// +1 = tuple appeared, -1 = disappeared) for some body relations. Tables
  /// must already be in the NEW state (deltas applied). Relations absent
  /// from `deltas` are treated as unchanged. Errors if a negated atom's
  /// relation changed (unsupported).
  Status EvaluateDelta(const std::map<std::string, const DeltaTable*>& deltas,
                       const BindingCallback& fn) const;

 private:
  struct TermPlan {
    bool is_var = false;
    int slot = -1;       // if is_var
    Value constant;      // if !is_var
  };
  struct AtomPlan {
    const Table* table = nullptr;
    std::string relation;
    bool negated = false;
    std::vector<TermPlan> terms;
  };
  struct CondPlan {
    TermPlan lhs;
    dsl::CompareOp op = dsl::CompareOp::kEq;
    TermPlan rhs;
  };

  enum class AtomMode { kCurrent, kOld, kDelta };

  void Recurse(size_t atom_idx, std::vector<Value>* values, std::vector<bool>* bound,
               int64_t sign, const std::vector<AtomMode>& modes,
               const std::vector<const DeltaTable*>& atom_deltas,
               const BindingCallback& fn) const;

  /// Tries to bind the atom's terms against `tuple`; returns false on
  /// mismatch. Appends newly bound slots to `newly_bound`.
  bool MatchTuple(const AtomPlan& atom, const Tuple& tuple, std::vector<Value>* values,
                  std::vector<bool>* bound, std::vector<int>* newly_bound) const;

  bool ConditionsHold(const std::vector<Value>& values) const;

  bool TupleInOld(const AtomPlan& atom, const DeltaTable* delta,
                  const Tuple& tuple) const;

  std::vector<AtomPlan> atoms_;
  std::vector<CondPlan> conditions_;
  std::map<std::string, int> var_slots_;
};

/// Evaluates a comparison between two concrete values.
bool EvalCompare(dsl::CompareOp op, const Value& lhs, const Value& rhs);

/// Projects rule-head terms from a full variable binding.
Tuple ProjectHead(const std::vector<dsl::Term>& head_terms,
                  const std::map<std::string, int>& slots,
                  const std::vector<Value>& values);

}  // namespace deepdive::engine

#endif  // DEEPDIVE_ENGINE_RULE_EVALUATOR_H_
