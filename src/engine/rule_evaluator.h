#ifndef DEEPDIVE_ENGINE_RULE_EVALUATOR_H_
#define DEEPDIVE_ENGINE_RULE_EVALUATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "dsl/program.h"
#include "storage/database.h"
#include "storage/delta_table.h"
#include "util/status.h"

namespace deepdive::engine {

/// Callback invoked once per derivation. `values` holds the binding of every
/// rule variable (indexed by the compiled slot map); `sign` is +1 for a
/// derivation gained, -1 for one lost (always +1 in full evaluation).
using BindingCallback =
    std::function<void(const std::vector<Value>& values, int64_t sign)>;

/// A compiled conjunctive rule body: atoms bound to tables, variables mapped
/// to slots. Supports
///   * full evaluation (all derivations over the current database), and
///   * delta evaluation: given per-relation set-level deltas, enumerates
///     exactly the derivations gained/lost, using the standard telescoping
///     expansion  Join(N...) - Join(O...) = sum_j N..N Δ_j O..O
///     which is the "delta rule" evaluation of DRed/counting [21] and
///     handles self-joins (e.g. rule R1 of Example 2.2) correctly.
///
/// The compiled body holds Table pointers; it must be recompiled if tables
/// are dropped/recreated (not merely mutated).
class CompiledRuleBody {
 public:
  static StatusOr<CompiledRuleBody> Compile(const dsl::Program& program,
                                            const Database& db,
                                            const std::vector<dsl::Atom>& body,
                                            const std::vector<dsl::Condition>& conditions);

  /// Slot index for each variable name appearing in the body. Immutable
  /// after construction; the evaluator itself is used single-threaded.
  const std::map<std::string, int>& var_slots() const { return var_slots_; }
  size_t num_slots() const { return var_slots_.size(); }

  /// Enumerates all derivations in the current database state.
  void EvaluateFull(const BindingCallback& fn) const;

  /// Enumerates derivations gained/lost given set-level deltas (count sign
  /// +1 = tuple appeared, -1 = disappeared) for some body relations. Tables
  /// must already be in the NEW state (deltas applied). Relations absent
  /// from `deltas` are treated as unchanged. Errors if a negated atom's
  /// relation changed (unsupported).
  Status EvaluateDelta(const std::map<std::string, const DeltaTable*>& deltas,
                       const BindingCallback& fn) const;

  // ---- sharded evaluation ----
  //
  // The driver atom (first body atom) defines a scan domain that can be
  // partitioned into contiguous ranges; evaluating each range independently
  // and concatenating the results in range order reproduces the sequential
  // enumeration exactly. This is what lets the grounder run shards on a
  // thread pool and still build a bit-identical graph.

  /// True when the driver atom has a constant term: the sequential
  /// recursion then probes the driver's column index (O(matching rows)),
  /// which usually beats a sharded full scan — callers should prefer the
  /// sequential path for such bodies.
  bool DriverHasConstantTerm() const;

  /// Size of the full-evaluation driver domain (the driver table's row-slot
  /// count), or 0 if the body is not shardable (empty or negation-only).
  size_t FullDriverDomain() const;

  /// Enumerates exactly the derivations whose driver row-slot falls in
  /// [begin, end). EvaluateFull == EvaluateFullRange(0, FullDriverDomain()).
  /// Thread-safe against concurrent ranges once PrewarmIndexes() has run.
  void EvaluateFullRange(size_t begin, size_t end, const BindingCallback& fn) const;

  /// Precomputed state for one EvaluateDelta call: the telescoping terms plus
  /// (for the sharded path) the driver atom's materialized delta entries.
  struct DeltaEvalPlan {
    std::vector<size_t> delta_positions;
    std::vector<const DeltaTable*> atom_deltas;
    /// Driver-atom delta entries / deletions in ForEach order, filled by
    /// MaterializeDriverDelta. Only the indexed range evaluation needs them
    /// (sequential term evaluation iterates the delta table directly).
    std::vector<std::pair<Tuple, int64_t>> driver_entries;
    std::vector<Tuple> driver_deletions;
    bool driver_materialized = false;
    size_t num_terms() const { return delta_positions.size(); }
  };

  /// Builds the telescoping-evaluation plan (same validation as
  /// EvaluateDelta: errors on a changed negated relation).
  StatusOr<DeltaEvalPlan> PlanDeltaEvaluation(
      const std::map<std::string, const DeltaTable*>& deltas) const;

  /// Copies the driver atom's delta entries into the plan so range
  /// evaluation can index them. Required before EvaluateDeltaTermRange /
  /// DeltaTermDomain when the driver is on a changed relation; idempotent.
  void MaterializeDriverDelta(DeltaEvalPlan* plan) const;

  /// Driver-domain size of one telescoping term, or 0 if not shardable.
  size_t DeltaTermDomain(const DeltaEvalPlan& plan, size_t term) const;

  /// Sequential evaluation of one telescoping term (the whole driver
  /// domain), via the recursion that probes the driver's column index when
  /// it has a constant term. Enumeration order equals
  /// EvaluateDeltaTermRange(plan, term, 0, DeltaTermDomain(plan, term)).
  void EvaluateDeltaTerm(const DeltaEvalPlan& plan, size_t term,
                         const BindingCallback& fn) const;

  /// Enumerates term `term`'s derivations with driver index in [begin, end).
  /// Covering [0, DeltaTermDomain()) for every term in order reproduces
  /// EvaluateDelta exactly.
  void EvaluateDeltaTermRange(const DeltaEvalPlan& plan, size_t term, size_t begin,
                              size_t end, const BindingCallback& fn) const;

  /// Builds every column index the evaluation will probe. Call before
  /// evaluating ranges concurrently: index construction is lazy and not
  /// thread-safe, but probing built indexes is.
  void PrewarmIndexes() const;

 private:
  struct TermPlan {
    bool is_var = false;
    int slot = -1;       // if is_var
    Value constant;      // if !is_var
  };
  struct AtomPlan {
    const Table* table = nullptr;
    std::string relation;
    bool negated = false;
    std::vector<TermPlan> terms;
  };
  struct CondPlan {
    TermPlan lhs;
    dsl::CompareOp op = dsl::CompareOp::kEq;
    TermPlan rhs;
  };

  enum class AtomMode { kCurrent, kOld, kDelta };

  void Recurse(size_t atom_idx, std::vector<Value>* values, std::vector<bool>* bound,
               int64_t sign, const std::vector<AtomMode>& modes,
               const std::vector<const DeltaTable*>& atom_deltas,
               const BindingCallback& fn) const;

  /// True when the driver atom can be enumerated by domain index (non-empty
  /// body whose first atom is positive).
  bool DriverShardable() const { return !atoms_.empty() && !atoms_[0].negated; }

  /// Per-atom modes of telescoping term `term`: positions at telescoping
  /// index < term evaluate NEW, == term DELTA, > term OLD. The single source
  /// of truth for the mode convention (DeltaTermDomain must agree with it).
  std::vector<AtomMode> TermModes(const DeltaEvalPlan& plan, size_t term) const;

  /// Enumerates driver-atom matches with domain index in [begin, end) under
  /// `mode`, recursing into the remaining atoms for each.
  void RecurseDriverRange(size_t begin, size_t end, AtomMode driver_mode,
                          const std::vector<std::pair<Tuple, int64_t>>* driver_entries,
                          const std::vector<Tuple>* driver_deletions,
                          const std::vector<AtomMode>& modes,
                          const std::vector<const DeltaTable*>& atom_deltas,
                          const BindingCallback& fn) const;

  /// Tries to bind the atom's terms against `tuple`; returns false on
  /// mismatch. Appends newly bound slots to `newly_bound`.
  bool MatchTuple(const AtomPlan& atom, const Tuple& tuple, std::vector<Value>* values,
                  std::vector<bool>* bound, std::vector<int>* newly_bound) const;

  bool ConditionsHold(const std::vector<Value>& values) const;

  bool TupleInOld(const AtomPlan& atom, const DeltaTable* delta,
                  const Tuple& tuple) const;

  std::vector<AtomPlan> atoms_;
  std::vector<CondPlan> conditions_;
  std::map<std::string, int> var_slots_;
};

/// Evaluates a comparison between two concrete values.
bool EvalCompare(dsl::CompareOp op, const Value& lhs, const Value& rhs);

/// Projects rule-head terms from a full variable binding.
Tuple ProjectHead(const std::vector<dsl::Term>& head_terms,
                  const std::map<std::string, int>& slots,
                  const std::vector<Value>& values);

}  // namespace deepdive::engine

#endif  // DEEPDIVE_ENGINE_RULE_EVALUATOR_H_
