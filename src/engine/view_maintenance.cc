#include "engine/view_maintenance.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace deepdive::engine {

ViewMaintainer::ViewMaintainer(const dsl::Program* program, Database* db)
    : program_(program), db_(db) {}

Status ViewMaintainer::CompileRule(const dsl::DeductiveRule& rule) {
  DD_ASSIGN_OR_RETURN(CompiledRuleBody body, CompiledRuleBody::Compile(
                                                 *program_, *db_, rule.body,
                                                 rule.conditions));
  rules_.push_back(MaintainedRule{rule, std::move(body)});
  return Status::OK();
}

Status ViewMaintainer::RecomputeTopoOrder() {
  // Dependency edges: body relation -> head relation.
  std::map<std::string, std::set<std::string>> out_edges;
  std::map<std::string, int> in_degree;
  for (const dsl::RelationDecl& r : program_->relations()) in_degree[r.name] = 0;
  for (const MaintainedRule& mr : rules_) {
    for (const dsl::Atom& atom : mr.rule.body) {
      if (atom.predicate == mr.rule.head.predicate) {
        return Status::InvalidArgument("recursive rule through '" + atom.predicate +
                                       "' is not supported");
      }
      if (out_edges[atom.predicate].insert(mr.rule.head.predicate).second) {
        ++in_degree[mr.rule.head.predicate];
      }
    }
  }
  topo_order_.clear();
  std::vector<std::string> frontier;
  for (const dsl::RelationDecl& r : program_->relations()) {
    if (in_degree[r.name] == 0) frontier.push_back(r.name);
  }
  while (!frontier.empty()) {
    std::string rel = frontier.back();
    frontier.pop_back();
    topo_order_.push_back(rel);
    for (const std::string& next : out_edges[rel]) {
      if (--in_degree[next] == 0) frontier.push_back(next);
    }
  }
  if (topo_order_.size() != program_->relations().size()) {
    return Status::InvalidArgument("deductive rules contain a cycle");
  }
  return Status::OK();
}

Status ViewMaintainer::Initialize() {
  DD_CHECK(!initialized_) << "Initialize called twice";
  for (const dsl::DeductiveRule& rule : program_->deductive_rules()) {
    DD_RETURN_IF_ERROR(CompileRule(rule));
  }
  DD_RETURN_IF_ERROR(RecomputeTopoOrder());

  // Pre-existing rows are external derivations with count 1.
  for (const dsl::RelationDecl& r : program_->relations()) {
    const Table* table = db_->GetTable(r.name);
    if (table == nullptr) {
      return Status::FailedPrecondition("database lacks table '" + r.name + "'");
    }
    DeltaTable& counts = counts_[r.name];
    table->Scan([&](RowId, const Tuple& t) { counts.Add(t, 1); });
  }

  // Full evaluation of every rule, in topological relation order so each
  // rule sees its inputs complete.
  std::vector<size_t> all_rules(rules_.size());
  for (size_t i = 0; i < all_rules.size(); ++i) all_rules[i] = i;
  RelationDeltas no_external;
  DD_RETURN_IF_ERROR(Propagate(no_external, all_rules, +1).status());
  initialized_ = true;
  return Status::OK();
}

Status ViewMaintainer::RefreshRelations() {
  DD_CHECK(initialized_);
  for (const dsl::RelationDecl& r : program_->relations()) {
    counts_.try_emplace(r.name);  // new relations start with no derivations
  }
  return RecomputeTopoOrder();
}

StatusOr<RelationDeltas> ViewMaintainer::ApplyUpdate(
    const RelationDeltas& external_deltas) {
  DD_CHECK(initialized_);
  return Propagate(external_deltas, {}, +1);
}

StatusOr<RelationDeltas> ViewMaintainer::AddRule(const dsl::DeductiveRule& rule) {
  DD_CHECK(initialized_);
  DD_RETURN_IF_ERROR(CompileRule(rule));
  Status topo = RecomputeTopoOrder();
  if (!topo.ok()) {
    rules_.pop_back();
    (void)RecomputeTopoOrder();
    return topo;
  }
  RelationDeltas no_external;
  return Propagate(no_external, {rules_.size() - 1}, +1);
}

StatusOr<RelationDeltas> ViewMaintainer::RemoveRule(const std::string& label) {
  DD_CHECK(initialized_);
  auto it = std::find_if(rules_.begin(), rules_.end(), [&](const MaintainedRule& mr) {
    return mr.rule.label == label;
  });
  if (it == rules_.end()) return Status::NotFound("no rule labeled '" + label + "'");
  const size_t index = static_cast<size_t>(it - rules_.begin());
  RelationDeltas no_external;
  // Retract its derivations while the rule is still active (tables unchanged
  // during evaluation), then drop it.
  auto result = Propagate(no_external, {index}, -1);
  if (result.ok()) {
    rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(index));
    DD_RETURN_IF_ERROR(RecomputeTopoOrder());
  }
  return result;
}

int64_t ViewMaintainer::DerivationCount(const std::string& relation,
                                        const Tuple& tuple) const {
  auto it = counts_.find(relation);
  return it == counts_.end() ? 0 : it->second.Count(tuple);
}

Status ViewMaintainer::FoldCounts(const std::string& relation,
                                  const DeltaTable& count_delta, RelationDeltas* out) {
  if (count_delta.empty()) return Status::OK();
  Table* table = db_->GetTable(relation);
  DeltaTable& counts = counts_[relation];
  DeltaTable& set_delta = (*out)[relation];
  Status status = Status::OK();
  count_delta.ForEach([&](const Tuple& tuple, int64_t dc) {
    if (!status.ok()) return;
    const int64_t before = counts.Count(tuple);
    const int64_t after = before + dc;
    if (after < 0) {
      status = Status::Internal("negative derivation count for " +
                                TupleToString(tuple) + " in " + relation);
      return;
    }
    counts.Add(tuple, dc);
    if (before == 0 && after > 0) {
      auto inserted = table->Insert(tuple);
      if (!inserted.ok()) {
        status = inserted.status();
        return;
      }
      set_delta.Add(tuple, +1);
    } else if (before > 0 && after == 0) {
      table->Erase(tuple);
      set_delta.Add(tuple, -1);
    }
  });
  if (status.ok() && (*out)[relation].empty()) out->erase(relation);
  return status;
}

StatusOr<RelationDeltas> ViewMaintainer::Propagate(
    const RelationDeltas& external_deltas, const std::vector<size_t>& full_rules,
    int64_t full_sign) {
  RelationDeltas set_deltas;  // finalized set-level changes, by relation

  for (const std::string& relation : topo_order_) {
    DeltaTable count_delta;

    // (a) external changes targeting this relation.
    auto ext = external_deltas.find(relation);
    if (ext != external_deltas.end()) {
      ext->second.ForEach([&](const Tuple& t, int64_t c) { count_delta.Add(t, c); });
    }

    // (b) delta rules: existing rules with this head whose body relations
    // changed upstream.
    for (size_t i = 0; i < rules_.size(); ++i) {
      const MaintainedRule& mr = rules_[i];
      if (mr.rule.head.predicate != relation) continue;
      if (std::find(full_rules.begin(), full_rules.end(), i) != full_rules.end()) {
        continue;  // handled by (c)
      }
      std::map<std::string, const DeltaTable*> body_deltas;
      for (const dsl::Atom& atom : mr.rule.body) {
        auto it = set_deltas.find(atom.predicate);
        if (it != set_deltas.end()) body_deltas[atom.predicate] = &it->second;
      }
      if (body_deltas.empty()) continue;
      DD_RETURN_IF_ERROR(mr.body.EvaluateDelta(
          body_deltas, [&](const std::vector<Value>& values, int64_t sign) {
            count_delta.Add(
                ProjectHead(mr.rule.head.terms, mr.body.var_slots(), values), sign);
          }));
    }

    // (c) full evaluation of newly added (or retracted) rules.
    for (size_t i : full_rules) {
      const MaintainedRule& mr = rules_[i];
      if (mr.rule.head.predicate != relation) continue;
      mr.body.EvaluateFull([&](const std::vector<Value>& values, int64_t sign) {
        count_delta.Add(ProjectHead(mr.rule.head.terms, mr.body.var_slots(), values),
                        sign * full_sign);
      });
    }

    DD_RETURN_IF_ERROR(FoldCounts(relation, count_delta, &set_deltas));
  }
  return set_deltas;
}

}  // namespace deepdive::engine
