#include "engine/rule_evaluator.h"

#include <algorithm>

#include "util/logging.h"

namespace deepdive::engine {

bool EvalCompare(dsl::CompareOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case dsl::CompareOp::kEq:
      return lhs == rhs;
    case dsl::CompareOp::kNe:
      return lhs != rhs;
    case dsl::CompareOp::kLt:
      return lhs < rhs;
    case dsl::CompareOp::kLe:
      return lhs < rhs || lhs == rhs;
    case dsl::CompareOp::kGt:
      return rhs < lhs;
    case dsl::CompareOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

Tuple ProjectHead(const std::vector<dsl::Term>& head_terms,
                  const std::map<std::string, int>& slots,
                  const std::vector<Value>& values) {
  Tuple out;
  out.reserve(head_terms.size());
  for (const dsl::Term& t : head_terms) {
    if (t.is_var()) {
      auto it = slots.find(t.var);
      DD_CHECK(it != slots.end()) << "unbound head variable " << t.var;
      out.push_back(values[it->second]);
    } else {
      out.push_back(t.constant);
    }
  }
  return out;
}

StatusOr<CompiledRuleBody> CompiledRuleBody::Compile(
    const dsl::Program& program, const Database& db, const std::vector<dsl::Atom>& body,
    const std::vector<dsl::Condition>& conditions) {
  CompiledRuleBody compiled;

  auto slot_for = [&](const std::string& var) {
    auto [it, inserted] =
        compiled.var_slots_.emplace(var, static_cast<int>(compiled.var_slots_.size()));
    (void)inserted;
    return it->second;
  };

  auto compile_term = [&](const dsl::Term& t) {
    TermPlan plan;
    plan.is_var = t.is_var();
    if (plan.is_var) {
      plan.slot = slot_for(t.var);
    } else {
      plan.constant = t.constant;
    }
    return plan;
  };

  for (const dsl::Atom& atom : body) {
    if (program.FindRelation(atom.predicate) == nullptr) {
      return Status::NotFound("undeclared predicate '" + atom.predicate + "'");
    }
    const Table* table = db.GetTable(atom.predicate);
    if (table == nullptr) {
      return Status::NotFound("no table for relation '" + atom.predicate + "'");
    }
    AtomPlan plan;
    plan.table = table;
    plan.relation = atom.predicate;
    plan.negated = atom.negated;
    for (const dsl::Term& t : atom.terms) plan.terms.push_back(compile_term(t));
    compiled.atoms_.push_back(std::move(plan));
  }
  // Move negated atoms after all positive ones so their variables are bound.
  std::stable_partition(compiled.atoms_.begin(), compiled.atoms_.end(),
                        [](const AtomPlan& a) { return !a.negated; });

  for (const dsl::Condition& c : conditions) {
    CondPlan plan;
    plan.lhs = compile_term(c.lhs);
    plan.op = c.op;
    plan.rhs = compile_term(c.rhs);
    compiled.conditions_.push_back(std::move(plan));
  }
  return compiled;
}

bool CompiledRuleBody::MatchTuple(const AtomPlan& atom, const Tuple& tuple,
                                  std::vector<Value>* values, std::vector<bool>* bound,
                                  std::vector<int>* newly_bound) const {
  if (tuple.size() != atom.terms.size()) return false;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const TermPlan& t = atom.terms[i];
    if (!t.is_var) {
      if (!(tuple[i] == t.constant)) return false;
    } else if ((*bound)[t.slot]) {
      if (!((*values)[t.slot] == tuple[i])) return false;
    } else {
      (*values)[t.slot] = tuple[i];
      (*bound)[t.slot] = true;
      newly_bound->push_back(t.slot);
    }
  }
  return true;
}

bool CompiledRuleBody::ConditionsHold(const std::vector<Value>& values) const {
  for (const CondPlan& c : conditions_) {
    const Value& lhs = c.lhs.is_var ? values[c.lhs.slot] : c.lhs.constant;
    const Value& rhs = c.rhs.is_var ? values[c.rhs.slot] : c.rhs.constant;
    if (!EvalCompare(c.op, lhs, rhs)) return false;
  }
  return true;
}

bool CompiledRuleBody::TupleInOld(const AtomPlan& atom, const DeltaTable* delta,
                                  const Tuple& tuple) const {
  // OLD = NEW ⊖ delta: present now and not just-inserted, or just-deleted.
  const int64_t c = delta == nullptr ? 0 : delta->Count(tuple);
  if (c > 0) return false;                    // inserted: in NEW only
  if (c < 0) return true;                     // deleted: was in OLD
  return atom.table->Contains(tuple);         // unchanged
}

void CompiledRuleBody::Recurse(size_t atom_idx, std::vector<Value>* values,
                               std::vector<bool>* bound, int64_t sign,
                               const std::vector<AtomMode>& modes,
                               const std::vector<const DeltaTable*>& atom_deltas,
                               const BindingCallback& fn) const {
  if (atom_idx == atoms_.size()) {
    if (ConditionsHold(*values)) fn(*values, sign);
    return;
  }
  const AtomPlan& atom = atoms_[atom_idx];
  const AtomMode mode = modes[atom_idx];
  const DeltaTable* delta = atom_deltas[atom_idx];

  if (atom.negated) {
    // All variables are bound (analyzer guarantees safety); negated atoms are
    // only allowed on unchanged relations in delta mode, so probe the table.
    Tuple probe;
    probe.reserve(atom.terms.size());
    for (const TermPlan& t : atom.terms) {
      probe.push_back(t.is_var ? (*values)[t.slot] : t.constant);
    }
    if (!atom.table->Contains(probe)) {
      Recurse(atom_idx + 1, values, bound, sign, modes, atom_deltas, fn);
    }
    return;
  }

  auto try_tuple = [&](const Tuple& tuple, int64_t tuple_sign) {
    std::vector<int> newly_bound;
    if (MatchTuple(atom, tuple, values, bound, &newly_bound)) {
      Recurse(atom_idx + 1, values, bound, sign * tuple_sign, modes, atom_deltas, fn);
    }
    for (int slot : newly_bound) (*bound)[slot] = false;
  };

  if (mode == AtomMode::kDelta) {
    DD_CHECK(delta != nullptr);
    delta->ForEach([&](const Tuple& tuple, int64_t count) {
      try_tuple(tuple, count > 0 ? 1 : -1);
    });
    return;
  }

  // Pick an index column: first term that is a constant or a bound variable.
  int probe_col = -1;
  Value probe_value;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const TermPlan& t = atom.terms[i];
    if (!t.is_var) {
      probe_col = static_cast<int>(i);
      probe_value = t.constant;
      break;
    }
    if ((*bound)[t.slot]) {
      probe_col = static_cast<int>(i);
      probe_value = (*values)[t.slot];
      break;
    }
  }

  auto visit_current_or_old = [&](const Tuple& tuple) {
    if (mode == AtomMode::kOld) {
      // Skip tuples that are NEW-only (just inserted).
      if (delta != nullptr && delta->Count(tuple) > 0) return;
    }
    try_tuple(tuple, 1);
  };

  if (probe_col >= 0) {
    for (RowId id : atom.table->Lookup(probe_col, probe_value)) {
      visit_current_or_old(atom.table->row(id));
    }
  } else {
    atom.table->Scan([&](RowId, const Tuple& tuple) { visit_current_or_old(tuple); });
  }

  if (mode == AtomMode::kOld && delta != nullptr) {
    // Add back just-deleted tuples (they were in OLD but are tombstoned now).
    delta->ForEach([&](const Tuple& tuple, int64_t count) {
      if (count >= 0) return;
      if (probe_col >= 0 && !(tuple[probe_col] == probe_value)) return;
      try_tuple(tuple, 1);
    });
  }
}

void CompiledRuleBody::EvaluateFull(const BindingCallback& fn) const {
  // Sequential entry point: keep the Recurse path, which probes the driver
  // atom's column index when it has a constant term (the range path always
  // scans, which only pays off once the scan is split across shards). The
  // index yields rows in ascending RowId order, so enumeration order is
  // identical to EvaluateFullRange(0, FullDriverDomain()).
  std::vector<Value> values(var_slots_.size());
  std::vector<bool> bound(var_slots_.size(), false);
  std::vector<AtomMode> modes(atoms_.size(), AtomMode::kCurrent);
  std::vector<const DeltaTable*> deltas(atoms_.size(), nullptr);
  Recurse(0, &values, &bound, 1, modes, deltas, fn);
}

bool CompiledRuleBody::DriverHasConstantTerm() const {
  if (!DriverShardable()) return false;
  for (const TermPlan& t : atoms_[0].terms) {
    if (!t.is_var) return true;
  }
  return false;
}

size_t CompiledRuleBody::FullDriverDomain() const {
  return DriverShardable() ? atoms_[0].table->RowSlots() : 0;
}

void CompiledRuleBody::EvaluateFullRange(size_t begin, size_t end,
                                         const BindingCallback& fn) const {
  DD_CHECK(DriverShardable());
  std::vector<AtomMode> modes(atoms_.size(), AtomMode::kCurrent);
  std::vector<const DeltaTable*> deltas(atoms_.size(), nullptr);
  RecurseDriverRange(begin, end, AtomMode::kCurrent, nullptr, nullptr, modes, deltas,
                     fn);
}

StatusOr<CompiledRuleBody::DeltaEvalPlan> CompiledRuleBody::PlanDeltaEvaluation(
    const std::map<std::string, const DeltaTable*>& deltas) const {
  // Positions (atom indexes) on changed relations, in a fixed global order:
  // (relation name, atom index). Each term of the telescoping sum puts one
  // position in DELTA mode, earlier positions in NEW (current) mode, later
  // ones in OLD mode.
  DeltaEvalPlan plan;
  plan.atom_deltas.assign(atoms_.size(), nullptr);
  for (const auto& [relation, delta] : deltas) {
    if (delta == nullptr || delta->empty()) continue;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (atoms_[i].relation != relation) continue;
      if (atoms_[i].negated) {
        return Status::Unimplemented(
            "delta evaluation with a changed negated relation '" + relation + "'");
      }
      plan.atom_deltas[i] = delta;
      plan.delta_positions.push_back(i);
    }
  }
  // Order by (relation, position): map iteration is already name-sorted and
  // inner loop is position-sorted, so delta_positions is in global order.
  return plan;
}

void CompiledRuleBody::MaterializeDriverDelta(DeltaEvalPlan* plan) const {
  if (plan->driver_materialized) return;
  plan->driver_materialized = true;
  // ForEach order is reused for every term, which keeps enumeration
  // identical across shard layouts.
  if (!atoms_.empty() && plan->atom_deltas[0] != nullptr) {
    plan->atom_deltas[0]->ForEach([&](const Tuple& tuple, int64_t count) {
      plan->driver_entries.emplace_back(tuple, count);
      if (count < 0) plan->driver_deletions.push_back(tuple);
    });
  }
}

size_t CompiledRuleBody::DeltaTermDomain(const DeltaEvalPlan& plan, size_t term) const {
  if (!DriverShardable()) return 0;
  // The driver's mode in term `term` follows EvaluateDeltaTermRange's mode
  // assignment: positions at telescoping index < term are NEW, == term is
  // DELTA, > term is OLD. So the driver is NEW for terms *after* its own
  // index and OLD for terms *before* it.
  const size_t driver_term =
      std::find(plan.delta_positions.begin(), plan.delta_positions.end(), size_t{0}) -
      plan.delta_positions.begin();
  if (plan.atom_deltas[0] == nullptr || term > driver_term) {
    // Driver in NEW (current) mode.
    return atoms_[0].table->RowSlots();
  }
  // Entry counts come from the delta table itself, so domains are exact
  // whether or not MaterializeDriverDelta has run (routing needs them before
  // the sharded path commits to materializing).
  if (term == driver_term) return plan.atom_deltas[0]->size();
  // Driver in OLD mode: current rows plus just-deleted tuples added back.
  return atoms_[0].table->RowSlots() + plan.atom_deltas[0]->DeletionEntries();
}

std::vector<CompiledRuleBody::AtomMode> CompiledRuleBody::TermModes(
    const DeltaEvalPlan& plan, size_t term) const {
  std::vector<AtomMode> modes(atoms_.size(), AtomMode::kCurrent);
  for (size_t mm = 0; mm < plan.delta_positions.size(); ++mm) {
    if (mm < term) {
      modes[plan.delta_positions[mm]] = AtomMode::kCurrent;  // NEW
    } else if (mm == term) {
      modes[plan.delta_positions[mm]] = AtomMode::kDelta;
    } else {
      modes[plan.delta_positions[mm]] = AtomMode::kOld;
    }
  }
  return modes;
}

void CompiledRuleBody::EvaluateDeltaTermRange(const DeltaEvalPlan& plan, size_t term,
                                              size_t begin, size_t end,
                                              const BindingCallback& fn) const {
  DD_CHECK(DriverShardable());
  DD_CHECK(plan.atom_deltas[0] == nullptr || plan.driver_materialized)
      << "call MaterializeDriverDelta before range evaluation";
  const std::vector<AtomMode> modes = TermModes(plan, term);
  RecurseDriverRange(begin, end, modes[0], &plan.driver_entries,
                     &plan.driver_deletions, modes, plan.atom_deltas, fn);
}

void CompiledRuleBody::EvaluateDeltaTerm(const DeltaEvalPlan& plan, size_t term,
                                         const BindingCallback& fn) const {
  std::vector<Value> values(var_slots_.size());
  std::vector<bool> bound(var_slots_.size(), false);
  Recurse(0, &values, &bound, 1, TermModes(plan, term), plan.atom_deltas, fn);
}

Status CompiledRuleBody::EvaluateDelta(
    const std::map<std::string, const DeltaTable*>& deltas,
    const BindingCallback& fn) const {
  DD_ASSIGN_OR_RETURN(DeltaEvalPlan plan, PlanDeltaEvaluation(deltas));
  for (size_t m = 0; m < plan.num_terms(); ++m) {
    EvaluateDeltaTerm(plan, m, fn);
  }
  return Status::OK();
}

void CompiledRuleBody::RecurseDriverRange(
    size_t begin, size_t end, AtomMode driver_mode,
    const std::vector<std::pair<Tuple, int64_t>>* driver_entries,
    const std::vector<Tuple>* driver_deletions, const std::vector<AtomMode>& modes,
    const std::vector<const DeltaTable*>& atom_deltas, const BindingCallback& fn) const {
  const AtomPlan& atom = atoms_[0];
  const DeltaTable* delta = atom_deltas[0];
  std::vector<Value> values(var_slots_.size());
  std::vector<bool> bound(var_slots_.size(), false);

  auto try_tuple = [&](const Tuple& tuple, int64_t tuple_sign) {
    std::vector<int> newly_bound;
    if (MatchTuple(atom, tuple, &values, &bound, &newly_bound)) {
      Recurse(1, &values, &bound, tuple_sign, modes, atom_deltas, fn);
    }
    for (int slot : newly_bound) bound[slot] = false;
  };

  if (driver_mode == AtomMode::kDelta) {
    DD_CHECK(driver_entries != nullptr);
    const size_t limit = std::min(end, driver_entries->size());
    for (size_t i = begin; i < limit; ++i) {
      const auto& [tuple, count] = (*driver_entries)[i];
      try_tuple(tuple, count > 0 ? 1 : -1);
    }
    return;
  }

  const size_t slots = atom.table->RowSlots();
  if (begin < slots) {
    atom.table->ScanRange(static_cast<RowId>(begin),
                          static_cast<RowId>(std::min(end, slots)),
                          [&](RowId, const Tuple& tuple) {
                            if (driver_mode == AtomMode::kOld && delta != nullptr &&
                                delta->Count(tuple) > 0) {
                              return;  // NEW-only tuple: not in OLD
                            }
                            try_tuple(tuple, 1);
                          });
  }
  if (driver_mode == AtomMode::kOld && driver_deletions != nullptr && end > slots) {
    // Add back just-deleted tuples; their domain indexes follow the rows.
    const size_t del_begin = begin > slots ? begin - slots : 0;
    const size_t del_end = std::min(end - slots, driver_deletions->size());
    for (size_t i = del_begin; i < del_end; ++i) {
      try_tuple((*driver_deletions)[i], 1);
    }
  }
}

void CompiledRuleBody::PrewarmIndexes() const {
  // The probe column of every atom is static: the first term that is a
  // constant or a variable bound by an earlier atom. (MatchTuple binds every
  // variable of an atom, so the bound set at atom k does not depend on data.)
  std::vector<bool> bound(var_slots_.size(), false);
  for (size_t k = 0; k < atoms_.size(); ++k) {
    const AtomPlan& atom = atoms_[k];
    if (!atom.negated && k > 0) {
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        const TermPlan& t = atom.terms[i];
        if (!t.is_var || bound[t.slot]) {
          atom.table->WarmColumnIndex(i);
          break;
        }
      }
    }
    for (const TermPlan& t : atom.terms) {
      if (t.is_var) bound[t.slot] = true;
    }
  }
}

}  // namespace deepdive::engine
