#include "engine/rule_evaluator.h"

#include <algorithm>

#include "util/logging.h"

namespace deepdive::engine {

bool EvalCompare(dsl::CompareOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case dsl::CompareOp::kEq:
      return lhs == rhs;
    case dsl::CompareOp::kNe:
      return lhs != rhs;
    case dsl::CompareOp::kLt:
      return lhs < rhs;
    case dsl::CompareOp::kLe:
      return lhs < rhs || lhs == rhs;
    case dsl::CompareOp::kGt:
      return rhs < lhs;
    case dsl::CompareOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

Tuple ProjectHead(const std::vector<dsl::Term>& head_terms,
                  const std::map<std::string, int>& slots,
                  const std::vector<Value>& values) {
  Tuple out;
  out.reserve(head_terms.size());
  for (const dsl::Term& t : head_terms) {
    if (t.is_var()) {
      auto it = slots.find(t.var);
      DD_CHECK(it != slots.end()) << "unbound head variable " << t.var;
      out.push_back(values[it->second]);
    } else {
      out.push_back(t.constant);
    }
  }
  return out;
}

StatusOr<CompiledRuleBody> CompiledRuleBody::Compile(
    const dsl::Program& program, const Database& db, const std::vector<dsl::Atom>& body,
    const std::vector<dsl::Condition>& conditions) {
  CompiledRuleBody compiled;

  auto slot_for = [&](const std::string& var) {
    auto [it, inserted] =
        compiled.var_slots_.emplace(var, static_cast<int>(compiled.var_slots_.size()));
    (void)inserted;
    return it->second;
  };

  auto compile_term = [&](const dsl::Term& t) {
    TermPlan plan;
    plan.is_var = t.is_var();
    if (plan.is_var) {
      plan.slot = slot_for(t.var);
    } else {
      plan.constant = t.constant;
    }
    return plan;
  };

  for (const dsl::Atom& atom : body) {
    if (program.FindRelation(atom.predicate) == nullptr) {
      return Status::NotFound("undeclared predicate '" + atom.predicate + "'");
    }
    const Table* table = db.GetTable(atom.predicate);
    if (table == nullptr) {
      return Status::NotFound("no table for relation '" + atom.predicate + "'");
    }
    AtomPlan plan;
    plan.table = table;
    plan.relation = atom.predicate;
    plan.negated = atom.negated;
    for (const dsl::Term& t : atom.terms) plan.terms.push_back(compile_term(t));
    compiled.atoms_.push_back(std::move(plan));
  }
  // Move negated atoms after all positive ones so their variables are bound.
  std::stable_partition(compiled.atoms_.begin(), compiled.atoms_.end(),
                        [](const AtomPlan& a) { return !a.negated; });

  for (const dsl::Condition& c : conditions) {
    CondPlan plan;
    plan.lhs = compile_term(c.lhs);
    plan.op = c.op;
    plan.rhs = compile_term(c.rhs);
    compiled.conditions_.push_back(std::move(plan));
  }
  return compiled;
}

bool CompiledRuleBody::MatchTuple(const AtomPlan& atom, const Tuple& tuple,
                                  std::vector<Value>* values, std::vector<bool>* bound,
                                  std::vector<int>* newly_bound) const {
  if (tuple.size() != atom.terms.size()) return false;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const TermPlan& t = atom.terms[i];
    if (!t.is_var) {
      if (!(tuple[i] == t.constant)) return false;
    } else if ((*bound)[t.slot]) {
      if (!((*values)[t.slot] == tuple[i])) return false;
    } else {
      (*values)[t.slot] = tuple[i];
      (*bound)[t.slot] = true;
      newly_bound->push_back(t.slot);
    }
  }
  return true;
}

bool CompiledRuleBody::ConditionsHold(const std::vector<Value>& values) const {
  for (const CondPlan& c : conditions_) {
    const Value& lhs = c.lhs.is_var ? values[c.lhs.slot] : c.lhs.constant;
    const Value& rhs = c.rhs.is_var ? values[c.rhs.slot] : c.rhs.constant;
    if (!EvalCompare(c.op, lhs, rhs)) return false;
  }
  return true;
}

bool CompiledRuleBody::TupleInOld(const AtomPlan& atom, const DeltaTable* delta,
                                  const Tuple& tuple) const {
  // OLD = NEW ⊖ delta: present now and not just-inserted, or just-deleted.
  const int64_t c = delta == nullptr ? 0 : delta->Count(tuple);
  if (c > 0) return false;                    // inserted: in NEW only
  if (c < 0) return true;                     // deleted: was in OLD
  return atom.table->Contains(tuple);         // unchanged
}

void CompiledRuleBody::Recurse(size_t atom_idx, std::vector<Value>* values,
                               std::vector<bool>* bound, int64_t sign,
                               const std::vector<AtomMode>& modes,
                               const std::vector<const DeltaTable*>& atom_deltas,
                               const BindingCallback& fn) const {
  if (atom_idx == atoms_.size()) {
    if (ConditionsHold(*values)) fn(*values, sign);
    return;
  }
  const AtomPlan& atom = atoms_[atom_idx];
  const AtomMode mode = modes[atom_idx];
  const DeltaTable* delta = atom_deltas[atom_idx];

  if (atom.negated) {
    // All variables are bound (analyzer guarantees safety); negated atoms are
    // only allowed on unchanged relations in delta mode, so probe the table.
    Tuple probe;
    probe.reserve(atom.terms.size());
    for (const TermPlan& t : atom.terms) {
      probe.push_back(t.is_var ? (*values)[t.slot] : t.constant);
    }
    if (!atom.table->Contains(probe)) {
      Recurse(atom_idx + 1, values, bound, sign, modes, atom_deltas, fn);
    }
    return;
  }

  auto try_tuple = [&](const Tuple& tuple, int64_t tuple_sign) {
    std::vector<int> newly_bound;
    if (MatchTuple(atom, tuple, values, bound, &newly_bound)) {
      Recurse(atom_idx + 1, values, bound, sign * tuple_sign, modes, atom_deltas, fn);
    }
    for (int slot : newly_bound) (*bound)[slot] = false;
  };

  if (mode == AtomMode::kDelta) {
    DD_CHECK(delta != nullptr);
    delta->ForEach([&](const Tuple& tuple, int64_t count) {
      try_tuple(tuple, count > 0 ? 1 : -1);
    });
    return;
  }

  // Pick an index column: first term that is a constant or a bound variable.
  int probe_col = -1;
  Value probe_value;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const TermPlan& t = atom.terms[i];
    if (!t.is_var) {
      probe_col = static_cast<int>(i);
      probe_value = t.constant;
      break;
    }
    if ((*bound)[t.slot]) {
      probe_col = static_cast<int>(i);
      probe_value = (*values)[t.slot];
      break;
    }
  }

  auto visit_current_or_old = [&](const Tuple& tuple) {
    if (mode == AtomMode::kOld) {
      // Skip tuples that are NEW-only (just inserted).
      if (delta != nullptr && delta->Count(tuple) > 0) return;
    }
    try_tuple(tuple, 1);
  };

  if (probe_col >= 0) {
    for (RowId id : atom.table->Lookup(probe_col, probe_value)) {
      visit_current_or_old(atom.table->row(id));
    }
  } else {
    atom.table->Scan([&](RowId, const Tuple& tuple) { visit_current_or_old(tuple); });
  }

  if (mode == AtomMode::kOld && delta != nullptr) {
    // Add back just-deleted tuples (they were in OLD but are tombstoned now).
    delta->ForEach([&](const Tuple& tuple, int64_t count) {
      if (count >= 0) return;
      if (probe_col >= 0 && !(tuple[probe_col] == probe_value)) return;
      try_tuple(tuple, 1);
    });
  }
}

void CompiledRuleBody::EvaluateFull(const BindingCallback& fn) const {
  std::vector<Value> values(var_slots_.size());
  std::vector<bool> bound(var_slots_.size(), false);
  std::vector<AtomMode> modes(atoms_.size(), AtomMode::kCurrent);
  std::vector<const DeltaTable*> deltas(atoms_.size(), nullptr);
  Recurse(0, &values, &bound, 1, modes, deltas, fn);
}

Status CompiledRuleBody::EvaluateDelta(
    const std::map<std::string, const DeltaTable*>& deltas,
    const BindingCallback& fn) const {
  // Positions (atom indexes) on changed relations, in a fixed global order:
  // (relation name, atom index). Each term of the telescoping sum puts one
  // position in DELTA mode, earlier positions in NEW (current) mode, later
  // ones in OLD mode.
  std::vector<size_t> delta_positions;
  std::vector<const DeltaTable*> atom_deltas(atoms_.size(), nullptr);
  for (const auto& [relation, delta] : deltas) {
    if (delta == nullptr || delta->empty()) continue;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (atoms_[i].relation != relation) continue;
      if (atoms_[i].negated) {
        return Status::Unimplemented(
            "delta evaluation with a changed negated relation '" + relation + "'");
      }
      atom_deltas[i] = delta;
      delta_positions.push_back(i);
    }
  }
  // Order by (relation, position): map iteration is already name-sorted and
  // inner loop is position-sorted, so delta_positions is in global order.

  std::vector<Value> values(var_slots_.size());
  std::vector<bool> bound(var_slots_.size(), false);
  for (size_t m = 0; m < delta_positions.size(); ++m) {
    std::vector<AtomMode> modes(atoms_.size(), AtomMode::kCurrent);
    for (size_t mm = 0; mm < delta_positions.size(); ++mm) {
      if (mm < m) {
        modes[delta_positions[mm]] = AtomMode::kCurrent;  // NEW
      } else if (mm == m) {
        modes[delta_positions[mm]] = AtomMode::kDelta;
      } else {
        modes[delta_positions[mm]] = AtomMode::kOld;
      }
    }
    Recurse(0, &values, &bound, 1, modes, atom_deltas, fn);
  }
  return Status::OK();
}

}  // namespace deepdive::engine
