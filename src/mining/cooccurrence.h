#ifndef DEEPDIVE_MINING_COOCCURRENCE_H_
#define DEEPDIVE_MINING_COOCCURRENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "dsl/program.h"
#include "engine/view_maintenance.h"
#include "storage/database.h"
#include "storage/value.h"

namespace deepdive::mining {

/// Per-tuple positive/negative evidence-label tallies for a query relation.
struct LabelCounts {
  int64_t positive = 0;
  int64_t negative = 0;
};

/// Co-occurrence statistics collector over the stored relations of a running
/// DeepDive program. Seeded once with Rebuild() (full scan), then maintained
/// *incrementally* from the set-level relation deltas that view maintenance
/// emits (DeepDive::SetRelationDeltaListener) — after seeding it never
/// rescans the database, no matter how many updates stream through.
///
/// Every container is ordered (std::map keyed by tuple/value), so every fold
/// the candidate generator runs over this state is deterministic regardless
/// of the hash-order the deltas arrived in. State equality with a fresh
/// Rebuild() over the same database is the collector's correctness invariant
/// (tested in mining_test).
///
/// Single-owner state of the miner, which lives on the serving thread; the
/// collector itself carries no synchronization.
class CooccurrenceStats {
 public:
  /// Records the relations to track: names, schemas, kinds, and each
  /// evidence relation's target query relation. Clears all counts.
  void BindSchema(const dsl::Program& program);

  /// Seeds the stores from a full scan of every bound relation.
  void Rebuild(const Database& db);

  /// Folds one batch of set-level relation deltas into the stores. Counts
  /// are signed (insertions positive, DRed over-deletions negative), so the
  /// fold is commutative and the unordered DeltaTable visit is safe.
  void Observe(const engine::RelationDeltas& deltas);

  /// Live distinct-tuple multiset of one relation (nullptr if unbound).
  const std::map<Tuple, int64_t>* Relation(const std::string& name) const;

  /// Label tallies of a query relation's tuples, folded over every evidence
  /// relation declared `for` it (nullptr if `query` is not a query relation).
  const std::map<Tuple, LabelCounts>* Labels(const std::string& query) const;

  /// Distinct-value counts of one column (nullptr if unbound/out of range).
  /// The candidate generator prunes join candidates whose join columns share
  /// no values without materializing the join.
  const std::map<Value, int64_t>* ColumnValues(const std::string& relation,
                                               size_t column) const;

  /// Bound base / query relation names, in program declaration order.
  /// Immutable between BindSchema calls; the collector is confined to its
  /// single owner thread (see class comment), so the references are stable
  /// for as long as the caller holds the collector.
  const std::vector<std::string>& base_relations() const { return base_; }
  const std::vector<std::string>& query_relations() const { return query_; }

  /// Schema of a bound relation (nullptr if unbound).
  const Schema* SchemaOf(const std::string& relation) const;

  /// Number of Observe() batches folded since the last Rebuild/BindSchema.
  uint64_t observed_batches() const { return observed_batches_; }

 private:
  /// Adds `count` derivations of `tuple` to one relation's stores, fanning
  /// evidence tuples out into the target query relation's label tallies.
  void Fold(const std::string& relation, const Tuple& tuple, int64_t count);

  struct Bound {
    Schema schema;
    dsl::RelationKind kind = dsl::RelationKind::kBase;
    std::string evidence_for;  // only for kEvidence
  };

  std::map<std::string, Bound> bound_;
  std::vector<std::string> base_;
  std::vector<std::string> query_;

  std::map<std::string, std::map<Tuple, int64_t>> tuples_;
  std::map<std::string, std::map<Tuple, LabelCounts>> labels_;
  std::map<std::string, std::vector<std::map<Value, int64_t>>> column_values_;
  uint64_t observed_batches_ = 0;
};

}  // namespace deepdive::mining

#endif  // DEEPDIVE_MINING_COOCCURRENCE_H_
