#ifndef DEEPDIVE_MINING_MINER_H_
#define DEEPDIVE_MINING_MINER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/deepdive.h"
#include "mining/candidates.h"
#include "mining/cooccurrence.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_role.h"

namespace deepdive::mining {

struct MinerOptions {
  CandidateOptions candidates;
  /// Minimum drop in evidence pseudo-log-likelihood loss (see
  /// inference::Learner::EvidenceLoss) for a trialed rule to be promoted.
  double min_likelihood_gain = 1e-4;
  /// Cap on engine trials per Mine() call (each trial grounds + samples).
  size_t max_trials = 16;
};

/// Outcome of one candidate trial through the incremental engine.
struct Trial {
  std::string label;    // mined_<n>
  std::string pattern;  // canonical structural key
  int64_t support = 0;
  double confidence = 0.0;
  /// EvidenceLoss(before) - EvidenceLoss(after): positive = the rule made
  /// the evidence labels more likely under the model.
  double gain = 0.0;
  /// Acceptance rate reported by the engine's incremental inference pass.
  double acceptance = -1.0;
  bool promoted = false;
};

struct MineReport {
  size_t candidates_considered = 0;
  size_t candidates_trialed = 0;
  std::vector<Trial> trials;
  std::vector<std::string> promoted;  // labels, in promotion order
  uint64_t program_version_after = 0;
};

/// Incremental rule miner: proposes bounded-length Horn-clause factor rules
/// from co-occurrence statistics, trials each one *through the engine's
/// first-class rule-delta path* (AddRule grounds only the candidate, then
/// samples incrementally), scores it by the deterministic evidence
/// pseudo-log-likelihood delta, and either promotes it into the program or
/// retracts it — a retraction of a learn-free trial restores the pre-trial
/// weights and marginals bit-for-bit from the rule journal.
///
/// Construction registers the miner as the DeepDive instance's relation-
/// delta listener, so the statistics keep up with every ApplyUpdate without
/// rescanning the database. Lives on (and is confined to) the serving
/// thread, like the DeepDive instance it drives.
class RuleMiner {
 public:
  /// `dd` must be initialized and must outlive the miner.
  RuleMiner(core::DeepDive* dd, MinerOptions options) REQUIRES(serving_thread);
  ~RuleMiner() REQUIRES(serving_thread);

  RuleMiner(const RuleMiner&) = delete;
  RuleMiner& operator=(const RuleMiner&) = delete;

  /// One mining pass: generate candidates, trial them in deterministic
  /// candidate order, promote up to `max_promotions` of them. Patterns
  /// rejected in an earlier pass are not re-trialed until their statistics
  /// change (ForgetRejections() or new evidence arriving via deltas).
  StatusOr<MineReport> Mine(size_t max_promotions) REQUIRES(serving_thread);

  /// Clears the rejected-pattern memory (promoted rules stay remembered).
  void ForgetRejections() REQUIRES(serving_thread) { rejected_.clear(); }

  const CooccurrenceStats& stats() const REQUIRES(serving_thread) {
    return stats_;
  }
  /// Immutable after construction; readable from any thread.
  const MinerOptions& options() const { return options_; }

 private:
  core::DeepDive* const dd_;
  const MinerOptions options_;
  CooccurrenceStats stats_ GUARDED_BY(serving_thread);
  /// Patterns trialed and rejected, with the support they were rejected at;
  /// re-trialed only when support grows past the recorded value.
  std::map<std::string, int64_t> rejected_ GUARDED_BY(serving_thread);
  /// pattern -> promoted label, for dedupe across Mine() calls.
  std::map<std::string, std::string> promoted_ GUARDED_BY(serving_thread);
  uint64_t next_label_id_ GUARDED_BY(serving_thread) = 0;
};

}  // namespace deepdive::mining

#endif  // DEEPDIVE_MINING_MINER_H_
