#ifndef DEEPDIVE_MINING_CANDIDATES_H_
#define DEEPDIVE_MINING_CANDIDATES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "mining/cooccurrence.h"

namespace deepdive::mining {

/// A candidate inference rule proposed from co-occurrence evidence, before
/// any trial through the engine. `pattern` is the canonical structural key
/// ("Q(v0,v1) :- B(v0,v1)") the miner dedupes on across Mine() calls.
struct Candidate {
  std::string pattern;
  dsl::FactorRule rule;  // label empty; the miner assigns mined_<n>
  int64_t support = 0;         // co-occurrences with a positive label
  int64_t contradictions = 0;  // co-occurrences with a negative label
  double confidence = 0.0;     // Laplace-smoothed support fraction
};

struct CandidateOptions {
  /// Bounded Horn-clause length: 1 = copy rules Q(...) :- B(...);
  /// 2 adds binary chain rules Q(x, z) :- B1(x, y), B2(y, z).
  size_t max_body_atoms = 2;
  int64_t min_support = 2;
  double min_confidence = 0.6;
  size_t max_candidates = 64;
  /// Candidate rules carry *fixed* log-odds weights derived from confidence
  /// (clamped to ±weight_clamp) so a learn-free trial perturbs nothing.
  double weight_clamp = 4.0;
};

/// Proposes bounded-length Horn-clause factor rules whose groundings
/// co-occur with positive evidence labels, entirely from the collector's
/// ordered state — no database access. Candidates pass the support and
/// confidence floors and arrive sorted by (support desc, confidence desc,
/// pattern asc), truncated to max_candidates; the order is bit-reproducible
/// across runs and platforms, which the determinism analyzer self-tests.
std::vector<Candidate> GenerateCandidates(const CooccurrenceStats& stats,
                                          const CandidateOptions& options);

}  // namespace deepdive::mining

#endif  // DEEPDIVE_MINING_CANDIDATES_H_
