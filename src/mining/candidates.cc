#include "mining/candidates.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace deepdive::mining {
namespace {

bool SameColumnTypes(const Schema& a, const Schema& b) {
  if (a.columns().size() != b.columns().size()) return false;
  for (size_t i = 0; i < a.columns().size(); ++i) {
    if (a.columns()[i].type != b.columns()[i].type) return false;
  }
  return true;
}

/// Laplace-smoothed confidence: never exactly 0 or 1, so the log-odds
/// weight below is always finite even before clamping.
double Confidence(int64_t support, int64_t contradictions) {
  return (static_cast<double>(support) + 1.0) /
         (static_cast<double>(support + contradictions) + 2.0);
}

double LogOddsWeight(double confidence, double clamp) {
  const double w = std::log(confidence / (1.0 - confidence));
  return std::max(-clamp, std::min(clamp, w));
}

std::string PatternOf(const dsl::FactorRule& rule) {
  std::string pattern = dsl::AtomToString(rule.head) + " :- ";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) pattern += ", ";
    pattern += dsl::AtomToString(rule.body[i]);
  }
  return pattern;
}

dsl::Atom MakeAtom(const std::string& predicate,
                   const std::vector<std::string>& vars) {
  dsl::Atom atom;
  atom.predicate = predicate;
  for (const std::string& v : vars) atom.terms.push_back(dsl::Term::Var(v));
  return atom;
}

/// Counts how many tuples of `derived` carry a positive / negative label.
void CountLabels(const std::set<Tuple>& derived,
                 const std::map<Tuple, LabelCounts>& labels, int64_t* support,
                 int64_t* contradictions) {
  for (const Tuple& tuple : derived) {
    auto it = labels.find(tuple);
    if (it == labels.end()) continue;
    if (it->second.positive > 0) ++*support;
    if (it->second.negative > 0) ++*contradictions;
  }
}

void MaybeEmit(dsl::FactorRule rule, int64_t support, int64_t contradictions,
               const CandidateOptions& options,
               std::vector<Candidate>* out) {
  if (support < options.min_support) return;
  const double confidence = Confidence(support, contradictions);
  if (confidence < options.min_confidence) return;
  rule.weight =
      dsl::WeightSpec::Fixed(LogOddsWeight(confidence, options.weight_clamp));
  rule.semantics = dsl::Semantics::kLogical;
  Candidate c;
  c.pattern = PatternOf(rule);
  c.rule = std::move(rule);
  c.support = support;
  c.contradictions = contradictions;
  c.confidence = confidence;
  out->push_back(std::move(c));
}

/// Copy rules Q(v0..vk) :- B(v0..vk) for every base relation whose column
/// types match a query relation's.
void GenerateCopyRules(const CooccurrenceStats& stats,
                       const CandidateOptions& options,
                       std::vector<Candidate>* out) {
  for (const std::string& query : stats.query_relations()) {
    const std::map<Tuple, LabelCounts>* labels = stats.Labels(query);
    const Schema* qschema = stats.SchemaOf(query);
    if (labels == nullptr || labels->empty() || qschema == nullptr) continue;
    std::vector<std::string> vars;
    for (size_t i = 0; i < qschema->columns().size(); ++i) {
      vars.push_back("v" + std::to_string(i));
    }
    for (const std::string& base : stats.base_relations()) {
      const Schema* bschema = stats.SchemaOf(base);
      const std::map<Tuple, int64_t>* rows = stats.Relation(base);
      if (bschema == nullptr || rows == nullptr || rows->empty()) continue;
      if (!SameColumnTypes(*qschema, *bschema)) continue;
      int64_t support = 0, contradictions = 0;
      for (const auto& [tuple, count] : *rows) {
        auto it = labels->find(tuple);
        if (it == labels->end()) continue;
        if (it->second.positive > 0) ++support;
        if (it->second.negative > 0) ++contradictions;
      }
      dsl::FactorRule rule;
      rule.head = MakeAtom(query, vars);
      rule.body.push_back(MakeAtom(base, vars));
      MaybeEmit(std::move(rule), support, contradictions, options, out);
    }
  }
}

/// Chain rules Q(x, z) :- B1(x, y), B2(y, z) over binary relations with a
/// type-compatible join column. The join is evaluated over the collector's
/// ordered tuple stores (never the database) to count label co-occurrences
/// of the derived pairs.
void GenerateChainRules(const CooccurrenceStats& stats,
                        const CandidateOptions& options,
                        std::vector<Candidate>* out) {
  for (const std::string& query : stats.query_relations()) {
    const std::map<Tuple, LabelCounts>* labels = stats.Labels(query);
    const Schema* qschema = stats.SchemaOf(query);
    if (labels == nullptr || labels->empty() || qschema == nullptr) continue;
    if (qschema->columns().size() != 2) continue;
    for (const std::string& b1 : stats.base_relations()) {
      const Schema* s1 = stats.SchemaOf(b1);
      const std::map<Tuple, int64_t>* rows1 = stats.Relation(b1);
      if (s1 == nullptr || s1->columns().size() != 2 || rows1 == nullptr ||
          rows1->empty()) {
        continue;
      }
      if (s1->columns()[0].type != qschema->columns()[0].type) continue;
      for (const std::string& b2 : stats.base_relations()) {
        const Schema* s2 = stats.SchemaOf(b2);
        const std::map<Tuple, int64_t>* rows2 = stats.Relation(b2);
        if (s2 == nullptr || s2->columns().size() != 2 || rows2 == nullptr ||
            rows2->empty()) {
          continue;
        }
        if (s2->columns()[0].type != s1->columns()[1].type) continue;
        if (s2->columns()[1].type != qschema->columns()[1].type) continue;

        // Join-column pruning: skip the join entirely when the two join
        // columns share no value.
        const std::map<Value, int64_t>* j1 = stats.ColumnValues(b1, 1);
        const std::map<Value, int64_t>* j2 = stats.ColumnValues(b2, 0);
        if (j1 == nullptr || j2 == nullptr) continue;
        bool overlap = false;
        for (const auto& [value, count] : *j1) {
          if (j2->count(value) > 0) {
            overlap = true;
            break;
          }
        }
        if (!overlap) continue;

        std::map<Value, std::vector<Value>> by_first;
        for (const auto& [tuple, count] : *rows2) {
          by_first[tuple[0]].push_back(tuple[1]);
        }
        std::set<Tuple> derived;
        for (const auto& [tuple, count] : *rows1) {
          auto it = by_first.find(tuple[1]);
          if (it == by_first.end()) continue;
          for (const Value& z : it->second) {
            derived.insert(Tuple{tuple[0], z});
          }
        }
        int64_t support = 0, contradictions = 0;
        CountLabels(derived, *labels, &support, &contradictions);
        dsl::FactorRule rule;
        rule.head = MakeAtom(query, {"x", "z"});
        rule.body.push_back(MakeAtom(b1, {"x", "y"}));
        rule.body.push_back(MakeAtom(b2, {"y", "z"}));
        MaybeEmit(std::move(rule), support, contradictions, options, out);
      }
    }
  }
}

}  // namespace

std::vector<Candidate> GenerateCandidates(const CooccurrenceStats& stats,
                                          const CandidateOptions& options) {
  std::vector<Candidate> out;
  if (options.max_body_atoms >= 1) GenerateCopyRules(stats, options, &out);
  if (options.max_body_atoms >= 2) GenerateChainRules(stats, options, &out);
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.support != b.support) return a.support > b.support;
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    return a.pattern < b.pattern;
  });
  if (out.size() > options.max_candidates) out.resize(options.max_candidates);
  return out;
}

}  // namespace deepdive::mining
