#include "mining/cooccurrence.h"

#include <utility>

namespace deepdive::mining {

void CooccurrenceStats::BindSchema(const dsl::Program& program) {
  bound_.clear();
  base_.clear();
  query_.clear();
  tuples_.clear();
  labels_.clear();
  column_values_.clear();
  observed_batches_ = 0;
  for (const dsl::RelationDecl& decl : program.relations()) {
    Bound b;
    b.schema = decl.schema;
    b.kind = decl.kind;
    b.evidence_for = decl.evidence_for;
    bound_[decl.name] = std::move(b);
    switch (decl.kind) {
      case dsl::RelationKind::kBase:
        base_.push_back(decl.name);
        break;
      case dsl::RelationKind::kQuery:
        query_.push_back(decl.name);
        labels_[decl.name];  // ensure Labels() is non-null for query relations
        break;
      case dsl::RelationKind::kEvidence:
        break;
    }
    column_values_[decl.name].resize(decl.schema.columns().size());
  }
}

void CooccurrenceStats::Rebuild(const Database& db) {
  tuples_.clear();
  for (auto& [name, cols] : column_values_) {
    for (auto& col : cols) col.clear();
  }
  labels_.clear();
  observed_batches_ = 0;
  for (const auto& [name, bound] : bound_) {
    if (bound.kind == dsl::RelationKind::kQuery) labels_[name];
  }
  for (const auto& [name, bound] : bound_) {
    const Table* table = db.GetTable(name);
    if (table == nullptr) continue;
    table->Scan([&](RowId, const Tuple& tuple) { Fold(name, tuple, 1); });
  }
}

void CooccurrenceStats::Observe(const engine::RelationDeltas& deltas) {
  ++observed_batches_;
  for (const auto& [name, delta] : deltas) {
    if (bound_.count(name) == 0) continue;
    // Commutative fold into ordered containers, so the unordered visit is
    // deterministic in its outcome.
    delta.ForEach(
        [&](const Tuple& tuple, int64_t count) { Fold(name, tuple, count); });
  }
}

void CooccurrenceStats::Fold(const std::string& relation, const Tuple& tuple,
                             int64_t count) {
  const Bound& bound = bound_.at(relation);

  auto& store = tuples_[relation];
  auto it = store.emplace(tuple, 0).first;
  it->second += count;
  if (it->second == 0) store.erase(it);

  auto& cols = column_values_[relation];
  for (size_t c = 0; c < tuple.size() && c < cols.size(); ++c) {
    auto vit = cols[c].emplace(tuple[c], 0).first;
    vit->second += count;
    if (vit->second == 0) cols[c].erase(vit);
  }

  if (bound.kind == dsl::RelationKind::kEvidence && !tuple.empty()) {
    // Evidence schema is the target's schema plus a trailing bool label.
    const Value& label = tuple.back();
    if (label.type() != ValueType::kBool) return;
    Tuple prefix(tuple.begin(), tuple.end() - 1);
    auto& tallies = labels_[bound.evidence_for];
    auto lit = tallies.emplace(std::move(prefix), LabelCounts{}).first;
    if (label.AsBool()) {
      lit->second.positive += count;
    } else {
      lit->second.negative += count;
    }
    // A fully-retracted tuple leaves no entry, keeping incremental state
    // equal to a fresh Rebuild (the collector's correctness invariant).
    if (lit->second.positive == 0 && lit->second.negative == 0) {
      tallies.erase(lit);
    }
  }
}

const std::map<Tuple, int64_t>* CooccurrenceStats::Relation(
    const std::string& name) const {
  auto it = tuples_.find(name);
  return it == tuples_.end() ? nullptr : &it->second;
}

const std::map<Tuple, LabelCounts>* CooccurrenceStats::Labels(
    const std::string& query) const {
  auto it = labels_.find(query);
  return it == labels_.end() ? nullptr : &it->second;
}

const std::map<Value, int64_t>* CooccurrenceStats::ColumnValues(
    const std::string& relation, size_t column) const {
  auto it = column_values_.find(relation);
  if (it == column_values_.end() || column >= it->second.size()) return nullptr;
  return &it->second[column];
}

const Schema* CooccurrenceStats::SchemaOf(const std::string& relation) const {
  auto it = bound_.find(relation);
  return it == bound_.end() ? nullptr : &it->second.schema;
}

}  // namespace deepdive::mining
