#include "mining/miner.h"

#include <utility>

#include "dsl/ast.h"
#include "inference/learner.h"

namespace deepdive::mining {

RuleMiner::RuleMiner(core::DeepDive* dd, MinerOptions options)
    : dd_(dd), options_(std::move(options)) {
  stats_.BindSchema(dd_->program());
  stats_.Rebuild(*dd_->db());
  dd_->SetRelationDeltaListener([this](const engine::RelationDeltas& deltas) {
    // Trusted root: DeepDive invokes the listener from inside ApplyUpdate,
    // which REQUIRES(serving_thread); the lambda boundary just hides the
    // capability from the analysis.
    serving_thread.AssertHeld();
    stats_.Observe(deltas);
  });
}

RuleMiner::~RuleMiner() { dd_->SetRelationDeltaListener(nullptr); }

StatusOr<MineReport> RuleMiner::Mine(size_t max_promotions) {
  MineReport report;
  std::vector<Candidate> candidates =
      GenerateCandidates(stats_, options_.candidates);
  report.candidates_considered = candidates.size();

  for (Candidate& candidate : candidates) {
    if (report.promoted.size() >= max_promotions) break;
    if (report.candidates_trialed >= options_.max_trials) break;
    if (promoted_.count(candidate.pattern) > 0) continue;
    auto rejected_it = rejected_.find(candidate.pattern);
    if (rejected_it != rejected_.end() &&
        candidate.support <= rejected_it->second) {
      continue;  // nothing new since the last rejection
    }

    const std::string label = "mined_" + std::to_string(next_label_id_++);
    candidate.rule.label = label;
    // Single code path with hand-written rules: the candidate travels as
    // canonical rule text through the same parse/validate/AddRule pipeline.
    const std::string source = dsl::FactorRuleToString(candidate.rule);

    // Deterministic score: evidence pseudo-log-likelihood loss before/after.
    // The candidate carries a fixed weight and the trial skips learning, so
    // the only model change is the rule itself — and a rejection's
    // RetractRule restores the pre-trial state exactly from the journal.
    inference::Learner learner(dd_->mutable_graph());
    const double loss_before = learner.EvidenceLoss();
    StatusOr<core::UpdateReport> added = dd_->AddRule(source, /*learn=*/false);
    if (!added.ok()) {
      rejected_[candidate.pattern] = candidate.support;
      continue;
    }
    ++report.candidates_trialed;
    const double loss_after = learner.EvidenceLoss();

    Trial trial;
    trial.label = label;
    trial.pattern = candidate.pattern;
    trial.support = candidate.support;
    trial.confidence = candidate.confidence;
    trial.gain = loss_before - loss_after;
    trial.acceptance = added->acceptance_rate;
    trial.promoted = trial.gain >= options_.min_likelihood_gain;

    if (trial.promoted) {
      promoted_[candidate.pattern] = label;
      report.promoted.push_back(label);
    } else {
      StatusOr<core::UpdateReport> retracted = dd_->RetractRule(label);
      if (!retracted.ok()) return retracted.status();
      rejected_[candidate.pattern] = candidate.support;
    }
    report.trials.push_back(std::move(trial));
  }

  report.program_version_after = dd_->program_version();
  return report;
}

}  // namespace deepdive::mining
