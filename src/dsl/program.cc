#include "dsl/program.h"

#include "dsl/parser.h"

namespace deepdive::dsl {

const RelationDecl* Program::FindRelation(const std::string& name) const {
  auto it = relation_index_.find(name);
  return it == relation_index_.end() ? nullptr : &relations_[it->second];
}

bool Program::IsQueryRelation(const std::string& name) const {
  const RelationDecl* r = FindRelation(name);
  return r != nullptr && r->kind == RelationKind::kQuery;
}

bool Program::IsEvidenceRelation(const std::string& name) const {
  const RelationDecl* r = FindRelation(name);
  return r != nullptr && r->kind == RelationKind::kEvidence;
}

const RelationDecl* Program::EvidenceTarget(const std::string& evidence_name) const {
  const RelationDecl* r = FindRelation(evidence_name);
  if (r == nullptr || r->kind != RelationKind::kEvidence) return nullptr;
  return FindRelation(r->evidence_for);
}

std::vector<const RelationDecl*> Program::EvidenceRelationsFor(
    const std::string& query) const {
  std::vector<const RelationDecl*> out;
  for (const RelationDecl& r : relations_) {
    if (r.kind == RelationKind::kEvidence && r.evidence_for == query) out.push_back(&r);
  }
  return out;
}

Status Program::InstantiateSchema(Database* db) const {
  for (const RelationDecl& r : relations_) {
    DD_RETURN_IF_ERROR(db->CreateTable(r.name, r.schema).status());
  }
  return Status::OK();
}

Status Program::Merge(const Program& other) {
  for (const RelationDecl& r : other.relations_) {
    const RelationDecl* mine = FindRelation(r.name);
    if (mine != nullptr) {
      if (!(mine->schema == r.schema) || mine->kind != r.kind) {
        return Status::InvalidArgument("conflicting redeclaration of relation '" +
                                       r.name + "'");
      }
      continue;  // identical redeclaration is fine
    }
    relation_index_[r.name] = relations_.size();
    relations_.push_back(r);
  }
  for (const DeductiveRule& r : other.deductive_rules_) deductive_rules_.push_back(r);
  for (const FactorRule& r : other.factor_rules_) factor_rules_.push_back(r);
  return Status::OK();
}

size_t Program::RemoveRulesByLabel(const std::string& label) {
  size_t removed = 0;
  for (auto it = deductive_rules_.begin(); it != deductive_rules_.end();) {
    if (it->label == label) {
      it = deductive_rules_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  for (auto it = factor_rules_.begin(); it != factor_rules_.end();) {
    if (it->label == label) {
      it = factor_rules_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::string Program::ToString() const {
  std::string out;
  for (const RelationDecl& r : relations_) {
    switch (r.kind) {
      case RelationKind::kQuery:
        out += "query relation ";
        break;
      case RelationKind::kEvidence:
        out += "evidence ";
        break;
      case RelationKind::kBase:
        out += "relation ";
        break;
    }
    out += r.name + r.schema.ToString();
    if (r.kind == RelationKind::kEvidence) out += " for " + r.evidence_for;
    out += ".\n";
  }
  for (const DeductiveRule& r : deductive_rules_) out += DeductiveRuleToString(r) + "\n";
  for (const FactorRule& r : factor_rules_) out += FactorRuleToString(r) + "\n";
  return out;
}

StatusOr<Program> CompileProgram(std::string_view source) {
  DD_ASSIGN_OR_RETURN(ProgramAst ast, ParseProgram(source));
  return AnalyzeProgram(ast);
}

}  // namespace deepdive::dsl
