#include "dsl/parser.h"

#include "dsl/lexer.h"
#include "util/string_util.h"

namespace deepdive::dsl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ProgramAst> Run() {
    ProgramAst ast;
    while (!Check(TokenKind::kEof)) {
      DD_RETURN_IF_ERROR(ParseStatement(&ast));
    }
    return ast;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(std::string_view text) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == text;
  }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  bool MatchIdent(std::string_view text) {
    if (!CheckIdent(text)) return false;
    Advance();
    return true;
  }

  Status ErrorHere(const std::string& msg) const {
    const Token& t = Peek();
    return Status::InvalidArgument(StrFormat("parse error at %d:%d (near %s): %s",
                                             t.line, t.column, TokenKindName(t.kind),
                                             msg.c_str()));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) {
      return ErrorHere(StrFormat("expected %s (%s)", TokenKindName(kind), what));
    }
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent(const char* what) {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere(StrFormat("expected identifier (%s)", what));
    }
    return Advance().text;
  }

  Status ParseStatement(ProgramAst* ast) {
    if (CheckIdent("relation") ||
        (CheckIdent("query") && Peek(1).kind == TokenKind::kIdentifier &&
         Peek(1).text == "relation")) {
      return ParseRelationDecl(ast);
    }
    if (CheckIdent("evidence")) return ParseEvidenceDecl(ast);
    if (CheckIdent("rule")) return ParseDeductiveRule(ast);
    if (CheckIdent("factor")) return ParseFactorRule(ast);
    return ErrorHere("expected 'relation', 'query relation', 'evidence', 'rule', or 'factor'");
  }

  StatusOr<ValueType> ParseType() {
    DD_ASSIGN_OR_RETURN(std::string name, ExpectIdent("column type"));
    if (name == "int") return ValueType::kInt;
    if (name == "double") return ValueType::kDouble;
    if (name == "string") return ValueType::kString;
    if (name == "bool") return ValueType::kBool;
    return Status::InvalidArgument("unknown type '" + name + "'");
  }

  StatusOr<Schema> ParseColumnList() {
    DD_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "column list"));
    std::vector<Column> cols;
    if (!Check(TokenKind::kRParen)) {
      do {
        DD_ASSIGN_OR_RETURN(std::string name, ExpectIdent("column name"));
        DD_RETURN_IF_ERROR(Expect(TokenKind::kColon, "column type separator"));
        DD_ASSIGN_OR_RETURN(ValueType type, ParseType());
        cols.push_back({std::move(name), type});
      } while (Match(TokenKind::kComma));
    }
    DD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "column list"));
    return Schema(std::move(cols));
  }

  Status ParseRelationDecl(ProgramAst* ast) {
    RelationDecl decl;
    if (MatchIdent("query")) decl.kind = RelationKind::kQuery;
    if (!MatchIdent("relation")) return ErrorHere("expected 'relation'");
    DD_ASSIGN_OR_RETURN(decl.name, ExpectIdent("relation name"));
    DD_ASSIGN_OR_RETURN(decl.schema, ParseColumnList());
    DD_RETURN_IF_ERROR(Expect(TokenKind::kDot, "statement terminator"));
    ast->relations.push_back(std::move(decl));
    return Status::OK();
  }

  Status ParseEvidenceDecl(ProgramAst* ast) {
    Advance();  // 'evidence'
    RelationDecl decl;
    decl.kind = RelationKind::kEvidence;
    DD_ASSIGN_OR_RETURN(decl.name, ExpectIdent("evidence relation name"));
    DD_ASSIGN_OR_RETURN(decl.schema, ParseColumnList());
    if (!MatchIdent("for")) return ErrorHere("expected 'for <query relation>'");
    DD_ASSIGN_OR_RETURN(decl.evidence_for, ExpectIdent("target query relation"));
    DD_RETURN_IF_ERROR(Expect(TokenKind::kDot, "statement terminator"));
    ast->relations.push_back(std::move(decl));
    return Status::OK();
  }

  StatusOr<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIdentifier:
        if (t.text == "true") {
          Advance();
          return Term::Const(Value(true));
        }
        if (t.text == "false") {
          Advance();
          return Term::Const(Value(false));
        }
        Advance();
        return Term::Var(t.text);
      case TokenKind::kInt:
        Advance();
        return Term::Const(Value(t.int_value));
      case TokenKind::kDouble:
        Advance();
        return Term::Const(Value(t.double_value));
      case TokenKind::kString:
        Advance();
        return Term::Const(Value(t.text));
      default:
        return ErrorHere("expected a term (variable or constant)");
    }
  }

  StatusOr<Atom> ParseAtom(bool negated) {
    Atom atom;
    atom.negated = negated;
    DD_ASSIGN_OR_RETURN(atom.predicate, ExpectIdent("predicate name"));
    DD_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "atom argument list"));
    if (!Check(TokenKind::kRParen)) {
      do {
        DD_ASSIGN_OR_RETURN(Term term, ParseTerm());
        atom.terms.push_back(std::move(term));
      } while (Match(TokenKind::kComma));
    }
    DD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "atom argument list"));
    return atom;
  }

  StatusOr<CompareOp> ParseCompareOp() {
    switch (Peek().kind) {
      case TokenKind::kEqEq:
        Advance();
        return CompareOp::kEq;
      case TokenKind::kNe:
        Advance();
        return CompareOp::kNe;
      case TokenKind::kLt:
        Advance();
        return CompareOp::kLt;
      case TokenKind::kLe:
        Advance();
        return CompareOp::kLe;
      case TokenKind::kGt:
        Advance();
        return CompareOp::kGt;
      case TokenKind::kGe:
        Advance();
        return CompareOp::kGe;
      default:
        return ErrorHere("expected comparison operator");
    }
  }

  Status ParseBody(std::vector<Atom>* body, std::vector<Condition>* conditions) {
    do {
      if (Check(TokenKind::kBang)) {
        Advance();
        DD_ASSIGN_OR_RETURN(Atom atom, ParseAtom(/*negated=*/true));
        body->push_back(std::move(atom));
      } else if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kLParen) {
        DD_ASSIGN_OR_RETURN(Atom atom, ParseAtom(/*negated=*/false));
        body->push_back(std::move(atom));
      } else {
        Condition cond;
        DD_ASSIGN_OR_RETURN(cond.lhs, ParseTerm());
        DD_ASSIGN_OR_RETURN(cond.op, ParseCompareOp());
        DD_ASSIGN_OR_RETURN(cond.rhs, ParseTerm());
        conditions->push_back(std::move(cond));
      }
    } while (Match(TokenKind::kComma));
    return Status::OK();
  }

  /// Parses the optional `Label ":"` after 'rule' / 'factor'.
  std::string ParseOptionalLabel() {
    if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kColon) {
      std::string label = Advance().text;
      Advance();  // ':'
      return label;
    }
    return "";
  }

  Status ParseDeductiveRule(ProgramAst* ast) {
    Advance();  // 'rule'
    DeductiveRule rule;
    rule.label = ParseOptionalLabel();
    DD_ASSIGN_OR_RETURN(rule.head, ParseAtom(/*negated=*/false));
    DD_RETURN_IF_ERROR(Expect(TokenKind::kColonDash, "rule body"));
    DD_RETURN_IF_ERROR(ParseBody(&rule.body, &rule.conditions));
    DD_RETURN_IF_ERROR(Expect(TokenKind::kDot, "statement terminator"));
    ast->deductive_rules.push_back(std::move(rule));
    return Status::OK();
  }

  StatusOr<WeightSpec> ParseWeight() {
    if (!MatchIdent("weight")) return ErrorHere("expected 'weight = ...'");
    DD_RETURN_IF_ERROR(Expect(TokenKind::kEq, "weight value"));
    if (Match(TokenKind::kQuestion)) return WeightSpec::Learnable();
    if (Check(TokenKind::kInt)) {
      return WeightSpec::Fixed(static_cast<double>(Advance().int_value));
    }
    if (Check(TokenKind::kDouble)) return WeightSpec::Fixed(Advance().double_value);
    if (CheckIdent("w") && Peek(1).kind == TokenKind::kLParen) {
      Advance();  // w
      Advance();  // (
      std::vector<std::string> vars;
      do {
        DD_ASSIGN_OR_RETURN(std::string v, ExpectIdent("weight-tying variable"));
        vars.push_back(std::move(v));
      } while (Match(TokenKind::kComma));
      DD_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "weight-tying variable list"));
      return WeightSpec::Tied(std::move(vars));
    }
    return ErrorHere("expected weight: number, '?', or w(vars)");
  }

  Status ParseFactorRule(ProgramAst* ast) {
    Advance();  // 'factor'
    FactorRule rule;
    rule.label = ParseOptionalLabel();
    DD_ASSIGN_OR_RETURN(rule.head, ParseAtom(/*negated=*/false));
    DD_RETURN_IF_ERROR(Expect(TokenKind::kColonDash, "factor body"));
    DD_RETURN_IF_ERROR(ParseBody(&rule.body, &rule.conditions));
    DD_ASSIGN_OR_RETURN(rule.weight, ParseWeight());
    if (MatchIdent("semantics")) {
      DD_RETURN_IF_ERROR(Expect(TokenKind::kEq, "semantics value"));
      DD_ASSIGN_OR_RETURN(std::string sem, ExpectIdent("semantics name"));
      if (sem == "linear") {
        rule.semantics = Semantics::kLinear;
      } else if (sem == "ratio") {
        rule.semantics = Semantics::kRatio;
      } else if (sem == "logical") {
        rule.semantics = Semantics::kLogical;
      } else {
        return ErrorHere("unknown semantics '" + sem + "'");
      }
    }
    DD_RETURN_IF_ERROR(Expect(TokenKind::kDot, "statement terminator"));
    ast->factor_rules.push_back(std::move(rule));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ProgramAst> ParseProgram(std::string_view source) {
  DD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace deepdive::dsl
