#ifndef DEEPDIVE_DSL_LEXER_H_
#define DEEPDIVE_DSL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace deepdive::dsl {

enum class TokenKind {
  kIdentifier,   // PersonCandidate, m1, w
  kInt,          // 42, -7
  kDouble,       // 0.5, -1e3
  kString,       // "and his wife"
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kDot,          // .
  kColon,        // :
  kColonDash,    // :-
  kBang,         // !
  kEq,           // =
  kEqEq,         // ==
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kQuestion,     // ?
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // identifier / string payload
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 0;
  int column = 0;
};

/// Tokenizes a DeepDive DSL source string. `#` starts a line comment.
/// Returns an error with line/column info on malformed input.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace deepdive::dsl

#endif  // DEEPDIVE_DSL_LEXER_H_
