#include "dsl/ast.h"

#include "util/string_util.h"

namespace deepdive::dsl {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* SemanticsName(Semantics semantics) {
  switch (semantics) {
    case Semantics::kLinear:
      return "linear";
    case Semantics::kRatio:
      return "ratio";
    case Semantics::kLogical:
      return "logical";
  }
  return "?";
}

std::string TermToString(const Term& term) {
  if (term.is_var()) return term.var;
  if (term.constant.type() == ValueType::kString) {
    return "\"" + term.constant.ToString() + "\"";
  }
  return term.constant.ToString();
}

std::string AtomToString(const Atom& atom) {
  std::string out;
  if (atom.negated) out += "!";
  out += atom.predicate;
  out += "(";
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i) out += ", ";
    out += TermToString(atom.terms[i]);
  }
  out += ")";
  return out;
}

namespace {
std::string BodyToString(const std::vector<Atom>& body,
                         const std::vector<Condition>& conditions) {
  std::string out;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) out += ", ";
    out += AtomToString(body[i]);
  }
  for (const Condition& c : conditions) {
    if (!out.empty()) out += ", ";
    out += TermToString(c.lhs);
    out += " ";
    out += CompareOpName(c.op);
    out += " ";
    out += TermToString(c.rhs);
  }
  return out;
}
}  // namespace

std::string DeductiveRuleToString(const DeductiveRule& rule) {
  std::string out = "rule ";
  if (!rule.label.empty()) out += rule.label + ": ";
  out += AtomToString(rule.head);
  out += " :- ";
  out += BodyToString(rule.body, rule.conditions);
  out += ".";
  return out;
}

std::string FactorRuleToString(const FactorRule& rule) {
  std::string out = "factor ";
  if (!rule.label.empty()) out += rule.label + ": ";
  out += AtomToString(rule.head);
  out += " :- ";
  out += BodyToString(rule.body, rule.conditions);
  out += " weight = ";
  if (rule.weight.kind == WeightSpec::Kind::kTied) {
    out += "w(" + JoinStrings(rule.weight.tied_vars, ", ") + ")";
  } else if (rule.weight.learnable) {
    out += "?";
  } else {
    out += StrFormat("%g", rule.weight.fixed_value);
  }
  out += " semantics = ";
  out += SemanticsName(rule.semantics);
  out += ".";
  return out;
}

}  // namespace deepdive::dsl
