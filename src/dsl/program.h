#ifndef DEEPDIVE_DSL_PROGRAM_H_
#define DEEPDIVE_DSL_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "dsl/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace deepdive::dsl {

/// A semantically validated DeepDive program. Produced by AnalyzeProgram;
/// grounding and incremental maintenance consume this (never the raw AST).
class Program {
 public:
  Program() = default;

  /// The accessors alias program state. A Program is immutable once built by
  /// AnalyzeProgram, but DeepDive's working copy is mutated by rule updates,
  /// so references obtained through it follow the serving-thread contract of
  /// DeepDive::program().
  const std::vector<RelationDecl>& relations() const { return relations_; }
  const std::vector<DeductiveRule>& deductive_rules() const { return deductive_rules_; }
  const std::vector<FactorRule>& factor_rules() const { return factor_rules_; }

  /// Relation by name; nullptr if absent.
  const RelationDecl* FindRelation(const std::string& name) const;

  bool IsQueryRelation(const std::string& name) const;
  bool IsEvidenceRelation(const std::string& name) const;

  /// For an evidence relation, the query relation it labels.
  const RelationDecl* EvidenceTarget(const std::string& evidence_name) const;

  /// Evidence relations declared `for` the given query relation.
  std::vector<const RelationDecl*> EvidenceRelationsFor(const std::string& query) const;

  /// Creates one table per declared relation in `db` (error if any exists).
  Status InstantiateSchema(Database* db) const;

  /// Adds rules/relations from another analyzed program fragment (the
  /// incremental development loop extends a running program). Re-validates
  /// that relation declarations don't conflict.
  Status Merge(const Program& other);

  /// Removes all rules (deductive or factor) with the given label.
  /// Returns the number removed.
  size_t RemoveRulesByLabel(const std::string& label);

  /// Source-order index of a factor rule (stable rule ids for grounding).
  size_t NumFactorRules() const { return factor_rules_.size(); }

  std::string ToString() const;

 private:
  friend StatusOr<Program> AnalyzeProgram(const ProgramAst& ast);
  friend class Analyzer;

  std::vector<RelationDecl> relations_;
  std::vector<DeductiveRule> deductive_rules_;
  std::vector<FactorRule> factor_rules_;
  std::map<std::string, size_t> relation_index_;
};

/// Validates an AST: declared predicates, head/condition/weight variable
/// safety, consistent variable typing, negation bound by positive atoms,
/// evidence schemas = target schema + trailing bool label column.
StatusOr<Program> AnalyzeProgram(const ProgramAst& ast);

/// Convenience: parse + analyze.
StatusOr<Program> CompileProgram(std::string_view source);

/// Parses and validates a program *fragment* (new rules and/or relations) in
/// the context of an existing program. The returned Program contains the
/// base relations plus the fragment's declarations, but ONLY the fragment's
/// rules — suitable for Program::Merge and for incremental rule addition.
StatusOr<Program> AnalyzeFragment(const Program& base, std::string_view source);

}  // namespace deepdive::dsl

#endif  // DEEPDIVE_DSL_PROGRAM_H_
