#ifndef DEEPDIVE_DSL_PARSER_H_
#define DEEPDIVE_DSL_PARSER_H_

#include <string_view>

#include "dsl/ast.h"
#include "util/status.h"

namespace deepdive::dsl {

/// Parses DeepDive DSL source into an AST. Grammar (see tests for examples):
///
///   program   := statement*
///   statement := ["query"] "relation" Name "(" cols ")" "."
///              | "evidence" Name "(" cols ")" "for" Name "."
///              | "rule"   [Label ":"] atom ":-" body "."
///              | "factor" [Label ":"] atom ":-" body weight [semantics] "."
///   body      := item ("," item)*        item := ["!"] atom | condition
///   weight    := "weight" "=" (number | "?" | "w" "(" vars ")")
///   semantics := "semantics" "=" ("linear" | "ratio" | "logical")
///
/// Keywords are contextual; `#` comments run to end of line.
StatusOr<ProgramAst> ParseProgram(std::string_view source);

}  // namespace deepdive::dsl

#endif  // DEEPDIVE_DSL_PARSER_H_
