#ifndef DEEPDIVE_DSL_ANALYZER_H_
#define DEEPDIVE_DSL_ANALYZER_H_

#include <map>
#include <string>

#include "dsl/ast.h"
#include "util/status.h"

namespace deepdive::dsl {

/// Infers the types of the variables appearing in one rule's atoms from the
/// declared relation schemas. Fails on type conflicts. Exposed for the
/// engine's plan compiler and for tests.
StatusOr<std::map<std::string, ValueType>> InferVariableTypes(
    const std::vector<RelationDecl>& relations, const Atom& head,
    const std::vector<Atom>& body);

}  // namespace deepdive::dsl

#endif  // DEEPDIVE_DSL_ANALYZER_H_
