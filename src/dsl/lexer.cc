#include "dsl/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace deepdive::dsl {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInt:
      return "int";
    case TokenKind::kDouble:
      return "double";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kColonDash:
      return "':-'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kEqEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kQuestion:
      return "'?'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      auto token = Next();
      if (!token.ok()) return token.status();
      tokens.push_back(std::move(token).value());
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = col_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status ErrorHere(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("lex error at %d:%d: %s", line_, col_, msg.c_str()));
  }

  StatusOr<Token> Next() {
    Token t;
    t.line = line_;
    t.column = col_;
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ident += Advance();
      }
      t.kind = TokenKind::kIdentifier;
      t.text = std::move(ident);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      return LexNumber(t);
    }

    if (c == '"') return LexString(t);

    Advance();
    switch (c) {
      case '(':
        t.kind = TokenKind::kLParen;
        return t;
      case ')':
        t.kind = TokenKind::kRParen;
        return t;
      case ',':
        t.kind = TokenKind::kComma;
        return t;
      case '.':
        t.kind = TokenKind::kDot;
        return t;
      case '?':
        t.kind = TokenKind::kQuestion;
        return t;
      case ':':
        if (Peek() == '-') {
          Advance();
          t.kind = TokenKind::kColonDash;
        } else {
          t.kind = TokenKind::kColon;
        }
        return t;
      case '!':
        if (Peek() == '=') {
          Advance();
          t.kind = TokenKind::kNe;
        } else {
          t.kind = TokenKind::kBang;
        }
        return t;
      case '=':
        if (Peek() == '=') {
          Advance();
          t.kind = TokenKind::kEqEq;
        } else {
          t.kind = TokenKind::kEq;
        }
        return t;
      case '<':
        if (Peek() == '=') {
          Advance();
          t.kind = TokenKind::kLe;
        } else {
          t.kind = TokenKind::kLt;
        }
        return t;
      case '>':
        if (Peek() == '=') {
          Advance();
          t.kind = TokenKind::kGe;
        } else {
          t.kind = TokenKind::kGt;
        }
        return t;
      default:
        return ErrorHere(StrFormat("unexpected character '%c'", c));
    }
  }

  StatusOr<Token> LexNumber(Token t) {
    std::string text;
    if (Peek() == '-') text += Advance();
    bool is_double = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        text += Advance();
      } else if (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        is_double = true;
        text += Advance();
      } else if ((c == 'e' || c == 'E') &&
                 (std::isdigit(static_cast<unsigned char>(Peek(1))) ||
                  ((Peek(1) == '-' || Peek(1) == '+') &&
                   std::isdigit(static_cast<unsigned char>(Peek(2)))))) {
        is_double = true;
        text += Advance();  // e
        text += Advance();  // sign or digit
      } else {
        break;
      }
    }
    if (is_double) {
      t.kind = TokenKind::kDouble;
      t.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokenKind::kInt;
      t.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    t.text = std::move(text);
    return t;
  }

  StatusOr<Token> LexString(Token t) {
    Advance();  // opening quote
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        char e = Advance();
        switch (e) {
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          default:
            text += e;
        }
      } else {
        text += c;
      }
    }
    if (AtEnd()) return ErrorHere("unterminated string literal");
    Advance();  // closing quote
    t.kind = TokenKind::kString;
    t.text = std::move(text);
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace deepdive::dsl
