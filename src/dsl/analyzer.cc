#include "dsl/analyzer.h"

#include <set>

#include "dsl/parser.h"
#include "dsl/program.h"
#include "util/string_util.h"

namespace deepdive::dsl {

namespace {

const RelationDecl* Find(const std::vector<RelationDecl>& relations,
                         const std::string& name) {
  for (const RelationDecl& r : relations) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

Status CheckAtomArity(const std::vector<RelationDecl>& relations, const Atom& atom) {
  const RelationDecl* rel = Find(relations, atom.predicate);
  if (rel == nullptr) {
    return Status::NotFound("undeclared predicate '" + atom.predicate + "'");
  }
  if (rel->schema.arity() != atom.terms.size()) {
    return Status::InvalidArgument(
        StrFormat("atom %s has %zu args but relation has arity %zu",
                  AtomToString(atom).c_str(), atom.terms.size(), rel->schema.arity()));
  }
  return Status::OK();
}

Status BindAtomTypes(const std::vector<RelationDecl>& relations, const Atom& atom,
                     std::map<std::string, ValueType>* types) {
  DD_RETURN_IF_ERROR(CheckAtomArity(relations, atom));
  const RelationDecl* rel = Find(relations, atom.predicate);
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    const ValueType want = rel->schema.column(i).type;
    if (t.is_var()) {
      auto [it, inserted] = types->emplace(t.var, want);
      if (!inserted && it->second != want) {
        return Status::InvalidArgument(
            StrFormat("variable '%s' used as %s and %s", t.var.c_str(),
                      ValueTypeName(it->second), ValueTypeName(want)));
      }
    } else if (!t.constant.is_null() && t.constant.type() != want) {
      return Status::InvalidArgument(
          StrFormat("constant %s has type %s, column '%s' expects %s",
                    TermToString(t).c_str(), ValueTypeName(t.constant.type()),
                    rel->schema.column(i).name.c_str(), ValueTypeName(want)));
    }
  }
  return Status::OK();
}

/// Variables bound by positive body atoms (the "safe" variables).
std::set<std::string> PositiveVars(const std::vector<Atom>& body) {
  std::set<std::string> vars;
  for (const Atom& atom : body) {
    if (atom.negated) continue;
    for (const Term& t : atom.terms) {
      if (t.is_var()) vars.insert(t.var);
    }
  }
  return vars;
}

Status CheckRuleCommon(const std::vector<RelationDecl>& relations, const Atom& head,
                       const std::vector<Atom>& body,
                       const std::vector<Condition>& conditions,
                       const std::string& label) {
  const std::string where = label.empty() ? AtomToString(head) : label;
  if (body.empty()) {
    return Status::InvalidArgument("rule " + where + " has an empty body");
  }
  bool any_positive = false;
  for (const Atom& atom : body) any_positive |= !atom.negated;
  if (!any_positive) {
    return Status::InvalidArgument("rule " + where +
                                   " needs at least one positive body atom");
  }

  std::map<std::string, ValueType> types;
  for (const Atom& atom : body) DD_RETURN_IF_ERROR(BindAtomTypes(relations, atom, &types));
  DD_RETURN_IF_ERROR(BindAtomTypes(relations, head, &types));

  const std::set<std::string> bound = PositiveVars(body);

  // Head variables must be bound (range restriction).
  for (const Term& t : head.terms) {
    if (t.is_var() && !bound.count(t.var)) {
      return Status::InvalidArgument("rule " + where + ": head variable '" + t.var +
                                     "' is not bound by a positive body atom");
    }
  }
  // Negated-atom variables must be bound elsewhere (safe negation).
  for (const Atom& atom : body) {
    if (!atom.negated) continue;
    for (const Term& t : atom.terms) {
      if (t.is_var() && !bound.count(t.var)) {
        return Status::InvalidArgument("rule " + where + ": variable '" + t.var +
                                       "' appears only in a negated atom");
      }
    }
  }
  // Condition variables must be bound.
  for (const Condition& c : conditions) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_var() && !bound.count(t->var)) {
        return Status::InvalidArgument("rule " + where + ": condition variable '" +
                                       t->var + "' is not bound");
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::map<std::string, ValueType>> InferVariableTypes(
    const std::vector<RelationDecl>& relations, const Atom& head,
    const std::vector<Atom>& body) {
  std::map<std::string, ValueType> types;
  for (const Atom& atom : body) DD_RETURN_IF_ERROR(BindAtomTypes(relations, atom, &types));
  DD_RETURN_IF_ERROR(BindAtomTypes(relations, head, &types));
  return types;
}

StatusOr<Program> AnalyzeFragment(const Program& base, std::string_view source) {
  DD_ASSIGN_OR_RETURN(ProgramAst fragment, ParseProgram(source));
  ProgramAst combined;
  for (const RelationDecl& r : base.relations()) combined.relations.push_back(r);
  // analysis:allow(determinism-unordered): ProgramAst::relations is a
  // vector in source order; the name merely collides with ResultView's
  // unordered relation index.
  for (const RelationDecl& r : fragment.relations) {
    const RelationDecl* existing = base.FindRelation(r.name);
    if (existing != nullptr) {
      if (!(existing->schema == r.schema) || existing->kind != r.kind) {
        return Status::InvalidArgument("fragment redeclares relation '" + r.name +
                                       "' with a different schema");
      }
      continue;
    }
    combined.relations.push_back(r);
  }
  combined.deductive_rules = fragment.deductive_rules;
  combined.factor_rules = fragment.factor_rules;
  return AnalyzeProgram(combined);
}

StatusOr<Program> AnalyzeProgram(const ProgramAst& ast) {
  Program program;

  // Relation declarations: unique names; evidence schema = target schema +
  // trailing bool label column.
  // analysis:allow(determinism-unordered): ProgramAst::relations is a
  // vector in source order; the name merely collides with ResultView's
  // unordered relation index.
  for (const RelationDecl& decl : ast.relations) {
    if (program.relation_index_.count(decl.name)) {
      return Status::AlreadyExists("relation '" + decl.name + "' declared twice");
    }
    program.relation_index_[decl.name] = program.relations_.size();
    program.relations_.push_back(decl);
  }
  for (const RelationDecl& decl : program.relations_) {
    if (decl.kind != RelationKind::kEvidence) continue;
    const RelationDecl* target = program.FindRelation(decl.evidence_for);
    if (target == nullptr || target->kind != RelationKind::kQuery) {
      return Status::InvalidArgument("evidence relation '" + decl.name +
                                     "' must reference a query relation");
    }
    if (decl.schema.arity() != target->schema.arity() + 1) {
      return Status::InvalidArgument(
          "evidence relation '" + decl.name +
          "' must have the target's columns plus one bool label column");
    }
    for (size_t i = 0; i < target->schema.arity(); ++i) {
      if (decl.schema.column(i).type != target->schema.column(i).type) {
        return Status::InvalidArgument("evidence relation '" + decl.name +
                                       "' column types must match '" +
                                       target->name + "'");
      }
    }
    if (decl.schema.column(decl.schema.arity() - 1).type != ValueType::kBool) {
      return Status::InvalidArgument("evidence relation '" + decl.name +
                                     "' label column must be bool");
    }
  }

  // Deductive rules.
  for (const DeductiveRule& rule : ast.deductive_rules) {
    DD_RETURN_IF_ERROR(
        CheckRuleCommon(program.relations_, rule.head, rule.body, rule.conditions,
                        rule.label));
    const RelationDecl* head_rel = program.FindRelation(rule.head.predicate);
    if (head_rel->kind == RelationKind::kEvidence) {
      // Supervision rule: the label position must be a constant bool (or a
      // bound bool variable; constants are the common case per S1 in §2.2).
      const Term& label_term = rule.head.terms.back();
      if (!label_term.is_var() && label_term.constant.type() != ValueType::kBool) {
        return Status::InvalidArgument("supervision rule head label must be bool");
      }
    }
    program.deductive_rules_.push_back(rule);
  }

  // Factor rules.
  for (const FactorRule& rule : ast.factor_rules) {
    DD_RETURN_IF_ERROR(
        CheckRuleCommon(program.relations_, rule.head, rule.body, rule.conditions,
                        rule.label));
    const RelationDecl* head_rel = program.FindRelation(rule.head.predicate);
    if (head_rel->kind != RelationKind::kQuery) {
      return Status::InvalidArgument("factor rule head '" + rule.head.predicate +
                                     "' must be a query relation");
    }
    for (const Atom& atom : rule.body) {
      const RelationDecl* rel = program.FindRelation(atom.predicate);
      if (rel->kind == RelationKind::kEvidence) {
        return Status::InvalidArgument(
            "factor rule bodies may not reference evidence relations");
      }
      if (atom.negated && rel->kind == RelationKind::kQuery) {
        return Status::Unimplemented(
            "negated query atoms in factor rules are not supported");
      }
    }
    if (rule.weight.kind == WeightSpec::Kind::kTied) {
      const std::set<std::string> bound = PositiveVars(rule.body);
      for (const std::string& v : rule.weight.tied_vars) {
        if (!bound.count(v)) {
          return Status::InvalidArgument("weight-tying variable '" + v +
                                         "' is not bound in the rule body");
        }
      }
    }
    program.factor_rules_.push_back(rule);
  }

  return program;
}

}  // namespace deepdive::dsl
