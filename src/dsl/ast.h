#ifndef DEEPDIVE_DSL_AST_H_
#define DEEPDIVE_DSL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace deepdive::dsl {

/// How a relation participates in the probabilistic program (Section 2.4).
enum class RelationKind {
  kBase,      // deterministic EDB/IDB facts
  kQuery,     // each tuple is a Boolean random variable
  kEvidence,  // labeled tuples fixing a query relation's variables
};

/// Declared relation: `relation R(a: int, b: string).`,
/// `query relation Q(x: int).`, or `evidence E(x: int, l: bool) for Q.`
struct RelationDecl {
  std::string name;
  Schema schema;
  RelationKind kind = RelationKind::kBase;
  std::string evidence_for;  // only for kEvidence
};

/// An argument of an atom: either a variable or a constant.
struct Term {
  enum class Kind { kVariable, kConstant } kind = Kind::kVariable;
  std::string var;  // kVariable
  Value constant;   // kConstant

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }
  bool is_var() const { return kind == Kind::kVariable; }
};

/// `Pred(t1, ..., tk)`, possibly negated (`!Pred(...)`) in rule bodies.
struct Atom {
  std::string predicate;
  std::vector<Term> terms;
  bool negated = false;
};

/// Comparison between two terms: `x != y`, `n < 5`, ...
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

struct Condition {
  Term lhs;
  CompareOp op = CompareOp::kEq;
  Term rhs;
};

/// Weight specification of a factor rule (Section 2.4, "Extension to
/// General Rules"): a fixed real, or a tied weight parameterized by body
/// variables (`weight = w(f)` — one learned weight per distinct binding).
struct WeightSpec {
  enum class Kind { kFixed, kTied } kind = Kind::kFixed;
  double fixed_value = 0.0;
  std::vector<std::string> tied_vars;  // kTied
  bool learnable = false;              // fixed weights may still be learned: `weight = ?`

  static WeightSpec Fixed(double w) {
    WeightSpec s;
    s.kind = Kind::kFixed;
    s.fixed_value = w;
    return s;
  }
  static WeightSpec Learnable() {
    WeightSpec s;
    s.kind = Kind::kFixed;
    s.fixed_value = 0.0;
    s.learnable = true;
    return s;
  }
  static WeightSpec Tied(std::vector<std::string> vars) {
    WeightSpec s;
    s.kind = Kind::kTied;
    s.tied_vars = std::move(vars);
    s.learnable = true;
    return s;
  }
};

/// The three grounding-count transformations g(n) of Figure 4.
enum class Semantics { kLinear, kRatio, kLogical };

const char* SemanticsName(Semantics semantics);

/// Deductive (datalog) rule: `head :- body.` Candidate-generation and
/// supervision rules are deductive; supervision rules have an evidence-
/// relation head.
struct DeductiveRule {
  std::string label;  // optional, e.g. "FE1"
  Atom head;
  std::vector<Atom> body;
  std::vector<Condition> conditions;
};

/// Weighted inference rule: `factor head :- body weight = ... semantics = ...`
/// Head must be a query relation; body atoms may mix base and query relations.
struct FactorRule {
  std::string label;
  Atom head;
  std::vector<Atom> body;
  std::vector<Condition> conditions;
  WeightSpec weight;
  Semantics semantics = Semantics::kLinear;
};

/// A parsed program: declarations plus rules, in source order.
struct ProgramAst {
  std::vector<RelationDecl> relations;
  std::vector<DeductiveRule> deductive_rules;
  std::vector<FactorRule> factor_rules;
};

/// Pretty-printers (used in error messages and tests).
std::string TermToString(const Term& term);
std::string AtomToString(const Atom& atom);
std::string DeductiveRuleToString(const DeductiveRule& rule);
std::string FactorRuleToString(const FactorRule& rule);

}  // namespace deepdive::dsl

#endif  // DEEPDIVE_DSL_AST_H_
