#ifndef DEEPDIVE_UTIL_LOGGING_H_
#define DEEPDIVE_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace deepdive {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Accumulates one log line and flushes it (to stderr) on destruction.
/// Fatal messages abort the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement's stream operands.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace deepdive

#define DD_LOG(level)                                              \
  if (static_cast<int>(::deepdive::LogLevel::k##level) <           \
      static_cast<int>(::deepdive::GetLogLevel())) {               \
  } else /* NOLINT */                                              \
    ::deepdive::internal_logging::LogMessage(                      \
        ::deepdive::LogLevel::k##level, __FILE__, __LINE__)

#define DD_LOG_STREAM(level)                            \
  ::deepdive::internal_logging::LogMessage(             \
      ::deepdive::LogLevel::k##level, __FILE__, __LINE__)

/// CHECK-style invariant assertions; these abort on failure and are kept in
/// release builds (grounding/inference correctness beats speed here).
#define DD_CHECK(cond)                                                     \
  while (!(cond))                                                          \
  ::deepdive::internal_logging::LogMessage(::deepdive::LogLevel::kFatal,   \
                                           __FILE__, __LINE__)             \
      << "Check failed: " #cond " "

#define DD_CHECK_OK(expr)                                                   \
  do {                                                                      \
    ::deepdive::Status _dd_chk = (expr);                                    \
    DD_CHECK(_dd_chk.ok()) << _dd_chk.ToString();                           \
  } while (0)

#define DD_CHECK_EQ(a, b) DD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DD_CHECK_NE(a, b) DD_CHECK((a) != (b))
#define DD_CHECK_LT(a, b) DD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DD_CHECK_LE(a, b) DD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DD_CHECK_GT(a, b) DD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DD_CHECK_GE(a, b) DD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DEEPDIVE_UTIL_LOGGING_H_
