#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace deepdive {

namespace {
// splitmix64: expands a single seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  DD_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DD_CHECK_GE(w, 0.0);
    total += w;
  }
  DD_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  return SplitMix64(&x);
}

void Rng::Shuffle(std::vector<uint32_t>* perm) {
  for (size_t i = perm->size(); i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap((*perm)[i - 1], (*perm)[j]);
  }
}

}  // namespace deepdive
