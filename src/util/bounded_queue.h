#ifndef DEEPDIVE_UTIL_BOUNDED_QUEUE_H_
#define DEEPDIVE_UTIL_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace deepdive {

/// Bounded multi-producer / multi-consumer queue with an admission-control
/// watermark — the backpressure primitive of the serving stack's per-tenant
/// update queues. Producers that respect the watermark use TryPush, which
/// *sheds* (returns false without blocking) once the queue depth reaches the
/// watermark; Push blocks until space frees up and is reserved for callers
/// that must not be shed (admin jobs). A single consumer (the tenant's writer
/// thread) drains with Pop, which blocks until an item or Close() arrives.
///
/// Close() wakes everyone: pending and future Pops drain the remaining items
/// and then return nullopt; pushes after Close are rejected. All
/// synchronization goes through the internal Mutex, so an item Popped by the
/// consumer is fully visible — no extra fences needed on either side.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` bounds the queue; `shed_watermark` (<= capacity, default =
  /// capacity) is the depth at which TryPush starts shedding. A watermark
  /// below capacity leaves headroom for Push-only (non-sheddable) work.
  explicit BoundedQueue(size_t capacity, size_t shed_watermark = 0)
      : capacity_(capacity == 0 ? 1 : capacity),
        shed_watermark_(shed_watermark == 0 || shed_watermark > capacity_
                            ? capacity_
                            : shed_watermark) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  size_t capacity() const { return capacity_; }
  size_t shed_watermark() const { return shed_watermark_; }

  /// Current depth (racy snapshot; exact only from the consumer).
  size_t depth() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  /// Admission-controlled producer entry: enqueues unless the queue is
  /// closed or its depth has reached the shed watermark. Returns true on
  /// enqueue, false on shed/closed — never blocks.
  bool TryPush(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= shed_watermark_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocking producer entry (ignores the shed watermark but respects
  /// capacity). Returns false only if the queue is (or becomes) closed.
  bool Push(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) space_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained;
  /// nullopt means closed-and-empty (the consumer's exit signal).
  std::optional<T> Pop() EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (items_.empty() && !closed_) ready_.Wait(mu_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_.NotifyOne();
    return item;
  }

  /// Non-blocking consumer entry: an item if one is queued, else nullopt
  /// (which therefore does NOT imply closed — use Pop for the drain loop).
  std::optional<T> TryPop() EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_.NotifyOne();
    return item;
  }

  /// Rejects future pushes and wakes all waiters; already-queued items stay
  /// poppable (graceful drain). Idempotent.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
    space_.NotifyAll();
  }

 private:
  const size_t capacity_;
  const size_t shed_watermark_;
  mutable Mutex mu_;
  CondVar ready_;  // items available (consumers wait)
  CondVar space_;  // capacity available (blocking producers wait)
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_BOUNDED_QUEUE_H_
