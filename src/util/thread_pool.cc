#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace deepdive {

ThreadPool::ThreadPool(size_t num_threads, bool inline_when_single) {
  if (num_threads <= 1 && inline_when_single) return;  // inline mode
  const size_t spawn = std::max<size_t>(1, num_threads);
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t shard, size_t begin, size_t end)>& body) {
  const size_t num_shards = shards();
  if (num_shards <= 1 || n <= 1) {
    if (n > 0) body(0, 0, n);
    return;
  }
  const size_t chunk = (n + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * chunk;
    if (begin >= n) break;
    const size_t end = std::min(n, begin + chunk);
    Submit([&body, s, begin, end] { body(s, begin, end); });
  }
  Wait();
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace deepdive
