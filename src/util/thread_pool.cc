#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace deepdive {

ThreadPool::ThreadPool(size_t num_threads, bool inline_when_single) {
  if (num_threads <= 1 && inline_when_single) return;  // inline mode
  const size_t spawn = std::max<size_t>(1, num_threads);
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t shard, size_t begin, size_t end)>& body) {
  const size_t num_shards = shards();
  if (num_shards <= 1 || n <= 1) {
    if (n > 0) body(0, 0, n);
    return;
  }
  const size_t chunk = (n + num_shards - 1) / num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * chunk;
    if (begin >= n) break;
    const size_t end = std::min(n, begin + chunk);
    Submit([&body, s, begin, end] { body(s, begin, end); });
  }
  Wait();
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) task_ready_.Wait(mu_);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace deepdive
