#ifndef DEEPDIVE_UTIL_SOCKET_H_
#define DEEPDIVE_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace deepdive {

/// Thin RAII wrapper over a POSIX socket file descriptor — the transport
/// primitive of the serving stack's communication tier. Owns the fd; move-
/// only. SendAll/RecvAll loop over partial transfers, return Status, and
/// suppress SIGPIPE (MSG_NOSIGNAL), so callers only ever see error codes.
///
/// Thread contract: a Socket is used by one thread at a time, except for
/// ShutdownBoth(), which any thread may call to wake a peer blocked in
/// RecvAll/Accept (the server's connection-drain path).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole buffer (looping over short writes).
  Status SendAll(const void* data, size_t len) const;

  /// Receives exactly `len` bytes. A clean EOF before the first byte returns
  /// NotFound("connection closed") so callers can distinguish a hung-up peer
  /// from a truncated message (Internal).
  Status RecvAll(void* data, size_t len) const;

  /// shutdown(SHUT_RDWR): unblocks any thread inside RecvAll/accept on this
  /// fd without closing it (close happens in the owner's destructor).
  void ShutdownBoth() const;

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket plus the address it actually bound (the port matters
/// when the caller asked for an ephemeral one).
struct Listener {
  Socket socket;
  std::string address;  // "127.0.0.1:4711" or "unix:/path"
  uint16_t port = 0;    // TCP only
};

/// Parses and binds `address`: "HOST:PORT" (TCP, PORT may be 0 for an
/// ephemeral port — the returned Listener carries the real one) or
/// "unix:PATH" (Unix domain; an existing socket file at PATH is replaced).
StatusOr<Listener> Listen(const std::string& address, int backlog = 64);

/// Accepts one connection (blocking). NotFound when the listener was shut
/// down (the accept loop's exit signal), Internal on other errors.
StatusOr<Socket> Accept(const Socket& listener);

/// Connects to "HOST:PORT" or "unix:PATH".
StatusOr<Socket> Connect(const std::string& address);

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_SOCKET_H_
