#ifndef DEEPDIVE_UTIL_THREAD_ROLE_H_
#define DEEPDIVE_UTIL_THREAD_ROLE_H_

#include "util/thread_annotations.h"

namespace deepdive {

/// A *thread role* modeled as a fake lock (the Clang Thread Safety Analysis
/// thread-role idiom): an empty, annotation-only capability with no runtime
/// state whatsoever. Holding the capability means "this code runs on the
/// named thread"; a function annotated REQUIRES(role) is a compile error to
/// call from code that has not acquired or asserted the role — which turns
/// the project's "serving-thread-only" comments into contracts the compiler
/// enforces on every build, for every interleaving.
///
/// Because the lock is fake, *correctness of the binding is declared, not
/// detected*: the one place a thread claims the role (a ScopedThreadRole at
/// the top of a serving loop, or an AssertHeld() in a function that is the
/// serving thread by construction) is the trusted root; everything
/// transitively called from it is then checked.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Annotation-only acquire/release; prefer ScopedThreadRole.
  void Acquire() const ACQUIRE() {}
  void Release() const RELEASE() {}

  /// Declares that the current thread holds this role for the remainder of
  /// the calling function. Used at the trusted roots: the single thread that
  /// drives LoadRows/Initialize/ApplyUpdate (tests' main thread, the CLI
  /// driver, a bench's dedicated writer thread). No runtime effect.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
};

/// RAII role acquisition for a lexical scope (e.g. the body of a serving
/// loop). Zero-cost; exists only for the analysis.
class SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(const ThreadRole& role) ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~ScopedThreadRole() RELEASE() { role_.Release(); }

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  const ThreadRole& role_;
};

/// The process-wide *serving thread* role: the single writer of the
/// one-writer/many-reader discipline that DeepDive, IncrementalEngine, and
/// ResultPublisher share. All mutating entry points and reference-returning
/// accessors on those classes are REQUIRES(serving_thread); concurrent
/// readers use Query() (no capability needed) instead.
///
/// One global role (rather than one per engine) follows the Clang
/// documentation's thread-role idiom: the analysis is function-local, so a
/// per-object role would not distinguish objects any better, and a single
/// role keeps call sites to one declaration per function.
inline ThreadRole serving_thread;

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_THREAD_ROLE_H_
