#ifndef DEEPDIVE_UTIL_STATUS_H_
#define DEEPDIVE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace deepdive {

/// Error categories used across the library. Mirrors the usual
/// database-system status taxonomy (OK / InvalidArgument / NotFound / ...).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  /// The operation was refused by admission control (e.g. a tenant's update
  /// queue above its shed watermark); the caller should retry later.
  kUnavailable = 8,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight error-or-success result. The library does not throw across
/// public API boundaries; fallible operations return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Aliases this Status; a Status is a value type owned by one thread.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from error Status, mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}              // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}      // NOLINT

  bool ok() const { return status_.ok(); }
  /// References alias this StatusOr; like any value type it is owned by a
  /// single thread (share the extracted T, not the wrapper).
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace deepdive

/// Propagates a non-OK Status from an expression to the caller.
#define DD_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::deepdive::Status _dd_status = (expr);        \
    if (!_dd_status.ok()) return _dd_status;       \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value or returning the error.
#define DD_ASSIGN_OR_RETURN(lhs, expr)             \
  DD_ASSIGN_OR_RETURN_IMPL_(                       \
      DD_STATUS_CONCAT_(_dd_statusor, __LINE__), lhs, expr)

#define DD_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                              \
  if (!statusor.ok()) return statusor.status();        \
  lhs = std::move(statusor).value()

#define DD_STATUS_CONCAT_(a, b) DD_STATUS_CONCAT_IMPL_(a, b)
#define DD_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DEEPDIVE_UTIL_STATUS_H_
