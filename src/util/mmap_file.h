#ifndef DEEPDIVE_UTIL_MMAP_FILE_H_
#define DEEPDIVE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace deepdive {

/// Read-only memory-mapped file (RAII). The mapping is immutable and
/// page-backed, so any number of threads may read `data()` concurrently for
/// the lifetime of the object; the kernel faults pages in on demand, which is
/// what makes multi-GB snapshot loads O(1) instead of O(bytes).
///
/// Movable, not copyable. On non-POSIX platforms Open returns Unimplemented
/// and callers fall back to buffered reads.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = other.data_;
      size_ = other.size_;
      mapped_ = other.mapped_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.mapped_ = false;
    }
    return *this;
  }
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. An empty file yields a valid zero-length mapping.
  static StatusOr<MmapFile> Open(const std::string& path);

  /// The mapped bytes; immutable for the object's lifetime, readable from
  /// any thread. Null iff !valid().
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return mapped_; }

 private:
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_MMAP_FILE_H_
