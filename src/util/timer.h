#ifndef DEEPDIVE_UTIL_TIMER_H_
#define DEEPDIVE_UTIL_TIMER_H_

#include <chrono>

namespace deepdive {

/// Wall-clock stopwatch used by the bench harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_TIMER_H_
