#include "util/mmap_file.h"

#if defined(__unix__) || defined(__APPLE__)
#define DEEPDIVE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace deepdive {

#if DEEPDIVE_HAVE_MMAP

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path + "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fstat('" + path + "') failed: " + err);
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  file.mapped_ = true;
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("mmap('" + path + "') failed: " + err);
    }
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping holds its own reference to the file; the descriptor is not
  // needed once mmap succeeds.
  ::close(fd);
  return file;
}

void MmapFile::Reset() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#else  // !DEEPDIVE_HAVE_MMAP

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  (void)path;
  return Status::Unimplemented("mmap is not available on this platform");
}

void MmapFile::Reset() {
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#endif  // DEEPDIVE_HAVE_MMAP

}  // namespace deepdive
