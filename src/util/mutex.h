#ifndef DEEPDIVE_UTIL_MUTEX_H_
#define DEEPDIVE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace deepdive {

/// std::mutex wrapped as an annotated capability. libstdc++'s std::mutex and
/// std::lock_guard carry no thread-safety attributes, so Clang's analysis
/// cannot see their acquisitions; every mutex protecting GUARDED_BY state in
/// this project uses this wrapper (and MutexLock / CondVar below) instead.
/// Zero overhead: all methods are inline forwards.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex (the std::lock_guard equivalent the analysis can
/// follow).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() requires the capability: the
/// underlying cv atomically releases and reacquires the lock, so from the
/// caller's (and the analysis') perspective the capability is held across
/// the call — but, as with any condition wait, guarded predicates must be
/// re-checked on wakeup. Use the explicit while-loop form:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// (A predicate-lambda overload is deliberately not provided: the analysis
/// treats a lambda as a separate function that does not hold the caller's
/// capabilities, so predicates reading GUARDED_BY state would need per-site
/// NO_THREAD_SAFETY_ANALYSIS escapes. The loop form keeps every guarded
/// access checked.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; may wake spuriously. Caller must hold `mu`.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the capability stays held; MutexLock will unlock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_MUTEX_H_
