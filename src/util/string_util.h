#ifndef DEEPDIVE_UTIL_STRING_UTIL_H_
#define DEEPDIVE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace deepdive {

/// Splits on `sep`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_STRING_UTIL_H_
