#ifndef DEEPDIVE_UTIL_HASH_H_
#define DEEPDIVE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace deepdive {

/// 64-bit mix suitable for combining hash values (boost::hash_combine style
/// but with a full-width avalanche).
inline uint64_t HashMix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return HashMix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hash functor for vectors of elements exposing a `Hash()` method (e.g. a
/// storage Tuple of Values). Usable as the Hash template argument of
/// unordered containers keyed by tuples; storage's HashTuple delegates here
/// so there is exactly one tuple-hash formula.
struct TupleHash {
  template <typename T>
  size_t operator()(const std::vector<T>& elements) const {
    uint64_t h = 0x9ae16a3b2f90404fULL ^ elements.size();
    for (const T& e : elements) h = HashCombine(h, e.Hash());
    return static_cast<size_t>(h);
  }
};

/// FNV-1a for strings; cheap and stable across platforms.
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_HASH_H_
