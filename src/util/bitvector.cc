#include "util/bitvector.h"

#include <bit>

#include "util/logging.h"

namespace deepdive {

BitVector::BitVector(size_t n, bool value) { Resize(n, value); }

void BitVector::Resize(size_t n, bool value) {
  const size_t old_size = size_;
  const size_t words = (n + 63) / 64;
  words_.resize(words, value ? ~uint64_t{0} : 0);
  size_ = n;
  if (value && n > old_size && old_size % 64 != 0) {
    // The partially used word kept stale zero bits; set the new ones.
    for (size_t i = old_size; i < std::min(n, (old_size / 64 + 1) * 64); ++i) {
      Set(i, true);
    }
  }
  // Clear bits beyond size in the last word so PopCount stays exact.
  if (n % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (n % 64)) - 1;
  }
}

size_t BitVector::PopCount() const {
  size_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

size_t BitVector::HammingDistance(const BitVector& other) const {
  DD_CHECK_EQ(size_, other.size_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] ^ other.words_[i]);
  }
  return total;
}

}  // namespace deepdive
