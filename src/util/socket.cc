#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace deepdive {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// "HOST:PORT" -> (host, port). Rejects missing or non-numeric ports.
Status SplitHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon + 1 >= address.size()) {
    return Status::InvalidArgument("expected HOST:PORT or unix:PATH, got '" +
                                   address + "'");
  }
  *host = address.substr(0, colon);
  char* end = nullptr;
  const unsigned long value = std::strtoul(address.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || value > 65535) {
    return Status::InvalidArgument("bad port in '" + address + "'");
  }
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

bool IsUnixAddress(const std::string& address) {
  return address.rfind("unix:", 0) == 0;
}

StatusOr<Socket> MakeUnixSocket(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: '" +
                                   path + "'");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  return Socket(fd);
}

StatusOr<Socket> MakeTcpSocket(const std::string& host, uint16_t port,
                               sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host '" + host +
                                   "' (use a numeric address)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  Socket socket(fd);
  // Request/response framing sends small frames; Nagle only adds latency.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::SendAll(const void* data, size_t len) const {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len) const {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::Internal("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Listener> Listen(const std::string& address, int backlog) {
  Listener listener;
  if (IsUnixAddress(address)) {
    const std::string path = address.substr(5);
    sockaddr_un addr;
    DD_ASSIGN_OR_RETURN(listener.socket, MakeUnixSocket(path, &addr));
    ::unlink(path.c_str());  // replace a stale socket file from a dead daemon
    if (::bind(listener.socket.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Errno("bind(" + address + ")");
    }
    listener.address = address;
  } else {
    std::string host;
    uint16_t port = 0;
    DD_RETURN_IF_ERROR(SplitHostPort(address, &host, &port));
    sockaddr_in addr;
    DD_ASSIGN_OR_RETURN(listener.socket, MakeTcpSocket(host, port, &addr));
    int one = 1;
    ::setsockopt(listener.socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(listener.socket.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Errno("bind(" + address + ")");
    }
    // Report the port the kernel actually assigned (ephemeral-port case).
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listener.socket.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) < 0) {
      return Errno("getsockname");
    }
    listener.port = ntohs(bound.sin_port);
    listener.address = host + ":" + std::to_string(listener.port);
  }
  if (::listen(listener.socket.fd(), backlog) < 0) {
    return Errno("listen(" + address + ")");
  }
  return listener;
}

StatusOr<Socket> Accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    // EINVAL/EBADF arrive when another thread shut the listener down — the
    // accept loop's clean exit; everything else is a real failure.
    if (errno == EINVAL || errno == EBADF) {
      return Status::NotFound("listener shut down");
    }
    return Errno("accept");
  }
}

StatusOr<Socket> Connect(const std::string& address) {
  if (IsUnixAddress(address)) {
    const std::string path = address.substr(5);
    sockaddr_un addr;
    DD_ASSIGN_OR_RETURN(Socket socket, MakeUnixSocket(path, &addr));
    if (::connect(socket.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      return Errno("connect(" + address + ")");
    }
    return socket;
  }
  std::string host;
  uint16_t port = 0;
  DD_RETURN_IF_ERROR(SplitHostPort(address, &host, &port));
  sockaddr_in addr;
  DD_ASSIGN_OR_RETURN(Socket socket, MakeTcpSocket(host, port, &addr));
  if (::connect(socket.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Errno("connect(" + address + ")");
  }
  return socket;
}

}  // namespace deepdive
