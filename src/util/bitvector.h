#ifndef DEEPDIVE_UTIL_BITVECTOR_H_
#define DEEPDIVE_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepdive {

/// Fixed-size packed bit vector. One bit per Boolean random variable; the
/// sampling materialization stores worlds as rows of these "tuple bundles"
/// (MCDB-style), so a 100-sample materialization costs n*100 bits.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool value = false);

  size_t size() const { return size_; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(size_t i, bool value) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Resizes, preserving existing bits; new bits are `value`.
  void Resize(size_t n, bool value = false);

  /// Number of set bits.
  size_t PopCount() const;

  /// Number of positions where this and `other` differ. Sizes must match.
  size_t HammingDistance(const BitVector& other) const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Storage footprint in bytes (for the materialization-space accounting
  /// reported in the paper's Section 3.2.2).
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_BITVECTOR_H_
