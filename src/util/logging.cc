#include "util/logging.h"

#include <atomic>

#include "util/status.h"

namespace deepdive {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories for terse output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace deepdive
