#ifndef DEEPDIVE_UTIL_THREAD_POOL_H_
#define DEEPDIVE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace deepdive {

/// Fixed-size worker pool for data-parallel inference (the DimmWitted-style
/// execution backbone: one pool, many Gibbs/grounding shards). Tasks are
/// plain std::function<void()>; Wait() blocks until every submitted task has
/// finished, which together with the internal mutex gives the caller a
/// happens-before edge over all worker writes (so relaxed-atomic world state
/// read after Wait() is quiescent and consistent). Symmetrically, Submit
/// publishes everything the calling thread wrote before the call to the
/// worker that runs the task — both edges go through `mu_`, so data handed
/// between a ParallelFor join and a later Submit needs no fences of its own
/// (parallel_gibbs.cc's RecomputeStats documents the one place this contract
/// is load-bearing for relaxed-atomic statistics).
///
/// A pool constructed with `num_threads <= 1` starts no workers; Submit and
/// ParallelFor then run inline on the calling thread, so sequential
/// configurations pay no synchronization cost and stay deterministic.
///
/// Pass `inline_when_single = false` to force dedicated workers even for a
/// single-thread pool: Submit then never runs on the calling thread, which is
/// what background jobs (e.g. async materialization) need to return without
/// blocking.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, bool inline_when_single = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 when running inline).
  size_t size() const { return workers_.size(); }

  /// Shards ParallelFor splits work into: max(1, size()).
  size_t shards() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Enqueues a task (or runs it inline when there are no workers).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Partitions [0, n) into `shards()` contiguous ranges and runs
  /// body(shard, begin, end) for each non-empty range, blocking until all
  /// complete. Shard s always maps to the same range for a given n, so
  /// per-shard RNG streams resample the same variables every sweep.
  void ParallelFor(size_t n,
                   const std::function<void(size_t shard, size_t begin, size_t end)>& body);

  /// Hardware concurrency with a sane floor of 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  /// Worker threads. The one sanctioned home of raw std::thread in src/ (see
  /// tools/concurrency_lint.py): everything else shards through a pool.
  /// Written only by the constructor and joined by the destructor; size() is
  /// safe from any thread because the vector is never resized in between.
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // queued + running
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_THREAD_POOL_H_
