#ifndef DEEPDIVE_UTIL_THREAD_ANNOTATIONS_H_
#define DEEPDIVE_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (-Wthread-safety), compiled to
/// nothing on GCC and other compilers. The macros follow the capability
/// vocabulary of the Clang documentation: a *capability* is a resource a
/// thread can hold (a mutex, or a fake-lock "thread role" like the serving
/// thread — see util/thread_role.h); functions declare what they REQUIRES /
/// ACQUIRE / RELEASE / EXCLUDES, data members declare the capability that
/// GUARDED_BY protects them, and Clang proves every access consistent at
/// compile time — for every interleaving, not just the ones a test happens
/// to hit.
///
/// The build enables the analysis (and promotes its findings to errors) on
/// Clang only; see DEEPDIVE_THREAD_SAFETY in CMakeLists.txt. GCC builds see
/// empty macros and identical code.
///
/// Project conventions:
///  - Mutex-guarded state uses deepdive::Mutex (util/mutex.h), not a raw
///    std::mutex: libstdc++'s mutex types carry no annotations, so the
///    analysis cannot see std::lock_guard acquisitions.
///  - Serving-thread-only state is guarded by the deepdive::serving_thread
///    role capability (util/thread_role.h) instead of comments.
///  - Hogwild-exempt state (AtomicWorld's relaxed counters) is deliberately
///    unannotated; see README.md "Concurrency contracts".

#if defined(__clang__)
#define DD_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DD_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable) type. The string names the
/// capability kind in diagnostics, e.g. CAPABILITY("mutex") or
/// CAPABILITY("role").
#define CAPABILITY(x) DD_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability (e.g. MutexLock, ScopedThreadRole).
#define SCOPED_CAPABILITY DD_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member: may only be read/written while holding `x`.
#define GUARDED_BY(x) DD_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`.
#define PT_GUARDED_BY(x) DD_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function: caller must hold the capability (exclusively / shared).
#define REQUIRES(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function: acquires the capability (held on return, not at entry).
#define ACQUIRE(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function: releases the capability (held at entry, not on return).
#define RELEASE(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function: acquires the capability iff the return value equals the first
/// argument, e.g. TRY_ACQUIRE(true) on a bool TryLock().
#define TRY_ACQUIRE(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Function: must NOT be called with the capability held (non-reentrancy /
/// deadlock protection).
#define EXCLUDES(...) DD_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function: declares (asserts) that the capability is held from this call
/// onward, without acquiring it — the bridge for facts the analysis cannot
/// derive, e.g. "this function runs on the serving thread by construction".
#define ASSERT_CAPABILITY(x) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function: returns a reference to the given capability (accessor pattern).
#define RETURN_CAPABILITY(x) DD_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  DD_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // DEEPDIVE_UTIL_THREAD_ANNOTATIONS_H_
