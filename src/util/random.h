#ifndef DEEPDIVE_UTIL_RANDOM_H_
#define DEEPDIVE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepdive {

/// Fast deterministic PRNG (xoshiro256**). All stochastic components
/// (Gibbs, MH, corpus generation) take an explicit Rng so experiments are
/// reproducible and tests can pin seeds.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean / stddev.
  double Gaussian(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index proportionally to the (non-negative) weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle of [0, n) stored in `perm`.
  void Shuffle(std::vector<uint32_t>* perm);

  /// Derives a decorrelated seed for stream `stream` of a base seed
  /// (splitmix64 finalizer). Parallel samplers give worker t the stream-t
  /// seed so Hogwild chains never share RNG state.
  static uint64_t MixSeed(uint64_t seed, uint64_t stream);

  /// Two-level keying: a decorrelated seed for (stream, substream) of a base
  /// seed. Parallel samplers key their worker streams by (seed, replica,
  /// worker) through this, so two samplers sharing a base seed but running
  /// as different replicas/chains never produce correlated streams — which a
  /// flat worker index alone cannot guarantee.
  static uint64_t MixSeed(uint64_t seed, uint64_t stream, uint64_t substream) {
    return MixSeed(MixSeed(seed, stream), substream);
  }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace deepdive

#endif  // DEEPDIVE_UTIL_RANDOM_H_
