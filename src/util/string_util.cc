#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace deepdive {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\n' || text[b] == '\r')) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' || text[e - 1] == '\n' ||
                   text[e - 1] == '\r'))
    --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace deepdive
