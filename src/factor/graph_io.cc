#include "factor/graph_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

namespace deepdive::factor {

Status SaveCompiledGraph(const CompiledGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");

  // The image is the file format; only the checksum (it covers the current,
  // possibly learner-updated weight values) and the weight-value section
  // differ from the attached bytes.
  CompiledGraphHeader header;
  std::memcpy(&header, graph.image_data(), sizeof(header));
  header.checksum = graph.Checksum();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  const CompiledSectionEntry& wsec = header.sections[kSecWeightValues];
  const auto* base = reinterpret_cast<const char*>(graph.image_data());
  out.write(base + sizeof(header),
            static_cast<std::streamsize>(wsec.offset - sizeof(header)));
  std::vector<double> weights(graph.NumWeights());
  for (WeightId w = 0; w < graph.NumWeights(); ++w) weights[w] = graph.WeightValue(w);
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(wsec.bytes));
  out.write(base + wsec.offset + wsec.bytes,
            static_cast<std::streamsize>(graph.image_bytes() - wsec.offset - wsec.bytes));
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<CompiledGraph> LoadCompiledGraph(const std::string& path,
                                          const GraphLoadOptions& options) {
  if (options.use_mmap) {
    auto mapped = MmapFile::Open(path);
    if (mapped.ok()) {
      return CompiledGraph::FromMmap(std::move(mapped).value(), options.validate);
    }
    if (mapped.status().code() != StatusCode::kUnimplemented) {
      return mapped.status();
    }
    // No mmap on this platform: fall through to the buffered path.
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> image(static_cast<size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(image.data()), size);
  if (!in) return Status::Internal("read from '" + path + "' failed");
  return CompiledGraph::FromImage(std::move(image), options.validate);
}

Status SaveGraph(const FactorGraph& graph, const std::string& path) {
  return SaveCompiledGraph(CompiledGraph::Compile(graph), path);
}

StatusOr<FactorGraph> LoadGraph(const std::string& path,
                                const GraphLoadOptions& options) {
  auto compiled = LoadCompiledGraph(path, options);
  DD_RETURN_IF_ERROR(compiled.status());
  return compiled.value().Decompile();
}

bool GraphsEqual(const FactorGraph& a, const FactorGraph& b) {
  if (a.NumVariables() != b.NumVariables() || a.NumWeights() != b.NumWeights() ||
      a.NumGroups() != b.NumGroups() || a.NumClauses() != b.NumClauses()) {
    return false;
  }
  for (VarId v = 0; v < a.NumVariables(); ++v) {
    if (a.EvidenceValue(v) != b.EvidenceValue(v)) return false;
  }
  for (WeightId w = 0; w < a.NumWeights(); ++w) {
    if (a.weight(w).value != b.weight(w).value ||
        a.weight(w).learnable != b.weight(w).learnable ||
        a.weight(w).description != b.weight(w).description) {
      return false;
    }
  }
  for (GroupId g = 0; g < a.NumGroups(); ++g) {
    const FactorGroup& ga = a.group(g);
    const FactorGroup& gb = b.group(g);
    if (ga.rule_id != gb.rule_id || ga.head != gb.head || ga.weight != gb.weight ||
        ga.semantics != gb.semantics || ga.active != gb.active ||
        ga.clauses.size() != gb.clauses.size()) {
      return false;
    }
    for (size_t c = 0; c < ga.clauses.size(); ++c) {
      const Clause& ca = a.clause(ga.clauses[c]);
      const Clause& cb = b.clause(gb.clauses[c]);
      if (ca.active != cb.active || ca.literals.size() != cb.literals.size()) {
        return false;
      }
      for (size_t l = 0; l < ca.literals.size(); ++l) {
        if (ca.literals[l].var != cb.literals[l].var ||
            ca.literals[l].negated != cb.literals[l].negated) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace deepdive::factor
