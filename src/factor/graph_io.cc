#include "factor/graph_io.h"

#include <cstdint>
#include <fstream>

namespace deepdive::factor {

namespace {

constexpr uint64_t kMagic = 0xdd11f4c7'06172026ULL;

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t n = 0;
  if (!ReadPod(in, &n)) return false;
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveGraph(const FactorGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");

  WritePod(out, kMagic);
  WritePod<uint64_t>(out, graph.NumVariables());
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    const int8_t tag = !ev.has_value() ? 0 : (*ev ? 1 : -1);
    WritePod(out, tag);
  }
  WritePod<uint64_t>(out, graph.NumWeights());
  for (WeightId w = 0; w < graph.NumWeights(); ++w) {
    const Weight& weight = graph.weight(w);
    WritePod(out, weight.value);
    WritePod<uint8_t>(out, weight.learnable ? 1 : 0);
    WriteString(out, weight.description);
  }
  WritePod<uint64_t>(out, graph.NumGroups());
  for (GroupId g = 0; g < graph.NumGroups(); ++g) {
    const FactorGroup& group = graph.group(g);
    WritePod(out, group.rule_id);
    WritePod(out, group.head);
    WritePod(out, group.weight);
    WritePod<uint8_t>(out, static_cast<uint8_t>(group.semantics));
    WritePod<uint8_t>(out, group.active ? 1 : 0);
    WritePod<uint64_t>(out, group.clauses.size());
    for (ClauseId cid : group.clauses) {
      const Clause& clause = graph.clause(cid);
      WritePod<uint8_t>(out, clause.active ? 1 : 0);
      WritePod<uint64_t>(out, clause.literals.size());
      for (const Literal& lit : clause.literals) {
        WritePod(out, lit.var);
        WritePod<uint8_t>(out, lit.negated ? 1 : 0);
      }
    }
  }
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<FactorGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  uint64_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a factor graph snapshot");
  }
  FactorGraph graph;
  uint64_t num_vars = 0;
  if (!ReadPod(in, &num_vars)) return Status::InvalidArgument("truncated snapshot");
  if (num_vars > 0) graph.AddVariables(num_vars);
  for (uint64_t v = 0; v < num_vars; ++v) {
    int8_t tag = 0;
    if (!ReadPod(in, &tag)) return Status::InvalidArgument("truncated snapshot");
    if (tag != 0) graph.SetEvidence(static_cast<VarId>(v), tag > 0);
  }
  uint64_t num_weights = 0;
  if (!ReadPod(in, &num_weights)) return Status::InvalidArgument("truncated snapshot");
  for (uint64_t w = 0; w < num_weights; ++w) {
    double value = 0.0;
    uint8_t learnable = 0;
    std::string description;
    if (!ReadPod(in, &value) || !ReadPod(in, &learnable) ||
        !ReadString(in, &description)) {
      return Status::InvalidArgument("truncated snapshot");
    }
    graph.AddWeight(value, learnable != 0, std::move(description));
  }
  uint64_t num_groups = 0;
  if (!ReadPod(in, &num_groups)) return Status::InvalidArgument("truncated snapshot");
  for (uint64_t g = 0; g < num_groups; ++g) {
    uint32_t rule_id = 0;
    VarId head = 0;
    WeightId weight = 0;
    uint8_t semantics = 0, active = 0;
    uint64_t num_clauses = 0;
    if (!ReadPod(in, &rule_id) || !ReadPod(in, &head) || !ReadPod(in, &weight) ||
        !ReadPod(in, &semantics) || !ReadPod(in, &active) || !ReadPod(in, &num_clauses)) {
      return Status::InvalidArgument("truncated snapshot");
    }
    const GroupId gid =
        graph.AddGroup(rule_id, head, weight, static_cast<Semantics>(semantics));
    for (uint64_t c = 0; c < num_clauses; ++c) {
      uint8_t clause_active = 1;
      uint64_t num_lits = 0;
      if (!ReadPod(in, &clause_active) || !ReadPod(in, &num_lits)) {
        return Status::InvalidArgument("truncated snapshot");
      }
      std::vector<Literal> lits;
      lits.reserve(num_lits);
      for (uint64_t l = 0; l < num_lits; ++l) {
        Literal lit;
        uint8_t negated = 0;
        if (!ReadPod(in, &lit.var) || !ReadPod(in, &negated)) {
          return Status::InvalidArgument("truncated snapshot");
        }
        lit.negated = negated != 0;
        lits.push_back(lit);
      }
      const ClauseId cid = graph.AddClause(gid, std::move(lits));
      if (clause_active == 0) graph.DeactivateClause(cid);
    }
    if (active == 0) graph.DeactivateGroup(gid);
  }
  return graph;
}

bool GraphsEqual(const FactorGraph& a, const FactorGraph& b) {
  if (a.NumVariables() != b.NumVariables() || a.NumWeights() != b.NumWeights() ||
      a.NumGroups() != b.NumGroups() || a.NumClauses() != b.NumClauses()) {
    return false;
  }
  for (VarId v = 0; v < a.NumVariables(); ++v) {
    if (a.EvidenceValue(v) != b.EvidenceValue(v)) return false;
  }
  for (WeightId w = 0; w < a.NumWeights(); ++w) {
    if (a.weight(w).value != b.weight(w).value ||
        a.weight(w).learnable != b.weight(w).learnable ||
        a.weight(w).description != b.weight(w).description) {
      return false;
    }
  }
  for (GroupId g = 0; g < a.NumGroups(); ++g) {
    const FactorGroup& ga = a.group(g);
    const FactorGroup& gb = b.group(g);
    if (ga.rule_id != gb.rule_id || ga.head != gb.head || ga.weight != gb.weight ||
        ga.semantics != gb.semantics || ga.active != gb.active ||
        ga.clauses.size() != gb.clauses.size()) {
      return false;
    }
    for (size_t c = 0; c < ga.clauses.size(); ++c) {
      const Clause& ca = a.clause(ga.clauses[c]);
      const Clause& cb = b.clause(gb.clauses[c]);
      if (ca.active != cb.active || ca.literals.size() != cb.literals.size()) {
        return false;
      }
      for (size_t l = 0; l < ca.literals.size(); ++l) {
        if (ca.literals[l].var != cb.literals[l].var ||
            ca.literals[l].negated != cb.literals[l].negated) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace deepdive::factor
