#include "factor/semantics.h"

#include <cmath>

#include "util/logging.h"

namespace deepdive::factor {

const char* SemanticsName(Semantics semantics) {
  switch (semantics) {
    case Semantics::kLinear:
      return "linear";
    case Semantics::kRatio:
      return "ratio";
    case Semantics::kLogical:
      return "logical";
  }
  return "?";
}

double GCount(Semantics semantics, int64_t n) {
  DD_CHECK_GE(n, 0);
  switch (semantics) {
    case Semantics::kLinear:
      return static_cast<double>(n);
    case Semantics::kRatio:
      return std::log1p(static_cast<double>(n));
    case Semantics::kLogical:
      return n > 0 ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace deepdive::factor
