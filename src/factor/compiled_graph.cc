#include "factor/compiled_graph.h"

#include <cstring>
#include <string>

#include "util/logging.h"

namespace deepdive::factor {

namespace {

constexpr size_t kSectionAlign = 64;
constexpr uint32_t kDroppedId = static_cast<uint32_t>(-1);
/// Ceiling on any element count in a snapshot (2^40 elements); rejects
/// fabricated headers whose count*stride products would overflow 64 bits.
constexpr uint64_t kMaxCount = uint64_t{1} << 40;

size_t AlignUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

struct SectionSpec {
  uint64_t count = 0;
  uint64_t stride = 1;  // bytes per element (1 for raw blobs)
  uint64_t bytes() const { return count * stride; }
};

/// The expected size of every section, derived from the header counts. This
/// single table drives both the writer's layout and the reader's bounds
/// validation, so they cannot drift.
void SectionSpecs(const CompiledGraphHeader& h, SectionSpec out[kNumCompiledSections]) {
  out[kSecEvidence] = {h.num_variables, sizeof(int8_t)};
  out[kSecWeightValues] = {h.num_weights, sizeof(double)};
  out[kSecWeightLearnable] = {h.num_weights, sizeof(uint8_t)};
  out[kSecWeightDescOffsets] = {h.num_weights + 1, sizeof(uint64_t)};
  out[kSecWeightDescBlob] = {h.desc_blob_bytes, 1};
  out[kSecWeightGroupOffsets] = {h.num_weights + 1, sizeof(uint64_t)};
  out[kSecWeightGroups] = {h.num_weight_group_refs, sizeof(GroupId)};
  out[kSecGroups] = {h.num_groups, sizeof(CompiledGroup)};
  out[kSecGroupOrigIds] = {h.num_groups, sizeof(uint32_t)};
  out[kSecGroupClauseOffsets] = {h.num_groups + 1, sizeof(uint64_t)};
  out[kSecGroupClauses] = {h.num_clauses, sizeof(ClauseId)};
  out[kSecClauseGroups] = {h.num_clauses, sizeof(GroupId)};
  out[kSecClauseOrigIds] = {h.num_clauses, sizeof(uint32_t)};
  out[kSecClauseLitOffsets] = {h.num_clauses + 1, sizeof(uint64_t)};
  out[kSecLiterals] = {h.num_literals, sizeof(CompiledLiteral)};
  out[kSecHeadOffsets] = {h.num_variables + 1, sizeof(uint64_t)};
  out[kSecHeadGroups] = {h.num_head_refs, sizeof(GroupId)};
  out[kSecBodyOffsets] = {h.num_variables + 1, sizeof(uint64_t)};
  out[kSecBodyRefs] = {h.num_body_refs, sizeof(CompiledBodyRef)};
}

/// Always-on structural validation: header sanity plus section bounds. After
/// this passes, every section pointer is within the image and correctly
/// sized, so typed pointer fixup is safe (contents may still be garbage —
/// that is the deep pass's job).
Status ValidateShallow(const uint8_t* base, size_t bytes) {
  if (bytes < sizeof(CompiledGraphHeader)) {
    return Status::InvalidArgument("snapshot truncated: shorter than its header");
  }
  CompiledGraphHeader h;
  std::memcpy(&h, base, sizeof(h));  // the image may be unaligned in tests
  if (h.magic != kCompiledGraphMagic) {
    return Status::InvalidArgument("not a compiled factor-graph snapshot (bad magic)");
  }
  if (h.endian != kCompiledGraphEndian) {
    return Status::InvalidArgument("snapshot written with foreign endianness");
  }
  if (h.version != kCompiledGraphVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(h.version) + " (expected " +
                                   std::to_string(kCompiledGraphVersion) + ")");
  }
  if (h.total_bytes != bytes) {
    return Status::InvalidArgument(
        "snapshot truncated or padded: header claims " + std::to_string(h.total_bytes) +
        " bytes, file has " + std::to_string(bytes));
  }
  const uint64_t counts[] = {h.num_variables,  h.num_weights,   h.num_groups,
                             h.num_clauses,    h.num_literals,  h.num_head_refs,
                             h.num_body_refs,  h.num_weight_group_refs,
                             h.desc_blob_bytes};
  for (const uint64_t c : counts) {
    if (c > kMaxCount) return Status::InvalidArgument("snapshot count out of range");
  }
  SectionSpec specs[kNumCompiledSections];
  SectionSpecs(h, specs);
  for (size_t s = 0; s < kNumCompiledSections; ++s) {
    const CompiledSectionEntry& sec = h.sections[s];
    if (sec.bytes != specs[s].bytes()) {
      return Status::InvalidArgument("snapshot section " + std::to_string(s) +
                                     " size disagrees with header counts");
    }
    if (sec.offset < sizeof(CompiledGraphHeader) || sec.offset % 8 != 0 ||
        sec.offset > bytes || sec.bytes > bytes - sec.offset) {
      return Status::InvalidArgument("snapshot section " + std::to_string(s) +
                                     " out of bounds");
    }
  }
  return Status::OK();
}

Status CheckOffsets(const uint64_t* offsets, uint64_t n, uint64_t expected_total,
                    const char* what) {
  if (offsets[0] != 0) {
    return Status::InvalidArgument(std::string(what) + " offsets must start at 0");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return Status::InvalidArgument(std::string(what) + " offsets not monotone");
    }
  }
  if (offsets[n] != expected_total) {
    return Status::InvalidArgument(std::string(what) +
                                   " offsets disagree with the section count");
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1aHash(const void* data, size_t bytes, uint64_t seed) {
  // Word-at-a-time FNV-1a (see the header contract): 8-byte little-endian
  // words feed the round function, the tail is zero-padded into one final
  // word. Chaining across spans stays equivalent to hashing their
  // concatenation as long as every intermediate span is 8-byte aligned,
  // which the section layout guarantees (all offsets and the weight section
  // are 64-bit aligned).
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t h = seed;
  const auto* p = static_cast<const uint8_t*>(data);
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t w;  // memcpy compiles to an unaligned load
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= kPrime;
  }
  if (i < bytes) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, bytes - i);
    h ^= w;
    h *= kPrime;
  }
  return h;
}

Status CompiledGraph::Attach(bool validate) {
  DD_RETURN_IF_ERROR(ValidateShallow(base_, bytes_));
  header_ = reinterpret_cast<const CompiledGraphHeader*>(base_);
  const CompiledGraphHeader& h = *header_;
  num_variables_ = static_cast<size_t>(h.num_variables);
  num_weights_ = static_cast<size_t>(h.num_weights);
  num_groups_ = static_cast<size_t>(h.num_groups);
  num_clauses_ = static_cast<size_t>(h.num_clauses);

  auto sec = [&](CompiledSection s) { return base_ + h.sections[s].offset; };
  evidence_ = reinterpret_cast<const int8_t*>(sec(kSecEvidence));
  weight_learnable_ = reinterpret_cast<const uint8_t*>(sec(kSecWeightLearnable));
  weight_desc_offsets_ = reinterpret_cast<const uint64_t*>(sec(kSecWeightDescOffsets));
  weight_desc_blob_ = reinterpret_cast<const char*>(sec(kSecWeightDescBlob));
  weight_group_offsets_ = reinterpret_cast<const uint64_t*>(sec(kSecWeightGroupOffsets));
  weight_groups_ = reinterpret_cast<const GroupId*>(sec(kSecWeightGroups));
  groups_ = reinterpret_cast<const CompiledGroup*>(sec(kSecGroups));
  group_orig_ids_ = reinterpret_cast<const uint32_t*>(sec(kSecGroupOrigIds));
  group_clause_offsets_ = reinterpret_cast<const uint64_t*>(sec(kSecGroupClauseOffsets));
  group_clauses_ = reinterpret_cast<const ClauseId*>(sec(kSecGroupClauses));
  clause_groups_ = reinterpret_cast<const GroupId*>(sec(kSecClauseGroups));
  clause_orig_ids_ = reinterpret_cast<const uint32_t*>(sec(kSecClauseOrigIds));
  clause_lit_offsets_ = reinterpret_cast<const uint64_t*>(sec(kSecClauseLitOffsets));
  literals_ = reinterpret_cast<const CompiledLiteral*>(sec(kSecLiterals));
  head_offsets_ = reinterpret_cast<const uint64_t*>(sec(kSecHeadOffsets));
  head_groups_ = reinterpret_cast<const GroupId*>(sec(kSecHeadGroups));
  body_offsets_ = reinterpret_cast<const uint64_t*>(sec(kSecBodyOffsets));
  body_refs_ = reinterpret_cast<const CompiledBodyRef*>(sec(kSecBodyRefs));

  if (validate) {
    if (Fnv1aHash(base_ + sizeof(CompiledGraphHeader),
                  bytes_ - sizeof(CompiledGraphHeader)) != h.checksum) {
      return Status::InvalidArgument("snapshot payload checksum mismatch (corrupt file)");
    }
    for (size_t v = 0; v < num_variables_; ++v) {
      if (evidence_[v] < -1 || evidence_[v] > 1) {
        return Status::InvalidArgument("snapshot evidence tag out of range");
      }
    }
    DD_RETURN_IF_ERROR(CheckOffsets(weight_desc_offsets_, h.num_weights,
                                    h.desc_blob_bytes, "weight description"));
    DD_RETURN_IF_ERROR(CheckOffsets(weight_group_offsets_, h.num_weights,
                                    h.num_weight_group_refs, "weight-group"));
    for (uint64_t i = 0; i < h.num_weight_group_refs; ++i) {
      if (weight_groups_[i] >= num_groups_) {
        return Status::InvalidArgument("snapshot weight-group id out of range");
      }
    }
    for (size_t g = 0; g < num_groups_; ++g) {
      const CompiledGroup& group = groups_[g];
      if (group.head >= num_variables_ || group.weight >= num_weights_ ||
          static_cast<uint8_t>(group.semantics) > 2) {
        return Status::InvalidArgument("snapshot group record out of range");
      }
    }
    DD_RETURN_IF_ERROR(CheckOffsets(group_clause_offsets_, h.num_groups,
                                    h.num_clauses, "group-clause"));
    for (size_t g = 0; g < num_groups_; ++g) {
      for (const ClauseId c : GroupClauses(static_cast<GroupId>(g))) {
        if (c >= num_clauses_ || clause_groups_[c] != g) {
          return Status::InvalidArgument(
              "snapshot group-clause adjacency inconsistent");
        }
      }
    }
    DD_RETURN_IF_ERROR(CheckOffsets(clause_lit_offsets_, h.num_clauses,
                                    h.num_literals, "clause-literal"));
    for (size_t c = 0; c < num_clauses_; ++c) {
      if (clause_groups_[c] >= num_groups_) {
        return Status::InvalidArgument("snapshot clause group id out of range");
      }
      const VarId head = groups_[clause_groups_[c]].head;
      for (const CompiledLiteral& lit : ClauseLiterals(static_cast<ClauseId>(c))) {
        if (lit.var >= num_variables_ || lit.negated > 1 || lit.var == head) {
          return Status::InvalidArgument("snapshot literal out of range");
        }
      }
    }
    DD_RETURN_IF_ERROR(CheckOffsets(head_offsets_, h.num_variables,
                                    h.num_head_refs, "head-group"));
    for (size_t v = 0; v < num_variables_; ++v) {
      for (const GroupId g : HeadGroups(static_cast<VarId>(v))) {
        if (g >= num_groups_ || groups_[g].head != v) {
          return Status::InvalidArgument("snapshot head-group adjacency inconsistent");
        }
      }
    }
    DD_RETURN_IF_ERROR(CheckOffsets(body_offsets_, h.num_variables,
                                    h.num_body_refs, "body-ref"));
    for (uint64_t i = 0; i < h.num_body_refs; ++i) {
      if (body_refs_[i].clause >= num_clauses_ || body_refs_[i].negated > 1) {
        return Status::InvalidArgument("snapshot body ref out of range");
      }
    }
  }

  // The learner mutates weight values, and the image may be a read-only
  // mapping — so values live in an owned array regardless of backing.
  weight_values_.resize(num_weights_);
  if (num_weights_ > 0) {
    std::memcpy(weight_values_.data(), sec(kSecWeightValues),
                num_weights_ * sizeof(double));
  }
  return Status::OK();
}

StatusOr<CompiledGraph> CompiledGraph::FromImage(std::vector<uint8_t> image,
                                                 bool validate) {
  CompiledGraph graph;
  graph.owned_ = std::move(image);
  graph.base_ = graph.owned_.data();
  graph.bytes_ = graph.owned_.size();
  DD_RETURN_IF_ERROR(graph.Attach(validate));
  return graph;
}

StatusOr<CompiledGraph> CompiledGraph::FromMmap(MmapFile mmap, bool validate) {
  CompiledGraph graph;
  graph.mmap_ = std::move(mmap);
  graph.base_ = graph.mmap_.data();
  graph.bytes_ = graph.mmap_.size();
  DD_RETURN_IF_ERROR(graph.Attach(validate));
  return graph;
}

CompiledGraph CompiledGraph::Compile(const FactorGraph& graph) {
  const size_t num_vars = graph.NumVariables();
  const size_t num_weights = graph.NumWeights();

  // Compaction maps: active groups, and active clauses of active groups,
  // keep their original relative order (what preserves the mutable kernel's
  // iteration — and therefore floating-point and RNG — order exactly).
  std::vector<uint32_t> group_map(graph.NumGroups(), kDroppedId);
  std::vector<uint32_t> clause_map(graph.NumClauses(), kDroppedId);
  std::vector<GroupId> kept_groups;
  std::vector<ClauseId> kept_clauses;
  for (GroupId g = 0; g < graph.NumGroups(); ++g) {
    if (!graph.group(g).active) continue;
    group_map[g] = static_cast<uint32_t>(kept_groups.size());
    kept_groups.push_back(g);
  }
  uint64_t num_literals = 0;
  for (ClauseId c = 0; c < graph.NumClauses(); ++c) {
    const Clause& clause = graph.clause(c);
    if (!clause.active || group_map[clause.group] == kDroppedId) continue;
    clause_map[c] = static_cast<uint32_t>(kept_clauses.size());
    kept_clauses.push_back(c);
    num_literals += clause.literals.size();
  }

  CompiledGraphHeader h;
  h.num_variables = num_vars;
  h.num_weights = num_weights;
  h.num_groups = kept_groups.size();
  h.num_clauses = kept_clauses.size();
  h.num_literals = num_literals;
  for (VarId v = 0; v < num_vars; ++v) {
    for (const GroupId g : graph.HeadGroups(v)) {
      if (group_map[g] != kDroppedId) ++h.num_head_refs;
    }
    for (const BodyRef& ref : graph.BodyRefs(v)) {
      if (clause_map[ref.clause] != kDroppedId) ++h.num_body_refs;
    }
  }
  for (WeightId w = 0; w < num_weights; ++w) {
    h.desc_blob_bytes += graph.weight(w).description.size();
    for (const GroupId g : graph.GroupsForWeight(w)) {
      if (group_map[g] != kDroppedId) ++h.num_weight_group_refs;
    }
  }

  SectionSpec specs[kNumCompiledSections];
  SectionSpecs(h, specs);
  size_t cursor = sizeof(CompiledGraphHeader);
  for (size_t s = 0; s < kNumCompiledSections; ++s) {
    cursor = AlignUp(cursor, kSectionAlign);
    h.sections[s].offset = cursor;
    h.sections[s].bytes = specs[s].bytes();
    cursor += static_cast<size_t>(specs[s].bytes());
  }
  h.total_bytes = AlignUp(cursor, kSectionAlign);

  std::vector<uint8_t> image(static_cast<size_t>(h.total_bytes), 0);
  auto sec = [&](CompiledSection s) { return image.data() + h.sections[s].offset; };

  auto* evidence = reinterpret_cast<int8_t*>(sec(kSecEvidence));
  for (VarId v = 0; v < num_vars; ++v) {
    const auto ev = graph.EvidenceValue(v);
    evidence[v] = !ev.has_value() ? 0 : (*ev ? 1 : -1);
  }

  auto* wvalues = reinterpret_cast<double*>(sec(kSecWeightValues));
  auto* wlearn = reinterpret_cast<uint8_t*>(sec(kSecWeightLearnable));
  auto* wdesc_off = reinterpret_cast<uint64_t*>(sec(kSecWeightDescOffsets));
  auto* wdesc_blob = reinterpret_cast<char*>(sec(kSecWeightDescBlob));
  auto* wgroup_off = reinterpret_cast<uint64_t*>(sec(kSecWeightGroupOffsets));
  auto* wgroups = reinterpret_cast<GroupId*>(sec(kSecWeightGroups));
  uint64_t desc_cursor = 0, wg_cursor = 0;
  for (WeightId w = 0; w < num_weights; ++w) {
    const Weight& weight = graph.weight(w);
    wvalues[w] = weight.value;
    wlearn[w] = weight.learnable ? 1 : 0;
    wdesc_off[w] = desc_cursor;
    std::memcpy(wdesc_blob + desc_cursor, weight.description.data(),
                weight.description.size());
    desc_cursor += weight.description.size();
    wgroup_off[w] = wg_cursor;
    for (const GroupId g : graph.GroupsForWeight(w)) {
      if (group_map[g] != kDroppedId) wgroups[wg_cursor++] = group_map[g];
    }
  }
  wdesc_off[num_weights] = desc_cursor;
  wgroup_off[num_weights] = wg_cursor;

  auto* groups = reinterpret_cast<CompiledGroup*>(sec(kSecGroups));
  auto* group_orig = reinterpret_cast<uint32_t*>(sec(kSecGroupOrigIds));
  auto* gclause_off = reinterpret_cast<uint64_t*>(sec(kSecGroupClauseOffsets));
  auto* gclauses = reinterpret_cast<ClauseId*>(sec(kSecGroupClauses));
  uint64_t gc_cursor = 0;
  for (size_t gi = 0; gi < kept_groups.size(); ++gi) {
    const FactorGroup& group = graph.group(kept_groups[gi]);
    groups[gi] = CompiledGroup{group.head, group.weight, group.rule_id,
                               group.semantics};
    group_orig[gi] = kept_groups[gi];
    gclause_off[gi] = gc_cursor;
    for (const ClauseId c : group.clauses) {
      if (clause_map[c] != kDroppedId) gclauses[gc_cursor++] = clause_map[c];
    }
  }
  gclause_off[kept_groups.size()] = gc_cursor;

  auto* clause_groups = reinterpret_cast<GroupId*>(sec(kSecClauseGroups));
  auto* clause_orig = reinterpret_cast<uint32_t*>(sec(kSecClauseOrigIds));
  auto* clit_off = reinterpret_cast<uint64_t*>(sec(kSecClauseLitOffsets));
  auto* literals = reinterpret_cast<CompiledLiteral*>(sec(kSecLiterals));
  uint64_t lit_cursor = 0;
  for (size_t ci = 0; ci < kept_clauses.size(); ++ci) {
    const Clause& clause = graph.clause(kept_clauses[ci]);
    clause_groups[ci] = group_map[clause.group];
    clause_orig[ci] = kept_clauses[ci];
    clit_off[ci] = lit_cursor;
    for (const Literal& lit : clause.literals) {
      literals[lit_cursor++] = CompiledLiteral{lit.var, lit.negated ? 1u : 0u};
    }
  }
  clit_off[kept_clauses.size()] = lit_cursor;

  auto* head_off = reinterpret_cast<uint64_t*>(sec(kSecHeadOffsets));
  auto* head_groups = reinterpret_cast<GroupId*>(sec(kSecHeadGroups));
  auto* body_off = reinterpret_cast<uint64_t*>(sec(kSecBodyOffsets));
  auto* body_refs = reinterpret_cast<CompiledBodyRef*>(sec(kSecBodyRefs));
  uint64_t head_cursor = 0, body_cursor = 0;
  for (VarId v = 0; v < num_vars; ++v) {
    head_off[v] = head_cursor;
    for (const GroupId g : graph.HeadGroups(v)) {
      if (group_map[g] != kDroppedId) head_groups[head_cursor++] = group_map[g];
    }
    body_off[v] = body_cursor;
    for (const BodyRef& ref : graph.BodyRefs(v)) {
      if (clause_map[ref.clause] == kDroppedId) continue;
      body_refs[body_cursor++] =
          CompiledBodyRef{clause_map[ref.clause], ref.negated ? 1u : 0u};
    }
  }
  head_off[num_vars] = head_cursor;
  body_off[num_vars] = body_cursor;

  std::memcpy(image.data(), &h, sizeof(h));
  auto* header = reinterpret_cast<CompiledGraphHeader*>(image.data());
  header->checksum = Fnv1aHash(image.data() + sizeof(CompiledGraphHeader),
                               image.size() - sizeof(CompiledGraphHeader));

  // The image was just built from a well-formed graph; the always-on shallow
  // pass is internal-consistency insurance, the deep pass belongs to loads.
  auto compiled = FromImage(std::move(image), /*validate=*/false);
  DD_CHECK(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

uint64_t CompiledGraph::Checksum() const {
  // Exactly the bytes SaveCompiledGraph writes after the header: the image
  // payload with the weight-value section replaced by the owned (possibly
  // learner-updated) values.
  const CompiledSectionEntry& wsec = header_->sections[kSecWeightValues];
  uint64_t h = Fnv1aHash(base_ + sizeof(CompiledGraphHeader),
                         static_cast<size_t>(wsec.offset) - sizeof(CompiledGraphHeader));
  h = Fnv1aHash(weight_values_.data(), static_cast<size_t>(wsec.bytes), h);
  h = Fnv1aHash(base_ + wsec.offset + wsec.bytes,
                bytes_ - static_cast<size_t>(wsec.offset + wsec.bytes), h);
  return h;
}

FactorGraph CompiledGraph::Decompile() const {
  FactorGraph graph;
  if (num_variables_ > 0) graph.AddVariables(num_variables_);
  for (VarId v = 0; v < num_variables_; ++v) {
    const auto ev = EvidenceValue(v);
    if (ev.has_value()) graph.SetEvidence(v, *ev);
  }
  graph.ReserveWeights(num_weights_);
  for (WeightId w = 0; w < num_weights_; ++w) {
    graph.AddWeight(weight_values_[w], WeightLearnable(w),
                    std::string(WeightDescription(w)));
  }
  graph.ReserveGroups(num_groups_);
  for (GroupId g = 0; g < num_groups_; ++g) {
    const CompiledGroup& group = groups_[g];
    graph.AddGroup(group.rule_id, group.head, group.weight, group.semantics);
  }
  // Clauses in compiled id order (the original interleaving across groups),
  // so the rebuilt per-variable body-ref order matches the compiled arrays —
  // which keeps the decompiled graph's inference bit-identical too.
  graph.ReserveClauses(num_clauses_);
  for (ClauseId c = 0; c < num_clauses_; ++c) {
    std::vector<Literal> lits;
    const auto compiled_lits = ClauseLiterals(c);
    lits.reserve(compiled_lits.size());
    for (const CompiledLiteral& lit : compiled_lits) {
      lits.push_back(Literal{lit.var, lit.negated != 0});
    }
    graph.AddClause(clause_groups_[c], std::move(lits));
  }
  return graph;
}

}  // namespace deepdive::factor
