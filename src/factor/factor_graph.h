#ifndef DEEPDIVE_FACTOR_FACTOR_GRAPH_H_
#define DEEPDIVE_FACTOR_FACTOR_GRAPH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "factor/semantics.h"
#include "util/status.h"

namespace deepdive::factor {

using VarId = uint32_t;
using WeightId = uint32_t;
using GroupId = uint32_t;
using ClauseId = uint32_t;

inline constexpr VarId kNoVar = static_cast<VarId>(-1);
inline constexpr ClauseId kNoClause = static_cast<ClauseId>(-1);

/// One body literal of a ground clause: a query variable, possibly negated.
struct Literal {
  VarId var = kNoVar;
  bool negated = false;
};

/// A ground clause: a conjunction of literals over query variables. It is
/// satisfied in world I iff every literal holds. An empty clause is always
/// satisfied (used for priors and classifier groundings whose body contains
/// only deterministic facts).
struct Clause {
  GroupId group = 0;
  std::vector<Literal> literals;
  /// Inactive clauses correspond to retracted groundings (DRed deletions);
  /// they contribute nothing to n_sat.
  bool active = true;
};

/// A factor group realizes Equation 1 for one (rule, head-assignment, tied
/// weight) triple: its contribution to log Pr[I] is
///     weight * sign(head in I) * g(#satisfied clauses).
/// Classic per-grounding MLN factors are groups with a single clause under
/// linear semantics.
struct FactorGroup {
  uint32_t rule_id = 0;
  VarId head = kNoVar;
  WeightId weight = 0;
  Semantics semantics = Semantics::kLinear;
  std::vector<ClauseId> clauses;
  bool active = true;
};

/// Tied/learnable weight metadata.
struct Weight {
  double value = 0.0;
  bool learnable = false;
  std::string description;  // e.g. "FE1/phrase=and_his_wife"
};

/// Membership of a variable in a clause body (for O(degree) Gibbs updates).
struct BodyRef {
  ClauseId clause = 0;
  bool negated = false;
};

/// The grounded probabilistic model (Section 2.5). Variables are Boolean;
/// evidence variables (positive set P / negative set N) are fixed during
/// inference. The graph is append-only plus group deactivation, so the
/// incremental engine can both extend it (new rules/data) and retract
/// groundings (deleted derivations) while keeping ids stable.
class FactorGraph {
 public:
  FactorGraph() = default;

  // ---- construction ----

  /// Adds a Boolean variable; returns its id.
  VarId AddVariable();

  /// Adds `n` variables; returns the first id.
  VarId AddVariables(size_t n);

  /// Fixes / unfixes a variable. std::nullopt clears evidence.
  void SetEvidence(VarId var, std::optional<bool> value);

  /// Registers a weight; `description` names it for debugging/learning dumps.
  WeightId AddWeight(double value, bool learnable, std::string description = "");

  /// Weight id for a tied-weight key, creating it (at 0, learnable) on first
  /// use. Key convention: "<rule label>/<feature value>".
  WeightId GetOrCreateTiedWeight(const std::string& key);

  /// Weight id for an existing tied-weight key, or nullopt. Read-only:
  /// safe to call concurrently with other readers (shard-local grounding
  /// resolves weights against a frozen graph through this).
  std::optional<WeightId> FindTiedWeight(const std::string& key) const;

  void SetWeightValue(WeightId id, double value);

  /// Creates an (initially clause-less) factor group.
  GroupId AddGroup(uint32_t rule_id, VarId head, WeightId weight, Semantics semantics);

  /// Appends a ground clause to a group. Literal variables must not equal the
  /// group head (Eq. 1 counts body groundings; self-loops are a grounder bug).
  ClauseId AddClause(GroupId group, std::vector<Literal> literals);

  /// Bulk append: adds every literal list as one clause of `group`, in
  /// order, reserving capacity once up front. Returns the first new id
  /// (ids are contiguous); kNoClause if `literal_lists` is empty.
  ClauseId AddClauses(GroupId group, std::vector<std::vector<Literal>> literal_lists);

  // Capacity pre-sizing for bulk construction (e.g. the sharded grounding
  // merge). `n` is the expected *total* count, not a delta. Growth-aware:
  // repeated calls with slightly larger totals never degrade the geometric
  // growth guarantee, so they are safe to issue per batch.
  void ReserveVariables(size_t n);
  void ReserveWeights(size_t n);
  void ReserveGroups(size_t n);
  void ReserveClauses(size_t n);

  /// Deactivates a group: it no longer contributes to any distribution.
  void DeactivateGroup(GroupId group);

  /// Deactivates one ground clause (a retracted grounding).
  void DeactivateClause(ClauseId clause);

  /// Finds an *active* clause of `group` whose literal list equals
  /// `literals` (compared in canonical order); kNoClause if none.
  ClauseId FindActiveClause(GroupId group, const std::vector<Literal>& literals) const;

  /// Convenience for priors / pairwise models: head with one clause.
  GroupId AddSimpleFactor(VarId head, const std::vector<Literal>& body, WeightId weight,
                          Semantics semantics = Semantics::kLinear,
                          uint32_t rule_id = 0);

  // ---- accessors ----

  size_t NumVariables() const { return evidence_.size(); }
  size_t NumWeights() const { return weights_.size(); }
  size_t NumGroups() const { return groups_.size(); }
  size_t NumClauses() const { return clauses_.size(); }

  /// Active-clause count: the paper's "# factors" statistic.
  size_t NumActiveClauses() const;

  bool IsEvidence(VarId var) const { return evidence_[var].has_value(); }
  std::optional<bool> EvidenceValue(VarId var) const { return evidence_[var]; }

  /// Structure accessors alias graph storage. Thread contract: graph
  /// structure is mutated only between inference runs (ApplyDelta on the
  /// serving thread); during a sampling run the structure is frozen, which
  /// is what lets Hogwild workers read these references concurrently.
  const Weight& weight(WeightId id) const { return weights_[id]; }
  double WeightValue(WeightId id) const { return weights_[id].value; }
  bool WeightLearnable(WeightId id) const { return weights_[id].learnable; }
  const FactorGroup& group(GroupId id) const { return groups_[id]; }
  const Clause& clause(ClauseId id) const { return clauses_[id]; }
  const std::vector<Weight>& weights() const { return weights_; }

  /// Literals of clause `id` (same frozen-during-runs thread contract as the
  /// structure accessors above). Mirrors CompiledGraph::ClauseLiterals so the
  /// templated kernels work against either graph type.
  const std::vector<Literal>& ClauseLiterals(ClauseId id) const {
    return clauses_[id].literals;
  }

  /// Groups with this variable as head (frozen during runs, like the rest
  /// of the structure — see the thread contract above).
  const std::vector<GroupId>& HeadGroups(VarId var) const { return head_refs_[var]; }

  /// Clause-body memberships of this variable (same thread contract).
  const std::vector<BodyRef>& BodyRefs(VarId var) const { return body_refs_[var]; }

  /// Groups sharing a weight (used when a weight value changes; same
  /// thread contract as the structure accessors above).
  const std::vector<GroupId>& GroupsForWeight(WeightId id) const {
    return weight_groups_[id];
  }

  /// All variables adjacent to `var` through any active group (head-body and
  /// body-body co-membership). Used for covariance NZ pairs and decomposition.
  std::vector<VarId> Neighbors(VarId var) const;

  // ---- evaluation ----

  /// Number of satisfied clauses of `group` in the world described by
  /// `value_of` (callable VarId -> bool).
  int64_t SatisfiedClauses(GroupId group,
                           const std::function<bool(VarId)>& value_of) const;

  /// The group's contribution to log Pr: w * sign(head) * g(n_sat).
  double GroupLogWeight(GroupId group, const std::function<bool(VarId)>& value_of) const;

  /// Total log-weight W(I) over all active groups.
  double TotalLogWeight(const std::function<bool(VarId)>& value_of) const;

 private:
  std::vector<std::optional<bool>> evidence_;
  std::vector<Weight> weights_;
  std::vector<FactorGroup> groups_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<GroupId>> head_refs_;   // per var
  std::vector<std::vector<BodyRef>> body_refs_;   // per var
  std::vector<std::vector<GroupId>> weight_groups_;
  std::unordered_map<std::string, WeightId> tied_weights_;

  /// (group, literal-list) hash -> clause ids with that hash, in insertion
  /// order. Backs FindActiveClause in O(1) expected instead of scanning the
  /// whole group (delta retraction on large groups was quadratic).
  static uint64_t ClauseKey(GroupId group, const std::vector<Literal>& literals);
  std::unordered_map<uint64_t, std::vector<ClauseId>> clause_index_;
};

}  // namespace deepdive::factor

#endif  // DEEPDIVE_FACTOR_FACTOR_GRAPH_H_
