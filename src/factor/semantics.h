#ifndef DEEPDIVE_FACTOR_SEMANTICS_H_
#define DEEPDIVE_FACTOR_SEMANTICS_H_

#include <cstdint>

namespace deepdive::factor {

/// The grounding-count transformation g(n) of Equation 1 / Figure 4.
/// DeepDive's departure from vanilla MLN semantics: the weight of a rule in a
/// possible world is w * sign(head) * g(#satisfied groundings), and the choice
/// of g changes both quality (Section 2.4, Example 2.5) and Gibbs mixing time
/// (Appendix A: Logical/Ratio mix in O(n log n); Linear can take 2^Ω(n)).
enum class Semantics : uint8_t {
  kLinear = 0,   // g(n) = n
  kRatio = 1,    // g(n) = log(1 + n)
  kLogical = 2,  // g(n) = 1{n > 0}
};

const char* SemanticsName(Semantics semantics);

/// Evaluates g(n). n must be >= 0.
double GCount(Semantics semantics, int64_t n);

}  // namespace deepdive::factor

#endif  // DEEPDIVE_FACTOR_SEMANTICS_H_
