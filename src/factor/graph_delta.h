#ifndef DEEPDIVE_FACTOR_GRAPH_DELTA_H_
#define DEEPDIVE_FACTOR_GRAPH_DELTA_H_

#include <functional>
#include <optional>
#include <vector>

#include "factor/factor_graph.h"

namespace deepdive::factor {

/// The (ΔV, ΔF) handed from incremental grounding to incremental inference
/// (Section 3, Problem Setting): everything that distinguishes the updated
/// distribution Pr(Δ) from the materialized one Pr(0). The graph object is
/// shared — new groups/variables are already appended and removed groups
/// deactivated; this record says *what* changed so strategies can evaluate
/// the log-density ratio touching only the delta.
struct GraphDelta {
  std::vector<VarId> new_variables;
  std::vector<GroupId> new_groups;
  std::vector<GroupId> removed_groups;  // deactivated in the graph

  /// Existing groups whose clause set changed: `added` clauses exist only in
  /// Pr(Δ); `removed` clauses (now deactivated) existed only in Pr(0).
  struct GroupMod {
    GroupId group = 0;
    std::vector<ClauseId> added;
    std::vector<ClauseId> removed;
  };
  std::vector<GroupMod> modified_groups;
  struct WeightChange {
    WeightId weight = 0;
    double old_value = 0.0;
    double new_value = 0.0;
  };
  std::vector<WeightChange> weight_changes;
  struct EvidenceChange {
    VarId var = 0;
    std::optional<bool> old_value;
    std::optional<bool> new_value;
  };
  std::vector<EvidenceChange> evidence_changes;

  bool empty() const {
    return new_variables.empty() && new_groups.empty() && removed_groups.empty() &&
           modified_groups.empty() && weight_changes.empty() &&
           evidence_changes.empty();
  }

  /// True if the set of groups/clauses changed (as opposed to only weights
  /// or evidence) — the distinction the rule-based optimizer keys on.
  bool structure_changed() const {
    return !new_groups.empty() || !removed_groups.empty() ||
           !modified_groups.empty() || !new_variables.empty();
  }

  bool evidence_changed() const { return !evidence_changes.empty(); }

  void Merge(const GraphDelta& other);
};

/// log Pr(Δ)[I] - log Pr(0)[I] up to the (constant) partition functions:
/// the sum of delta-group weights, removed-group weights (negated), and
/// weight-change effects, evaluated on the world `value_of`. Touches only
/// factors in the delta — this is what makes the sampling approach's
/// Metropolis-Hastings acceptance test cheap (Section 3.2.2).
///
/// If the world violates a *new* evidence assignment, returns -infinity
/// (the world has zero probability under Pr(Δ)).
double DeltaLogDensityRatio(const FactorGraph& graph, const GraphDelta& delta,
                            const std::function<bool(VarId)>& value_of);

}  // namespace deepdive::factor

#endif  // DEEPDIVE_FACTOR_GRAPH_DELTA_H_
