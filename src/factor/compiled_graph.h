#ifndef DEEPDIVE_FACTOR_COMPILED_GRAPH_H_
#define DEEPDIVE_FACTOR_COMPILED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "factor/factor_graph.h"
#include "factor/semantics.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace deepdive::factor {

// ---- on-disk / in-memory image format --------------------------------------
//
// A CompiledGraph is one contiguous byte image: a fixed header followed by
// 64-byte-aligned sections of flat POD arrays (structure-of-arrays CSR
// layout). The in-memory representation IS the file format, so saving is a
// single write and loading is mmap + pointer fixup — zero parse, zero copy
// (weight values are the one exception: they are copied into an owned array
// so the learner can update them against a read-only mapping).
//
//   [CompiledGraphHeader]
//   [evidence tags        int8[V] ]   -1 = negative, 0 = query, +1 = positive
//   [weight values        f64 [W] ]
//   [weight learnable     u8  [W] ]
//   [weight desc offsets  u64 [W+1]]  CSR into the description blob
//   [weight desc blob     char[D] ]
//   [weight group offsets u64 [W+1]]  CSR: weight -> compiled group ids
//   [weight groups        u32 [WG]]
//   [groups               CompiledGroup[G] ]
//   [group orig ids       u32 [G] ]   pre-compaction GroupId per group
//   [group clause offsets u64 [G+1]]  CSR: group -> compiled clause ids
//   [group clauses        u32 [C] ]
//   [clause groups        u32 [C] ]   owning compiled group per clause
//   [clause orig ids      u32 [C] ]   pre-compaction ClauseId per clause
//   [clause lit offsets   u64 [C+1]]  CSR: clause -> literals
//   [literals             CompiledLiteral[L] ]
//   [head offsets         u64 [V+1]]  CSR: var -> compiled head-group ids
//   [head groups          u32 [H] ]
//   [body offsets         u64 [V+1]]  CSR: var -> body memberships
//   [body refs            CompiledBodyRef[B] ]
//
// Compaction: inactive groups, and inactive clauses of active groups, are
// dropped at compile time; every surviving element keeps its original
// RELATIVE order. Variables and weights are never compacted, so marginal and
// weight vectors map 1:1 onto the source graph's ids. Order preservation is
// what makes the compiled kernel bit-identical to the mutable path: both
// iterate the same active elements in the same order, so floating-point
// accumulation order (and RNG consumption) is unchanged.
//
// Versioning/compat rules: `version` bumps on any layout change; readers
// reject unknown versions and foreign endianness (the marker below reads as
// 0x04030201 on a swapped machine) rather than guessing. `reserved` fields
// must be written as zero and ignored on read, so adding metadata there is a
// compatible change; adding/removing sections is not.

inline constexpr uint64_t kCompiledGraphMagic = 0xdd11c0de'f4c70002ULL;
inline constexpr uint32_t kCompiledGraphVersion = 2;
inline constexpr uint32_t kCompiledGraphEndian = 0x01020304;

enum CompiledSection : size_t {
  kSecEvidence = 0,
  kSecWeightValues,
  kSecWeightLearnable,
  kSecWeightDescOffsets,
  kSecWeightDescBlob,
  kSecWeightGroupOffsets,
  kSecWeightGroups,
  kSecGroups,
  kSecGroupOrigIds,
  kSecGroupClauseOffsets,
  kSecGroupClauses,
  kSecClauseGroups,
  kSecClauseOrigIds,
  kSecClauseLitOffsets,
  kSecLiterals,
  kSecHeadOffsets,
  kSecHeadGroups,
  kSecBodyOffsets,
  kSecBodyRefs,
  kNumCompiledSections,
};

struct CompiledSectionEntry {
  uint64_t offset = 0;  // from the start of the image; 64-byte aligned
  uint64_t bytes = 0;
};

struct CompiledGraphHeader {
  uint64_t magic = kCompiledGraphMagic;
  uint32_t version = kCompiledGraphVersion;
  uint32_t endian = kCompiledGraphEndian;
  uint64_t total_bytes = 0;
  /// FNV-1a over [sizeof(CompiledGraphHeader), total_bytes).
  uint64_t checksum = 0;
  uint64_t num_variables = 0;
  uint64_t num_weights = 0;
  uint64_t num_groups = 0;
  uint64_t num_clauses = 0;
  uint64_t num_literals = 0;
  uint64_t num_head_refs = 0;
  uint64_t num_body_refs = 0;
  uint64_t num_weight_group_refs = 0;
  uint64_t desc_blob_bytes = 0;
  uint64_t reserved[2] = {0, 0};
  CompiledSectionEntry sections[kNumCompiledSections] = {};
};
static_assert(sizeof(CompiledGraphHeader) ==
                  8 * 13 + 16 + sizeof(CompiledSectionEntry) * kNumCompiledSections,
              "header layout must stay packed (no implicit padding)");

/// Flat factor-group record (16 bytes). `active` is a compile-time constant:
/// inactive groups are compacted out of the image, so the templated kernels'
/// `if (!group.active)` guards fold away entirely for the compiled path.
struct CompiledGroup {
  VarId head = kNoVar;
  WeightId weight = 0;
  uint32_t rule_id = 0;
  Semantics semantics = Semantics::kLinear;
  uint8_t pad0 = 0;
  uint16_t pad1 = 0;
  static constexpr bool active = true;
};
static_assert(sizeof(CompiledGroup) == 16 && std::is_trivially_copyable_v<CompiledGroup>);

/// Flat body-literal record (8 bytes). `negated` is 0/1.
struct CompiledLiteral {
  VarId var = kNoVar;
  uint32_t negated = 0;
};
static_assert(sizeof(CompiledLiteral) == 8 && std::is_trivially_copyable_v<CompiledLiteral>);

/// Flat body-membership record (8 bytes): var appears (possibly negated) in
/// the body of compiled clause `clause`.
struct CompiledBodyRef {
  ClauseId clause = 0;
  uint32_t negated = 0;
};
static_assert(sizeof(CompiledBodyRef) == 8 && std::is_trivially_copyable_v<CompiledBodyRef>);

/// Lightweight clause view returned by CompiledGraph::clause(). Every
/// compiled clause is active by construction (inactive ones are compacted
/// out), mirroring factor::Clause's interface for the templated kernels.
struct CompiledClauseView {
  GroupId group = 0;
  static constexpr bool active = true;
};

/// A frozen, structure-of-arrays CSR snapshot of a post-grounding factor
/// graph — the DimmWitted-style contiguous-array layout the Gibbs hot loop
/// wants, built once per materialization freeze and consumed by the
/// compiled-kernel samplers (BasicWorld<CompiledGraph> etc.).
///
/// Thread contract: the structure is frozen after construction — every
/// accessor below reads immutable bytes and is safe to call concurrently
/// from any thread with no synchronization (frozen-after-publish). The one
/// mutable member is the owned weight-value array: SetWeightValue is
/// single-writer (the learner, between inference runs), exactly the
/// FactorGraph weight contract.
class CompiledGraph {
 public:
  CompiledGraph() = default;
  CompiledGraph(CompiledGraph&&) noexcept = default;
  CompiledGraph& operator=(CompiledGraph&&) noexcept = default;
  CompiledGraph(const CompiledGraph&) = delete;
  CompiledGraph& operator=(const CompiledGraph&) = delete;

  /// Freezes `graph` into the flat image: active groups (and active clauses
  /// of active groups) only, original relative order preserved; variables
  /// and weights keep their ids. O(graph).
  static CompiledGraph Compile(const FactorGraph& graph);

  /// Adopts a complete image from owned bytes (buffered file read or a
  /// just-built image). `validate` runs the deep integrity pass — checksum,
  /// offset monotonicity, id bounds — on top of the always-on header and
  /// section-bounds checks; a validated image cannot index out of bounds.
  static StatusOr<CompiledGraph> FromImage(std::vector<uint8_t> image,
                                           bool validate = true);

  /// Adopts a memory-mapped image (zero-copy load path).
  static StatusOr<CompiledGraph> FromMmap(MmapFile mmap, bool validate = true);

  /// Reconstructs a mutable FactorGraph (for incremental growth after a cold
  /// start). Ids are the compiled ids — compacted relative to the original
  /// pre-compaction graph, but producing bit-identical inference results.
  FactorGraph Decompile() const;

  // ---- image / identity ----

  /// The raw image bytes (header included); immutable, any thread.
  const uint8_t* image_data() const { return base_; }
  size_t image_bytes() const { return bytes_; }
  /// The image header; immutable after attach, readable from any thread.
  const CompiledGraphHeader& header() const { return *header_; }

  /// Structure+weights checksum: exactly the value SaveCompiledGraph writes,
  /// recomputed over the current (possibly learner-updated) weight values.
  uint64_t Checksum() const;

  // ---- counts ----

  size_t NumVariables() const { return num_variables_; }
  size_t NumWeights() const { return num_weights_; }
  size_t NumGroups() const { return num_groups_; }
  size_t NumClauses() const { return num_clauses_; }
  size_t NumLiterals() const { return static_cast<size_t>(header_->num_literals); }

  // ---- variables ----

  bool IsEvidence(VarId v) const { return evidence_[v] != 0; }
  std::optional<bool> EvidenceValue(VarId v) const {
    const int8_t tag = evidence_[v];
    if (tag == 0) return std::nullopt;
    return tag > 0;
  }

  // ---- weights ----

  double WeightValue(WeightId w) const { return weight_values_[w]; }
  /// Single-writer (learner, between runs); see the class thread contract.
  void SetWeightValue(WeightId w, double value) { weight_values_[w] = value; }
  bool WeightLearnable(WeightId w) const { return weight_learnable_[w] != 0; }
  std::string_view WeightDescription(WeightId w) const {
    return {weight_desc_blob_ + weight_desc_offsets_[w],
            static_cast<size_t>(weight_desc_offsets_[w + 1] - weight_desc_offsets_[w])};
  }
  /// Compiled group ids carrying weight `w`; frozen, any thread.
  std::span<const GroupId> GroupsForWeight(WeightId w) const {
    return {weight_groups_ + weight_group_offsets_[w],
            static_cast<size_t>(weight_group_offsets_[w + 1] - weight_group_offsets_[w])};
  }

  // ---- groups / clauses (frozen-after-publish; read from any thread) ----

  /// The flat group record; aliases the immutable image, any thread.
  const CompiledGroup& group(GroupId g) const { return groups_[g]; }
  uint32_t OriginalGroupId(GroupId g) const { return group_orig_ids_[g]; }
  /// Compiled clause ids of group `g`, ascending; frozen, any thread.
  std::span<const ClauseId> GroupClauses(GroupId g) const {
    return {group_clauses_ + group_clause_offsets_[g],
            static_cast<size_t>(group_clause_offsets_[g + 1] - group_clause_offsets_[g])};
  }

  CompiledClauseView clause(ClauseId c) const { return {clause_groups_[c]}; }
  uint32_t OriginalClauseId(ClauseId c) const { return clause_orig_ids_[c]; }
  /// Literals of clause `c`; frozen, any thread.
  std::span<const CompiledLiteral> ClauseLiterals(ClauseId c) const {
    return {literals_ + clause_lit_offsets_[c],
            static_cast<size_t>(clause_lit_offsets_[c + 1] - clause_lit_offsets_[c])};
  }

  // ---- per-variable adjacency (frozen-after-publish; any thread) ----

  /// Compiled groups with `v` as head; frozen, any thread.
  std::span<const GroupId> HeadGroups(VarId v) const {
    return {head_groups_ + head_offsets_[v],
            static_cast<size_t>(head_offsets_[v + 1] - head_offsets_[v])};
  }
  /// Body memberships of `v`; frozen, any thread.
  std::span<const CompiledBodyRef> BodyRefs(VarId v) const {
    return {body_refs_ + body_offsets_[v],
            static_cast<size_t>(body_offsets_[v + 1] - body_offsets_[v])};
  }

 private:
  /// Validates the image (shallow always; deep integrity when `validate`)
  /// and caches the typed section pointers + the owned weight-value copy.
  Status Attach(bool validate);

  // Exactly one of owned_/mmap_ backs base_; moves keep base_ valid because
  // both preserve their data pointer.
  std::vector<uint8_t> owned_;
  MmapFile mmap_;
  const uint8_t* base_ = nullptr;
  size_t bytes_ = 0;

  const CompiledGraphHeader* header_ = nullptr;
  size_t num_variables_ = 0;
  size_t num_weights_ = 0;
  size_t num_groups_ = 0;
  size_t num_clauses_ = 0;

  const int8_t* evidence_ = nullptr;
  const uint8_t* weight_learnable_ = nullptr;
  const uint64_t* weight_desc_offsets_ = nullptr;
  const char* weight_desc_blob_ = nullptr;
  const uint64_t* weight_group_offsets_ = nullptr;
  const GroupId* weight_groups_ = nullptr;
  const CompiledGroup* groups_ = nullptr;
  const uint32_t* group_orig_ids_ = nullptr;
  const uint64_t* group_clause_offsets_ = nullptr;
  const ClauseId* group_clauses_ = nullptr;
  const GroupId* clause_groups_ = nullptr;
  const uint32_t* clause_orig_ids_ = nullptr;
  const uint64_t* clause_lit_offsets_ = nullptr;
  const CompiledLiteral* literals_ = nullptr;
  const uint64_t* head_offsets_ = nullptr;
  const GroupId* head_groups_ = nullptr;
  const uint64_t* body_offsets_ = nullptr;
  const CompiledBodyRef* body_refs_ = nullptr;

  /// Learner-mutable copy of the weight-value section (the image may be a
  /// read-only mapping). Serialized back by SaveCompiledGraph / Checksum().
  std::vector<double> weight_values_;
};

/// Streaming FNV-1a (64-bit) over 8-byte words used for image checksums:
/// little-endian words (plus a zero-padded tail) feed the FNV round instead
/// of single bytes, so hashing a multi-GB mapping costs ~1/8th of byte-wise
/// FNV while keeping the same streaming/seed-chaining structure. All image
/// sections are 64-bit aligned, so word loads are the natural unit. The word
/// variant is part of the v2 format: checksums written by one build must
/// verify on another.
uint64_t Fnv1aHash(const void* data, size_t bytes,
                   uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace deepdive::factor

#endif  // DEEPDIVE_FACTOR_COMPILED_GRAPH_H_
