#ifndef DEEPDIVE_FACTOR_GRAPH_IO_H_
#define DEEPDIVE_FACTOR_GRAPH_IO_H_

#include <string>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "util/status.h"

namespace deepdive::factor {

struct GraphLoadOptions {
  /// Map the file instead of reading it (zero-copy; pages fault in on
  /// demand). Falls back to a buffered read where mmap is unavailable.
  bool use_mmap = true;
  /// Run the deep integrity pass (checksum, offset monotonicity, id bounds)
  /// on top of the always-on header/section-bounds checks.
  bool validate = true;
};

/// Writes the compiled image to `path`: the header (with a checksum covering
/// the current weight values) followed by the section payload — a handful of
/// large writes, no per-field serialization.
Status SaveCompiledGraph(const CompiledGraph& graph, const std::string& path);

/// Loads a compiled snapshot. With `use_mmap` this is O(1) in the graph size:
/// header validation + pointer fixup over the mapping.
StatusOr<CompiledGraph> LoadCompiledGraph(const std::string& path,
                                          const GraphLoadOptions& options = {});

/// Binary snapshot of a factor graph (format v2: the CompiledGraph image).
/// Compiles first, so inactive groups/clauses are compacted out of the file;
/// the loaded graph is inference-equivalent (bit-identical marginals), not
/// structurally identical, when the input had retractions.
Status SaveGraph(const FactorGraph& graph, const std::string& path);

StatusOr<FactorGraph> LoadGraph(const std::string& path,
                                const GraphLoadOptions& options = {});

/// Structural equality (variables, evidence, weights, groups, clauses);
/// used by round-trip tests.
bool GraphsEqual(const FactorGraph& a, const FactorGraph& b);

}  // namespace deepdive::factor

#endif  // DEEPDIVE_FACTOR_GRAPH_IO_H_
