#ifndef DEEPDIVE_FACTOR_GRAPH_IO_H_
#define DEEPDIVE_FACTOR_GRAPH_IO_H_

#include <string>

#include "factor/factor_graph.h"
#include "util/status.h"

namespace deepdive::factor {

/// Binary snapshot of a factor graph. The materialization phase persists the
/// graph alongside its sample store so later inference phases (possibly in a
/// new process) can reuse it.
Status SaveGraph(const FactorGraph& graph, const std::string& path);

StatusOr<FactorGraph> LoadGraph(const std::string& path);

/// Structural equality (variables, evidence, weights, groups, clauses);
/// used by round-trip tests.
bool GraphsEqual(const FactorGraph& a, const FactorGraph& b);

}  // namespace deepdive::factor

#endif  // DEEPDIVE_FACTOR_GRAPH_IO_H_
