#include "factor/graph_delta.h"

#include <algorithm>
#include <limits>

#include "factor/semantics.h"

namespace deepdive::factor {

void GraphDelta::Merge(const GraphDelta& other) {
  new_variables.insert(new_variables.end(), other.new_variables.begin(),
                       other.new_variables.end());
  new_groups.insert(new_groups.end(), other.new_groups.begin(), other.new_groups.end());
  // A group that was introduced and later removed within the merged window
  // never existed in the materialized distribution: cancel the pair instead
  // of recording a removal (which would wrongly subtract it from Pr(0)).
  for (GroupId removed : other.removed_groups) {
    auto it = std::find(new_groups.begin(), new_groups.end(), removed);
    if (it != new_groups.end()) {
      new_groups.erase(it);
    } else {
      removed_groups.push_back(removed);
    }
  }
  modified_groups.insert(modified_groups.end(), other.modified_groups.begin(),
                         other.modified_groups.end());
  weight_changes.insert(weight_changes.end(), other.weight_changes.begin(),
                        other.weight_changes.end());
  evidence_changes.insert(evidence_changes.end(), other.evidence_changes.begin(),
                          other.evidence_changes.end());
}

double DeltaLogDensityRatio(const FactorGraph& graph, const GraphDelta& delta,
                            const std::function<bool(VarId)>& value_of) {
  // New evidence constrains Pr(Δ)'s support.
  for (const GraphDelta::EvidenceChange& ec : delta.evidence_changes) {
    if (ec.new_value.has_value() && value_of(ec.var) != *ec.new_value) {
      return -std::numeric_limits<double>::infinity();
    }
  }

  double ratio = 0.0;
  for (GroupId gid : delta.new_groups) {
    // New groups exist only in Pr(Δ). GroupLogWeight skips inactive groups,
    // so evaluate directly even if the group was since deactivated.
    ratio += graph.GroupLogWeight(gid, value_of);
  }
  for (GroupId gid : delta.removed_groups) {
    // Removed groups existed only in Pr(0); they are deactivated in the
    // graph, so recompute their weight manually.
    const FactorGroup& g = graph.group(gid);
    const double sign = value_of(g.head) ? 1.0 : -1.0;
    const double w = graph.WeightValue(g.weight);
    ratio -= w * sign * GCount(g.semantics, graph.SatisfiedClauses(gid, value_of));
  }
  for (const GraphDelta::GroupMod& mod : delta.modified_groups) {
    const FactorGroup& g = graph.group(mod.group);
    const double sign = value_of(g.head) ? 1.0 : -1.0;
    const double w = graph.WeightValue(g.weight);
    auto clause_satisfied = [&](ClauseId cid) {
      for (const Literal& lit : graph.clause(cid).literals) {
        if (value_of(lit.var) == lit.negated) return false;
      }
      return true;
    };
    // n under Pr(Δ) = current active satisfied count; n under Pr(0) removes
    // the added clauses and restores the removed ones.
    const int64_t n_new = graph.SatisfiedClauses(mod.group, value_of);
    int64_t n_old = n_new;
    for (ClauseId cid : mod.added) {
      if (clause_satisfied(cid)) --n_old;
    }
    for (ClauseId cid : mod.removed) {
      if (clause_satisfied(cid)) ++n_old;
    }
    ratio += w * sign *
             (GCount(g.semantics, n_new) - GCount(g.semantics, n_old));
  }
  for (const GraphDelta::WeightChange& wc : delta.weight_changes) {
    const double dw = wc.new_value - wc.old_value;
    if (dw == 0.0) continue;
    for (GroupId gid : graph.GroupsForWeight(wc.weight)) {
      const FactorGroup& g = graph.group(gid);
      if (!g.active) continue;
      const double sign = value_of(g.head) ? 1.0 : -1.0;
      ratio += dw * sign * GCount(g.semantics, graph.SatisfiedClauses(gid, value_of));
    }
  }
  return ratio;
}

}  // namespace deepdive::factor
