#include "factor/graph_delta.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "factor/semantics.h"

namespace deepdive::factor {

void GraphDelta::Merge(const GraphDelta& other) {
  new_variables.insert(new_variables.end(), other.new_variables.begin(),
                       other.new_variables.end());
  new_groups.insert(new_groups.end(), other.new_groups.begin(), other.new_groups.end());
  // A group that was introduced and later removed within the merged window
  // never existed in the materialized distribution: cancel the pair instead
  // of recording a removal (which would wrongly subtract it from Pr(0)).
  // Hash-index the accumulated state once per merge (only when `other`
  // actually needs the lookups): the cumulative delta grows monotonically
  // across updates, so per-entry linear scans would make the engine's
  // running merge quadratic.
  std::unordered_set<GroupId> new_set;
  if (!other.removed_groups.empty() || !other.modified_groups.empty()) {
    new_set.insert(new_groups.begin(), new_groups.end());
  }
  for (GroupId removed : other.removed_groups) {
    if (new_set.erase(removed) > 0) {
      new_groups.erase(std::find(new_groups.begin(), new_groups.end(), removed));
    } else {
      removed_groups.push_back(removed);
    }
  }
  // Coalesce clause-set modifications so each group appears at most once.
  // Two separate GroupMods for one group would make DeltaLogDensityRatio
  // reconstruct two *independent* Pr(0) counts from n_new, which is wrong
  // for non-linear semantics; and a clause added in one window and removed
  // in a later one never existed in Pr(0), so the pair cancels. Mods on
  // groups new within the merged window are dropped entirely: the new-group
  // term already evaluates the group's current clause set.
  if (!other.modified_groups.empty()) {
    std::unordered_map<GroupId, size_t> mod_index;
    mod_index.reserve(modified_groups.size());
    for (size_t i = 0; i < modified_groups.size(); ++i) {
      mod_index.emplace(modified_groups[i].group, i);
    }
    for (const GroupMod& mod : other.modified_groups) {
      if (new_set.count(mod.group) > 0) continue;
      auto [mit, inserted] = mod_index.emplace(mod.group, modified_groups.size());
      if (inserted) {
        modified_groups.push_back(mod);
        continue;
      }
      GroupMod& mine = modified_groups[mit->second];
      for (ClauseId added : mod.added) mine.added.push_back(added);
      for (ClauseId removed : mod.removed) {
        auto ait = std::find(mine.added.begin(), mine.added.end(), removed);
        if (ait != mine.added.end()) {
          mine.added.erase(ait);
        } else {
          mine.removed.push_back(removed);
        }
      }
    }
    // A mod whose additions and removals fully cancelled is a net no-op:
    // the group's clause set matches its pre-window state, so drop it.
    modified_groups.erase(
        std::remove_if(modified_groups.begin(), modified_groups.end(),
                       [](const GroupMod& m) {
                         return m.added.empty() && m.removed.empty();
                       }),
        modified_groups.end());
  }
  weight_changes.insert(weight_changes.end(), other.weight_changes.begin(),
                        other.weight_changes.end());
  evidence_changes.insert(evidence_changes.end(), other.evidence_changes.begin(),
                          other.evidence_changes.end());
}

double DeltaLogDensityRatio(const FactorGraph& graph, const GraphDelta& delta,
                            const std::function<bool(VarId)>& value_of) {
  // New evidence constrains Pr(Δ)'s support.
  for (const GraphDelta::EvidenceChange& ec : delta.evidence_changes) {
    if (ec.new_value.has_value() && value_of(ec.var) != *ec.new_value) {
      return -std::numeric_limits<double>::infinity();
    }
  }

  double ratio = 0.0;
  for (GroupId gid : delta.new_groups) {
    // New groups exist only in Pr(Δ). GroupLogWeight skips inactive groups,
    // so evaluate directly even if the group was since deactivated.
    ratio += graph.GroupLogWeight(gid, value_of);
  }
  for (GroupId gid : delta.removed_groups) {
    // Removed groups existed only in Pr(0); they are deactivated in the
    // graph, so recompute their weight manually.
    const FactorGroup& g = graph.group(gid);
    const double sign = value_of(g.head) ? 1.0 : -1.0;
    const double w = graph.WeightValue(g.weight);
    ratio -= w * sign * GCount(g.semantics, graph.SatisfiedClauses(gid, value_of));
  }
  for (const GraphDelta::GroupMod& mod : delta.modified_groups) {
    const FactorGroup& g = graph.group(mod.group);
    const double sign = value_of(g.head) ? 1.0 : -1.0;
    const double w = graph.WeightValue(g.weight);
    auto clause_satisfied = [&](ClauseId cid) {
      for (const Literal& lit : graph.clause(cid).literals) {
        if (value_of(lit.var) == lit.negated) return false;
      }
      return true;
    };
    // n under Pr(Δ) = current active satisfied count; n under Pr(0) removes
    // the added clauses and restores the removed ones.
    const int64_t n_new = graph.SatisfiedClauses(mod.group, value_of);
    int64_t n_old = n_new;
    for (ClauseId cid : mod.added) {
      if (clause_satisfied(cid)) --n_old;
    }
    for (ClauseId cid : mod.removed) {
      if (clause_satisfied(cid)) ++n_old;
    }
    ratio += w * sign *
             (GCount(g.semantics, n_new) - GCount(g.semantics, n_old));
  }
  for (const GraphDelta::WeightChange& wc : delta.weight_changes) {
    const double dw = wc.new_value - wc.old_value;
    if (dw == 0.0) continue;
    for (GroupId gid : graph.GroupsForWeight(wc.weight)) {
      const FactorGroup& g = graph.group(gid);
      if (!g.active) continue;
      const double sign = value_of(g.head) ? 1.0 : -1.0;
      ratio += dw * sign * GCount(g.semantics, graph.SatisfiedClauses(gid, value_of));
    }
  }
  return ratio;
}

}  // namespace deepdive::factor
