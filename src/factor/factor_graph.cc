#include "factor/factor_graph.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace deepdive::factor {

namespace {

/// Growth-aware reserve: never shrinks the amortized growth guarantee.
/// Reserving an exact slightly-larger capacity on every small batch would
/// reallocate per batch (quadratic); growing to at least double keeps
/// appends amortized O(1) while still pre-sizing for large batches.
template <typename Vector>
void GrowReserve(Vector* v, size_t n) {
  if (n > v->capacity()) v->reserve(std::max(n, v->size() * 2));
}

}  // namespace

VarId FactorGraph::AddVariable() {
  evidence_.emplace_back(std::nullopt);
  head_refs_.emplace_back();
  body_refs_.emplace_back();
  return static_cast<VarId>(evidence_.size() - 1);
}

VarId FactorGraph::AddVariables(size_t n) {
  DD_CHECK_GT(n, 0u);
  const VarId first = static_cast<VarId>(evidence_.size());
  evidence_.resize(evidence_.size() + n);
  head_refs_.resize(head_refs_.size() + n);
  body_refs_.resize(body_refs_.size() + n);
  return first;
}

void FactorGraph::SetEvidence(VarId var, std::optional<bool> value) {
  DD_CHECK_LT(var, evidence_.size());
  evidence_[var] = value;
}

WeightId FactorGraph::AddWeight(double value, bool learnable, std::string description) {
  weights_.push_back(Weight{value, learnable, std::move(description)});
  weight_groups_.emplace_back();
  return static_cast<WeightId>(weights_.size() - 1);
}

WeightId FactorGraph::GetOrCreateTiedWeight(const std::string& key) {
  auto it = tied_weights_.find(key);
  if (it != tied_weights_.end()) return it->second;
  const WeightId id = AddWeight(0.0, /*learnable=*/true, key);
  tied_weights_.emplace(key, id);
  return id;
}

std::optional<WeightId> FactorGraph::FindTiedWeight(const std::string& key) const {
  auto it = tied_weights_.find(key);
  if (it == tied_weights_.end()) return std::nullopt;
  return it->second;
}

void FactorGraph::SetWeightValue(WeightId id, double value) {
  DD_CHECK_LT(id, weights_.size());
  weights_[id].value = value;
}

GroupId FactorGraph::AddGroup(uint32_t rule_id, VarId head, WeightId weight,
                              Semantics semantics) {
  DD_CHECK_LT(head, evidence_.size());
  DD_CHECK_LT(weight, weights_.size());
  FactorGroup group;
  group.rule_id = rule_id;
  group.head = head;
  group.weight = weight;
  group.semantics = semantics;
  const GroupId id = static_cast<GroupId>(groups_.size());
  groups_.push_back(std::move(group));
  head_refs_[head].push_back(id);
  weight_groups_[weight].push_back(id);
  return id;
}

uint64_t FactorGraph::ClauseKey(GroupId group, const std::vector<Literal>& literals) {
  uint64_t h = HashMix(0x51ab5e1f00d5eedULL ^ group);
  for (const Literal& lit : literals) {
    h = HashCombine(h, (static_cast<uint64_t>(lit.var) << 1) | (lit.negated ? 1 : 0));
  }
  return h;
}

ClauseId FactorGraph::AddClause(GroupId group, std::vector<Literal> literals) {
  DD_CHECK_LT(group, groups_.size());
  for (const Literal& lit : literals) {
    DD_CHECK_LT(lit.var, evidence_.size());
    DD_CHECK_NE(lit.var, groups_[group].head)
        << "clause literal equals group head (self-loop)";
  }
  Clause clause;
  clause.group = group;
  clause.literals = std::move(literals);
  const ClauseId id = static_cast<ClauseId>(clauses_.size());
  for (const Literal& lit : clause.literals) {
    body_refs_[lit.var].push_back(BodyRef{id, lit.negated});
  }
  clause_index_[ClauseKey(group, clause.literals)].push_back(id);
  clauses_.push_back(std::move(clause));
  groups_[group].clauses.push_back(id);
  return id;
}

ClauseId FactorGraph::AddClauses(GroupId group,
                                 std::vector<std::vector<Literal>> literal_lists) {
  DD_CHECK_LT(group, groups_.size());
  if (literal_lists.empty()) return kNoClause;
  ReserveClauses(clauses_.size() + literal_lists.size());
  const ClauseId first = static_cast<ClauseId>(clauses_.size());
  for (std::vector<Literal>& literals : literal_lists) {
    AddClause(group, std::move(literals));
  }
  return first;
}

void FactorGraph::ReserveVariables(size_t n) {
  GrowReserve(&evidence_, n);
  GrowReserve(&head_refs_, n);
  GrowReserve(&body_refs_, n);
}

void FactorGraph::ReserveWeights(size_t n) {
  GrowReserve(&weights_, n);
  GrowReserve(&weight_groups_, n);
}

void FactorGraph::ReserveGroups(size_t n) { GrowReserve(&groups_, n); }

void FactorGraph::ReserveClauses(size_t n) {
  GrowReserve(&clauses_, n);
  // The hash index grows geometrically on its own; an explicit rehash only
  // pays off when pre-sizing well past the current load.
  if (n > clause_index_.size() * 2) clause_index_.reserve(n);
}

void FactorGraph::DeactivateGroup(GroupId group) {
  DD_CHECK_LT(group, groups_.size());
  groups_[group].active = false;
}

void FactorGraph::DeactivateClause(ClauseId clause) {
  DD_CHECK_LT(clause, clauses_.size());
  clauses_[clause].active = false;
  // Drop it from the active-clause index (preserving bucket order so
  // FindActiveClause keeps returning the earliest matching clause).
  const Clause& c = clauses_[clause];
  auto it = clause_index_.find(ClauseKey(c.group, c.literals));
  if (it != clause_index_.end()) {
    auto pos = std::find(it->second.begin(), it->second.end(), clause);
    if (pos != it->second.end()) it->second.erase(pos);
    if (it->second.empty()) clause_index_.erase(it);
  }
}

ClauseId FactorGraph::FindActiveClause(GroupId group,
                                       const std::vector<Literal>& literals) const {
  auto it = clause_index_.find(ClauseKey(group, literals));
  if (it == clause_index_.end()) return kNoClause;
  for (ClauseId cid : it->second) {
    const Clause& clause = clauses_[cid];
    if (!clause.active || clause.group != group ||
        clause.literals.size() != literals.size()) {
      continue;
    }
    bool equal = true;
    for (size_t i = 0; i < literals.size(); ++i) {
      if (clause.literals[i].var != literals[i].var ||
          clause.literals[i].negated != literals[i].negated) {
        equal = false;
        break;
      }
    }
    if (equal) return cid;
  }
  return kNoClause;
}

GroupId FactorGraph::AddSimpleFactor(VarId head, const std::vector<Literal>& body,
                                     WeightId weight, Semantics semantics,
                                     uint32_t rule_id) {
  const GroupId g = AddGroup(rule_id, head, weight, semantics);
  AddClause(g, body);
  return g;
}

size_t FactorGraph::NumActiveClauses() const {
  size_t n = 0;
  for (const FactorGroup& g : groups_) {
    if (!g.active) continue;
    for (ClauseId cid : g.clauses) {
      if (clauses_[cid].active) ++n;
    }
  }
  return n;
}

std::vector<VarId> FactorGraph::Neighbors(VarId var) const {
  std::vector<VarId> out;
  auto add_group_vars = [&](GroupId gid) {
    const FactorGroup& g = groups_[gid];
    if (!g.active) return;
    if (g.head != var) out.push_back(g.head);
    for (ClauseId cid : g.clauses) {
      if (!clauses_[cid].active) continue;
      for (const Literal& lit : clauses_[cid].literals) {
        if (lit.var != var) out.push_back(lit.var);
      }
    }
  };
  for (GroupId gid : head_refs_[var]) add_group_vars(gid);
  for (const BodyRef& ref : body_refs_[var]) add_group_vars(clauses_[ref.clause].group);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int64_t FactorGraph::SatisfiedClauses(
    GroupId group, const std::function<bool(VarId)>& value_of) const {
  const FactorGroup& g = groups_[group];
  int64_t n = 0;
  for (ClauseId cid : g.clauses) {
    if (!clauses_[cid].active) continue;
    bool sat = true;
    for (const Literal& lit : clauses_[cid].literals) {
      const bool v = value_of(lit.var);
      if (v == lit.negated) {
        sat = false;
        break;
      }
    }
    if (sat) ++n;
  }
  return n;
}

double FactorGraph::GroupLogWeight(GroupId group,
                                   const std::function<bool(VarId)>& value_of) const {
  const FactorGroup& g = groups_[group];
  if (!g.active) return 0.0;
  const double sign = value_of(g.head) ? 1.0 : -1.0;
  return weights_[g.weight].value * sign *
         GCount(g.semantics, SatisfiedClauses(group, value_of));
}

double FactorGraph::TotalLogWeight(const std::function<bool(VarId)>& value_of) const {
  double total = 0.0;
  for (GroupId gid = 0; gid < groups_.size(); ++gid) {
    total += GroupLogWeight(gid, value_of);
  }
  return total;
}

}  // namespace deepdive::factor
