#include "factor/factor_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace deepdive::factor {

VarId FactorGraph::AddVariable() {
  evidence_.emplace_back(std::nullopt);
  head_refs_.emplace_back();
  body_refs_.emplace_back();
  return static_cast<VarId>(evidence_.size() - 1);
}

VarId FactorGraph::AddVariables(size_t n) {
  DD_CHECK_GT(n, 0u);
  const VarId first = static_cast<VarId>(evidence_.size());
  evidence_.resize(evidence_.size() + n);
  head_refs_.resize(head_refs_.size() + n);
  body_refs_.resize(body_refs_.size() + n);
  return first;
}

void FactorGraph::SetEvidence(VarId var, std::optional<bool> value) {
  DD_CHECK_LT(var, evidence_.size());
  evidence_[var] = value;
}

WeightId FactorGraph::AddWeight(double value, bool learnable, std::string description) {
  weights_.push_back(Weight{value, learnable, std::move(description)});
  weight_groups_.emplace_back();
  return static_cast<WeightId>(weights_.size() - 1);
}

WeightId FactorGraph::GetOrCreateTiedWeight(const std::string& key) {
  auto it = tied_weights_.find(key);
  if (it != tied_weights_.end()) return it->second;
  const WeightId id = AddWeight(0.0, /*learnable=*/true, key);
  tied_weights_.emplace(key, id);
  return id;
}

void FactorGraph::SetWeightValue(WeightId id, double value) {
  DD_CHECK_LT(id, weights_.size());
  weights_[id].value = value;
}

GroupId FactorGraph::AddGroup(uint32_t rule_id, VarId head, WeightId weight,
                              Semantics semantics) {
  DD_CHECK_LT(head, evidence_.size());
  DD_CHECK_LT(weight, weights_.size());
  FactorGroup group;
  group.rule_id = rule_id;
  group.head = head;
  group.weight = weight;
  group.semantics = semantics;
  const GroupId id = static_cast<GroupId>(groups_.size());
  groups_.push_back(std::move(group));
  head_refs_[head].push_back(id);
  weight_groups_[weight].push_back(id);
  return id;
}

ClauseId FactorGraph::AddClause(GroupId group, std::vector<Literal> literals) {
  DD_CHECK_LT(group, groups_.size());
  for (const Literal& lit : literals) {
    DD_CHECK_LT(lit.var, evidence_.size());
    DD_CHECK_NE(lit.var, groups_[group].head)
        << "clause literal equals group head (self-loop)";
  }
  Clause clause;
  clause.group = group;
  clause.literals = std::move(literals);
  const ClauseId id = static_cast<ClauseId>(clauses_.size());
  for (const Literal& lit : clause.literals) {
    body_refs_[lit.var].push_back(BodyRef{id, lit.negated});
  }
  clauses_.push_back(std::move(clause));
  groups_[group].clauses.push_back(id);
  return id;
}

void FactorGraph::DeactivateGroup(GroupId group) {
  DD_CHECK_LT(group, groups_.size());
  groups_[group].active = false;
}

void FactorGraph::DeactivateClause(ClauseId clause) {
  DD_CHECK_LT(clause, clauses_.size());
  clauses_[clause].active = false;
}

ClauseId FactorGraph::FindActiveClause(GroupId group,
                                       const std::vector<Literal>& literals) const {
  for (ClauseId cid : groups_[group].clauses) {
    const Clause& clause = clauses_[cid];
    if (!clause.active || clause.literals.size() != literals.size()) continue;
    bool equal = true;
    for (size_t i = 0; i < literals.size(); ++i) {
      if (clause.literals[i].var != literals[i].var ||
          clause.literals[i].negated != literals[i].negated) {
        equal = false;
        break;
      }
    }
    if (equal) return cid;
  }
  return kNoClause;
}

GroupId FactorGraph::AddSimpleFactor(VarId head, const std::vector<Literal>& body,
                                     WeightId weight, Semantics semantics,
                                     uint32_t rule_id) {
  const GroupId g = AddGroup(rule_id, head, weight, semantics);
  AddClause(g, body);
  return g;
}

size_t FactorGraph::NumActiveClauses() const {
  size_t n = 0;
  for (const FactorGroup& g : groups_) {
    if (!g.active) continue;
    for (ClauseId cid : g.clauses) {
      if (clauses_[cid].active) ++n;
    }
  }
  return n;
}

std::vector<VarId> FactorGraph::Neighbors(VarId var) const {
  std::vector<VarId> out;
  auto add_group_vars = [&](GroupId gid) {
    const FactorGroup& g = groups_[gid];
    if (!g.active) return;
    if (g.head != var) out.push_back(g.head);
    for (ClauseId cid : g.clauses) {
      if (!clauses_[cid].active) continue;
      for (const Literal& lit : clauses_[cid].literals) {
        if (lit.var != var) out.push_back(lit.var);
      }
    }
  };
  for (GroupId gid : head_refs_[var]) add_group_vars(gid);
  for (const BodyRef& ref : body_refs_[var]) add_group_vars(clauses_[ref.clause].group);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int64_t FactorGraph::SatisfiedClauses(
    GroupId group, const std::function<bool(VarId)>& value_of) const {
  const FactorGroup& g = groups_[group];
  int64_t n = 0;
  for (ClauseId cid : g.clauses) {
    if (!clauses_[cid].active) continue;
    bool sat = true;
    for (const Literal& lit : clauses_[cid].literals) {
      const bool v = value_of(lit.var);
      if (v == lit.negated) {
        sat = false;
        break;
      }
    }
    if (sat) ++n;
  }
  return n;
}

double FactorGraph::GroupLogWeight(GroupId group,
                                   const std::function<bool(VarId)>& value_of) const {
  const FactorGroup& g = groups_[group];
  if (!g.active) return 0.0;
  const double sign = value_of(g.head) ? 1.0 : -1.0;
  return weights_[g.weight].value * sign *
         GCount(g.semantics, SatisfiedClauses(group, value_of));
}

double FactorGraph::TotalLogWeight(const std::function<bool(VarId)>& value_of) const {
  double total = 0.0;
  for (GroupId gid = 0; gid < groups_.size(); ++gid) {
    total += GroupLogWeight(gid, value_of);
  }
  return total;
}

}  // namespace deepdive::factor
