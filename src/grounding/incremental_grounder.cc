#include "grounding/incremental_grounder.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepdive::grounding {

using factor::GraphDelta;
using factor::GroupId;
using factor::Literal;
using factor::VarId;
using factor::WeightId;

namespace {

factor::Semantics ToFactorSemantics(dsl::Semantics s) {
  switch (s) {
    case dsl::Semantics::kLinear:
      return factor::Semantics::kLinear;
    case dsl::Semantics::kRatio:
      return factor::Semantics::kRatio;
    case dsl::Semantics::kLogical:
      return factor::Semantics::kLogical;
  }
  return factor::Semantics::kLinear;
}

/// Shard-local references: a global id, or (index | kProvisionalBit) into the
/// shard's new-entity list. Real ids stay below 2^31 by a wide margin.
constexpr uint32_t kProvisionalBit = 0x80000000u;
inline bool IsProvisional(uint32_t ref) { return (ref & kProvisionalBit) != 0; }
inline uint32_t ProvisionalIndex(uint32_t ref) { return ref & ~kProvisionalBit; }

/// Canonical clause form: literals sorted by (var, negated), duplicates
/// removed. Applied after variable ids are final, so the sharded merge and
/// the sequential path canonicalize identically.
void CanonicalizeLiterals(std::vector<Literal>* literals) {
  std::sort(literals->begin(), literals->end(), [](const Literal& a, const Literal& b) {
    return a.var != b.var ? a.var < b.var : a.negated < b.negated;
  });
  literals->erase(std::unique(literals->begin(), literals->end(),
                              [](const Literal& a, const Literal& b) {
                                return a.var == b.var && a.negated == b.negated;
                              }),
                  literals->end());
}

}  // namespace

/// One shard's private emission buffer. Evaluation threads append here only;
/// the merge replays buffers in shard order on the caller thread.
struct IncrementalGrounder::ShardBuffer {
  struct Op {
    int64_t sign = 1;
    uint32_t head_ref = 0;
    uint32_t weight_ref = 0;
    std::vector<factor::Literal> literals;  // var fields hold refs, unsorted
  };
  std::vector<Op> ops;

  /// New entities in first-encounter order; provisional id = index.
  std::vector<std::pair<std::string, Tuple>> new_vars;
  std::vector<std::string> new_weight_keys;

  // Shard-local dedup for entities missing from the frozen graph.
  std::unordered_map<std::string, std::unordered_map<Tuple, uint32_t, TupleHash>>
      var_lookup;
  std::unordered_map<std::string, uint32_t> weight_lookup;
};

IncrementalGrounder::IncrementalGrounder(const dsl::Program* program, Database* db,
                                         GroundGraph* ground, GroundingOptions options)
    : program_(program), db_(db), ground_(ground), options_(options) {
  if (options_.num_threads == 0) options_.num_threads = ThreadPool::DefaultThreads();
}

size_t IncrementalGrounder::ShardsFor(size_t domain) const {
  if (options_.num_threads <= 1 || domain < options_.min_shard_rows) return 1;
  return options_.num_threads;
}

void IncrementalGrounder::EnsurePool() {
  // Common pre-shard chokepoint: provisional references tag ids with the
  // high bit, so real ids must stay below it before any shard mints refs
  // against the frozen graph (turn silent ref corruption into a crash).
  DD_CHECK_LT(ground_->graph.NumVariables(), size_t{kProvisionalBit});
  DD_CHECK_LT(ground_->graph.NumWeights(), size_t{kProvisionalBit});
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

Status IncrementalGrounder::Initialize() {
  DD_CHECK(!initialized_);
  for (const dsl::FactorRule& rule : program_->factor_rules()) {
    DD_RETURN_IF_ERROR(CompileFactorRule(rule));
  }
  initialized_ = true;
  return Status::OK();
}

Status IncrementalGrounder::CompileFactorRule(const dsl::FactorRule& rule) {
  CompiledFactorRule cr;
  cr.rule = rule;
  cr.rule_id = next_rule_id_++;
  DD_ASSIGN_OR_RETURN(cr.body, engine::CompiledRuleBody::Compile(
                                   *program_, *db_, rule.body, rule.conditions));
  const auto& slots = cr.body.var_slots();

  for (const dsl::Term& t : rule.head.terms) {
    if (t.is_var()) {
      auto it = slots.find(t.var);
      if (it == slots.end()) {
        return Status::InvalidArgument("head variable '" + t.var + "' unbound");
      }
      cr.head_slots.push_back(it->second);
    } else {
      cr.head_slots.push_back(-1);
    }
  }

  if (rule.weight.kind == dsl::WeightSpec::Kind::kTied) {
    for (const std::string& v : rule.weight.tied_vars) {
      auto it = slots.find(v);
      if (it == slots.end()) {
        return Status::InvalidArgument("weight variable '" + v + "' unbound");
      }
      cr.weight_slots.push_back(it->second);
    }
  } else {
    const std::string desc = rule.label.empty()
                                 ? StrFormat("rule#%u", cr.rule_id)
                                 : rule.label;
    cr.fixed_weight = ground_->graph.AddWeight(rule.weight.fixed_value,
                                               rule.weight.learnable, desc);
    cr.has_fixed_weight = true;
  }

  for (const dsl::Atom& atom : rule.body) {
    if (!program_->IsQueryRelation(atom.predicate)) continue;
    CompiledFactorRule::QueryAtom qa;
    qa.relation = atom.predicate;
    qa.negated = atom.negated;
    for (const dsl::Term& t : atom.terms) {
      if (t.is_var()) {
        qa.slots.push_back(slots.at(t.var));
        qa.constants.emplace_back();
      } else {
        qa.slots.push_back(-1);
        qa.constants.push_back(t.constant);
      }
    }
    cr.query_atoms.push_back(std::move(qa));
  }

  rules_.push_back(std::move(cr));
  return Status::OK();
}

VarId IncrementalGrounder::GetOrCreateVariable(const std::string& relation,
                                               const Tuple& tuple, GraphDelta* delta) {
  auto& index = ground_->var_index[relation];
  auto it = index.find(tuple);
  if (it != index.end()) return it->second;
  const VarId var = ground_->graph.AddVariable();
  index.emplace(tuple, var);
  ground_->var_tuples.emplace_back(relation, tuple);
  ground_->relation_vars[relation].push_back(var);
  delta->new_variables.push_back(var);
  return var;
}

void IncrementalGrounder::ProcessGrounding(const CompiledFactorRule& cr,
                                           const std::vector<Value>& values,
                                           int64_t sign, GraphDelta* delta) {
  // Head variable.
  Tuple head_tuple;
  head_tuple.reserve(cr.head_slots.size());
  for (size_t i = 0; i < cr.head_slots.size(); ++i) {
    head_tuple.push_back(cr.head_slots[i] >= 0 ? values[cr.head_slots[i]]
                                               : cr.rule.head.terms[i].constant);
  }
  const VarId head = GetOrCreateVariable(cr.rule.head.predicate, head_tuple, delta);

  // Body literals over query variables.
  std::vector<Literal> literals;
  literals.reserve(cr.query_atoms.size());
  for (const auto& qa : cr.query_atoms) {
    Tuple t;
    t.reserve(qa.slots.size());
    for (size_t i = 0; i < qa.slots.size(); ++i) {
      t.push_back(qa.slots[i] >= 0 ? values[qa.slots[i]] : qa.constants[i]);
    }
    const VarId v = GetOrCreateVariable(qa.relation, t, delta);
    if (v == head) return;  // grounding references its own head; skip
    literals.push_back(Literal{v, qa.negated});
  }
  CanonicalizeLiterals(&literals);

  // Weight.
  WeightId weight;
  if (cr.has_fixed_weight) {
    weight = cr.fixed_weight;
  } else {
    std::string key = cr.rule.label.empty() ? StrFormat("rule#%u", cr.rule_id)
                                            : cr.rule.label;
    for (int slot : cr.weight_slots) {
      key += '/';
      key += values[slot].ToString();
    }
    weight = ground_->graph.GetOrCreateTiedWeight(key);
  }

  FinishGrounding(cr, head, weight, std::move(literals), sign, delta);
}

void IncrementalGrounder::FinishGrounding(const CompiledFactorRule& cr, VarId head,
                                          WeightId weight, std::vector<Literal> literals,
                                          int64_t sign, GraphDelta* delta) {
  ++groundings_emitted_;
  // Group.
  const auto group_key = std::make_tuple(cr.rule_id, head, weight);
  auto git = group_index_.find(group_key);
  GroupId group;
  bool fresh_group = false;
  if (git == group_index_.end()) {
    if (sign < 0) {
      DD_LOG(Warning) << "retracting a grounding from a nonexistent group (rule "
                      << cr.rule_id << ")";
      return;
    }
    group = ground_->graph.AddGroup(cr.rule_id, head, weight,
                                    ToFactorSemantics(cr.rule.semantics));
    group_index_.emplace(group_key, group);
    delta->new_groups.push_back(group);
    fresh_groups_.insert(group);
    fresh_group = true;
  } else {
    group = git->second;
    fresh_group = fresh_groups_.count(group) > 0;
  }

  auto mod_for = [&]() -> GraphDelta::GroupMod& {
    auto mit = mod_index_.find(group);
    if (mit == mod_index_.end()) {
      mod_index_.emplace(group, delta->modified_groups.size());
      delta->modified_groups.push_back(GraphDelta::GroupMod{group, {}, {}});
      return delta->modified_groups.back();
    }
    return delta->modified_groups[mit->second];
  };

  if (sign > 0) {
    const factor::ClauseId cid = ground_->graph.AddClause(group, literals);
    if (!fresh_group) mod_for().added.push_back(cid);
  } else {
    const factor::ClauseId cid = ground_->graph.FindActiveClause(group, literals);
    if (cid == factor::kNoClause) {
      DD_LOG(Warning) << "retracting an unknown grounding (rule " << cr.rule_id << ")";
      return;
    }
    ground_->graph.DeactivateClause(cid);
    if (!fresh_group) {
      GraphDelta::GroupMod& mod = mod_for();
      // If this clause was added earlier in the same update, cancel it out.
      auto ait = std::find(mod.added.begin(), mod.added.end(), cid);
      if (ait != mod.added.end()) {
        mod.added.erase(ait);
      } else {
        mod.removed.push_back(cid);
      }
    }
  }
}

void IncrementalGrounder::EmitShardGrounding(const CompiledFactorRule& cr,
                                             const std::vector<Value>& values,
                                             int64_t sign, ShardBuffer* buf) const {
  // Mirror of ProcessGrounding's resolution half against a frozen graph:
  // lookups hit the shared index read-only; misses mint provisional ids in
  // first-encounter order, which is exactly the order the sequential
  // grounder would have assigned real ids in.
  auto var_ref = [&](const std::string& relation, Tuple tuple) -> uint32_t {
    auto rit = ground_->var_index.find(relation);
    if (rit != ground_->var_index.end()) {
      auto it = rit->second.find(tuple);
      if (it != rit->second.end()) return it->second;
    }
    auto& local = buf->var_lookup[relation];
    auto [lit, inserted] = local.try_emplace(
        tuple, static_cast<uint32_t>(buf->new_vars.size()) | kProvisionalBit);
    if (inserted) buf->new_vars.emplace_back(relation, std::move(tuple));
    return lit->second;
  };

  Tuple head_tuple;
  head_tuple.reserve(cr.head_slots.size());
  for (size_t i = 0; i < cr.head_slots.size(); ++i) {
    head_tuple.push_back(cr.head_slots[i] >= 0 ? values[cr.head_slots[i]]
                                               : cr.rule.head.terms[i].constant);
  }
  ShardBuffer::Op op;
  op.sign = sign;
  op.head_ref = var_ref(cr.rule.head.predicate, std::move(head_tuple));

  op.literals.reserve(cr.query_atoms.size());
  for (const auto& qa : cr.query_atoms) {
    Tuple t;
    t.reserve(qa.slots.size());
    for (size_t i = 0; i < qa.slots.size(); ++i) {
      t.push_back(qa.slots[i] >= 0 ? values[qa.slots[i]] : qa.constants[i]);
    }
    const uint32_t v = var_ref(qa.relation, std::move(t));
    // Grounding references its own head: skip, keeping any variables already
    // minted (the sequential path creates them before bailing too).
    if (v == op.head_ref) return;
    op.literals.push_back(Literal{v, qa.negated});
  }

  if (cr.has_fixed_weight) {
    op.weight_ref = cr.fixed_weight;
  } else {
    std::string key = cr.rule.label.empty() ? StrFormat("rule#%u", cr.rule_id)
                                            : cr.rule.label;
    for (int slot : cr.weight_slots) {
      key += '/';
      key += values[slot].ToString();
    }
    if (auto w = ground_->graph.FindTiedWeight(key)) {
      op.weight_ref = *w;
    } else {
      auto [it, inserted] = buf->weight_lookup.try_emplace(
          key, static_cast<uint32_t>(buf->new_weight_keys.size()) | kProvisionalBit);
      if (inserted) buf->new_weight_keys.push_back(std::move(key));
      op.weight_ref = it->second;
    }
  }
  buf->ops.push_back(std::move(op));
}

void IncrementalGrounder::MergeShardBuffers(const CompiledFactorRule& cr,
                                            std::vector<ShardBuffer>* buffers,
                                            GraphDelta* delta) {
  factor::FactorGraph& graph = ground_->graph;
  size_t new_vars = 0, new_weights = 0, clause_adds = 0;
  for (const ShardBuffer& buf : *buffers) {
    new_vars += buf.new_vars.size();
    new_weights += buf.new_weight_keys.size();
    for (const ShardBuffer::Op& op : buf.ops) {
      if (op.sign > 0) ++clause_adds;
    }
  }
  // Upper bounds (cross-shard dedup only shrinks them): one reservation, no
  // rehash or reallocation inside the replay loop.
  graph.ReserveVariables(graph.NumVariables() + new_vars);
  graph.ReserveWeights(graph.NumWeights() + new_weights);
  graph.ReserveClauses(graph.NumClauses() + clause_adds);
  ground_->var_tuples.reserve(ground_->var_tuples.size() + new_vars);

  for (ShardBuffer& buf : *buffers) {
    // Resolve this shard's provisional entities in first-encounter order;
    // entities another shard already materialized dedup to that id.
    std::vector<VarId> var_map(buf.new_vars.size());
    for (size_t i = 0; i < buf.new_vars.size(); ++i) {
      var_map[i] =
          GetOrCreateVariable(buf.new_vars[i].first, buf.new_vars[i].second, delta);
    }
    std::vector<WeightId> weight_map(buf.new_weight_keys.size());
    for (size_t i = 0; i < buf.new_weight_keys.size(); ++i) {
      weight_map[i] = graph.GetOrCreateTiedWeight(buf.new_weight_keys[i]);
    }
    auto resolve_var = [&](uint32_t ref) -> VarId {
      return IsProvisional(ref) ? var_map[ProvisionalIndex(ref)] : ref;
    };

    for (ShardBuffer::Op& op : buf.ops) {
      const VarId head = resolve_var(op.head_ref);
      std::vector<Literal> literals;
      literals.reserve(op.literals.size());
      for (const Literal& lit : op.literals) {
        literals.push_back(Literal{resolve_var(lit.var), lit.negated});
      }
      CanonicalizeLiterals(&literals);
      const WeightId weight = IsProvisional(op.weight_ref)
                                  ? weight_map[ProvisionalIndex(op.weight_ref)]
                                  : op.weight_ref;
      FinishGrounding(cr, head, weight, std::move(literals), op.sign, delta);
    }
    // Done with this shard; free its buffers before replaying the next.
    buf = ShardBuffer{};
  }
}

void IncrementalGrounder::GroundRuleFull(const CompiledFactorRule& cr,
                                         GraphDelta* delta) {
  // A constant-term driver is probed through its column index sequentially
  // (O(matching rows)); a sharded full scan would visit every row.
  const size_t domain = cr.body.FullDriverDomain();
  const size_t shards = cr.body.DriverHasConstantTerm() ? 1 : ShardsFor(domain);
  if (shards <= 1) {
    // Groundings are buffered first because ProcessGrounding mutates graph
    // state while tables are being scanned.
    std::vector<std::vector<Value>> bindings;
    cr.body.EvaluateFull([&](const std::vector<Value>& values, int64_t sign) {
      DD_CHECK_EQ(sign, 1);
      bindings.push_back(values);
    });
    for (const auto& values : bindings) {
      ProcessGrounding(cr, values, +1, delta);
    }
    return;
  }

  EnsurePool();
  cr.body.PrewarmIndexes();
  std::vector<ShardBuffer> buffers(pool_->shards());
  pool_->ParallelFor(domain, [&](size_t shard, size_t begin, size_t end) {
    ShardBuffer* buf = &buffers[shard];
    cr.body.EvaluateFullRange(begin, end,
                              [&](const std::vector<Value>& values, int64_t sign) {
                                DD_CHECK_EQ(sign, 1);
                                EmitShardGrounding(cr, values, sign, buf);
                              });
  });
  MergeShardBuffers(cr, &buffers, delta);
}

void IncrementalGrounder::ReapplyEvidence(const std::string& query_relation,
                                          const Tuple& tuple, GraphDelta* delta) {
  const VarId var = GetOrCreateVariable(query_relation, tuple, delta);
  std::optional<bool> label;
  for (const dsl::RelationDecl* ev : program_->EvidenceRelationsFor(query_relation)) {
    const Table* table = db_->GetTable(ev->name);
    if (table == nullptr) continue;
    Tuple pos = tuple, neg = tuple;
    pos.emplace_back(true);
    neg.emplace_back(false);
    if (table->Contains(pos)) {
      label = true;  // positive labels win conflicts
      break;
    }
    if (table->Contains(neg)) label = false;
  }
  const std::optional<bool> old = ground_->graph.EvidenceValue(var);
  if (old != label) {
    ground_->graph.SetEvidence(var, label);
    delta->evidence_changes.push_back(GraphDelta::EvidenceChange{var, old, label});
  }
}

StatusOr<GraphDelta> IncrementalGrounder::GroundAll() {
  DD_CHECK(initialized_);
  GraphDelta delta;
  mod_index_.clear();
  fresh_groups_.clear();

  // Variables for every query tuple.
  for (const dsl::RelationDecl& rel : program_->relations()) {
    if (rel.kind != dsl::RelationKind::kQuery) continue;
    const Table* table = db_->GetTable(rel.name);
    if (table == nullptr) {
      return Status::FailedPrecondition("missing table '" + rel.name + "'");
    }
    table->Scan([&](RowId, const Tuple& t) { GetOrCreateVariable(rel.name, t, &delta); });
  }

  // Evidence labels.
  for (const dsl::RelationDecl& rel : program_->relations()) {
    if (rel.kind != dsl::RelationKind::kEvidence) continue;
    const Table* table = db_->GetTable(rel.name);
    if (table == nullptr) continue;
    table->Scan([&](RowId, const Tuple& t) {
      Tuple target(t.begin(), t.end() - 1);
      ReapplyEvidence(rel.evidence_for, target, &delta);
    });
  }

  // Ground every factor rule, sharding large evaluations across the pool.
  // Rules merge in order: rule r+1's shards resolve variables against the
  // graph state rule r left behind, exactly like the sequential grounder.
  for (const CompiledFactorRule& cr : rules_) {
    GroundRuleFull(cr, &delta);
  }
  return delta;
}

StatusOr<GraphDelta> IncrementalGrounder::ApplyRelationDeltas(
    const engine::RelationDeltas& deltas) {
  DD_CHECK(initialized_);
  GraphDelta delta;
  mod_index_.clear();
  fresh_groups_.clear();

  // 1. New query tuples become variables (removed tuples keep their variable,
  //    which ends up isolated once its groundings are retracted below).
  for (const auto& [relation, dt] : deltas) {
    if (!program_->IsQueryRelation(relation)) continue;
    // Ordered: variable ids are assigned in visit order, and ids reach the
    // published view and fingerprints — hash-layout order must not leak in.
    dt.ForEachOrdered([&](const Tuple& t, int64_t c) {
      if (c > 0) GetOrCreateVariable(relation, t, &delta);
    });
  }

  // 2. Evidence changes: recompute labels for every touched target tuple.
  for (const auto& [relation, dt] : deltas) {
    const dsl::RelationDecl* rel = program_->FindRelation(relation);
    if (rel == nullptr || rel->kind != dsl::RelationKind::kEvidence) continue;
    std::set<Tuple> touched;
    dt.ForEach([&](const Tuple& t, int64_t) {
      touched.insert(Tuple(t.begin(), t.end() - 1));
    });
    for (const Tuple& target : touched) {
      ReapplyEvidence(rel->evidence_for, target, &delta);
    }
  }

  // 3. Delta-ground every factor rule whose body touches a changed relation.
  //    Each telescoping term's driver scan shards independently; small
  //    deltas (the common incremental case) stay sequential.
  for (const CompiledFactorRule& cr : rules_) {
    std::map<std::string, const DeltaTable*> body_deltas;
    for (const dsl::Atom& atom : cr.rule.body) {
      auto it = deltas.find(atom.predicate);
      if (it != deltas.end()) body_deltas[atom.predicate] = &it->second;
    }
    if (body_deltas.empty()) continue;

    DD_ASSIGN_OR_RETURN(engine::CompiledRuleBody::DeltaEvalPlan plan,
                        cr.body.PlanDeltaEvaluation(body_deltas));
    size_t max_domain = 0;
    for (size_t m = 0; m < plan.num_terms(); ++m) {
      max_domain = std::max(max_domain, cr.body.DeltaTermDomain(plan, m));
    }
    const size_t shards =
        cr.body.DriverHasConstantTerm() ? 1 : ShardsFor(max_domain);
    if (shards <= 1) {
      // Sequential: reuse the plan already built for routing, via the
      // index-probing recursion (the range path always scans the driver).
      std::vector<std::pair<std::vector<Value>, int64_t>> bindings;
      for (size_t m = 0; m < plan.num_terms(); ++m) {
        cr.body.EvaluateDeltaTerm(plan, m,
                                  [&](const std::vector<Value>& values, int64_t sign) {
                                    bindings.emplace_back(values, sign);
                                  });
      }
      for (const auto& [values, sign] : bindings) {
        ProcessGrounding(cr, values, sign, &delta);
      }
      continue;
    }

    EnsurePool();
    cr.body.PrewarmIndexes();
    cr.body.MaterializeDriverDelta(&plan);
    const size_t per_term = pool_->shards();
    std::vector<ShardBuffer> buffers(plan.num_terms() * per_term);
    for (size_t m = 0; m < plan.num_terms(); ++m) {
      pool_->ParallelFor(
          cr.body.DeltaTermDomain(plan, m),
          [&](size_t shard, size_t begin, size_t end) {
            ShardBuffer* buf = &buffers[m * per_term + shard];
            cr.body.EvaluateDeltaTermRange(
                plan, m, begin, end,
                [&](const std::vector<Value>& values, int64_t sign) {
                  EmitShardGrounding(cr, values, sign, buf);
                });
          });
    }
    MergeShardBuffers(cr, &buffers, &delta);
  }
  return delta;
}

StatusOr<GraphDelta> IncrementalGrounder::AddFactorRule(const dsl::FactorRule& rule) {
  DD_CHECK(initialized_);
  DD_RETURN_IF_ERROR(CompileFactorRule(rule));
  GraphDelta delta;
  mod_index_.clear();
  fresh_groups_.clear();
  const uint64_t before = groundings_emitted_;
  GroundRuleFull(rules_.back(), &delta);
  last_rule_groundings_ = groundings_emitted_ - before;
  return delta;
}

StatusOr<GraphDelta> IncrementalGrounder::RemoveFactorRule(const std::string& label) {
  DD_CHECK(initialized_);
  auto it = std::find_if(rules_.begin(), rules_.end(), [&](const CompiledFactorRule& cr) {
    return cr.rule.label == label;
  });
  if (it == rules_.end()) return Status::NotFound("no factor rule labeled '" + label + "'");
  GraphDelta delta;
  const uint32_t rule_id = it->rule_id;
  for (GroupId g = 0; g < ground_->graph.NumGroups(); ++g) {
    const factor::FactorGroup& group = ground_->graph.group(g);
    if (group.rule_id == rule_id && group.active) {
      ground_->graph.DeactivateGroup(g);
      delta.removed_groups.push_back(g);
    }
  }
  rules_.erase(it);
  return delta;
}

}  // namespace deepdive::grounding
