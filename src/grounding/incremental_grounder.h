#ifndef DEEPDIVE_GROUNDING_INCREMENTAL_GROUNDER_H_
#define DEEPDIVE_GROUNDING_INCREMENTAL_GROUNDER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dsl/program.h"
#include "engine/rule_evaluator.h"
#include "engine/view_maintenance.h"
#include "factor/graph_delta.h"
#include "grounding/grounder.h"
#include "grounding/grounding_options.h"
#include "storage/database.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace deepdive::grounding {

/// Incremental grounding (Section 3, phase 1): turns set-level relation
/// deltas (from DRed view maintenance) and program changes into a factor-
/// graph delta (ΔV, ΔF):
///   * new query tuples        -> new variables
///   * evidence tuple changes  -> evidence (re)assignments
///   * factor-rule body deltas -> ground clauses added to / retracted from
///     their Equation-1 groups (via the same telescoping delta evaluation
///     used for views)
///   * rule addition/removal   -> full evaluation / group deactivation
///
/// With `options.num_threads > 1`, large evaluations run as a sharded
/// pipeline (compile -> shard -> evaluate -> merge): the driver atom's scan
/// is partitioned into contiguous row ranges, each shard evaluates its range
/// and emits groundings into a private buffer (resolving variables/weights
/// against the frozen graph, minting shard-local provisional ids for
/// misses), and a deterministic merge replays the buffers in shard order.
/// The merged graph and delta are bit-identical to the sequential result at
/// any thread count, because ids are assigned in the same global
/// first-encounter order the sequential grounder would use.
class IncrementalGrounder {
 public:
  /// `ground` may be empty (fresh grounding) or a previously built graph.
  IncrementalGrounder(const dsl::Program* program, Database* db, GroundGraph* ground,
                      GroundingOptions options = {});

  /// Compiles the program's factor rules. Call once before grounding.
  Status Initialize();

  /// Grounds everything from the current database state (assumes the graph
  /// has no groundings yet for these rules). Returns the delta (which, for a
  /// fresh graph, describes the whole graph).
  StatusOr<factor::GraphDelta> GroundAll();

  /// Applies relation set-deltas produced by ViewMaintainer::ApplyUpdate.
  StatusOr<factor::GraphDelta> ApplyRelationDeltas(const engine::RelationDeltas& deltas);

  /// Adds one factor rule to the running system (grounds it fully).
  StatusOr<factor::GraphDelta> AddFactorRule(const dsl::FactorRule& rule);

  /// Retracts a factor rule by label: deactivates all its groups.
  StatusOr<factor::GraphDelta> RemoveFactorRule(const std::string& label);

  size_t NumFactorRules() const { return rules_.size(); }

  /// Cumulative count of groundings (ground clauses added or retracted)
  /// emitted by this grounder, across all rules and updates. Both the
  /// sequential and the sharded path funnel through the same emission tail,
  /// so the counter is exact at any thread count.
  uint64_t groundings_emitted() const { return groundings_emitted_; }
  /// Groundings emitted by the most recent AddFactorRule call. This is the
  /// "grounding work proportional to the rule's matches" witness: adding a
  /// rule evaluates only that rule, so the count equals the new rule's
  /// bindings — a full re-ground would be NumFactorRules() times larger.
  uint64_t last_rule_groundings() const { return last_rule_groundings_; }
  /// Immutable after construction; the reference is safe on any thread that
  /// may see the grounder at all (serving thread, in practice).
  const GroundingOptions& options() const { return options_; }

 private:
  struct ShardBuffer;  // per-shard emission buffer (defined in the .cc)

  struct CompiledFactorRule {
    dsl::FactorRule rule;
    uint32_t rule_id = 0;
    engine::CompiledRuleBody body;
    factor::WeightId fixed_weight = 0;   // for non-tied weights
    bool has_fixed_weight = false;
    std::vector<int> head_slots;         // slot per head term (-1 = constant)
    std::vector<int> weight_slots;       // slots of tied-weight variables
    /// Body atoms over query relations: (relation, negated, slots per term).
    struct QueryAtom {
      std::string relation;
      bool negated = false;
      std::vector<int> slots;            // -1 = constant
      std::vector<Value> constants;      // aligned with slots
    };
    std::vector<QueryAtom> query_atoms;
  };

  Status CompileFactorRule(const dsl::FactorRule& rule);

  /// Creates (or finds) the variable for a query tuple; records creation.
  factor::VarId GetOrCreateVariable(const std::string& relation, const Tuple& tuple,
                                    factor::GraphDelta* delta);

  /// Processes one grounding (binding of the rule body) with sign +/-1.
  void ProcessGrounding(const CompiledFactorRule& cr, const std::vector<Value>& values,
                        int64_t sign, factor::GraphDelta* delta);

  /// The emission tail shared by the sequential and merge paths: group
  /// lookup/creation, clause append/retract, and delta bookkeeping.
  /// `literals` must already be in canonical (sorted, deduped) order.
  void FinishGrounding(const CompiledFactorRule& cr, factor::VarId head,
                       factor::WeightId weight, std::vector<factor::Literal> literals,
                       int64_t sign, factor::GraphDelta* delta);

  /// Shard-local half of ProcessGrounding: resolves variables and weights
  /// against the frozen graph (read-only), minting provisional ids in `buf`
  /// for entities this update has not yet seen. Called from worker threads.
  void EmitShardGrounding(const CompiledFactorRule& cr,
                          const std::vector<Value>& values, int64_t sign,
                          ShardBuffer* buf) const;

  /// Replays shard buffers in shard order against the real graph, remapping
  /// provisional ids to globally assigned ones. Produces the exact ids and
  /// delta the sequential grounder would have.
  void MergeShardBuffers(const CompiledFactorRule& cr, std::vector<ShardBuffer>* buffers,
                         factor::GraphDelta* delta);

  /// Fully grounds one rule, sharded across the pool when the driver domain
  /// is large enough, sequentially otherwise.
  void GroundRuleFull(const CompiledFactorRule& cr, factor::GraphDelta* delta);

  /// Worker count for a given driver-domain size (1 = stay sequential).
  size_t ShardsFor(size_t domain) const;

  /// Creates the worker pool on first sharded evaluation.
  void EnsurePool();

  /// Applies evidence-relation changes for a target variable by rescanning
  /// the evidence tables for that tuple.
  void ReapplyEvidence(const std::string& query_relation, const Tuple& tuple,
                       factor::GraphDelta* delta);

  const dsl::Program* program_;
  Database* db_;
  GroundGraph* ground_;
  GroundingOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first sharded run
  std::vector<CompiledFactorRule> rules_;

  // (rule_id, head var, weight) -> group.
  std::map<std::tuple<uint32_t, factor::VarId, factor::WeightId>, factor::GroupId>
      group_index_;
  // Scratch: per-update map group -> index into delta.modified_groups, and
  // the set of groups created during the current update (their clauses are
  // implicitly "new" and need no GroupMod record).
  std::map<factor::GroupId, size_t> mod_index_;
  std::set<factor::GroupId> fresh_groups_;

  uint32_t next_rule_id_ = 0;
  bool initialized_ = false;
  uint64_t groundings_emitted_ = 0;
  uint64_t last_rule_groundings_ = 0;
};

}  // namespace deepdive::grounding

#endif  // DEEPDIVE_GROUNDING_INCREMENTAL_GROUNDER_H_
