#ifndef DEEPDIVE_GROUNDING_GROUNDER_H_
#define DEEPDIVE_GROUNDING_GROUNDER_H_

#include <map>
#include <string>
#include <vector>

#include "dsl/program.h"
#include "factor/factor_graph.h"
#include "storage/database.h"
#include "util/status.h"

namespace deepdive::grounding {

/// The grounded model plus the tuple <-> variable correspondence ("every
/// tuple in the database is a random variable", Section 2.5).
struct GroundGraph {
  factor::FactorGraph graph;

  /// Query-relation tuple -> variable.
  std::map<std::string, std::map<Tuple, factor::VarId>> var_index;

  /// VarId -> (relation, tuple); parallel to graph variables.
  std::vector<std::pair<std::string, Tuple>> var_tuples;

  /// Variable for a query tuple, or kNoVar.
  factor::VarId FindVariable(const std::string& relation, const Tuple& tuple) const;

  /// All variables of one query relation.
  std::vector<factor::VarId> VariablesOf(const std::string& relation) const;
};

/// Grounds a program over a database from scratch: creates one Boolean
/// variable per query-relation tuple, applies evidence relations, and
/// evaluates every factor rule into Equation-1 groups. (Internally this is
/// the incremental grounder run against an empty graph; there is exactly one
/// grounding code path.)
StatusOr<GroundGraph> GroundProgram(const dsl::Program& program, Database* db);

}  // namespace deepdive::grounding

#endif  // DEEPDIVE_GROUNDING_GROUNDER_H_
