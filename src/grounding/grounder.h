#ifndef DEEPDIVE_GROUNDING_GROUNDER_H_
#define DEEPDIVE_GROUNDING_GROUNDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "dsl/program.h"
#include "factor/factor_graph.h"
#include "grounding/grounding_options.h"
#include "storage/database.h"
#include "util/hash.h"
#include "util/status.h"

namespace deepdive::grounding {

/// The grounded model plus the tuple <-> variable correspondence ("every
/// tuple in the database is a random variable", Section 2.5).
struct GroundGraph {
  factor::FactorGraph graph;

  /// Query-relation tuple -> variable. Hash-indexed: GetOrCreateVariable is
  /// the hottest lookup in factor emission, and ordered iteration is served
  /// by `var_tuples` instead.
  std::unordered_map<std::string,
                     std::unordered_map<Tuple, factor::VarId, TupleHash>>
      var_index;

  /// VarId -> (relation, tuple); parallel to graph variables. The
  /// deterministic (creation-order) enumeration of variables.
  std::vector<std::pair<std::string, Tuple>> var_tuples;

  /// Per-relation variable ids in creation order (the projection of
  /// var_tuples onto one relation), so relation-wide enumeration is
  /// O(relation size) rather than a scan of every variable.
  std::unordered_map<std::string, std::vector<factor::VarId>> relation_vars;

  /// Variable for a query tuple, or kNoVar.
  factor::VarId FindVariable(const std::string& relation, const Tuple& tuple) const;

  /// All variables of one query relation, in ascending VarId (creation)
  /// order, derived from `var_tuples`.
  std::vector<factor::VarId> VariablesOf(const std::string& relation) const;
};

/// Grounds a program over a database from scratch: creates one Boolean
/// variable per query-relation tuple, applies evidence relations, and
/// evaluates every factor rule into Equation-1 groups. (Internally this is
/// the incremental grounder run against an empty graph; there is exactly one
/// grounding code path.)
StatusOr<GroundGraph> GroundProgram(const dsl::Program& program, Database* db,
                                    const GroundingOptions& options = {});

}  // namespace deepdive::grounding

#endif  // DEEPDIVE_GROUNDING_GROUNDER_H_
