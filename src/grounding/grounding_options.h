#ifndef DEEPDIVE_GROUNDING_GROUNDING_OPTIONS_H_
#define DEEPDIVE_GROUNDING_GROUNDING_OPTIONS_H_

#include <cstddef>

namespace deepdive::grounding {

/// Execution knobs for the sharded grounding pipeline. The grounder
/// partitions each rule evaluation's driver-atom scan into contiguous row
/// ranges, evaluates and emits per-shard on the thread pool, and merges the
/// shard deltas deterministically — output is bit-identical to the
/// sequential grounder at any thread count.
struct GroundingOptions {
  /// Worker threads for rule evaluation + factor emission.
  /// 1 = sequential (default); 0 = hardware concurrency.
  size_t num_threads = 1;

  /// Evaluations whose driver domain (table row slots, or delta entries)
  /// is smaller than this stay sequential: the typical incremental update
  /// touches a handful of tuples, where shard bookkeeping costs more than
  /// the evaluation itself.
  size_t min_shard_rows = 2048;
};

}  // namespace deepdive::grounding

#endif  // DEEPDIVE_GROUNDING_GROUNDING_OPTIONS_H_
