#include "grounding/grounder.h"

#include "grounding/incremental_grounder.h"

namespace deepdive::grounding {

factor::VarId GroundGraph::FindVariable(const std::string& relation,
                                        const Tuple& tuple) const {
  auto rit = var_index.find(relation);
  if (rit == var_index.end()) return factor::kNoVar;
  auto tit = rit->second.find(tuple);
  return tit == rit->second.end() ? factor::kNoVar : tit->second;
}

std::vector<factor::VarId> GroundGraph::VariablesOf(const std::string& relation) const {
  std::vector<factor::VarId> out;
  auto rit = var_index.find(relation);
  if (rit == var_index.end()) return out;
  out.reserve(rit->second.size());
  for (const auto& [_, var] : rit->second) out.push_back(var);
  return out;
}

StatusOr<GroundGraph> GroundProgram(const dsl::Program& program, Database* db) {
  GroundGraph ground;
  IncrementalGrounder grounder(&program, db, &ground);
  DD_RETURN_IF_ERROR(grounder.Initialize());
  DD_RETURN_IF_ERROR(grounder.GroundAll().status());
  return ground;
}

}  // namespace deepdive::grounding
