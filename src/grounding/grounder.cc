#include "grounding/grounder.h"

#include "grounding/incremental_grounder.h"

namespace deepdive::grounding {

factor::VarId GroundGraph::FindVariable(const std::string& relation,
                                        const Tuple& tuple) const {
  auto rit = var_index.find(relation);
  if (rit == var_index.end()) return factor::kNoVar;
  auto tit = rit->second.find(tuple);
  return tit == rit->second.end() ? factor::kNoVar : tit->second;
}

std::vector<factor::VarId> GroundGraph::VariablesOf(const std::string& relation) const {
  auto rit = relation_vars.find(relation);
  return rit == relation_vars.end() ? std::vector<factor::VarId>{} : rit->second;
}

StatusOr<GroundGraph> GroundProgram(const dsl::Program& program, Database* db,
                                    const GroundingOptions& options) {
  GroundGraph ground;
  IncrementalGrounder grounder(&program, db, &ground, options);
  DD_RETURN_IF_ERROR(grounder.Initialize());
  DD_RETURN_IF_ERROR(grounder.GroundAll().status());
  return ground;
}

}  // namespace deepdive::grounding
