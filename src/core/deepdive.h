#ifndef DEEPDIVE_CORE_DEEPDIVE_H_
#define DEEPDIVE_CORE_DEEPDIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "incremental/update_report.h"
#include "dsl/program.h"
#include "engine/view_maintenance.h"
#include "grounding/grounder.h"
#include "grounding/incremental_grounder.h"
#include "incremental/engine.h"
#include "incremental/result_view.h"
#include "storage/database.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_role.h"

namespace deepdive::core {

/// One development-loop update (Figure 1): data changes, rule changes, or a
/// pure analysis step, applied atomically followed by learning + inference.
struct UpdateSpec {
  std::string label;  // e.g. "FE1"
  std::map<std::string, std::vector<Tuple>> inserts;
  std::map<std::string, std::vector<Tuple>> deletes;
  /// DSL fragment with new rules (and possibly new relations).
  std::string add_rules;
  std::vector<std::string> remove_rule_labels;
  /// Pure analysis (rule A1): recompute marginals, nothing changes.
  bool analysis_only = false;
  /// Skip the learning step even if evidence exists (pure inference).
  bool skip_learning = false;
};

// UpdateReport (timing/diagnostics for one update) lives in
// incremental/update_report.h so ResultViews can embed it.

/// End-to-end DeepDive engine: declarative program + relational store +
/// DRed view maintenance + (incremental) grounding + learning + inference.
///
/// Typical use:
///   auto dd = DeepDive::Create(program_source, config);
///   dd->LoadRows("Sentence", sentences);
///   dd->Initialize();                       // views, grounding, materialize
///   dd->ApplyUpdate(update);                // iterate the development loop
///   dd->Query()->MarginalOf("HasSpouse", tuple);
///
/// Threading contract: one writer, any number of readers. LoadRows /
/// Initialize / ApplyUpdate and the reference-returning accessors belong to
/// one serving thread — under Clang they are REQUIRES(serving_thread), the
/// fake-lock role capability of util/thread_role.h, so calling them without
/// having claimed the role is a -Wthread-safety compile error. Query() is
/// the concurrent read surface: every Initialize/ApplyUpdate publishes a
/// fresh immutable ResultView, and any number of reader threads can pin and
/// read views (no capability needed) while the next update is being applied.
class DeepDive {
 public:
  /// The creating thread claims the serving role; it may hand the instance
  /// to a different serving thread before first use (the handoff is ordered
  /// by whatever mechanism transfers the pointer).
  static StatusOr<std::unique_ptr<DeepDive>> Create(const std::string& program_source,
                                                    DeepDiveConfig config)
      REQUIRES(serving_thread);

  Database* db() REQUIRES(serving_thread) { return &db_; }
  const dsl::Program& program() const REQUIRES(serving_thread) {
    return program_;
  }
  const grounding::GroundGraph& ground() const REQUIRES(serving_thread) {
    return ground_;
  }
  factor::FactorGraph* mutable_graph() REQUIRES(serving_thread) {
    return &ground_.graph;
  }
  /// Immutable after construction; readable from any thread.
  const DeepDiveConfig& config() const { return config_; }

  /// Bulk-loads base data. Must precede Initialize().
  Status LoadRows(const std::string& relation, const std::vector<Tuple>& rows)
      REQUIRES(serving_thread);

  /// Evaluates all views, grounds the factor graph, learns (if evidence
  /// exists), runs initial inference, and — in incremental mode —
  /// materializes both incremental-inference approaches.
  Status Initialize() REQUIRES(serving_thread);

  /// Applies one update and refreshes marginals. In Rerun mode this
  /// re-grounds / re-learns / re-infers from scratch. The returned report
  /// carries the epoch of the ResultView the update published.
  StatusOr<UpdateReport> ApplyUpdate(const UpdateSpec& update)
      REQUIRES(serving_thread);

  /// First-class rule addition (online program evolution): `rule_source` is
  /// a DSL fragment containing exactly one *factor* rule with a non-empty,
  /// unused label, over already-declared relations. The rule is grounded
  /// alone via the incremental grounder (work proportional to its matches —
  /// see the report's grounding_work; never a re-ground), optionally
  /// learned, then handed to the engine's AddRule path, which bumps the
  /// rule-set version, invalidates the compiled kernel, and publishes a new
  /// epoch. Deductive rules / new relations / data still travel through
  /// ApplyUpdate. `learn = false` (the miner's trial mode) leaves every
  /// existing weight untouched so a retraction restores exactly.
  /// In Rerun mode this delegates to ApplyUpdate (full re-ground baseline).
  StatusOr<UpdateReport> AddRule(const std::string& rule_source,
                                 bool learn = true) REQUIRES(serving_thread);

  /// First-class rule retraction: deactivates the labeled factor rule's
  /// groups as a GraphDelta. When no update intervened since the matching
  /// AddRule (rule journal), pre-add weights and marginals are restored
  /// bit-for-bit; otherwise the engine re-infers incrementally from the
  /// retraction delta.
  StatusOr<UpdateReport> RetractRule(const std::string& label)
      REQUIRES(serving_thread);

  /// Program-evolution observability (also published into every ResultView
  /// so any thread can read them via Query()).
  uint64_t program_version() const REQUIRES(serving_thread) {
    return program_version_;
  }
  size_t NumRules() const REQUIRES(serving_thread) {
    return program_.deductive_rules().size() + program_.factor_rules().size();
  }
  /// FNV-1a over the canonical text of every rule in declaration order.
  uint64_t RulesFingerprint() const REQUIRES(serving_thread);

  /// Observer for set-level relation deltas, invoked on the serving thread
  /// after each batch of view maintenance inside ApplyUpdate (base and
  /// derived relations alike). This is how layers above core (the rule
  /// miner's co-occurrence collector) maintain statistics incrementally
  /// instead of rescanning the database.
  using RelationDeltaListener = std::function<void(const engine::RelationDeltas&)>;
  void SetRelationDeltaListener(RelationDeltaListener listener)
      REQUIRES(serving_thread) {
    delta_listener_ = std::move(listener);
  }

  /// The incremental grounder (serving thread only; null before Initialize).
  /// Exposed for grounding-work accounting (groundings_emitted).
  grounding::IncrementalGrounder* grounder() REQUIRES(serving_thread) {
    return grounder_.get();
  }

  /// Pins the current immutable result view. Callable from any thread,
  /// concurrently with ApplyUpdate and background materialization swaps on
  /// the serving thread; the read is a single atomic acquire load and never
  /// blocks the writer. The view answers MarginalOf/Relation lookups for
  /// the epoch it was published at, forever (snapshot isolation) — call
  /// again to observe newer epochs. Never null; before Initialize it is the
  /// empty epoch-0 view.
  std::shared_ptr<const incremental::ResultView> Query() const {
    return publisher_.Current();
  }

  /// Blocks until a view with epoch >= `min_epoch` has been published.
  /// Callable from any thread; the explicit readiness signal for reader
  /// threads that must not spin on the empty epoch-0 view (min_epoch = 1
  /// blocks until the end of Initialize).
  void WaitForView(uint64_t min_epoch = 1) const {
    publisher_.WaitForEpoch(min_epoch);
  }

  /// Serving-thread-only accessors, reimplemented over the serving thread's
  /// current ResultView (exactly what the latest Initialize/ApplyUpdate
  /// published). References stay valid until this thread's next update
  /// publishes a successor view; concurrent readers must pin their own view
  /// with Query() instead.

  /// Marginal probability of a query tuple (0.5 if unknown variable).
  double MarginalOf(const std::string& relation, const Tuple& tuple) const
      REQUIRES(serving_thread);

  /// All (tuple, marginal) pairs of a query relation, sorted by tuple.
  std::vector<std::pair<Tuple, double>> Marginals(const std::string& relation) const
      REQUIRES(serving_thread);

  /// Raw marginal vector indexed by VarId.
  const std::vector<double>& marginal_vector() const REQUIRES(serving_thread) {
    return view_->marginals;
  }

  const std::vector<UpdateReport>& history() const REQUIRES(serving_thread) {
    return history_;
  }
  const incremental::MaterializationStats& materialization_stats() const
      REQUIRES(serving_thread);

  /// The incremental engine (nullptr in Rerun mode or before Initialize).
  /// Exposes the async-materialization surface: MaterializationInFlight,
  /// WaitForMaterialization, snapshot_generation.
  incremental::IncrementalEngine* incremental_engine() REQUIRES(serving_thread) {
    return inc_engine_.get();
  }

 private:
  DeepDive(dsl::Program program, DeepDiveConfig config);

  /// Exact-restore journal entry recorded by AddRule: everything needed to
  /// make RetractRule a bit-identical undo when no update intervened.
  struct RuleTicket {
    std::string label;
    /// Engine update_seq right after the add; a retraction restores exactly
    /// only while the engine is still at this sequence number.
    uint64_t engine_seq_after = 0;
    std::vector<double> marginals_before;
    std::vector<double> weights_before;
    size_t num_weights_before = 0;
  };

  Status RunFullPipeline(UpdateReport* report, bool cold_learning)
      REQUIRES(serving_thread);

  /// Builds a ResultView of the current serving state (marginals_, the
  /// per-relation tuple index derived from ground_, `report`, and — in
  /// incremental mode — the engine's materialization stats and pinned Pr(0)
  /// marginals), publishes it, and stamps report->epoch. Serving thread
  /// only.
  void PublishView(UpdateReport* report) REQUIRES(serving_thread);

  /// Incremental learning with warmstart; records weight changes in `delta`.
  void LearnIncremental(factor::GraphDelta* delta) REQUIRES(serving_thread);

  bool HasEvidence() const REQUIRES(serving_thread);

  /// Mutated by ApplyUpdate (rule additions/removals merge into it), so
  /// serving-thread-only like the rest of the working state.
  dsl::Program program_ GUARDED_BY(serving_thread);
  DeepDiveConfig config_;  // immutable after construction
  Database db_ GUARDED_BY(serving_thread);

  std::unique_ptr<engine::ViewMaintainer> views_ GUARDED_BY(serving_thread);
  grounding::GroundGraph ground_ GUARDED_BY(serving_thread);
  std::unique_ptr<grounding::IncrementalGrounder> grounder_
      GUARDED_BY(serving_thread);
  std::unique_ptr<incremental::IncrementalEngine> inc_engine_
      GUARDED_BY(serving_thread);

  /// Working marginal buffer of the serving thread; every publication
  /// freezes a copy into an immutable ResultView.
  std::vector<double> marginals_ GUARDED_BY(serving_thread);
  std::vector<UpdateReport> history_ GUARDED_BY(serving_thread);
  bool initialized_ GUARDED_BY(serving_thread) = false;

  /// Bumped on every rule change (AddRule / RetractRule / ApplyUpdate
  /// fragments and removals); published into views as program_version.
  uint64_t program_version_ GUARDED_BY(serving_thread) = 0;
  /// Recent AddRule tickets, newest last (bounded; see kMaxRuleJournal).
  std::vector<RuleTicket> rule_journal_ GUARDED_BY(serving_thread);
  RelationDeltaListener delta_listener_ GUARDED_BY(serving_thread);

  /// RCU publication slot for Query(), plus the serving thread's own pin of
  /// the latest published view (what the legacy accessors read).
  incremental::ResultPublisher publisher_;
  std::shared_ptr<const incremental::ResultView> view_ GUARDED_BY(serving_thread);
};

}  // namespace deepdive::core

#endif  // DEEPDIVE_CORE_DEEPDIVE_H_
