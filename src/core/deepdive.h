#ifndef DEEPDIVE_CORE_DEEPDIVE_H_
#define DEEPDIVE_CORE_DEEPDIVE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "dsl/program.h"
#include "engine/view_maintenance.h"
#include "grounding/grounder.h"
#include "grounding/incremental_grounder.h"
#include "incremental/engine.h"
#include "storage/database.h"
#include "util/status.h"

namespace deepdive::core {

/// One development-loop update (Figure 1): data changes, rule changes, or a
/// pure analysis step, applied atomically followed by learning + inference.
struct UpdateSpec {
  std::string label;  // e.g. "FE1"
  std::map<std::string, std::vector<Tuple>> inserts;
  std::map<std::string, std::vector<Tuple>> deletes;
  /// DSL fragment with new rules (and possibly new relations).
  std::string add_rules;
  std::vector<std::string> remove_rule_labels;
  /// Pure analysis (rule A1): recompute marginals, nothing changes.
  bool analysis_only = false;
  /// Skip the learning step even if evidence exists (pure inference).
  bool skip_learning = false;
};

/// Timing/diagnostics for one update.
struct UpdateReport {
  std::string label;
  double grounding_seconds = 0.0;   // view maintenance + factor grounding
  double learning_seconds = 0.0;
  double inference_seconds = 0.0;
  double TotalSeconds() const {
    return grounding_seconds + learning_seconds + inference_seconds;
  }
  incremental::Strategy strategy = incremental::Strategy::kRerun;
  double acceptance_rate = -1.0;
  size_t affected_vars = 0;
  size_t graph_variables = 0;
  size_t graph_factors = 0;  // active clauses
};

/// End-to-end DeepDive engine: declarative program + relational store +
/// DRed view maintenance + (incremental) grounding + learning + inference.
///
/// Typical use:
///   auto dd = DeepDive::Create(program_source, config);
///   dd->LoadRows("Sentence", sentences);
///   dd->Initialize();                       // views, grounding, materialize
///   dd->ApplyUpdate(update);                // iterate the development loop
///   dd->Marginals("HasSpouse");
class DeepDive {
 public:
  static StatusOr<std::unique_ptr<DeepDive>> Create(const std::string& program_source,
                                                    DeepDiveConfig config);

  Database* db() { return &db_; }
  const dsl::Program& program() const { return program_; }
  const grounding::GroundGraph& ground() const { return ground_; }
  factor::FactorGraph* mutable_graph() { return &ground_.graph; }
  const DeepDiveConfig& config() const { return config_; }

  /// Bulk-loads base data. Must precede Initialize().
  Status LoadRows(const std::string& relation, const std::vector<Tuple>& rows);

  /// Evaluates all views, grounds the factor graph, learns (if evidence
  /// exists), runs initial inference, and — in incremental mode —
  /// materializes both incremental-inference approaches.
  Status Initialize();

  /// Applies one update and refreshes marginals. In Rerun mode this
  /// re-grounds / re-learns / re-infers from scratch.
  StatusOr<UpdateReport> ApplyUpdate(const UpdateSpec& update);

  /// Marginal probability of a query tuple (0.5 if unknown variable).
  double MarginalOf(const std::string& relation, const Tuple& tuple) const;

  /// All (tuple, marginal) pairs of a query relation.
  std::vector<std::pair<Tuple, double>> Marginals(const std::string& relation) const;

  /// Raw marginal vector indexed by VarId.
  const std::vector<double>& marginal_vector() const { return marginals_; }

  const std::vector<UpdateReport>& history() const { return history_; }
  const incremental::MaterializationStats& materialization_stats() const;

  /// The incremental engine (nullptr in Rerun mode or before Initialize).
  /// Exposes the async-materialization surface: MaterializationInFlight,
  /// WaitForMaterialization, snapshot_generation.
  incremental::IncrementalEngine* incremental_engine() { return inc_engine_.get(); }

 private:
  DeepDive(dsl::Program program, DeepDiveConfig config);

  Status RunFullPipeline(UpdateReport* report, bool cold_learning);
  Status RunIncrementalUpdate(const UpdateSpec& update, UpdateReport* report);

  /// Incremental learning with warmstart; records weight changes in `delta`.
  void LearnIncremental(factor::GraphDelta* delta);

  bool HasEvidence() const;

  dsl::Program program_;
  DeepDiveConfig config_;
  Database db_;

  std::unique_ptr<engine::ViewMaintainer> views_;
  grounding::GroundGraph ground_;
  std::unique_ptr<grounding::IncrementalGrounder> grounder_;
  std::unique_ptr<incremental::IncrementalEngine> inc_engine_;

  std::vector<double> marginals_;
  std::vector<UpdateReport> history_;
  bool initialized_ = false;
};

}  // namespace deepdive::core

#endif  // DEEPDIVE_CORE_DEEPDIVE_H_
