#ifndef DEEPDIVE_CORE_CONFIG_H_
#define DEEPDIVE_CORE_CONFIG_H_

#include <cstdint>

#include "grounding/grounding_options.h"
#include "incremental/engine.h"
#include "inference/gibbs.h"
#include "inference/learner.h"

namespace deepdive::core {

/// Execution mode: Incremental is the full system; Rerun re-grounds,
/// re-learns (cold) and re-infers from scratch on every update — the
/// baseline of Section 4.2.
enum class ExecutionMode { kIncremental, kRerun };

const char* ExecutionModeName(ExecutionMode mode);

struct DeepDiveConfig {
  ExecutionMode mode = ExecutionMode::kIncremental;

  /// Sharded grounding pipeline (bit-identical output at any thread count).
  grounding::GroundingOptions grounding;

  inference::GibbsOptions gibbs;
  inference::LearnerOptions learner;
  incremental::MaterializationOptions materialization;
  incremental::EngineOptions engine;

  /// Incremental updates use warmstart SGD with fewer epochs (Appendix B.3).
  size_t incremental_learning_epochs = 15;

  uint64_t seed = 42;
};

/// Scales the default option set down for small test graphs (fast CI runs).
DeepDiveConfig FastTestConfig();

}  // namespace deepdive::core

#endif  // DEEPDIVE_CORE_CONFIG_H_
