#include "core/deepdive.h"

#include <algorithm>
#include <cmath>

#include "factor/compiled_graph.h"
#include "inference/compiled_inference.h"
#include "inference/gibbs.h"
#include "inference/learner.h"
#include "inference/replicated_gibbs.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace deepdive::core {

using factor::GraphDelta;
using factor::VarId;
using factor::WeightId;

namespace {
/// AddRule tickets kept for exact-restore retraction. One is enough for the
/// miner's add-trial-retract loop; a few more absorb interactive sessions
/// that stack several adds before retracting the latest.
constexpr size_t kMaxRuleJournal = 8;
}  // namespace

DeepDive::DeepDive(dsl::Program program, DeepDiveConfig config)
    : program_(std::move(program)), config_(config),
      view_(publisher_.Current()) {}

StatusOr<std::unique_ptr<DeepDive>> DeepDive::Create(const std::string& program_source,
                                                     DeepDiveConfig config) {
  DD_ASSIGN_OR_RETURN(dsl::Program program, dsl::CompileProgram(program_source));
  std::unique_ptr<DeepDive> dd(new DeepDive(std::move(program), config));
  DD_RETURN_IF_ERROR(dd->program_.InstantiateSchema(&dd->db_));
  return dd;
}

Status DeepDive::LoadRows(const std::string& relation, const std::vector<Tuple>& rows) {
  DD_CHECK(!initialized_) << "LoadRows must precede Initialize";
  Table* table = db_.GetTable(relation);
  if (table == nullptr) return Status::NotFound("no relation '" + relation + "'");
  for (const Tuple& row : rows) {
    DD_RETURN_IF_ERROR(table->Insert(row).status());
  }
  return Status::OK();
}

bool DeepDive::HasEvidence() const {
  for (VarId v = 0; v < ground_.graph.NumVariables(); ++v) {
    if (ground_.graph.IsEvidence(v)) return true;
  }
  return false;
}

Status DeepDive::Initialize() {
  DD_CHECK(!initialized_);
  views_ = std::make_unique<engine::ViewMaintainer>(&program_, &db_);
  DD_RETURN_IF_ERROR(views_->Initialize());

  grounder_ = std::make_unique<grounding::IncrementalGrounder>(&program_, &db_, &ground_,
                                                               config_.grounding);
  DD_RETURN_IF_ERROR(grounder_->Initialize());
  DD_RETURN_IF_ERROR(grounder_->GroundAll().status());

  if (HasEvidence()) {
    inference::Learner learner(&ground_.graph);
    inference::LearnerOptions lopts = config_.learner;
    lopts.warmstart = false;
    lopts.seed = config_.seed;
    learner.Learn(lopts);
  }

  inference::GibbsOptions gopts = config_.gibbs;
  gopts.seed = Rng::MixSeed(config_.seed, /*stream=*/1);
  marginals_ = inference::EstimateMarginalsAuto(ground_.graph, gopts).marginals;
  for (VarId v = 0; v < ground_.graph.NumVariables(); ++v) {
    const auto ev = ground_.graph.EvidenceValue(v);
    if (ev.has_value()) marginals_[v] = *ev ? 1.0 : 0.0;
  }

  if (config_.mode == ExecutionMode::kIncremental) {
    inc_engine_ = std::make_unique<incremental::IncrementalEngine>(&ground_.graph);
    incremental::MaterializationOptions mopts = config_.materialization;
    mopts.seed = Rng::MixSeed(config_.seed, /*stream=*/2);
    if (mopts.async) {
      // Background materialization: Initialize returns while the snapshot
      // builds; early updates are served conservatively (rerun) until the
      // swap, exactly like updates that outrun a later remat.
      DD_RETURN_IF_ERROR(inc_engine_->MaterializeAsync(mopts));
    } else {
      DD_RETURN_IF_ERROR(inc_engine_->Materialize(mopts));
    }
  }
  initialized_ = true;
  // Publish the initial results: from here on Query() serves the grounded,
  // learned, inferred state to any thread.
  UpdateReport init_report;
  init_report.label = "initialize";
  init_report.graph_variables = ground_.graph.NumVariables();
  init_report.graph_factors = ground_.graph.NumActiveClauses();
  PublishView(&init_report);
  return Status::OK();
}

void DeepDive::PublishView(UpdateReport* report) {
  auto view = std::make_shared<incremental::ResultView>();
  view->marginals = marginals_;
  view->relations.reserve(ground_.relation_vars.size());
  // analysis:allow(determinism-unordered): each iteration fills exactly one
  // per-relation bucket of the keyed output map and sorts it by tuple below;
  // no cross-relation state is touched, so visit order cannot reach the view.
  for (const auto& [relation, vars] : ground_.relation_vars) {
    auto& entries = view->relations[relation];
    entries.reserve(vars.size());
    for (const VarId var : vars) {
      entries.emplace_back(ground_.var_tuples[var].second,
                           var < marginals_.size() ? marginals_[var] : 0.5);
    }
    // Sorted by tuple, both for deterministic enumeration (pipelines with
    // different variable-creation histories must compare positionally) and
    // for MarginalOf's binary search.
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  for (const dsl::RelationDecl& rel : program_.relations()) {
    if (rel.kind == dsl::RelationKind::kQuery) {
      view->query_relations.push_back(rel.name);
    }
  }
  view->program_version = program_version_;
  view->rule_count = NumRules();
  view->rules_fingerprint = RulesFingerprint();
  report->epoch = publisher_.next_epoch();
  view->report = *report;
  if (inc_engine_ != nullptr) {
    // Copy the engine's serving-state facts and pin its snapshot so readers
    // of this view survive later materialization swaps.
    const auto engine_view = inc_engine_->Query();
    view->materialization = engine_view->materialization;
    view->snapshot_generation = engine_view->snapshot_generation;
    view->samples_remaining = engine_view->samples_remaining;
    view->materialized_marginals = engine_view->materialized_marginals;
  }
  publisher_.Publish(std::move(view));
  view_ = publisher_.Current();
}

uint64_t DeepDive::RulesFingerprint() const {
  // Canonical text in declaration order: two programs with the same rules
  // fingerprint identically regardless of the add/retract path taken.
  std::string text;
  for (const dsl::DeductiveRule& rule : program_.deductive_rules()) {
    text += dsl::DeductiveRuleToString(rule);
    text += '\n';
  }
  for (const dsl::FactorRule& rule : program_.factor_rules()) {
    text += dsl::FactorRuleToString(rule);
    text += '\n';
  }
  return factor::Fnv1aHash(text.data(), text.size());
}

const incremental::MaterializationStats& DeepDive::materialization_stats() const {
  static const incremental::MaterializationStats kEmpty;
  return inc_engine_ ? inc_engine_->materialization_stats() : kEmpty;
}

StatusOr<UpdateReport> DeepDive::ApplyUpdate(const UpdateSpec& update) {
  DD_CHECK(initialized_) << "call Initialize first";
  UpdateReport report;
  report.label = update.label;

  // ---- shared prologue: program fragment + relational changes ----
  Timer ground_timer;

  dsl::Program fragment;
  bool has_fragment = false;
  if (!update.add_rules.empty()) {
    DD_ASSIGN_OR_RETURN(fragment, dsl::AnalyzeFragment(program_, update.add_rules));
    has_fragment = true;
    // New relations need tables before any data lands in them.
    for (const dsl::RelationDecl& rel : fragment.relations()) {
      if (!db_.HasTable(rel.name)) {
        DD_RETURN_IF_ERROR(db_.CreateTable(rel.name, rel.schema).status());
      }
    }
    DD_RETURN_IF_ERROR(program_.Merge(fragment));
    // The view layer must know about fragment-declared relations before any
    // data lands in them.
    DD_RETURN_IF_ERROR(views_->RefreshRelations());
  }

  engine::RelationDeltas external;
  for (const auto& [relation, rows] : update.inserts) {
    if (db_.GetTable(relation) == nullptr) {
      return Status::NotFound("insert into unknown relation '" + relation + "'");
    }
    for (const Tuple& row : rows) external[relation].Add(row, +1);
  }
  for (const auto& [relation, rows] : update.deletes) {
    if (db_.GetTable(relation) == nullptr) {
      return Status::NotFound("delete from unknown relation '" + relation + "'");
    }
    for (const Tuple& row : rows) external[relation].Add(row, -1);
  }

  GraphDelta delta;
  const uint64_t groundings_before = grounder_->groundings_emitted();
  if (!external.empty()) {
    DD_ASSIGN_OR_RETURN(engine::RelationDeltas set_deltas, views_->ApplyUpdate(external));
    if (delta_listener_) delta_listener_(set_deltas);
    DD_ASSIGN_OR_RETURN(GraphDelta d, grounder_->ApplyRelationDeltas(set_deltas));
    delta.Merge(d);
  }
  if (has_fragment) {
    for (const dsl::DeductiveRule& rule : fragment.deductive_rules()) {
      DD_ASSIGN_OR_RETURN(engine::RelationDeltas set_deltas, views_->AddRule(rule));
      if (delta_listener_) delta_listener_(set_deltas);
      DD_ASSIGN_OR_RETURN(GraphDelta d, grounder_->ApplyRelationDeltas(set_deltas));
      delta.Merge(d);
    }
    for (const dsl::FactorRule& rule : fragment.factor_rules()) {
      DD_ASSIGN_OR_RETURN(GraphDelta d, grounder_->AddFactorRule(rule));
      delta.Merge(d);
    }
    if (!fragment.deductive_rules().empty() || !fragment.factor_rules().empty()) {
      ++program_version_;
    }
  }
  for (const std::string& label : update.remove_rule_labels) {
    // A label may name a deductive rule, a factor rule, or both.
    auto removed_views = views_->RemoveRule(label);
    if (removed_views.ok()) {
      if (delta_listener_) delta_listener_(removed_views.value());
      DD_ASSIGN_OR_RETURN(GraphDelta d,
                          grounder_->ApplyRelationDeltas(removed_views.value()));
      delta.Merge(d);
    }
    auto removed_factors = grounder_->RemoveFactorRule(label);
    if (removed_factors.ok()) delta.Merge(removed_factors.value());
    if (!removed_views.ok() && !removed_factors.ok()) {
      return Status::NotFound("no rule labeled '" + label + "'");
    }
    program_.RemoveRulesByLabel(label);
    ++program_version_;
  }
  report.grounding_seconds = ground_timer.Seconds();
  report.grounding_work = grounder_->groundings_emitted() - groundings_before;

  if (config_.mode == ExecutionMode::kRerun) {
    DD_RETURN_IF_ERROR(RunFullPipeline(&report, /*cold_learning=*/true));
  } else {
    // ---- incremental learning ----
    Timer learn_timer;
    if (!update.analysis_only && !update.skip_learning && HasEvidence() &&
        !delta.empty()) {
      LearnIncremental(&delta);
    }
    report.learning_seconds = learn_timer.Seconds();

    // ---- incremental inference ----
    Timer infer_timer;
    DD_ASSIGN_OR_RETURN(incremental::UpdateOutcome outcome,
                        inc_engine_->ApplyDelta(delta, config_.engine));
    report.inference_seconds = infer_timer.Seconds();
    marginals_ = outcome.marginals;
    report.strategy = outcome.fell_back_to_variational
                          ? incremental::Strategy::kVariational
                          : outcome.strategy;
    report.acceptance_rate = outcome.acceptance_rate;
    report.affected_vars = outcome.affected_vars;
  }

  report.graph_variables = ground_.graph.NumVariables();
  report.graph_factors = ground_.graph.NumActiveClauses();
  // Publish this update's results as a fresh immutable view (stamping
  // report.epoch); views pinned before this line keep serving the previous
  // epoch's marginals untouched.
  PublishView(&report);
  history_.push_back(report);
  return report;
}

StatusOr<UpdateReport> DeepDive::AddRule(const std::string& rule_source,
                                         bool learn) {
  DD_CHECK(initialized_) << "call Initialize first";
  if (config_.mode == ExecutionMode::kRerun) {
    // Rerun mode has no incremental machinery; the rule rides the full
    // pipeline (this is also the baseline the rule-delta bench compares
    // against).
    UpdateSpec spec;
    spec.label = "add_rule";
    spec.add_rules = rule_source;
    spec.skip_learning = !learn;
    return ApplyUpdate(spec);
  }
  DD_ASSIGN_OR_RETURN(dsl::Program fragment,
                      dsl::AnalyzeFragment(program_, rule_source));
  if (!fragment.deductive_rules().empty()) {
    return Status::InvalidArgument(
        "AddRule takes factor rules only; deductive rules change view "
        "contents and must go through ApplyUpdate");
  }
  if (fragment.factor_rules().size() != 1) {
    return Status::InvalidArgument(
        "AddRule takes exactly one factor rule per call");
  }
  for (const dsl::RelationDecl& rel : fragment.relations()) {
    if (program_.FindRelation(rel.name) == nullptr) {
      return Status::InvalidArgument(
          "AddRule cannot declare new relations ('" + rel.name +
          "'); declare them through ApplyUpdate first");
    }
  }
  const dsl::FactorRule rule = fragment.factor_rules().front();
  if (rule.label.empty()) {
    return Status::InvalidArgument("AddRule requires a labeled rule");
  }
  for (const dsl::FactorRule& existing : program_.factor_rules()) {
    if (existing.label == rule.label) {
      return Status::AlreadyExists("a factor rule labeled '" + rule.label +
                                   "' already exists");
    }
  }

  // Journal the pre-add state first: if no update intervenes, RetractRule
  // restores weights and marginals from here bit-for-bit.
  RuleTicket ticket;
  ticket.label = rule.label;
  ticket.marginals_before = marginals_;
  ticket.num_weights_before = ground_.graph.NumWeights();
  ticket.weights_before.resize(ticket.num_weights_before);
  for (WeightId w = 0; w < ticket.num_weights_before; ++w) {
    ticket.weights_before[w] = ground_.graph.WeightValue(w);
  }

  UpdateReport report;
  report.label = "add_rule:" + rule.label;
  Timer ground_timer;
  DD_RETURN_IF_ERROR(program_.Merge(fragment));
  DD_ASSIGN_OR_RETURN(GraphDelta delta, grounder_->AddFactorRule(rule));
  report.grounding_seconds = ground_timer.Seconds();
  // Work done = the new rule's bindings, nothing else: the proportionality
  // witness that this was not a re-ground.
  report.grounding_work = grounder_->last_rule_groundings();

  Timer learn_timer;
  if (learn && HasEvidence() && !delta.empty()) LearnIncremental(&delta);
  report.learning_seconds = learn_timer.Seconds();

  Timer infer_timer;
  DD_ASSIGN_OR_RETURN(incremental::UpdateOutcome outcome,
                      inc_engine_->AddRule(delta, config_.engine));
  report.inference_seconds = infer_timer.Seconds();
  marginals_ = outcome.marginals;
  report.strategy = outcome.fell_back_to_variational
                        ? incremental::Strategy::kVariational
                        : outcome.strategy;
  report.acceptance_rate = outcome.acceptance_rate;
  report.affected_vars = outcome.affected_vars;
  ++program_version_;

  ticket.engine_seq_after = inc_engine_->update_seq();
  rule_journal_.push_back(std::move(ticket));
  if (rule_journal_.size() > kMaxRuleJournal) {
    rule_journal_.erase(rule_journal_.begin());
  }

  report.graph_variables = ground_.graph.NumVariables();
  report.graph_factors = ground_.graph.NumActiveClauses();
  PublishView(&report);
  history_.push_back(report);
  return report;
}

StatusOr<UpdateReport> DeepDive::RetractRule(const std::string& label) {
  DD_CHECK(initialized_) << "call Initialize first";
  if (config_.mode == ExecutionMode::kRerun) {
    UpdateSpec spec;
    spec.label = "retract_rule";
    spec.remove_rule_labels.push_back(label);
    return ApplyUpdate(spec);
  }
  UpdateReport report;
  report.label = "retract_rule:" + label;
  Timer ground_timer;
  // First-class retraction covers factor rules (the AddRule counterpart);
  // deductive-rule removal changes view contents and stays on ApplyUpdate.
  DD_ASSIGN_OR_RETURN(GraphDelta delta, grounder_->RemoveFactorRule(label));
  program_.RemoveRulesByLabel(label);
  report.grounding_seconds = ground_timer.Seconds();

  // Exact restore applies when the journal holds this label's add and the
  // engine has not moved since: the pre-add state is then the precise
  // posterior of the restored graph.
  auto ticket = rule_journal_.end();
  for (auto it = rule_journal_.rbegin(); it != rule_journal_.rend(); ++it) {
    if (it->label == label) {
      ticket = std::prev(it.base());
      break;
    }
  }
  const std::vector<double>* restore = nullptr;
  if (ticket != rule_journal_.end() &&
      inc_engine_->update_seq() == ticket->engine_seq_after) {
    // Weights the rule appended stay in the (append-only) graph but their
    // groups are deactivated; every pre-existing weight reverts exactly.
    for (WeightId w = 0; w < ticket->num_weights_before; ++w) {
      ground_.graph.SetWeightValue(w, ticket->weights_before[w]);
    }
    restore = &ticket->marginals_before;
  }

  Timer infer_timer;
  DD_ASSIGN_OR_RETURN(
      incremental::UpdateOutcome outcome,
      inc_engine_->RetractRule(delta, config_.engine, restore));
  report.inference_seconds = infer_timer.Seconds();
  marginals_ = outcome.marginals;
  report.strategy = outcome.fell_back_to_variational
                        ? incremental::Strategy::kVariational
                        : outcome.strategy;
  report.acceptance_rate = outcome.acceptance_rate;
  report.affected_vars = outcome.affected_vars;
  ++program_version_;
  if (ticket != rule_journal_.end()) rule_journal_.erase(ticket);

  report.graph_variables = ground_.graph.NumVariables();
  report.graph_factors = ground_.graph.NumActiveClauses();
  PublishView(&report);
  history_.push_back(report);
  return report;
}

Status DeepDive::RunFullPipeline(UpdateReport* report, bool cold_learning) {
  // Re-ground from scratch: fresh graph, fresh grounder (Rerun baseline).
  Timer ground_timer;
  ground_ = grounding::GroundGraph{};
  grounder_ = std::make_unique<grounding::IncrementalGrounder>(&program_, &db_, &ground_,
                                                               config_.grounding);
  DD_RETURN_IF_ERROR(grounder_->Initialize());
  DD_RETURN_IF_ERROR(grounder_->GroundAll().status());
  report->grounding_seconds += ground_timer.Seconds();

  Timer learn_timer;
  if (HasEvidence()) {
    inference::Learner learner(&ground_.graph);
    inference::LearnerOptions lopts = config_.learner;
    lopts.warmstart = !cold_learning;
    lopts.seed = Rng::MixSeed(config_.seed, /*stream=*/3, history_.size());
    learner.Learn(lopts);
  }
  report->learning_seconds = learn_timer.Seconds();

  Timer infer_timer;
  inference::GibbsOptions gopts = config_.gibbs;
  gopts.seed = Rng::MixSeed(config_.seed, /*stream=*/4, history_.size() + 1);
  marginals_ = inference::EstimateMarginalsAuto(ground_.graph, gopts).marginals;
  for (VarId v = 0; v < ground_.graph.NumVariables(); ++v) {
    const auto ev = ground_.graph.EvidenceValue(v);
    if (ev.has_value()) marginals_[v] = *ev ? 1.0 : 0.0;
  }
  report->inference_seconds = infer_timer.Seconds();
  report->strategy = incremental::Strategy::kRerun;
  return Status::OK();
}

void DeepDive::LearnIncremental(GraphDelta* delta) {
  std::vector<double> before(ground_.graph.NumWeights());
  for (WeightId w = 0; w < ground_.graph.NumWeights(); ++w) {
    before[w] = ground_.graph.WeightValue(w);
  }
  inference::Learner learner(&ground_.graph);
  inference::LearnerOptions lopts = config_.learner;
  lopts.warmstart = true;
  lopts.epochs = config_.incremental_learning_epochs;
  lopts.seed = Rng::MixSeed(config_.seed, /*stream=*/5, history_.size() + 1);
  learner.Learn(lopts);
  for (WeightId w = 0; w < ground_.graph.NumWeights(); ++w) {
    const double after = ground_.graph.WeightValue(w);
    if (std::abs(after - before[w]) > 1e-12) {
      delta->weight_changes.push_back(
          GraphDelta::WeightChange{w, before[w], after});
    }
  }
}

double DeepDive::MarginalOf(const std::string& relation, const Tuple& tuple) const {
  return view_->MarginalOf(relation, tuple);
}

std::vector<std::pair<Tuple, double>> DeepDive::Marginals(
    const std::string& relation) const {
  const auto* entries = view_->Relation(relation);
  if (entries == nullptr) return {};
  return *entries;
}

}  // namespace deepdive::core
