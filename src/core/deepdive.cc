#include "core/deepdive.h"

#include <algorithm>
#include <cmath>

#include "inference/compiled_inference.h"
#include "inference/gibbs.h"
#include "inference/learner.h"
#include "inference/replicated_gibbs.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace deepdive::core {

using factor::GraphDelta;
using factor::VarId;
using factor::WeightId;

DeepDive::DeepDive(dsl::Program program, DeepDiveConfig config)
    : program_(std::move(program)), config_(config),
      view_(publisher_.Current()) {}

StatusOr<std::unique_ptr<DeepDive>> DeepDive::Create(const std::string& program_source,
                                                     DeepDiveConfig config) {
  DD_ASSIGN_OR_RETURN(dsl::Program program, dsl::CompileProgram(program_source));
  std::unique_ptr<DeepDive> dd(new DeepDive(std::move(program), config));
  DD_RETURN_IF_ERROR(dd->program_.InstantiateSchema(&dd->db_));
  return dd;
}

Status DeepDive::LoadRows(const std::string& relation, const std::vector<Tuple>& rows) {
  DD_CHECK(!initialized_) << "LoadRows must precede Initialize";
  Table* table = db_.GetTable(relation);
  if (table == nullptr) return Status::NotFound("no relation '" + relation + "'");
  for (const Tuple& row : rows) {
    DD_RETURN_IF_ERROR(table->Insert(row).status());
  }
  return Status::OK();
}

bool DeepDive::HasEvidence() const {
  for (VarId v = 0; v < ground_.graph.NumVariables(); ++v) {
    if (ground_.graph.IsEvidence(v)) return true;
  }
  return false;
}

Status DeepDive::Initialize() {
  DD_CHECK(!initialized_);
  views_ = std::make_unique<engine::ViewMaintainer>(&program_, &db_);
  DD_RETURN_IF_ERROR(views_->Initialize());

  grounder_ = std::make_unique<grounding::IncrementalGrounder>(&program_, &db_, &ground_,
                                                               config_.grounding);
  DD_RETURN_IF_ERROR(grounder_->Initialize());
  DD_RETURN_IF_ERROR(grounder_->GroundAll().status());

  if (HasEvidence()) {
    inference::Learner learner(&ground_.graph);
    inference::LearnerOptions lopts = config_.learner;
    lopts.warmstart = false;
    lopts.seed = config_.seed;
    learner.Learn(lopts);
  }

  inference::GibbsOptions gopts = config_.gibbs;
  gopts.seed = Rng::MixSeed(config_.seed, /*stream=*/1);
  marginals_ = inference::EstimateMarginalsAuto(ground_.graph, gopts).marginals;
  for (VarId v = 0; v < ground_.graph.NumVariables(); ++v) {
    const auto ev = ground_.graph.EvidenceValue(v);
    if (ev.has_value()) marginals_[v] = *ev ? 1.0 : 0.0;
  }

  if (config_.mode == ExecutionMode::kIncremental) {
    inc_engine_ = std::make_unique<incremental::IncrementalEngine>(&ground_.graph);
    incremental::MaterializationOptions mopts = config_.materialization;
    mopts.seed = Rng::MixSeed(config_.seed, /*stream=*/2);
    if (mopts.async) {
      // Background materialization: Initialize returns while the snapshot
      // builds; early updates are served conservatively (rerun) until the
      // swap, exactly like updates that outrun a later remat.
      DD_RETURN_IF_ERROR(inc_engine_->MaterializeAsync(mopts));
    } else {
      DD_RETURN_IF_ERROR(inc_engine_->Materialize(mopts));
    }
  }
  initialized_ = true;
  // Publish the initial results: from here on Query() serves the grounded,
  // learned, inferred state to any thread.
  UpdateReport init_report;
  init_report.label = "initialize";
  init_report.graph_variables = ground_.graph.NumVariables();
  init_report.graph_factors = ground_.graph.NumActiveClauses();
  PublishView(&init_report);
  return Status::OK();
}

void DeepDive::PublishView(UpdateReport* report) {
  auto view = std::make_shared<incremental::ResultView>();
  view->marginals = marginals_;
  view->relations.reserve(ground_.relation_vars.size());
  // analysis:allow(determinism-unordered): each iteration fills exactly one
  // per-relation bucket of the keyed output map and sorts it by tuple below;
  // no cross-relation state is touched, so visit order cannot reach the view.
  for (const auto& [relation, vars] : ground_.relation_vars) {
    auto& entries = view->relations[relation];
    entries.reserve(vars.size());
    for (const VarId var : vars) {
      entries.emplace_back(ground_.var_tuples[var].second,
                           var < marginals_.size() ? marginals_[var] : 0.5);
    }
    // Sorted by tuple, both for deterministic enumeration (pipelines with
    // different variable-creation histories must compare positionally) and
    // for MarginalOf's binary search.
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  for (const dsl::RelationDecl& rel : program_.relations()) {
    if (rel.kind == dsl::RelationKind::kQuery) {
      view->query_relations.push_back(rel.name);
    }
  }
  report->epoch = publisher_.next_epoch();
  view->report = *report;
  if (inc_engine_ != nullptr) {
    // Copy the engine's serving-state facts and pin its snapshot so readers
    // of this view survive later materialization swaps.
    const auto engine_view = inc_engine_->Query();
    view->materialization = engine_view->materialization;
    view->snapshot_generation = engine_view->snapshot_generation;
    view->samples_remaining = engine_view->samples_remaining;
    view->materialized_marginals = engine_view->materialized_marginals;
  }
  publisher_.Publish(std::move(view));
  view_ = publisher_.Current();
}

const incremental::MaterializationStats& DeepDive::materialization_stats() const {
  static const incremental::MaterializationStats kEmpty;
  return inc_engine_ ? inc_engine_->materialization_stats() : kEmpty;
}

StatusOr<UpdateReport> DeepDive::ApplyUpdate(const UpdateSpec& update) {
  DD_CHECK(initialized_) << "call Initialize first";
  UpdateReport report;
  report.label = update.label;

  // ---- shared prologue: program fragment + relational changes ----
  Timer ground_timer;

  dsl::Program fragment;
  bool has_fragment = false;
  if (!update.add_rules.empty()) {
    DD_ASSIGN_OR_RETURN(fragment, dsl::AnalyzeFragment(program_, update.add_rules));
    has_fragment = true;
    // New relations need tables before any data lands in them.
    for (const dsl::RelationDecl& rel : fragment.relations()) {
      if (!db_.HasTable(rel.name)) {
        DD_RETURN_IF_ERROR(db_.CreateTable(rel.name, rel.schema).status());
      }
    }
    DD_RETURN_IF_ERROR(program_.Merge(fragment));
    // The view layer must know about fragment-declared relations before any
    // data lands in them.
    DD_RETURN_IF_ERROR(views_->RefreshRelations());
  }

  engine::RelationDeltas external;
  for (const auto& [relation, rows] : update.inserts) {
    if (db_.GetTable(relation) == nullptr) {
      return Status::NotFound("insert into unknown relation '" + relation + "'");
    }
    for (const Tuple& row : rows) external[relation].Add(row, +1);
  }
  for (const auto& [relation, rows] : update.deletes) {
    if (db_.GetTable(relation) == nullptr) {
      return Status::NotFound("delete from unknown relation '" + relation + "'");
    }
    for (const Tuple& row : rows) external[relation].Add(row, -1);
  }

  GraphDelta delta;
  if (!external.empty()) {
    DD_ASSIGN_OR_RETURN(engine::RelationDeltas set_deltas, views_->ApplyUpdate(external));
    DD_ASSIGN_OR_RETURN(GraphDelta d, grounder_->ApplyRelationDeltas(set_deltas));
    delta.Merge(d);
  }
  if (has_fragment) {
    for (const dsl::DeductiveRule& rule : fragment.deductive_rules()) {
      DD_ASSIGN_OR_RETURN(engine::RelationDeltas set_deltas, views_->AddRule(rule));
      DD_ASSIGN_OR_RETURN(GraphDelta d, grounder_->ApplyRelationDeltas(set_deltas));
      delta.Merge(d);
    }
    for (const dsl::FactorRule& rule : fragment.factor_rules()) {
      DD_ASSIGN_OR_RETURN(GraphDelta d, grounder_->AddFactorRule(rule));
      delta.Merge(d);
    }
  }
  for (const std::string& label : update.remove_rule_labels) {
    // A label may name a deductive rule, a factor rule, or both.
    auto removed_views = views_->RemoveRule(label);
    if (removed_views.ok()) {
      DD_ASSIGN_OR_RETURN(GraphDelta d,
                          grounder_->ApplyRelationDeltas(removed_views.value()));
      delta.Merge(d);
    }
    auto removed_factors = grounder_->RemoveFactorRule(label);
    if (removed_factors.ok()) delta.Merge(removed_factors.value());
    if (!removed_views.ok() && !removed_factors.ok()) {
      return Status::NotFound("no rule labeled '" + label + "'");
    }
    program_.RemoveRulesByLabel(label);
  }
  report.grounding_seconds = ground_timer.Seconds();

  if (config_.mode == ExecutionMode::kRerun) {
    DD_RETURN_IF_ERROR(RunFullPipeline(&report, /*cold_learning=*/true));
  } else {
    // ---- incremental learning ----
    Timer learn_timer;
    if (!update.analysis_only && !update.skip_learning && HasEvidence() &&
        !delta.empty()) {
      LearnIncremental(&delta);
    }
    report.learning_seconds = learn_timer.Seconds();

    // ---- incremental inference ----
    Timer infer_timer;
    DD_ASSIGN_OR_RETURN(incremental::UpdateOutcome outcome,
                        inc_engine_->ApplyDelta(delta, config_.engine));
    report.inference_seconds = infer_timer.Seconds();
    marginals_ = outcome.marginals;
    report.strategy = outcome.fell_back_to_variational
                          ? incremental::Strategy::kVariational
                          : outcome.strategy;
    report.acceptance_rate = outcome.acceptance_rate;
    report.affected_vars = outcome.affected_vars;
  }

  report.graph_variables = ground_.graph.NumVariables();
  report.graph_factors = ground_.graph.NumActiveClauses();
  // Publish this update's results as a fresh immutable view (stamping
  // report.epoch); views pinned before this line keep serving the previous
  // epoch's marginals untouched.
  PublishView(&report);
  history_.push_back(report);
  return report;
}

Status DeepDive::RunFullPipeline(UpdateReport* report, bool cold_learning) {
  // Re-ground from scratch: fresh graph, fresh grounder (Rerun baseline).
  Timer ground_timer;
  ground_ = grounding::GroundGraph{};
  grounder_ = std::make_unique<grounding::IncrementalGrounder>(&program_, &db_, &ground_,
                                                               config_.grounding);
  DD_RETURN_IF_ERROR(grounder_->Initialize());
  DD_RETURN_IF_ERROR(grounder_->GroundAll().status());
  report->grounding_seconds += ground_timer.Seconds();

  Timer learn_timer;
  if (HasEvidence()) {
    inference::Learner learner(&ground_.graph);
    inference::LearnerOptions lopts = config_.learner;
    lopts.warmstart = !cold_learning;
    lopts.seed = Rng::MixSeed(config_.seed, /*stream=*/3, history_.size());
    learner.Learn(lopts);
  }
  report->learning_seconds = learn_timer.Seconds();

  Timer infer_timer;
  inference::GibbsOptions gopts = config_.gibbs;
  gopts.seed = Rng::MixSeed(config_.seed, /*stream=*/4, history_.size() + 1);
  marginals_ = inference::EstimateMarginalsAuto(ground_.graph, gopts).marginals;
  for (VarId v = 0; v < ground_.graph.NumVariables(); ++v) {
    const auto ev = ground_.graph.EvidenceValue(v);
    if (ev.has_value()) marginals_[v] = *ev ? 1.0 : 0.0;
  }
  report->inference_seconds = infer_timer.Seconds();
  report->strategy = incremental::Strategy::kRerun;
  return Status::OK();
}

void DeepDive::LearnIncremental(GraphDelta* delta) {
  std::vector<double> before(ground_.graph.NumWeights());
  for (WeightId w = 0; w < ground_.graph.NumWeights(); ++w) {
    before[w] = ground_.graph.WeightValue(w);
  }
  inference::Learner learner(&ground_.graph);
  inference::LearnerOptions lopts = config_.learner;
  lopts.warmstart = true;
  lopts.epochs = config_.incremental_learning_epochs;
  lopts.seed = Rng::MixSeed(config_.seed, /*stream=*/5, history_.size() + 1);
  learner.Learn(lopts);
  for (WeightId w = 0; w < ground_.graph.NumWeights(); ++w) {
    const double after = ground_.graph.WeightValue(w);
    if (std::abs(after - before[w]) > 1e-12) {
      delta->weight_changes.push_back(
          GraphDelta::WeightChange{w, before[w], after});
    }
  }
}

double DeepDive::MarginalOf(const std::string& relation, const Tuple& tuple) const {
  return view_->MarginalOf(relation, tuple);
}

std::vector<std::pair<Tuple, double>> DeepDive::Marginals(
    const std::string& relation) const {
  const auto* entries = view_->Relation(relation);
  if (entries == nullptr) return {};
  return *entries;
}

}  // namespace deepdive::core
