#ifndef DEEPDIVE_CORE_UPDATE_REPORT_H_
#define DEEPDIVE_CORE_UPDATE_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "incremental/optimizer.h"

namespace deepdive::core {

/// Timing/diagnostics for one update. Lives apart from deepdive.h so the
/// ResultView layer (inference/result_view.h) can embed a copy of the
/// publishing update's report without a circular include.
struct UpdateReport {
  std::string label;
  double grounding_seconds = 0.0;   // view maintenance + factor grounding
  double learning_seconds = 0.0;
  double inference_seconds = 0.0;
  double TotalSeconds() const {
    return grounding_seconds + learning_seconds + inference_seconds;
  }
  incremental::Strategy strategy = incremental::Strategy::kRerun;
  double acceptance_rate = -1.0;
  size_t affected_vars = 0;
  size_t graph_variables = 0;
  size_t graph_factors = 0;  // active clauses
  /// Epoch of the ResultView this update published (DeepDive::Query()).
  /// Strictly increasing across the update history; 0 = not yet published.
  uint64_t epoch = 0;
};

}  // namespace deepdive::core

#endif  // DEEPDIVE_CORE_UPDATE_REPORT_H_
