#include "core/config.h"

namespace deepdive::core {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kIncremental:
      return "Incremental";
    case ExecutionMode::kRerun:
      return "Rerun";
  }
  return "?";
}

DeepDiveConfig FastTestConfig() {
  DeepDiveConfig config;
  config.gibbs.burn_in_sweeps = 20;
  config.gibbs.sample_sweeps = 500;
  config.learner.epochs = 40;
  config.learner.l2 = 0.01;
  config.incremental_learning_epochs = 12;
  // Enough stored samples for ~6 updates before rule 4 (out of samples)
  // forces the variational path.
  config.materialization.num_samples = 1500;
  config.materialization.gibbs_burn_in = 20;
  config.materialization.variational.num_samples = 80;
  config.materialization.variational.gibbs_burn_in = 20;
  config.materialization.variational.fit_epochs = 30;
  config.engine.mh_target_steps = 200;
  config.engine.gibbs.burn_in_sweeps = 10;
  config.engine.gibbs.sample_sweeps = 400;
  config.engine.rerun_gibbs = config.gibbs;  // cold chain: full budget
  return config;
}

}  // namespace deepdive::core
