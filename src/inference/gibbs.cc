#include "inference/gibbs.h"

#include <cmath>

#include "util/logging.h"

namespace deepdive::inference {

using factor::VarId;

template <typename GraphT>
BasicGibbsSampler<GraphT>::BasicGibbsSampler(const GraphT* graph) : graph_(graph) {}

template <typename GraphT>
double BasicGibbsSampler<GraphT>::ConditionalLogOdds(const WorldType& world, VarId v,
                                                     GibbsScratch* scratch) const {
  return detail::ConditionalLogOddsImpl(*graph_, world, v, scratch);
}

template <typename GraphT>
double BasicGibbsSampler<GraphT>::ConditionalLogOdds(const WorldType& world,
                                                     VarId v) const {
  GibbsScratch scratch;
  return detail::ConditionalLogOddsImpl(*graph_, world, v, &scratch);
}

template <typename GraphT>
size_t BasicGibbsSampler<GraphT>::Sweep(WorldType* world, Rng* rng,
                                        bool sample_evidence) const {
  GibbsScratch scratch;
  return detail::SweepRangeImpl(*graph_, world, rng, &scratch, nullptr, 0,
                                graph_->NumVariables(), sample_evidence);
}

template <typename GraphT>
size_t BasicGibbsSampler<GraphT>::SweepVars(WorldType* world, Rng* rng,
                                            const std::vector<VarId>& vars) const {
  GibbsScratch scratch;
  return detail::SweepRangeImpl(*graph_, world, rng, &scratch, &vars, 0, vars.size(),
                                /*sample_evidence=*/false);
}

template <typename GraphT>
MarginalResult BasicGibbsSampler<GraphT>::EstimateMarginals(
    const GibbsOptions& options) const {
  WorldType world(graph_);
  Rng rng(options.seed);
  world.InitValues(&rng, options.random_init);
  return EstimateMarginals(options, &world, &rng);
}

template <typename GraphT>
MarginalResult BasicGibbsSampler<GraphT>::EstimateMarginals(const GibbsOptions& options,
                                                            WorldType* world,
                                                            Rng* rng) const {
  MarginalResult result;
  result.marginals.assign(graph_->NumVariables(), 0.0);
  for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
    result.flips += Sweep(world, rng, options.sample_evidence);
    ++result.sweeps;
  }
  std::vector<uint32_t> counts(graph_->NumVariables(), 0);
  for (size_t i = 0; i < options.sample_sweeps; ++i) {
    result.flips += Sweep(world, rng, options.sample_evidence);
    ++result.sweeps;
    for (VarId v = 0; v < graph_->NumVariables(); ++v) {
      counts[v] += world->value(v) ? 1 : 0;
    }
  }
  const double denom = options.sample_sweeps > 0
                           ? static_cast<double>(options.sample_sweeps)
                           : 1.0;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    result.marginals[v] = counts[v] / denom;
  }
  return result;
}

template <typename GraphT>
std::vector<BitVector> BasicGibbsSampler<GraphT>::DrawSamples(
    size_t count, size_t thin, const GibbsOptions& options) const {
  WorldType world(graph_);
  Rng rng(options.seed);
  world.InitValues(&rng, options.random_init);
  for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
    Sweep(&world, &rng, options.sample_evidence);
  }
  std::vector<BitVector> samples;
  samples.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    for (size_t t = 0; t < std::max<size_t>(1, thin); ++t) {
      Sweep(&world, &rng, options.sample_evidence);
    }
    samples.push_back(world.ToBits());
  }
  return samples;
}

template class BasicGibbsSampler<factor::FactorGraph>;
template class BasicGibbsSampler<factor::CompiledGraph>;

}  // namespace deepdive::inference
