#include "inference/gibbs.h"

#include <cmath>

#include "util/logging.h"

namespace deepdive::inference {

using factor::FactorGraph;
using factor::GCount;
using factor::GroupId;
using factor::VarId;

GibbsSampler::GibbsSampler(const FactorGraph* graph) : graph_(graph) {}

double GibbsSampler::ConditionalLogOdds(const World& world, VarId v) const {
  double log_odds = 0.0;

  // Groups where v is the head: W(v=1) - W(v=0) = 2 w g(n); n does not
  // depend on v because clauses may not contain their own head.
  for (GroupId g : graph_->HeadGroups(v)) {
    const factor::FactorGroup& group = graph_->group(g);
    if (!group.active) continue;
    log_odds +=
        2.0 * graph_->WeightValue(group.weight) * GCount(group.semantics, world.GroupSat(g));
  }

  // Groups where v appears in clause bodies: accumulate dn = n(v=1) - n(v=0)
  // per group, then add w sign(head) (g(n1) - g(n0)).
  touched_.clear();
  const bool cur = world.value(v);
  for (const factor::BodyRef& ref : graph_->BodyRefs(v)) {
    const factor::Clause& clause = graph_->clause(ref.clause);
    if (!clause.active) continue;
    const factor::FactorGroup& group = graph_->group(clause.group);
    if (!group.active) continue;
    // Other literals of the clause satisfied?
    const bool lit_true_now = (cur != ref.negated);
    const int32_t others_unsat = world.ClauseUnsat(ref.clause) - (lit_true_now ? 0 : 1);
    if (others_unsat != 0) continue;  // clause state independent of v
    const int64_t dn = ref.negated ? -1 : +1;
    bool found = false;
    for (auto& [gid, acc] : touched_) {
      if (gid == clause.group) {
        acc += dn;
        found = true;
        break;
      }
    }
    if (!found) touched_.emplace_back(clause.group, dn);
  }
  for (const auto& [gid, dn] : touched_) {
    if (dn == 0) continue;
    const factor::FactorGroup& group = graph_->group(gid);
    const int64_t n_now = world.GroupSat(gid);
    const int64_t n1 = cur ? n_now : n_now + dn;
    const int64_t n0 = cur ? n_now - dn : n_now;
    const double sign = world.value(group.head) ? 1.0 : -1.0;
    log_odds += graph_->WeightValue(group.weight) * sign *
                (GCount(group.semantics, n1) - GCount(group.semantics, n0));
  }
  return log_odds;
}

size_t GibbsSampler::Sweep(World* world, Rng* rng, bool sample_evidence) const {
  size_t flips = 0;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    if (!sample_evidence && graph_->IsEvidence(v)) continue;
    const double log_odds = ConditionalLogOdds(*world, v);
    const double p1 = 1.0 / (1.0 + std::exp(-log_odds));
    const bool new_value = rng->Bernoulli(p1);
    if (new_value != world->value(v)) {
      world->Flip(v, new_value);
      ++flips;
    }
  }
  return flips;
}

size_t GibbsSampler::SweepVars(World* world, Rng* rng,
                               const std::vector<VarId>& vars) const {
  size_t flips = 0;
  for (VarId v : vars) {
    if (graph_->IsEvidence(v)) continue;
    const double log_odds = ConditionalLogOdds(*world, v);
    const double p1 = 1.0 / (1.0 + std::exp(-log_odds));
    const bool new_value = rng->Bernoulli(p1);
    if (new_value != world->value(v)) {
      world->Flip(v, new_value);
      ++flips;
    }
  }
  return flips;
}

MarginalResult GibbsSampler::EstimateMarginals(const GibbsOptions& options) const {
  World world(graph_);
  Rng rng(options.seed);
  world.InitValues(&rng, options.random_init);
  return EstimateMarginals(options, &world, &rng);
}

MarginalResult GibbsSampler::EstimateMarginals(const GibbsOptions& options, World* world,
                                               Rng* rng) const {
  MarginalResult result;
  result.marginals.assign(graph_->NumVariables(), 0.0);
  for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
    result.flips += Sweep(world, rng, options.sample_evidence);
    ++result.sweeps;
  }
  std::vector<uint32_t> counts(graph_->NumVariables(), 0);
  for (size_t i = 0; i < options.sample_sweeps; ++i) {
    result.flips += Sweep(world, rng, options.sample_evidence);
    ++result.sweeps;
    for (VarId v = 0; v < graph_->NumVariables(); ++v) {
      counts[v] += world->value(v) ? 1 : 0;
    }
  }
  const double denom = options.sample_sweeps > 0
                           ? static_cast<double>(options.sample_sweeps)
                           : 1.0;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    result.marginals[v] = counts[v] / denom;
  }
  return result;
}

std::vector<BitVector> GibbsSampler::DrawSamples(size_t count, size_t thin,
                                                 const GibbsOptions& options) const {
  World world(graph_);
  Rng rng(options.seed);
  world.InitValues(&rng, options.random_init);
  for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
    Sweep(&world, &rng, options.sample_evidence);
  }
  std::vector<BitVector> samples;
  samples.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    for (size_t t = 0; t < std::max<size_t>(1, thin); ++t) {
      Sweep(&world, &rng, options.sample_evidence);
    }
    samples.push_back(world.ToBits());
  }
  return samples;
}

}  // namespace deepdive::inference
