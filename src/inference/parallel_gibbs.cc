#include "inference/parallel_gibbs.h"

#include <cmath>

#include "util/logging.h"

namespace deepdive::inference {

using factor::ClauseId;
using factor::GroupId;
using factor::VarId;
using factor::WeightId;

// ---- BasicAtomicWorld ------------------------------------------------------

template <typename GraphT>
BasicAtomicWorld<GraphT>::BasicAtomicWorld(const GraphT* graph)
    : graph_(graph),
      values_(graph->NumVariables()),
      clause_unsat_(graph->NumClauses()),
      group_sat_(graph->NumGroups()) {
  InitValues(nullptr, /*random_init=*/false);
}

template <typename GraphT>
void BasicAtomicWorld<GraphT>::Flip(VarId v, bool new_value) {
  // ordering: relaxed — Hogwild: callers partition variables so no two
  // threads Flip the same id; concurrent readers tolerate staleness and the
  // statistics RMWs below keep the counters exact without ordering.
  const uint8_t old = values_[v].exchange(new_value ? 1 : 0, std::memory_order_relaxed);
  if ((old != 0) == new_value) return;
  for (const auto& ref : graph_->BodyRefs(v)) {
    if (!graph_->clause(ref.clause).active) continue;
    const bool lit_true_now = (new_value != static_cast<bool>(ref.negated));
    const GroupId g = graph_->clause(ref.clause).group;
    // ordering: relaxed — atomicity (not ordering) is what is needed here:
    // fetch_add/fetch_sub return the previous value, so the 0-crossing that
    // owns the group_sat update is decided exactly once even under
    // concurrent flips of sibling literals.
    if (lit_true_now) {
      if (clause_unsat_[ref.clause].fetch_sub(1, std::memory_order_relaxed) == 1) {
        group_sat_[g].fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      if (clause_unsat_[ref.clause].fetch_add(1, std::memory_order_relaxed) == 0) {
        group_sat_[g].fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
}

template <typename GraphT>
void BasicAtomicWorld<GraphT>::InitValues(Rng* rng, bool random_init) {
  for (VarId v = 0; v < values_.size(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    uint8_t value = 0;
    if (ev.has_value()) {
      value = *ev ? 1 : 0;
    } else if (random_init && rng != nullptr && rng->Bernoulli(0.5)) {
      value = 1;
    }
    // ordering: relaxed — single-threaded by contract (call before handing
    // the world to workers); the pool handoff publishes these stores.
    values_[v].store(value, std::memory_order_relaxed);
  }
  RecomputeStats();
}

template <typename GraphT>
void BasicAtomicWorld<GraphT>::LoadBitsPrefix(const BitVector& bits, bool fill,
                                              bool apply_evidence, ThreadPool* pool) {
  DD_CHECK_LE(bits.size(), values_.size());
  for (VarId v = 0; v < values_.size(); ++v) {
    const bool bit = v < bits.size() ? bits.Get(v) : fill;
    // ordering: relaxed — single-(calling-)threaded load phase; workers see
    // these stores through the ThreadPool mutex handoff (see RecomputeStats).
    values_[v].store(bit ? 1 : 0, std::memory_order_relaxed);
  }
  if (apply_evidence) {
    for (VarId v = 0; v < values_.size(); ++v) {
      const auto ev = graph_->EvidenceValue(v);
      // ordering: relaxed — same single-threaded load phase as above.
      if (ev.has_value()) values_[v].store(*ev ? 1 : 0, std::memory_order_relaxed);
    }
  }
  RecomputeStats(pool);
}

template <typename GraphT>
BitVector BasicAtomicWorld<GraphT>::ToBits() const {
  BitVector bits(values_.size());
  for (VarId v = 0; v < values_.size(); ++v) bits.Set(v, value(v));
  return bits;
}

template <typename GraphT>
void BasicAtomicWorld<GraphT>::RecomputeStats(ThreadPool* pool) {
  // Publication contract: the relaxed stores below are read by Hogwild
  // workers (and plain callers) AFTER this function returns, with relaxed
  // loads and no release/acquire pair of their own. The happens-before edge
  // is ThreadPool's mutex handoff: each shard's writes are ordered before
  // ParallelFor's Wait() returns (the worker releases the pool mutex after
  // running the shard; the caller re-acquires it to observe completion),
  // and any worker that later sweeps this world receives its task through
  // the same mutex (Submit enqueues under it) — so the shard writes
  // happen-before every subsequent read regardless of which pool runs the
  // sweep. Note a standalone fence pair could NOT stand in for this edge
  // (fences synchronize only through an atomic object the releasing thread
  // stores after its fence and the acquiring thread reads before its
  // fence); a future lock-free pool must supply an equivalent
  // release/acquire handoff on its task and completion queues. The TSan CI
  // job pins the edge via RecomputeStatsPublishesToHogwildWorkers.
  auto scan = [this](size_t /*shard*/, size_t begin, size_t end) {
    for (ClauseId c = static_cast<ClauseId>(begin); c < end; ++c) {
      if (!graph_->clause(c).active) {
        // ordering: relaxed — shards own disjoint clause ranges; the pool's
        // mutex join publishes every store (see the contract above).
        clause_unsat_[c].store(0, std::memory_order_relaxed);
        continue;
      }
      int32_t unsat = 0;
      for (const auto& lit : graph_->ClauseLiterals(c)) {
        if (value(lit.var) == static_cast<bool>(lit.negated)) ++unsat;
      }
      // ordering: relaxed — disjoint clause ranges per shard (join publishes).
      clause_unsat_[c].store(unsat, std::memory_order_relaxed);
      if (unsat == 0) {
        // ordering: relaxed — group counters are shared across shards, so
        // this one is an RMW for atomicity; no ordering needed (join
        // publishes the final sums).
        group_sat_[graph_->clause(c).group].fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  // ordering: relaxed — pre-scan zeroing on the calling thread; the shard
  // tasks observe it through the Submit/mutex handoff.
  for (auto& g : group_sat_) g.store(0, std::memory_order_relaxed);
  const size_t num_clauses = graph_->NumClauses();
  if (pool != nullptr && pool->shards() > 1) {
    pool->ParallelFor(num_clauses, scan);
  } else if (num_clauses > 0) {
    scan(0, 0, num_clauses);
  }
}

template <typename GraphT>
double BasicAtomicWorld<GraphT>::WeightFeature(WeightId weight) const {
  double f = 0.0;
  for (GroupId g : graph_->GroupsForWeight(weight)) {
    const auto& group = graph_->group(g);
    if (!group.active) continue;
    const double sign = value(group.head) ? 1.0 : -1.0;
    f += sign * factor::GCount(group.semantics, GroupSat(g));
  }
  return f;
}

template class BasicAtomicWorld<factor::FactorGraph>;
template class BasicAtomicWorld<factor::CompiledGraph>;

// ---- BasicParallelGibbsSampler ---------------------------------------------

template <typename GraphT>
BasicParallelGibbsSampler<GraphT>::BasicParallelGibbsSampler(const GraphT* graph,
                                                             size_t num_threads)
    : graph_(graph),
      num_threads_(num_threads == 0 ? ThreadPool::DefaultThreads()
                                    : num_threads),
      pool_(num_threads_),
      scratch_(pool_.shards()) {}

template <typename GraphT>
std::vector<Rng> BasicParallelGibbsSampler<GraphT>::MakeRngStreams(
    uint64_t seed, uint64_t replica) const {
  std::vector<Rng> rngs;
  rngs.reserve(pool_.shards());
  for (size_t t = 0; t < pool_.shards(); ++t) {
    rngs.emplace_back(Rng::MixSeed(seed, replica, t));
  }
  return rngs;
}

template <typename GraphT>
size_t BasicParallelGibbsSampler<GraphT>::Sweep(WorldType* world,
                                                std::vector<Rng>* rngs,
                                                bool sample_evidence) const {
  DD_CHECK_GE(rngs->size(), pool_.shards());
  std::vector<size_t> flips(pool_.shards(), 0);
  pool_.ParallelFor(graph_->NumVariables(),
                    [&](size_t shard, size_t begin, size_t end) {
                      flips[shard] = detail::SweepRangeImpl(
                          *graph_, world, &(*rngs)[shard], &scratch_[shard], nullptr,
                          begin, end, sample_evidence);
                    });
  size_t total = 0;
  for (size_t f : flips) total += f;
  return total;
}

template <typename GraphT>
size_t BasicParallelGibbsSampler<GraphT>::SweepVars(
    WorldType* world, std::vector<Rng>* rngs, const std::vector<VarId>& vars) const {
  DD_CHECK_GE(rngs->size(), pool_.shards());
  std::vector<size_t> flips(pool_.shards(), 0);
  pool_.ParallelFor(vars.size(), [&](size_t shard, size_t begin, size_t end) {
    flips[shard] =
        detail::SweepRangeImpl(*graph_, world, &(*rngs)[shard], &scratch_[shard],
                               &vars, begin, end, /*sample_evidence=*/false);
  });
  size_t total = 0;
  for (size_t f : flips) total += f;
  return total;
}

template <typename GraphT>
MarginalResult BasicParallelGibbsSampler<GraphT>::EstimateMarginals(
    const GibbsOptions& options) const {
  if (num_threads_ <= 1) {
    // Sequential delegation: bit-identical to the sequential sampler for a
    // given seed.
    return BasicGibbsSampler<GraphT>(graph_).EstimateMarginals(options);
  }

  MarginalResult result;
  const size_t n = graph_->NumVariables();
  result.marginals.assign(n, 0.0);

  WorldType world(graph_);
  Rng init_rng(options.seed);
  world.InitValues(&init_rng, options.random_init);
  std::vector<Rng> rngs = MakeRngStreams(options.seed);

  for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
    result.flips += Sweep(&world, &rngs, options.sample_evidence);
    ++result.sweeps;
  }
  std::vector<uint32_t> counts(n, 0);
  for (size_t i = 0; i < options.sample_sweeps; ++i) {
    result.flips += Sweep(&world, &rngs, options.sample_evidence);
    ++result.sweeps;
    // Shard-disjoint accumulation; the ParallelFor barrier inside Sweep makes
    // every value quiescent before it is counted.
    pool_.ParallelFor(n, [&](size_t /*shard*/, size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        counts[v] += world.value(static_cast<VarId>(v)) ? 1 : 0;
      }
    });
  }
  const double denom = options.sample_sweeps > 0
                           ? static_cast<double>(options.sample_sweeps)
                           : 1.0;
  for (VarId v = 0; v < n; ++v) {
    result.marginals[v] = counts[v] / denom;
  }
  return result;
}

template <typename GraphT>
std::vector<BitVector> BasicParallelGibbsSampler<GraphT>::DrawSamples(
    size_t count, size_t thin, const GibbsOptions& options) const {
  std::vector<BitVector> samples;
  samples.reserve(count);
  SampleChain(options, count, thin, [&](const BitVector& bits) {
    samples.push_back(bits);
    return true;
  });
  return samples;
}

template <typename GraphT>
void BasicParallelGibbsSampler<GraphT>::SampleChain(
    const GibbsOptions& options, size_t count, size_t thin,
    const std::function<bool(const BitVector&)>& on_sample) const {
  const size_t thin_sweeps = std::max<size_t>(1, thin);
  const auto interrupted = [&options] {
    return options.interrupt && options.interrupt();
  };
  if (num_threads_ <= 1) {
    // Matches the sequential DrawSamples / the engine's historical
    // materialization loop exactly: one Rng drives init, burn-in and thinning.
    BasicGibbsSampler<GraphT> sequential(graph_);
    BasicWorld<GraphT> world(graph_);
    Rng rng(options.seed);
    world.InitValues(&rng, options.random_init);
    for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
      if (interrupted()) return;
      sequential.Sweep(&world, &rng, options.sample_evidence);
    }
    for (size_t s = 0; s < count; ++s) {
      for (size_t t = 0; t < thin_sweeps; ++t) {
        if (interrupted()) return;
        sequential.Sweep(&world, &rng, options.sample_evidence);
      }
      if (!on_sample(world.ToBits())) return;
    }
    return;
  }

  WorldType world(graph_);
  Rng init_rng(options.seed);
  world.InitValues(&init_rng, options.random_init);
  std::vector<Rng> rngs = MakeRngStreams(options.seed);
  for (size_t i = 0; i < options.burn_in_sweeps; ++i) {
    if (interrupted()) return;
    Sweep(&world, &rngs, options.sample_evidence);
  }
  for (size_t s = 0; s < count; ++s) {
    for (size_t t = 0; t < thin_sweeps; ++t) {
      if (interrupted()) return;
      Sweep(&world, &rngs, options.sample_evidence);
    }
    if (!on_sample(world.ToBits())) return;
  }
}

template class BasicParallelGibbsSampler<factor::FactorGraph>;
template class BasicParallelGibbsSampler<factor::CompiledGraph>;

}  // namespace deepdive::inference
