#ifndef DEEPDIVE_INFERENCE_REPLICATED_GIBBS_H_
#define DEEPDIVE_INFERENCE_REPLICATED_GIBBS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace deepdive::inference {

/// NUMA-style replicated Gibbs sampling (the DimmWitted per-socket execution
/// model, Shin et al. VLDB 2015): the worker budget is partitioned into R
/// replica groups, each replica owns a PRIVATE atomic world (private values /
/// clause_unsat / group_sat arrays), and Hogwild sweeps run asynchronously
/// *within* a replica only. Replicas never touch each other's world, so the
/// cross-socket cache-line ping-pong that caps the shared-world sampler at
/// memory bandwidth disappears; the cost is R independent chains that must
/// be reconciled. Reconciliation is periodic model averaging: every
/// `GibbsOptions::sync_every_sweeps` sweeps the per-variable marginal
/// estimates are averaged across replicas and each replica's world is
/// re-seeded from that consensus (an independent Bernoulli draw per
/// variable, from a replica-private synchronization stream), plus a final
/// cross-replica marginal merge at the end of every run.
///
/// Templated over the graph representation (mutable FactorGraph or the flat
/// CSR CompiledGraph); both instantiations run the identical schedule, so
/// results are bit-identical across representations for a fixed seed.
///
/// Determinism:
///  - `num_replicas == 1` delegates every call to an internal
///    ParallelGibbsSampler, so results are bit-identical to it (and, at
///    num_threads == 1, to the sequential GibbsSampler).
///  - `num_replicas == R` with one thread per replica is deterministic for a
///    fixed seed: each replica's sweeps are sequential, every replica stream
///    is keyed (seed, replica, worker) via Rng::MixSeed, and all
///    cross-replica reductions run on the calling thread in replica order.
///
/// Like ParallelGibbsSampler, an instance is not shareable across calling
/// threads (it owns the replica pool and per-replica samplers); create one
/// per calling thread.
template <typename GraphT>
class BasicReplicatedGibbsSampler {
 public:
  using WorldType = BasicAtomicWorld<GraphT>;
  using ReplicaSampler = BasicParallelGibbsSampler<GraphT>;

  /// `num_threads` is the TOTAL worker budget: each replica runs its Hogwild
  /// sweeps on max(1, num_threads / num_replicas) workers (0 = one worker
  /// per hardware thread before the split). Replicas themselves always run
  /// concurrently — R replicas occupy at least R workers.
  explicit BasicReplicatedGibbsSampler(const GraphT* graph,
                                       size_t num_replicas = 1,
                                       size_t num_threads = 1);

  /// The frozen-during-runs graph (see FactorGraph's thread contract).
  const GraphT& graph() const { return *graph_; }
  size_t num_replicas() const { return replicas_.size(); }
  size_t threads_per_replica() const { return threads_per_replica_; }

  /// The replica-r sampler. Its pool runs that replica's Hogwild shards;
  /// callers driving chains manually (the learner) sweep their own worlds
  /// through it, one calling task per replica (its scratch is not shareable
  /// across concurrent calls).
  const ReplicaSampler& replica(size_t r) const { return *replicas_[r]; }

  /// Runs fn(r) for every replica concurrently on the replica pool and
  /// blocks until all complete. fn must confine itself to replica-r state.
  void ForEachReplica(const std::function<void(size_t replica)>& fn) const;

  /// Burn-in + sampling sweeps on every replica, periodic consensus
  /// synchronization, final cross-replica marginal merge. `sweeps`/`flips`
  /// report the per-replica schedule length and the total flips across
  /// replicas respectively.
  MarginalResult EstimateMarginals(const GibbsOptions& options) const;

  /// Draws `count` packed sample worlds after burn-in, emitted round-robin
  /// across the replica chains (sample s comes from replica s % R): every
  /// advancement block runs `thin` sweeps on all replicas concurrently and
  /// harvests one sample per replica, so each chain's consecutive samples
  /// are `thin` sweeps apart and `count` samples cost ceil(count / R)
  /// blocks. Synchronizations land on block boundaries only.
  std::vector<BitVector> DrawSamples(size_t count, size_t thin,
                                     const GibbsOptions& options) const;

  /// Materialization loop over the replica chains; semantics of the emitted
  /// stream as DrawSamples. Honors options.interrupt between sweeps (polled
  /// from replica workers — the hook must be thread-safe) and stops early
  /// when `on_sample` returns false.
  void SampleChain(const GibbsOptions& options, size_t count, size_t thin,
                   const std::function<bool(const BitVector&)>& on_sample) const;

  /// Seed for a replica/chain-private auxiliary stream (world init, consensus
  /// re-seeding), decorrelated from every (seed, replica, worker) sweep
  /// stream: auxiliary streams live at substreams >= kAuxStreamBase, far
  /// beyond any real worker index.
  static uint64_t AuxSeed(uint64_t seed, size_t replica, uint64_t aux_stream) {
    return Rng::MixSeed(seed, replica, kAuxStreamBase + aux_stream);
  }
  static constexpr uint64_t kAuxStreamBase = uint64_t{1} << 40;
  static constexpr uint64_t kInitStream = 0;  // world initialization
  static constexpr uint64_t kSyncStream = 1;  // consensus re-seeding draws

 private:
  /// Per-replica chain state for one EstimateMarginals/SampleChain run.
  /// Replica-private between ForEachReplica barriers; the calling thread
  /// reads it only after a barrier.
  struct ReplicaChain {
    std::unique_ptr<WorldType> world;
    std::vector<Rng> rngs;
    Rng sync_rng{0};
    std::vector<uint32_t> counts;  // per-variable indicator sums (marginals)
    size_t flips = 0;
    bool interrupted = false;
  };

  /// Builds and initializes one chain per replica (worlds seeded from the
  /// replica-private init streams). `with_counts` sizes the indicator
  /// accumulators for marginal estimation.
  std::vector<ReplicaChain> InitChains(const GibbsOptions& options,
                                       bool with_counts) const;

  /// Advances every replica by `count` sweeps concurrently. Sweeps whose
  /// global index reaches `burn_in` accumulate indicator counts (when the
  /// chains carry accumulators). `poll_interrupt` makes replica workers poll
  /// options.interrupt between sweeps (SampleChain semantics).
  void RunBlock(std::vector<ReplicaChain>* chains, size_t sweep_start,
                size_t count, size_t burn_in, const GibbsOptions& options,
                bool poll_interrupt) const;

  /// Model averaging: computes the consensus per-variable marginal estimate
  /// (from accumulated counts when `samples_taken > 0`, else from the
  /// replicas' instantaneous states) and re-seeds every replica's world from
  /// it with that replica's private synchronization stream.
  void Synchronize(std::vector<ReplicaChain>* chains, size_t samples_taken,
                   const GibbsOptions& options) const;

  bool AnyInterrupted(const std::vector<ReplicaChain>& chains) const;

  const GraphT* graph_;
  size_t threads_per_replica_;
  std::vector<std::unique_ptr<ReplicaSampler>> replicas_;
  mutable ThreadPool replica_pool_;  // R-wide outer pool (inline when R == 1)
};

using ReplicatedGibbsSampler = BasicReplicatedGibbsSampler<factor::FactorGraph>;
using CompiledReplicatedGibbsSampler =
    BasicReplicatedGibbsSampler<factor::CompiledGraph>;

extern template class BasicReplicatedGibbsSampler<factor::FactorGraph>;
extern template class BasicReplicatedGibbsSampler<factor::CompiledGraph>;

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_REPLICATED_GIBBS_H_
