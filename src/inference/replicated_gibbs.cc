#include "inference/replicated_gibbs.h"

#include <algorithm>
#include <cstdint>

#include "util/logging.h"

namespace deepdive::inference {

using factor::VarId;

template <typename GraphT>
BasicReplicatedGibbsSampler<GraphT>::BasicReplicatedGibbsSampler(const GraphT* graph,
                                                                 size_t num_replicas,
                                                                 size_t num_threads)
    : graph_(graph),
      threads_per_replica_(1),
      replica_pool_(std::max<size_t>(1, num_replicas)) {
  const size_t replicas = std::max<size_t>(1, num_replicas);
  const size_t total =
      num_threads == 0 ? ThreadPool::DefaultThreads() : num_threads;
  threads_per_replica_ = std::max<size_t>(1, total / replicas);
  replicas_.reserve(replicas);
  for (size_t r = 0; r < replicas; ++r) {
    // The single-replica sampler keeps the whole budget (it IS the
    // shared-world sampler then); R > 1 splits it evenly.
    replicas_.push_back(std::make_unique<ReplicaSampler>(
        graph, replicas == 1 ? total : threads_per_replica_));
  }
}

template <typename GraphT>
void BasicReplicatedGibbsSampler<GraphT>::ForEachReplica(
    const std::function<void(size_t)>& fn) const {
  if (replicas_.size() == 1) {
    fn(0);
    return;
  }
  for (size_t r = 0; r < replicas_.size(); ++r) {
    replica_pool_.Submit([&fn, r] { fn(r); });
  }
  replica_pool_.Wait();
}

template <typename GraphT>
std::vector<typename BasicReplicatedGibbsSampler<GraphT>::ReplicaChain>
BasicReplicatedGibbsSampler<GraphT>::InitChains(const GibbsOptions& options,
                                                bool with_counts) const {
  std::vector<ReplicaChain> chains(replicas_.size());
  ForEachReplica([&](size_t r) {
    ReplicaChain& c = chains[r];
    c.world = std::make_unique<WorldType>(graph_);
    Rng init_rng(AuxSeed(options.seed, r, kInitStream));
    c.world->InitValues(&init_rng, options.random_init);
    c.rngs = replicas_[r]->MakeRngStreams(options.seed, r);
    c.sync_rng = Rng(AuxSeed(options.seed, r, kSyncStream));
    if (with_counts) c.counts.assign(graph_->NumVariables(), 0);
  });
  return chains;
}

template <typename GraphT>
void BasicReplicatedGibbsSampler<GraphT>::RunBlock(std::vector<ReplicaChain>* chains,
                                                   size_t sweep_start, size_t count,
                                                   size_t burn_in,
                                                   const GibbsOptions& options,
                                                   bool poll_interrupt) const {
  const size_t n = graph_->NumVariables();
  ForEachReplica([&](size_t r) {
    ReplicaChain& c = (*chains)[r];
    WorldType* world = c.world.get();
    for (size_t i = 0; i < count; ++i) {
      if (poll_interrupt && options.interrupt && options.interrupt()) {
        c.interrupted = true;
        return;
      }
      c.flips += replicas_[r]->Sweep(world, &c.rngs, options.sample_evidence);
      if (c.counts.empty() || sweep_start + i < burn_in) continue;
      uint32_t* counts = c.counts.data();
      if (threads_per_replica_ > 1) {
        replicas_[r]->pool()->ParallelFor(
            n, [&](size_t /*shard*/, size_t begin, size_t end) {
              for (size_t v = begin; v < end; ++v) {
                counts[v] += world->value(static_cast<VarId>(v)) ? 1 : 0;
              }
            });
      } else {
        for (size_t v = 0; v < n; ++v) {
          counts[v] += world->value(static_cast<VarId>(v)) ? 1 : 0;
        }
      }
    }
  });
}

template <typename GraphT>
void BasicReplicatedGibbsSampler<GraphT>::Synchronize(std::vector<ReplicaChain>* chains,
                                                      size_t samples_taken,
                                                      const GibbsOptions& options) const {
  const size_t n = graph_->NumVariables();
  const size_t replicas = replicas_.size();
  // Consensus marginal estimate, reduced in replica order on the calling
  // thread (deterministic summation). Before any sample sweep has been
  // counted the instantaneous replica states stand in for the estimates.
  std::vector<double> consensus(n, 0.0);
  if (samples_taken > 0) {
    const double denom =
        static_cast<double>(replicas) * static_cast<double>(samples_taken);
    for (const ReplicaChain& c : *chains) {
      for (size_t v = 0; v < n; ++v) consensus[v] += c.counts[v];
    }
    for (size_t v = 0; v < n; ++v) consensus[v] /= denom;
  } else {
    for (const ReplicaChain& c : *chains) {
      for (size_t v = 0; v < n; ++v) {
        consensus[v] += c.world->value(static_cast<VarId>(v)) ? 1.0 : 0.0;
      }
    }
    for (size_t v = 0; v < n; ++v) consensus[v] /= static_cast<double>(replicas);
  }
  // Re-seed every replica from the consensus: an independent Bernoulli draw
  // per variable from the replica's private synchronization stream keeps the
  // chains diverse (all-identical restarts would collapse the ensemble) and
  // deterministic. Evidence is restored unless this is a free chain.
  ForEachReplica([&](size_t r) {
    ReplicaChain& c = (*chains)[r];
    BitVector bits(n);
    for (size_t v = 0; v < n; ++v) {
      bits.Set(v, c.sync_rng.Bernoulli(consensus[v]));
    }
    c.world->LoadBitsPrefix(
        bits, /*fill=*/false, /*apply_evidence=*/!options.sample_evidence,
        threads_per_replica_ > 1 ? replicas_[r]->pool() : nullptr);
  });
}

template <typename GraphT>
bool BasicReplicatedGibbsSampler<GraphT>::AnyInterrupted(
    const std::vector<ReplicaChain>& chains) const {
  for (const ReplicaChain& c : chains) {
    if (c.interrupted) return true;
  }
  return false;
}

template <typename GraphT>
MarginalResult BasicReplicatedGibbsSampler<GraphT>::EstimateMarginals(
    const GibbsOptions& options) const {
  if (replicas_.size() == 1) {
    // Single replica: exactly the shared-world sampler (and at one thread,
    // exactly the sequential sampler).
    return replicas_[0]->EstimateMarginals(options);
  }

  const size_t n = graph_->NumVariables();
  const size_t burn = options.burn_in_sweeps;
  const size_t total = burn + options.sample_sweeps;
  const size_t sync = options.sync_every_sweeps;
  std::vector<ReplicaChain> chains = InitChains(options, /*with_counts=*/true);

  size_t done = 0;
  while (done < total) {
    const size_t block =
        sync > 0 ? std::min(total - done, sync - done % sync) : total - done;
    RunBlock(&chains, done, block, burn, options, /*poll_interrupt=*/false);
    done += block;
    if (done < total && sync > 0 && done % sync == 0) {
      const size_t samples_taken = done > burn ? done - burn : 0;
      Synchronize(&chains, samples_taken, options);
    }
  }

  // Final cross-replica merge.
  MarginalResult result;
  result.marginals.assign(n, 0.0);
  result.sweeps = total;
  const double denom =
      static_cast<double>(replicas_.size()) *
      (options.sample_sweeps > 0 ? static_cast<double>(options.sample_sweeps)
                                 : 1.0);
  std::vector<uint64_t> sums(n, 0);
  for (const ReplicaChain& c : chains) {
    result.flips += c.flips;
    for (size_t v = 0; v < n; ++v) sums[v] += c.counts[v];
  }
  for (size_t v = 0; v < n; ++v) {
    result.marginals[v] = static_cast<double>(sums[v]) / denom;
  }
  return result;
}

template <typename GraphT>
std::vector<BitVector> BasicReplicatedGibbsSampler<GraphT>::DrawSamples(
    size_t count, size_t thin, const GibbsOptions& options) const {
  std::vector<BitVector> samples;
  samples.reserve(count);
  SampleChain(options, count, thin, [&](const BitVector& bits) {
    samples.push_back(bits);
    return true;
  });
  return samples;
}

template <typename GraphT>
void BasicReplicatedGibbsSampler<GraphT>::SampleChain(
    const GibbsOptions& options, size_t count, size_t thin,
    const std::function<bool(const BitVector&)>& on_sample) const {
  if (replicas_.size() == 1) {
    replicas_[0]->SampleChain(options, count, thin, on_sample);
    return;
  }

  const size_t thin_sweeps = std::max<size_t>(1, thin);
  const size_t sync = options.sync_every_sweeps;
  std::vector<ReplicaChain> chains = InitChains(options, /*with_counts=*/false);

  // Burn-in, split at synchronization boundaries.
  size_t done = 0, last_sync = 0;
  while (done < options.burn_in_sweeps) {
    size_t block = options.burn_in_sweeps - done;
    if (sync > 0) block = std::min(block, sync - (done - last_sync));
    RunBlock(&chains, done, block, /*burn_in=*/0, options,
             /*poll_interrupt=*/true);
    if (AnyInterrupted(chains)) return;
    done += block;
    if (sync > 0 && done - last_sync >= sync) {
      Synchronize(&chains, /*samples_taken=*/0, options);
      last_sync = done;
    }
  }

  // Emission: each advancement runs the thinning interval on every replica
  // concurrently, then harvests ONE sample per replica, in replica order —
  // so a chain's consecutive samples are exactly `thin` sweeps apart (the
  // single-chain thinning semantics) and N samples cost ceil(N/R) blocks,
  // not N (the replica ensemble is throughput, not overhead).
  // Synchronizations land after the block's emissions, never between
  // advancing a chain and emitting it (a consensus re-draw would otherwise
  // stand in for a mixed sample).
  size_t emitted = 0;
  while (emitted < count) {
    RunBlock(&chains, done, thin_sweeps, /*burn_in=*/0, options,
             /*poll_interrupt=*/true);
    if (AnyInterrupted(chains)) return;
    done += thin_sweeps;
    for (size_t r = 0; r < chains.size() && emitted < count; ++r) {
      ++emitted;
      if (!on_sample(chains[r].world->ToBits())) return;
    }
    if (sync > 0 && done - last_sync >= sync) {
      Synchronize(&chains, /*samples_taken=*/0, options);
      last_sync = done;
    }
  }
}

template class BasicReplicatedGibbsSampler<factor::FactorGraph>;
template class BasicReplicatedGibbsSampler<factor::CompiledGraph>;

}  // namespace deepdive::inference
