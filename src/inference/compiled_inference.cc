#include "inference/compiled_inference.h"

namespace deepdive::inference {

MarginalResult EstimateMarginalsAuto(const factor::FactorGraph& graph,
                                     const GibbsOptions& options) {
  return EstimateMarginalsAuto(graph, nullptr, options);
}

MarginalResult EstimateMarginalsAuto(const factor::FactorGraph& graph,
                                     const factor::CompiledGraph* compiled,
                                     const GibbsOptions& options) {
  if (options.use_compiled_graph) {
    if (compiled != nullptr) {
      CompiledReplicatedGibbsSampler sampler(compiled, options.num_replicas,
                                             options.num_threads);
      return sampler.EstimateMarginals(options);
    }
    const factor::CompiledGraph fresh = factor::CompiledGraph::Compile(graph);
    CompiledReplicatedGibbsSampler sampler(&fresh, options.num_replicas,
                                           options.num_threads);
    return sampler.EstimateMarginals(options);
  }
  ReplicatedGibbsSampler sampler(&graph, options.num_replicas, options.num_threads);
  return sampler.EstimateMarginals(options);
}

void SampleChainAuto(const factor::FactorGraph& graph, const GibbsOptions& options,
                     size_t count, size_t thin,
                     const std::function<bool(const BitVector&)>& on_sample) {
  if (options.use_compiled_graph) {
    const factor::CompiledGraph compiled = factor::CompiledGraph::Compile(graph);
    CompiledReplicatedGibbsSampler sampler(&compiled, options.num_replicas,
                                           options.num_threads);
    sampler.SampleChain(options, count, thin, on_sample);
    return;
  }
  ReplicatedGibbsSampler sampler(&graph, options.num_replicas, options.num_threads);
  sampler.SampleChain(options, count, thin, on_sample);
}

uint64_t CompiledMarginalsFingerprint(const factor::CompiledGraph& graph,
                                      uint64_t seed, size_t threads,
                                      size_t replicas, size_t sync_every) {
  GibbsOptions gopts;
  gopts.seed = Rng::MixSeed(seed, /*stream=*/1);
  gopts.num_threads = threads;
  gopts.num_replicas = replicas;
  gopts.sync_every_sweeps = sync_every;
  CompiledReplicatedGibbsSampler sampler(&graph, replicas, threads);
  std::vector<double> marginals = sampler.EstimateMarginals(gopts).marginals;
  for (factor::VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) marginals[v] = *ev ? 1.0 : 0.0;
  }
  return factor::Fnv1aHash(marginals.data(),
                           marginals.size() * sizeof(double));
}

}  // namespace deepdive::inference
