#include "inference/compiled_inference.h"

namespace deepdive::inference {

MarginalResult EstimateMarginalsAuto(const factor::FactorGraph& graph,
                                     const GibbsOptions& options) {
  if (options.use_compiled_graph) {
    const factor::CompiledGraph compiled = factor::CompiledGraph::Compile(graph);
    CompiledReplicatedGibbsSampler sampler(&compiled, options.num_replicas,
                                           options.num_threads);
    return sampler.EstimateMarginals(options);
  }
  ReplicatedGibbsSampler sampler(&graph, options.num_replicas, options.num_threads);
  return sampler.EstimateMarginals(options);
}

void SampleChainAuto(const factor::FactorGraph& graph, const GibbsOptions& options,
                     size_t count, size_t thin,
                     const std::function<bool(const BitVector&)>& on_sample) {
  if (options.use_compiled_graph) {
    const factor::CompiledGraph compiled = factor::CompiledGraph::Compile(graph);
    CompiledReplicatedGibbsSampler sampler(&compiled, options.num_replicas,
                                           options.num_threads);
    sampler.SampleChain(options, count, thin, on_sample);
    return;
  }
  ReplicatedGibbsSampler sampler(&graph, options.num_replicas, options.num_threads);
  sampler.SampleChain(options, count, thin, on_sample);
}

}  // namespace deepdive::inference
