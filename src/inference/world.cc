#include "inference/world.h"

#include "util/logging.h"

namespace deepdive::inference {

using factor::ClauseId;
using factor::GroupId;
using factor::VarId;
using factor::WeightId;

template <typename GraphT>
BasicWorld<GraphT>::BasicWorld(const GraphT* graph) : graph_(graph) {
  values_.assign(graph_->NumVariables(), 0);
  InitEvidence();
  RecomputeStats();
}

template <typename GraphT>
void BasicWorld<GraphT>::InitEvidence() {
  for (VarId v = 0; v < values_.size(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) values_[v] = *ev ? 1 : 0;
  }
}

template <typename GraphT>
void BasicWorld<GraphT>::Flip(VarId v, bool new_value) {
  if (value(v) == new_value) return;
  values_[v] = new_value ? 1 : 0;
  for (const auto& ref : graph_->BodyRefs(v)) {
    // Statistics are maintained for inactive *groups* too (cheap, and keeps
    // re-activation trivial), but deactivated clauses are out for good. On
    // the compiled graph `active` is constexpr-true and this test folds away.
    if (!graph_->clause(ref.clause).active) continue;
    const bool lit_true_now = (new_value != static_cast<bool>(ref.negated));
    const GroupId g = graph_->clause(ref.clause).group;
    if (lit_true_now) {
      if (--clause_unsat_[ref.clause] == 0) ++group_sat_[g];
    } else {
      if (clause_unsat_[ref.clause]++ == 0) --group_sat_[g];
    }
  }
}

template <typename GraphT>
void BasicWorld<GraphT>::InitValues(Rng* rng, bool random_init) {
  for (VarId v = 0; v < values_.size(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) {
      values_[v] = *ev ? 1 : 0;
    } else {
      values_[v] = (random_init && rng != nullptr && rng->Bernoulli(0.5)) ? 1 : 0;
    }
  }
  RecomputeStats();
}

template <typename GraphT>
void BasicWorld<GraphT>::LoadBits(const BitVector& bits) {
  DD_CHECK_EQ(bits.size(), values_.size());
  for (VarId v = 0; v < values_.size(); ++v) values_[v] = bits.Get(v) ? 1 : 0;
  InitEvidence();
  RecomputeStats();
}

template <typename GraphT>
void BasicWorld<GraphT>::LoadBitsPrefix(const BitVector& bits, bool fill,
                                        bool apply_evidence) {
  DD_CHECK_LE(bits.size(), values_.size());
  for (VarId v = 0; v < values_.size(); ++v) {
    values_[v] = v < bits.size() ? (bits.Get(v) ? 1 : 0) : (fill ? 1 : 0);
  }
  if (apply_evidence) InitEvidence();
  RecomputeStats();
}

template <typename GraphT>
BitVector BasicWorld<GraphT>::ToBits() const {
  BitVector bits(values_.size());
  for (VarId v = 0; v < values_.size(); ++v) bits.Set(v, values_[v] != 0);
  return bits;
}

template <typename GraphT>
void BasicWorld<GraphT>::SyncStructure(bool fill) {
  const size_t old_vars = values_.size();
  values_.resize(graph_->NumVariables(), fill ? 1 : 0);
  for (VarId v = static_cast<VarId>(old_vars); v < values_.size(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) values_[v] = *ev ? 1 : 0;
  }
  // Recompute from scratch: new clauses may reference old variables, so a
  // purely-appending fast path would still need to scan them; the full pass
  // is O(graph) and only runs on structural updates.
  RecomputeStats();
}

template <typename GraphT>
void BasicWorld<GraphT>::RecomputeStats() {
  clause_unsat_.assign(graph_->NumClauses(), 0);
  group_sat_.assign(graph_->NumGroups(), 0);
  for (ClauseId c = 0; c < graph_->NumClauses(); ++c) {
    if (!graph_->clause(c).active) continue;
    int32_t unsat = 0;
    for (const auto& lit : graph_->ClauseLiterals(c)) {
      if (value(lit.var) == static_cast<bool>(lit.negated)) ++unsat;
    }
    clause_unsat_[c] = unsat;
    if (unsat == 0) ++group_sat_[graph_->clause(c).group];
  }
}

template <typename GraphT>
double BasicWorld<GraphT>::GroupLogWeight(GroupId g) const {
  const auto& group = graph_->group(g);
  if (!group.active) return 0.0;
  const double sign = value(group.head) ? 1.0 : -1.0;
  return graph_->WeightValue(group.weight) * sign *
         factor::GCount(group.semantics, group_sat_[g]);
}

template <typename GraphT>
double BasicWorld<GraphT>::TotalLogWeight() const {
  double total = 0.0;
  for (GroupId g = 0; g < graph_->NumGroups(); ++g) total += GroupLogWeight(g);
  return total;
}

template <typename GraphT>
double BasicWorld<GraphT>::WeightFeature(WeightId weight) const {
  double f = 0.0;
  for (GroupId g : graph_->GroupsForWeight(weight)) {
    const auto& group = graph_->group(g);
    if (!group.active) continue;
    const double sign = value(group.head) ? 1.0 : -1.0;
    f += sign * factor::GCount(group.semantics, group_sat_[g]);
  }
  return f;
}

template class BasicWorld<factor::FactorGraph>;
template class BasicWorld<factor::CompiledGraph>;

}  // namespace deepdive::inference
