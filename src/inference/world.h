#ifndef DEEPDIVE_INFERENCE_WORLD_H_
#define DEEPDIVE_INFERENCE_WORLD_H_

#include <cstdint>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace deepdive::inference {

/// A possible world plus the per-clause/per-group statistics that make Gibbs
/// updates O(degree): for every clause the number of unsatisfied literals,
/// and for every group the number of satisfied clauses (the n of Eq. 1).
///
/// Templated over the graph representation: the mutable FactorGraph, or the
/// frozen flat-array CompiledGraph (whose `active` flags are compile-time
/// constants, so the inactive-skip branches below fold away entirely).
///
/// For the mutable graph, the structure may grow (incremental grounding);
/// call SyncStructure() afterwards to absorb new variables/clauses/groups.
template <typename GraphT>
class BasicWorld {
 public:
  explicit BasicWorld(const GraphT* graph);

  /// The frozen-during-runs graph (see FactorGraph's thread contract); the
  /// World itself is single-owner, not shared across threads.
  const GraphT& graph() const { return *graph_; }

  size_t NumVariables() const { return values_.size(); }

  bool value(factor::VarId v) const { return values_[v] != 0; }

  /// Sets a variable and maintains clause/group statistics.
  void Flip(factor::VarId v, bool new_value);

  /// Initializes non-evidence variables (uniformly at random or all-false)
  /// and evidence variables to their labels, then rebuilds statistics.
  void InitValues(Rng* rng, bool random_init = true);

  /// Loads values from a packed sample (size must equal NumVariables), then
  /// rebuilds statistics. Evidence variables are forced to their labels.
  void LoadBits(const BitVector& bits);

  /// Loads values from a packed sample that may be *shorter* than the current
  /// variable count (samples materialized before new variables arrived);
  /// missing variables get `fill`. When `apply_evidence` is false the bits
  /// are taken verbatim — the MH proposal path needs the *raw* materialized
  /// sample, not one coerced onto later evidence (coercion would silently
  /// change the proposal distribution and wreck the acceptance test).
  void LoadBitsPrefix(const BitVector& bits, bool fill, bool apply_evidence = true);

  BitVector ToBits() const;

  /// Grows internal arrays to match the graph after it was extended, and
  /// initializes statistics for the new clauses/groups. New variables take
  /// their evidence value or `fill`.
  void SyncStructure(bool fill = false);

  int64_t GroupSat(factor::GroupId g) const { return group_sat_[g]; }
  int32_t ClauseUnsat(factor::ClauseId c) const { return clause_unsat_[c]; }

  /// W(I): total log-weight over active groups, from maintained statistics.
  double TotalLogWeight() const;

  /// Contribution of a single group from maintained statistics (0 if inactive).
  double GroupLogWeight(factor::GroupId g) const;

  /// Sum over groups carrying `weight` of sign(head) * g(n_sat): the
  /// sufficient statistic d W / d weight used by the learner.
  double WeightFeature(factor::WeightId weight) const;

  /// Full recomputation of all statistics from current values (O(graph)).
  void RecomputeStats();

 private:
  /// Forces evidence variables to their labels (no stats update).
  void InitEvidence();

  const GraphT* graph_;
  std::vector<uint8_t> values_;
  std::vector<int32_t> clause_unsat_;
  std::vector<int64_t> group_sat_;
};

using World = BasicWorld<factor::FactorGraph>;
using CompiledWorld = BasicWorld<factor::CompiledGraph>;

extern template class BasicWorld<factor::FactorGraph>;
extern template class BasicWorld<factor::CompiledGraph>;

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_WORLD_H_
