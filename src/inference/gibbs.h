#ifndef DEEPDIVE_INFERENCE_GIBBS_H_
#define DEEPDIVE_INFERENCE_GIBBS_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "inference/world.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace deepdive::inference {

struct GibbsOptions {
  size_t burn_in_sweeps = 50;
  size_t sample_sweeps = 200;
  uint64_t seed = 1;
  bool random_init = true;
  /// When true, evidence variables are resampled like query variables
  /// (the "free" chain of weight learning).
  bool sample_evidence = false;
  /// Worker threads for the parallel sampler (ParallelGibbsSampler).
  /// 1 = sequential (bit-identical to GibbsSampler); 0 = one per hardware
  /// thread. The sequential GibbsSampler ignores this field. With
  /// num_replicas > 1 this is the TOTAL budget, split across replicas.
  size_t num_threads = 1;
  /// Model replicas for the replicated sampler (ReplicatedGibbsSampler):
  /// each replica owns a private world (the DimmWitted per-socket execution
  /// model) and runs its own Hogwild sweeps; marginal estimates are averaged
  /// across replicas. 1 = single shared world, bit-identical to
  /// ParallelGibbsSampler. Only the replicated sampler reads this field.
  size_t num_replicas = 1;
  /// With num_replicas > 1: replicas synchronize every this many sweeps —
  /// marginal estimates are averaged and every replica's world is re-seeded
  /// from the consensus. 0 disables periodic synchronization (replicas stay
  /// independent until the final cross-replica merge). In SampleChain the
  /// cadence rounds up to the next emission boundary so a synchronization
  /// never lands between advancing a chain and emitting its sample.
  size_t sync_every_sweeps = 50;
  /// Routes whole-graph inference (EstimateMarginalsAuto / SampleChainAuto)
  /// through the flat CSR CompiledGraph kernel instead of walking the
  /// mutable pointer-rich graph. Bit-identical results either way (the
  /// compiled path preserves iteration and RNG order exactly); this is a
  /// pure memory-layout/performance switch.
  bool use_compiled_graph = true;
  /// Cooperative cancellation / budget hook, polled between sweeps of
  /// ParallelGibbsSampler::SampleChain — including burn-in, so a time budget
  /// can stop a chain that would otherwise blow it before the first sample.
  /// Returning true abandons the chain. Never consumes RNG state, so a hook
  /// that never fires leaves results bit-identical. With num_replicas > 1
  /// the hook is polled concurrently from replica workers, so it must be
  /// thread-safe (the engine's hooks read an atomic flag and a monotonic
  /// timer, which is).
  std::function<bool()> interrupt;
};

/// Per-variable marginal estimates plus chain accounting.
struct MarginalResult {
  std::vector<double> marginals;  // P(v = 1)
  size_t sweeps = 0;
  size_t flips = 0;
};

/// Reusable per-group accumulation buffer for conditional evaluation.
/// Callers that evaluate many conditionals (sweeps, learners, parallel
/// workers) keep one per thread so the inner loop never allocates; the
/// sampler itself holds no mutable state and can be shared across threads.
struct GibbsScratch {
  std::vector<std::pair<factor::GroupId, int64_t>> touched;
};

namespace detail {

/// Core conditional computation, shared by the sequential and parallel
/// samplers and by both graph representations. `GraphT` is FactorGraph or
/// CompiledGraph (identical accessor surface; the compiled one's `active`
/// flags are constexpr-true so the skip branches fold away). `WorldT` must
/// provide value(v), GroupSat(g) and ClauseUnsat(c); the parallel sampler
/// instantiates it with an atomic world, whose reads may be stale under
/// Hogwild sweeps (the races it tolerates by design).
template <typename GraphT, typename WorldT>
double ConditionalLogOddsImpl(const GraphT& graph, const WorldT& world,
                              factor::VarId v, GibbsScratch* scratch) {
  double log_odds = 0.0;

  // Groups where v is the head: W(v=1) - W(v=0) = 2 w g(n); n does not
  // depend on v because clauses may not contain their own head.
  for (factor::GroupId g : graph.HeadGroups(v)) {
    const auto& group = graph.group(g);
    if (!group.active) continue;
    log_odds += 2.0 * graph.WeightValue(group.weight) *
                factor::GCount(group.semantics, world.GroupSat(g));
  }

  // Groups where v appears in clause bodies: accumulate dn = n(v=1) - n(v=0)
  // per group, then add w sign(head) (g(n1) - g(n0)).
  auto& touched = scratch->touched;
  touched.clear();
  const bool cur = world.value(v);
  for (const auto& ref : graph.BodyRefs(v)) {
    const auto& clause = graph.clause(ref.clause);  // ref or by-value view
    if (!clause.active) continue;
    const auto& group = graph.group(clause.group);
    if (!group.active) continue;
    // Other literals of the clause satisfied?
    const bool lit_true_now = (cur != static_cast<bool>(ref.negated));
    const int32_t others_unsat = world.ClauseUnsat(ref.clause) - (lit_true_now ? 0 : 1);
    if (others_unsat != 0) continue;  // clause state independent of v
    const int64_t dn = ref.negated ? -1 : +1;
    bool found = false;
    for (auto& [gid, acc] : touched) {
      if (gid == clause.group) {
        acc += dn;
        found = true;
        break;
      }
    }
    if (!found) touched.emplace_back(clause.group, dn);
  }
  for (const auto& [gid, dn] : touched) {
    if (dn == 0) continue;
    const auto& group = graph.group(gid);
    const int64_t n_now = world.GroupSat(gid);
    const int64_t n1 = cur ? n_now : n_now + dn;
    const int64_t n0 = cur ? n_now - dn : n_now;
    const double sign = world.value(group.head) ? 1.0 : -1.0;
    log_odds += graph.WeightValue(group.weight) * sign *
                (factor::GCount(group.semantics, n1) - factor::GCount(group.semantics, n0));
  }
  return log_odds;
}

/// Resamples positions [begin, end) of `vars` (or variable ids [begin, end)
/// when `vars` is null) into `world`, consuming `rng` once per sampleable
/// variable. The one sweep loop shared by the sequential sampler and every
/// Hogwild worker — keeping a single copy is what guarantees the
/// num_threads == 1 configurations stay bit-identical to GibbsSampler, and
/// the GraphT parameter is what guarantees the compiled-graph path stays
/// bit-identical to the mutable one.
template <typename GraphT, typename WorldT>
size_t SweepRangeImpl(const GraphT& graph, WorldT* world, Rng* rng,
                      GibbsScratch* scratch, const std::vector<factor::VarId>* vars,
                      size_t begin, size_t end, bool sample_evidence) {
  size_t flips = 0;
  for (size_t i = begin; i < end; ++i) {
    const factor::VarId v =
        vars != nullptr ? (*vars)[i] : static_cast<factor::VarId>(i);
    if (!sample_evidence && graph.IsEvidence(v)) continue;
    const double log_odds = ConditionalLogOddsImpl(graph, *world, v, scratch);
    const double p1 = 1.0 / (1.0 + std::exp(-log_odds));
    const bool new_value = rng->Bernoulli(p1);
    if (new_value != world->value(v)) {
      world->Flip(v, new_value);
      ++flips;
    }
  }
  return flips;
}

}  // namespace detail

/// Systematic-scan Gibbs sampler over the grouped factor representation
/// (Section 2.5). The conditional for one variable costs O(degree): head
/// groups contribute 2 w g(n); body memberships contribute
/// w sign(head) (g(n|v=1) - g(n|v=0)) via the maintained clause statistics.
///
/// Templated over the graph representation (mutable FactorGraph or the flat
/// CSR CompiledGraph — see compiled_graph.h); same seed, same graph content
/// => bit-identical marginals on either.
///
/// The sampler is stateless (all scratch is caller- or call-local), so one
/// `const` instance can be shared by any number of threads as long as each
/// thread uses its own World/Rng/GibbsScratch.
template <typename GraphT>
class BasicGibbsSampler {
 public:
  using WorldType = BasicWorld<GraphT>;

  explicit BasicGibbsSampler(const GraphT* graph);

  /// The frozen-during-runs graph (see FactorGraph's thread contract).
  const GraphT& graph() const { return *graph_; }

  /// log [ Pr(v=1 | rest) / Pr(v=0 | rest) ] in `world`. The scratch overload
  /// is allocation-free after warm-up; the convenience overload pays one
  /// small allocation per call.
  double ConditionalLogOdds(const WorldType& world, factor::VarId v,
                            GibbsScratch* scratch) const;
  double ConditionalLogOdds(const WorldType& world, factor::VarId v) const;

  /// One systematic sweep over sampleable variables. Returns #flips.
  size_t Sweep(WorldType* world, Rng* rng, bool sample_evidence = false) const;

  /// One sweep restricted to the given variables (decomposition groups).
  size_t SweepVars(WorldType* world, Rng* rng,
                   const std::vector<factor::VarId>& vars) const;

  /// Runs burn-in + sampling sweeps and averages indicator values.
  MarginalResult EstimateMarginals(const GibbsOptions& options) const;

  /// As above, but reuses the caller's world/chain (for warm chains).
  MarginalResult EstimateMarginals(const GibbsOptions& options, WorldType* world,
                                   Rng* rng) const;

  /// Draws `count` packed sample worlds, `thin` sweeps apart, after burn-in.
  /// This is the materialization primitive of the sampling approach.
  std::vector<BitVector> DrawSamples(size_t count, size_t thin,
                                     const GibbsOptions& options) const;

 private:
  const GraphT* graph_;
};

using GibbsSampler = BasicGibbsSampler<factor::FactorGraph>;
using CompiledGibbsSampler = BasicGibbsSampler<factor::CompiledGraph>;

extern template class BasicGibbsSampler<factor::FactorGraph>;
extern template class BasicGibbsSampler<factor::CompiledGraph>;

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_GIBBS_H_
