#ifndef DEEPDIVE_INFERENCE_GIBBS_H_
#define DEEPDIVE_INFERENCE_GIBBS_H_

#include <cstdint>
#include <vector>

#include "factor/factor_graph.h"
#include "inference/world.h"
#include "util/bitvector.h"
#include "util/random.h"

namespace deepdive::inference {

struct GibbsOptions {
  size_t burn_in_sweeps = 50;
  size_t sample_sweeps = 200;
  uint64_t seed = 1;
  bool random_init = true;
  /// When true, evidence variables are resampled like query variables
  /// (the "free" chain of weight learning).
  bool sample_evidence = false;
};

/// Per-variable marginal estimates plus chain accounting.
struct MarginalResult {
  std::vector<double> marginals;  // P(v = 1)
  size_t sweeps = 0;
  size_t flips = 0;
};

/// Systematic-scan Gibbs sampler over the grouped factor representation
/// (Section 2.5). The conditional for one variable costs O(degree): head
/// groups contribute 2 w g(n); body memberships contribute
/// w sign(head) (g(n|v=1) - g(n|v=0)) via the maintained clause statistics.
class GibbsSampler {
 public:
  explicit GibbsSampler(const factor::FactorGraph* graph);

  const factor::FactorGraph& graph() const { return *graph_; }

  /// log [ Pr(v=1 | rest) / Pr(v=0 | rest) ] in `world`.
  double ConditionalLogOdds(const World& world, factor::VarId v) const;

  /// One systematic sweep over sampleable variables. Returns #flips.
  size_t Sweep(World* world, Rng* rng, bool sample_evidence = false) const;

  /// One sweep restricted to the given variables (decomposition groups).
  size_t SweepVars(World* world, Rng* rng, const std::vector<factor::VarId>& vars) const;

  /// Runs burn-in + sampling sweeps and averages indicator values.
  MarginalResult EstimateMarginals(const GibbsOptions& options) const;

  /// As above, but reuses the caller's world/chain (for warm chains).
  MarginalResult EstimateMarginals(const GibbsOptions& options, World* world,
                                   Rng* rng) const;

  /// Draws `count` packed sample worlds, `thin` sweeps apart, after burn-in.
  /// This is the materialization primitive of the sampling approach.
  std::vector<BitVector> DrawSamples(size_t count, size_t thin,
                                     const GibbsOptions& options) const;

 private:
  const factor::FactorGraph* graph_;
  // Scratch for per-group dn accumulation in ConditionalLogOdds (single-
  // threaded; the DimmWitted-style sharding would give each worker its own).
  mutable std::vector<std::pair<factor::GroupId, int64_t>> touched_;
};

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_GIBBS_H_
