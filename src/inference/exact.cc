#include "inference/exact.h"

#include <cmath>

#include "util/string_util.h"

namespace deepdive::inference {

using factor::VarId;

StatusOr<ExactResult> ExactInference(const factor::FactorGraph& graph,
                                     size_t max_free_vars) {
  ExactResult result;
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    if (!graph.IsEvidence(v)) result.free_vars.push_back(v);
  }
  const size_t k = result.free_vars.size();
  if (k > max_free_vars) {
    return Status::OutOfRange(
        StrFormat("%zu free variables exceed the enumeration limit %zu", k,
                  max_free_vars));
  }

  std::vector<uint8_t> values(graph.NumVariables(), 0);
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) values[v] = *ev ? 1 : 0;
  }
  auto value_of = [&](VarId v) { return values[v] != 0; };

  const uint64_t num_worlds = uint64_t{1} << k;
  std::vector<double> log_weights(num_worlds);
  double max_log = -1e300;
  for (uint64_t world = 0; world < num_worlds; ++world) {
    for (size_t i = 0; i < k; ++i) {
      values[result.free_vars[i]] = (world >> i) & 1;
    }
    const double lw = graph.TotalLogWeight(value_of);
    log_weights[world] = lw;
    if (lw > max_log) max_log = lw;
  }

  double z = 0.0;
  for (double lw : log_weights) z += std::exp(lw - max_log);
  result.log_partition = max_log + std::log(z);

  result.world_probs.resize(num_worlds);
  result.marginals.assign(graph.NumVariables(), 0.0);
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) result.marginals[v] = *ev ? 1.0 : 0.0;
  }
  for (uint64_t world = 0; world < num_worlds; ++world) {
    const double p = std::exp(log_weights[world] - result.log_partition);
    result.world_probs[world] = p;
    for (size_t i = 0; i < k; ++i) {
      if ((world >> i) & 1) result.marginals[result.free_vars[i]] += p;
    }
  }
  return result;
}

}  // namespace deepdive::inference
