#include "inference/learner.h"

#include <cmath>
#include <memory>

#include "inference/gibbs.h"
#include "inference/replicated_gibbs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepdive::inference {

using factor::FactorGraph;
using factor::VarId;
using factor::WeightId;

template <typename GraphT>
BasicLearner<GraphT>::BasicLearner(GraphT* graph) : graph_(graph) {}

template <typename GraphT>
double BasicLearner<GraphT>::EvidenceLoss() const {
  // Clamped world: evidence at labels, query variables at their conditional
  // mode given an all-false start (cheap deterministic proxy; the loss is
  // used for relative learning curves, not as the training objective).
  BasicWorld<GraphT> world(graph_);
  BasicGibbsSampler<GraphT> sampler(graph_);
  GibbsScratch scratch;
  double loss = 0.0;
  size_t count = 0;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (!ev.has_value()) continue;
    const double log_odds = sampler.ConditionalLogOdds(world, v, &scratch);
    // -log P(label | rest)
    const double z = *ev ? log_odds : -log_odds;
    // log(1 + e^-z), numerically stable.
    loss += z > 0 ? std::log1p(std::exp(-z)) : -z + std::log1p(std::exp(z));
    ++count;
  }
  return count > 0 ? loss / static_cast<double>(count) : 0.0;
}

template <typename GraphT>
LearnStats BasicLearner<GraphT>::RunEpochs(
    const LearnerOptions& options,
    const std::function<void(std::vector<double>* grad)>& accumulate_sweep) {
  LearnStats stats;
  if (!options.warmstart) {
    for (WeightId w = 0; w < graph_->NumWeights(); ++w) {
      if (graph_->WeightLearnable(w)) graph_->SetWeightValue(w, 0.0);
    }
  }
  stats.initial_loss = EvidenceLoss();

  const size_t num_weights = graph_->NumWeights();
  std::vector<double> grad(num_weights, 0.0);
  double lr = options.learning_rate;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    const size_t sweeps = std::max<size_t>(1, options.sweeps_per_epoch);
    for (size_t s = 0; s < sweeps; ++s) accumulate_sweep(&grad);
    for (WeightId w = 0; w < num_weights; ++w) {
      if (!graph_->WeightLearnable(w)) continue;
      const double g = grad[w] / static_cast<double>(sweeps);
      const double updated =
          graph_->WeightValue(w) + lr * (g - options.l2 * graph_->WeightValue(w));
      graph_->SetWeightValue(w, updated);
    }
    lr *= options.decay;
    stats.epoch_losses.push_back(EvidenceLoss());
    ++stats.epochs_run;
  }
  stats.final_loss = stats.epoch_losses.empty() ? stats.initial_loss
                                                : stats.epoch_losses.back();
  return stats;
}

template <typename GraphT>
LearnStats BasicLearner<GraphT>::Learn(const LearnerOptions& options) {
  if (options.num_replicas >= 2) return LearnReplicated(options);

  BasicGibbsSampler<GraphT> sampler(graph_);
  Rng rng(options.seed);

  // Persistent chains.
  BasicWorld<GraphT> clamped(graph_);
  BasicWorld<GraphT> free(graph_);
  clamped.InitValues(&rng, /*random_init=*/true);
  free.InitValues(&rng, /*random_init=*/true);

  // The two chains are independent given the weights, so with num_threads
  // >= 2 each epoch's sweeps run concurrently (the sampler is stateless and
  // shared; each chain owns its world and RNG stream). The pool's Wait()
  // inside Submit/Wait pairs orders the sweeps before WeightFeature reads.
  const size_t num_threads = options.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : options.num_threads;
  const bool parallel_chains = num_threads >= 2;
  ThreadPool pool(parallel_chains ? 2 : 1);
  Rng free_rng(Rng::MixSeed(options.seed, 1));

  return RunEpochs(options, [&](std::vector<double>* grad) {
    if (parallel_chains) {
      pool.Submit([&] { sampler.Sweep(&clamped, &rng, /*sample_evidence=*/false); });
      pool.Submit([&] { sampler.Sweep(&free, &free_rng, /*sample_evidence=*/true); });
      pool.Wait();
    } else {
      sampler.Sweep(&clamped, &rng, /*sample_evidence=*/false);
      sampler.Sweep(&free, &rng, /*sample_evidence=*/true);
    }
    for (WeightId w = 0; w < graph_->NumWeights(); ++w) {
      if (!graph_->WeightLearnable(w)) continue;
      (*grad)[w] += clamped.WeightFeature(w) - free.WeightFeature(w);
    }
  });
}

template <typename GraphT>
LearnStats BasicLearner<GraphT>::LearnReplicated(const LearnerOptions& options) {
  // Chain 2r is clamped replica r, chain 2r + 1 is free replica r. Every
  // chain owns a private world and (seed, chain, worker)-keyed streams; the
  // replicated sampler's pool runs all 2R chains concurrently, each chain's
  // Hogwild shards on its own replica sampler. With one worker per chain
  // every chain is internally sequential, so the whole procedure is
  // deterministic for a fixed seed.
  using Replicated = BasicReplicatedGibbsSampler<GraphT>;
  const size_t replicas = options.num_replicas;
  const size_t chains = 2 * replicas;
  Replicated replicated(graph_, chains, options.num_threads);
  std::vector<std::unique_ptr<BasicAtomicWorld<GraphT>>> worlds;
  std::vector<std::vector<Rng>> rngs;
  worlds.reserve(chains);
  rngs.reserve(chains);
  for (size_t c = 0; c < chains; ++c) {
    worlds.push_back(std::make_unique<BasicAtomicWorld<GraphT>>(graph_));
    rngs.push_back(replicated.replica(c).MakeRngStreams(options.seed, c));
  }
  replicated.ForEachReplica([&](size_t c) {
    Rng init_rng(Replicated::AuxSeed(options.seed, c, Replicated::kInitStream));
    worlds[c]->InitValues(&init_rng, /*random_init=*/true);
  });

  return RunEpochs(options, [&](std::vector<double>* grad) {
    replicated.ForEachReplica([&](size_t c) {
      replicated.replica(c).Sweep(worlds[c].get(), &rngs[c],
                                  /*sample_evidence=*/(c & 1) != 0);
    });
    // Replica-averaged gradient: the weight vector is the consensus model,
    // synchronized across replicas at every step.
    for (WeightId w = 0; w < graph_->NumWeights(); ++w) {
      if (!graph_->WeightLearnable(w)) continue;
      double clamped_f = 0.0, free_f = 0.0;
      for (size_t r = 0; r < replicas; ++r) {
        clamped_f += worlds[2 * r]->WeightFeature(w);
        free_f += worlds[2 * r + 1]->WeightFeature(w);
      }
      (*grad)[w] += (clamped_f - free_f) / static_cast<double>(replicas);
    }
  });
}

template class BasicLearner<factor::FactorGraph>;
template class BasicLearner<factor::CompiledGraph>;

// ---- Learner façade --------------------------------------------------------

Learner::Learner(FactorGraph* graph) : graph_(graph) {}

double Learner::EvidenceLoss() const {
  return BasicLearner<FactorGraph>(graph_).EvidenceLoss();
}

LearnStats Learner::Learn(const LearnerOptions& options) {
  if (!options.use_compiled_graph) {
    return BasicLearner<FactorGraph>(graph_).Learn(options);
  }
  // Compile once, learn on the flat image, write the weights back. The
  // compiled kernel preserves iteration and RNG order exactly, so the learned
  // weights are bit-identical to the mutable path.
  factor::CompiledGraph compiled = factor::CompiledGraph::Compile(*graph_);
  LearnStats stats = BasicLearner<factor::CompiledGraph>(&compiled).Learn(options);
  for (WeightId w = 0; w < graph_->NumWeights(); ++w) {
    graph_->SetWeightValue(w, compiled.WeightValue(w));
  }
  return stats;
}

}  // namespace deepdive::inference
