#include "inference/learner.h"

#include <cmath>

#include "inference/gibbs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepdive::inference {

using factor::FactorGraph;
using factor::VarId;
using factor::WeightId;

Learner::Learner(FactorGraph* graph) : graph_(graph) {}

double Learner::EvidenceLoss() const {
  // Clamped world: evidence at labels, query variables at their conditional
  // mode given an all-false start (cheap deterministic proxy; the loss is
  // used for relative learning curves, not as the training objective).
  World world(graph_);
  GibbsSampler sampler(graph_);
  GibbsScratch scratch;
  double loss = 0.0;
  size_t count = 0;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (!ev.has_value()) continue;
    const double log_odds = sampler.ConditionalLogOdds(world, v, &scratch);
    // -log P(label | rest)
    const double z = *ev ? log_odds : -log_odds;
    // log(1 + e^-z), numerically stable.
    loss += z > 0 ? std::log1p(std::exp(-z)) : -z + std::log1p(std::exp(z));
    ++count;
  }
  return count > 0 ? loss / static_cast<double>(count) : 0.0;
}

LearnStats Learner::Learn(const LearnerOptions& options) {
  LearnStats stats;

  if (!options.warmstart) {
    for (WeightId w = 0; w < graph_->NumWeights(); ++w) {
      if (graph_->weight(w).learnable) graph_->SetWeightValue(w, 0.0);
    }
  }
  stats.initial_loss = EvidenceLoss();

  GibbsSampler sampler(graph_);
  Rng rng(options.seed);

  // Persistent chains.
  World clamped(graph_);
  World free(graph_);
  clamped.InitValues(&rng, /*random_init=*/true);
  free.InitValues(&rng, /*random_init=*/true);

  // The two chains are independent given the weights, so with num_threads
  // >= 2 each epoch's sweeps run concurrently (the sampler is stateless and
  // shared; each chain owns its world and RNG stream). The pool's Wait()
  // inside Submit/Wait pairs orders the sweeps before WeightFeature reads.
  const size_t num_threads = options.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : options.num_threads;
  const bool parallel_chains = num_threads >= 2;
  ThreadPool pool(parallel_chains ? 2 : 1);
  Rng free_rng(Rng::MixSeed(options.seed, 1));

  const size_t num_weights = graph_->NumWeights();
  std::vector<double> grad(num_weights, 0.0);

  double lr = options.learning_rate;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    const size_t sweeps = std::max<size_t>(1, options.sweeps_per_epoch);
    for (size_t s = 0; s < sweeps; ++s) {
      if (parallel_chains) {
        pool.Submit([&] { sampler.Sweep(&clamped, &rng, /*sample_evidence=*/false); });
        pool.Submit([&] { sampler.Sweep(&free, &free_rng, /*sample_evidence=*/true); });
        pool.Wait();
      } else {
        sampler.Sweep(&clamped, &rng, /*sample_evidence=*/false);
        sampler.Sweep(&free, &rng, /*sample_evidence=*/true);
      }
      for (WeightId w = 0; w < num_weights; ++w) {
        if (!graph_->weight(w).learnable) continue;
        grad[w] += clamped.WeightFeature(w) - free.WeightFeature(w);
      }
    }
    for (WeightId w = 0; w < num_weights; ++w) {
      if (!graph_->weight(w).learnable) continue;
      const double g = grad[w] / static_cast<double>(sweeps);
      const double updated =
          graph_->WeightValue(w) + lr * (g - options.l2 * graph_->WeightValue(w));
      graph_->SetWeightValue(w, updated);
    }
    lr *= options.decay;
    stats.epoch_losses.push_back(EvidenceLoss());
    ++stats.epochs_run;
  }
  stats.final_loss = stats.epoch_losses.empty() ? stats.initial_loss
                                                : stats.epoch_losses.back();
  return stats;
}

}  // namespace deepdive::inference
