#ifndef DEEPDIVE_INFERENCE_EXACT_H_
#define DEEPDIVE_INFERENCE_EXACT_H_

#include <vector>

#include "factor/factor_graph.h"
#include "util/status.h"

namespace deepdive::inference {

/// Exact result of full world enumeration.
struct ExactResult {
  std::vector<double> marginals;      // P(v = 1), evidence vars at {0,1}
  double log_partition = 0.0;         // log Z (over query variables)
  /// Probability of each world, indexed by the bit pattern of the
  /// *non-evidence* variables (bit i = i-th non-evidence variable).
  std::vector<double> world_probs;
  std::vector<factor::VarId> free_vars;  // bit order of world_probs
};

/// Enumerates all assignments of the non-evidence variables. #P-hard in
/// general; usable up to ~24 free variables. This is both the correctness
/// oracle for the samplers and the "strawman" materialization's ground truth.
StatusOr<ExactResult> ExactInference(const factor::FactorGraph& graph,
                                     size_t max_free_vars = 24);

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_EXACT_H_
