#ifndef DEEPDIVE_INFERENCE_PARALLEL_GIBBS_H_
#define DEEPDIVE_INFERENCE_PARALLEL_GIBBS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "inference/gibbs.h"
#include "inference/world.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace deepdive::inference {

/// A possible world whose clause/group statistics are maintained with relaxed
/// atomics, so concurrent Hogwild workers can Flip disjoint variables while
/// sharing clauses. Atomic read-modify-writes keep the counters *exact* (no
/// lost updates — the classic failure mode of racing `--unsat`); the only
/// approximation of the parallel sampler is that a worker may read a
/// neighbor's value or a clause statistic a few microseconds stale, which is
/// the standard DimmWitted/Hogwild trade.
///
/// Templated over the graph representation (mutable FactorGraph or the flat
/// CSR CompiledGraph). Mirrors the World API the samplers need (value /
/// GroupSat / ClauseUnsat / Flip), so the templated conditional in gibbs.h
/// works on either.
template <typename GraphT>
class BasicAtomicWorld {
 public:
  explicit BasicAtomicWorld(const GraphT* graph);

  /// The frozen-during-runs graph (see FactorGraph's thread contract).
  const GraphT& graph() const { return *graph_; }
  size_t NumVariables() const { return values_.size(); }

  // ordering: relaxed — the Hogwild contract (see class comment): reads may
  // observe a neighbor's value/statistic a few operations stale; counters
  // stay exact because all updates are atomic RMWs. Quiescent readers get
  // their happens-before edge from the ThreadPool join (see RecomputeStats).
  bool value(factor::VarId v) const {
    return values_[v].load(std::memory_order_relaxed) != 0;
  }
  int64_t GroupSat(factor::GroupId g) const {
    return group_sat_[g].load(std::memory_order_relaxed);
  }
  int32_t ClauseUnsat(factor::ClauseId c) const {
    return clause_unsat_[c].load(std::memory_order_relaxed);
  }

  /// Sets a variable and atomically maintains clause/group statistics.
  /// Callers partition variables so no two threads Flip the same id.
  void Flip(factor::VarId v, bool new_value);

  /// Initializes non-evidence variables (uniformly at random or all-false)
  /// and evidence variables to their labels, then rebuilds statistics.
  /// Single-threaded; call before handing the world to workers.
  void InitValues(Rng* rng, bool random_init = true);

  /// Loads values from a packed sample that may be shorter than the variable
  /// count; missing variables get `fill`. Mirrors World::LoadBitsPrefix
  /// (including the raw-proposal semantics when `apply_evidence` is false).
  /// The statistics rebuild shards over `pool` when given.
  void LoadBitsPrefix(const BitVector& bits, bool fill, bool apply_evidence = true,
                      ThreadPool* pool = nullptr);

  BitVector ToBits() const;

  /// Full recomputation of statistics from current values. Shards the clause
  /// scan over `pool` when given (group counters stay exact via atomics).
  void RecomputeStats(ThreadPool* pool = nullptr);

  /// Sum over groups carrying `weight` of sign(head) * g(n_sat), as
  /// World::WeightFeature (used by the parallel learner's gradient).
  double WeightFeature(factor::WeightId weight) const;

 private:
  const GraphT* graph_;
  /// Hogwild-exempt state: deliberately NOT annotated with GUARDED_BY and
  /// deliberately relaxed — concurrent same-location access from many
  /// workers without mutual exclusion IS the algorithm (Niu et al.'s
  /// Hogwild, executed DimmWitted-style). Exactness is preserved where it
  /// matters (counter RMWs); staleness of cross-shard reads is the accepted
  /// approximation. See README.md "Concurrency contracts".
  std::vector<std::atomic<uint8_t>> values_;
  std::vector<std::atomic<int32_t>> clause_unsat_;
  std::vector<std::atomic<int64_t>> group_sat_;
};

using AtomicWorld = BasicAtomicWorld<factor::FactorGraph>;
using CompiledAtomicWorld = BasicAtomicWorld<factor::CompiledGraph>;

extern template class BasicAtomicWorld<factor::FactorGraph>;
extern template class BasicAtomicWorld<factor::CompiledGraph>;

/// Multi-threaded Gibbs sampler (the DimmWitted execution model the paper's
/// Section 2.5 samplers run on): variables are partitioned into contiguous
/// shards, one worker per shard runs asynchronous Hogwild sweeps against a
/// shared atomic world, and every worker owns a private RNG stream and
/// conditional-evaluation scratch, so the underlying (stateless, const)
/// sampler logic is shared race-free.
///
/// `num_threads == 1` runs the exact sequential sampler on the calling
/// thread — bit-identical results for a given seed, which keeps every
/// deterministic test meaningful. `num_threads == 0` means one worker per
/// hardware thread.
///
/// Unlike GibbsSampler, a ParallelGibbsSampler instance is NOT shareable
/// across calling threads: its methods are const but use the instance's
/// worker pool and per-shard scratch, so concurrent calls on one instance
/// race. Create one sampler per calling thread (workers inside are fine).
template <typename GraphT>
class BasicParallelGibbsSampler {
 public:
  using WorldType = BasicAtomicWorld<GraphT>;

  explicit BasicParallelGibbsSampler(const GraphT* graph, size_t num_threads = 1);

  /// The frozen-during-runs graph (see FactorGraph's thread contract).
  const GraphT& graph() const { return *graph_; }
  size_t num_threads() const { return num_threads_; }

  /// Burn-in + sampling sweeps, averaging indicator values; honors the
  /// options' budget exactly like GibbsSampler::EstimateMarginals.
  MarginalResult EstimateMarginals(const GibbsOptions& options) const;

  /// Draws `count` packed sample worlds, `thin` sweeps apart, after burn-in.
  std::vector<BitVector> DrawSamples(size_t count, size_t thin,
                                     const GibbsOptions& options) const;

  /// Materialization loop: after burn-in, emits up to `count` samples `thin`
  /// sweeps apart to `on_sample`; stops early when the callback returns
  /// false (time budgets). Sequentially identical to the single-threaded
  /// draw loop when num_threads == 1.
  void SampleChain(const GibbsOptions& options, size_t count, size_t thin,
                   const std::function<bool(const BitVector&)>& on_sample) const;

  /// One Hogwild sweep over all sampleable variables. `rngs` must hold at
  /// least num_threads() streams (see MakeRngStreams). Returns total flips.
  size_t Sweep(WorldType* world, std::vector<Rng>* rngs,
               bool sample_evidence = false) const;

  /// One Hogwild sweep restricted to `vars` (decomposition groups /
  /// extension variables), partitioned across workers.
  size_t SweepVars(WorldType* world, std::vector<Rng>* rngs,
                   const std::vector<factor::VarId>& vars) const;

  /// Per-worker decorrelated RNG streams, keyed by (seed, replica, worker).
  /// `replica` identifies the chain this sampler drives among siblings that
  /// share a base seed: the model replicas of ReplicatedGibbsSampler, the
  /// replicated learner's clamped/free chains, and the MH proposal-extension
  /// streams (replica 1, decorrelated from any replica-0 chain on the same
  /// seed). Keying by the pool shard index alone handed all such same-seed
  /// samplers identical streams and therefore correlated chains. Callers
  /// that run a single chain per seed keep the default replica 0.
  std::vector<Rng> MakeRngStreams(uint64_t seed, uint64_t replica = 0) const;

  ThreadPool* pool() const { return &pool_; }

 private:
  const GraphT* graph_;
  size_t num_threads_;
  mutable ThreadPool pool_;
  // Per-shard conditional scratch, indexed by ParallelFor shard id. Workers
  // touch only their own entry, so a const sampler stays shareable from the
  // calling thread's perspective.
  mutable std::vector<GibbsScratch> scratch_;
};

using ParallelGibbsSampler = BasicParallelGibbsSampler<factor::FactorGraph>;
using CompiledParallelGibbsSampler = BasicParallelGibbsSampler<factor::CompiledGraph>;

extern template class BasicParallelGibbsSampler<factor::FactorGraph>;
extern template class BasicParallelGibbsSampler<factor::CompiledGraph>;

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_PARALLEL_GIBBS_H_
