#ifndef DEEPDIVE_INFERENCE_LEARNER_H_
#define DEEPDIVE_INFERENCE_LEARNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "inference/world.h"

namespace deepdive::inference {

struct LearnerOptions {
  size_t epochs = 60;
  double learning_rate = 0.5;
  double decay = 0.96;        // multiplicative step decay per epoch
  double l2 = 1e-4;
  /// Sweeps of each chain per gradient estimate. 1 = stochastic (SGD);
  /// larger values average more sweeps per update (gradient-descent style).
  size_t sweeps_per_epoch = 1;
  /// Keep current weight values as the starting point (Appendix B.3).
  /// When false, learnable weights are reset to zero first.
  bool warmstart = true;
  uint64_t seed = 7;
  /// >= 2 runs the clamped and free chains concurrently on a thread pool
  /// (each chain owns a decorrelated RNG stream). 1 keeps the historical
  /// single-threaded interleaving, bit-identical for a given seed. With
  /// num_replicas > 1 this is the total budget split across all chains.
  size_t num_threads = 1;
  /// Model replicas per chain (ReplicatedGibbsSampler execution model):
  /// >= 2 maintains R clamped and R free persistent chains with private
  /// worlds and (seed, chain, worker)-keyed RNG streams; each sweep's
  /// gradient is the replica-averaged difference of sufficient statistics —
  /// the weight vector itself is the consensus model, synchronized every
  /// sweep. Deterministic for a fixed seed whenever each chain runs on one
  /// worker (num_threads <= 2 * num_replicas). 1 keeps the historical
  /// two-chain path bit-identical.
  size_t num_replicas = 1;
  /// Learn against the flat CSR CompiledGraph kernel: the graph is compiled
  /// once, all chains sweep the compiled image, and the learned weights are
  /// copied back. Bit-identical weights either way (the compiled path
  /// preserves iteration and RNG order exactly); pure layout/perf switch.
  bool use_compiled_graph = true;
};

struct LearnStats {
  std::vector<double> epoch_losses;  // pseudo-likelihood loss per epoch
  double initial_loss = 0.0;
  double final_loss = 0.0;
  size_t epochs_run = 0;
};

/// Weight-learning engine templated over the graph representation (mutable
/// FactorGraph or flat CSR CompiledGraph): stochastic maximum likelihood
/// (persistent contrastive divergence), the standard Gibbs-based procedure of
/// Tuffy/DeepDive — maintain a "clamped" chain (evidence fixed to labels) and
/// a "free" chain (evidence resampled); the gradient of a weight is the
/// difference of its sufficient statistic sign(head) * g(n_sat) between the
/// chains. Only weights flagged learnable move. The graph's weight values are
/// updated in place (single-writer: this learner, between inference runs).
template <typename GraphT>
class BasicLearner {
 public:
  explicit BasicLearner(GraphT* graph);

  LearnStats Learn(const LearnerOptions& options);

  /// Negative pseudo-log-likelihood of the evidence variables under the
  /// current weights, evaluated on a world with evidence clamped:
  /// sum over e in E of -log sigma(+/- logodds(e)). The learning curves of
  /// Figures 16/17 report this.
  double EvidenceLoss() const;

 private:
  /// The shared SGD scaffolding (weight reset, per-epoch gradient averaging
  /// + L2 step, learning-rate decay, loss tracking): `accumulate_sweep`
  /// advances every persistent chain one sweep and adds that sweep's
  /// sufficient-statistic differences into the gradient buffer — the only
  /// part that differs between the two-chain and replicated executions.
  LearnStats RunEpochs(
      const LearnerOptions& options,
      const std::function<void(std::vector<double>* grad)>& accumulate_sweep);

  /// num_replicas >= 2: R clamped + R free persistent chains with private
  /// worlds, swept concurrently through a ReplicatedGibbsSampler; gradients
  /// are replica-averaged every sweep (the shared weight vector is the
  /// consensus model of DimmWitted-style model averaging).
  LearnStats LearnReplicated(const LearnerOptions& options);

  GraphT* graph_;
};

extern template class BasicLearner<factor::FactorGraph>;
extern template class BasicLearner<factor::CompiledGraph>;

/// Weight learning over a mutable FactorGraph. Warmstart (keep previous
/// weights) is the incremental-learning technique evaluated in Figure 16.
/// With `options.use_compiled_graph` the chains run on a one-shot compiled
/// snapshot of the graph (same results, flat-array sweep speed) and the
/// learned weights are written back into the mutable graph.
class Learner {
 public:
  explicit Learner(factor::FactorGraph* graph);

  LearnStats Learn(const LearnerOptions& options);

  /// See BasicLearner::EvidenceLoss; always evaluated against the current
  /// mutable graph weights.
  double EvidenceLoss() const;

 private:
  factor::FactorGraph* graph_;
};

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_LEARNER_H_
