#ifndef DEEPDIVE_INFERENCE_COMPILED_INFERENCE_H_
#define DEEPDIVE_INFERENCE_COMPILED_INFERENCE_H_

#include <cstddef>
#include <functional>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "inference/gibbs.h"
#include "inference/replicated_gibbs.h"
#include "util/bitvector.h"

namespace deepdive::inference {

/// Whole-graph marginal estimation routed by GibbsOptions::use_compiled_graph:
/// compiles `graph` into the flat CSR image and runs the compiled
/// replicated/parallel/sequential sampler stack, or walks the mutable graph
/// directly. Results are bit-identical either way for a fixed seed — the
/// compiled path preserves iteration and RNG order exactly — so callers can
/// treat the flag as a pure performance switch.
MarginalResult EstimateMarginalsAuto(const factor::FactorGraph& graph,
                                     const GibbsOptions& options);

/// Same routing, but reuses `compiled` (when non-null and the compiled path
/// is selected) instead of recompiling the graph on every call. `compiled`
/// must be an up-to-date Compile() of `graph` — the engine caches one across
/// updates and invalidates it on any structural or rule delta, which turns
/// the per-update O(graph) compile into a one-time cost per graph version.
MarginalResult EstimateMarginalsAuto(const factor::FactorGraph& graph,
                                     const factor::CompiledGraph* compiled,
                                     const GibbsOptions& options);

/// Materialization chain with the same routing; semantics of the emitted
/// sample stream as ReplicatedGibbsSampler::SampleChain.
void SampleChainAuto(const factor::FactorGraph& graph, const GibbsOptions& options,
                     size_t count, size_t thin,
                     const std::function<bool(const BitVector&)>& on_sample);

/// FNV-1a hash of the marginals a fresh process must reproduce from a
/// compiled snapshot: EstimateMarginals on the compiled kernel with seed+1
/// and the given replica settings, evidence clamped to its label (as the
/// pipeline does). The identity line printed by `run --save-graph` (via the
/// serving stack's save_graph verb) and recomputed by `load-graph`; the CI
/// cold-start smoke diffs the two.
uint64_t CompiledMarginalsFingerprint(const factor::CompiledGraph& graph,
                                      uint64_t seed, size_t threads,
                                      size_t replicas, size_t sync_every);

}  // namespace deepdive::inference

#endif  // DEEPDIVE_INFERENCE_COMPILED_INFERENCE_H_
