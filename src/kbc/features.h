#ifndef DEEPDIVE_KBC_FEATURES_H_
#define DEEPDIVE_KBC_FEATURES_H_

#include <vector>

#include "kbc/corpus.h"
#include "storage/value.h"

namespace deepdive::kbc {

/// Output of the feature-extraction UDFs (Example 2.3): one row per mention
/// pair per feature. `shallow` is the inter-mention phrase (rule FE1);
/// `deep` is a dependency-path-style refinement (rule FE2).
struct FeatureRows {
  /// PhraseFeature(sent: int, m1: int, m2: int, f: string)
  std::vector<Tuple> shallow;
  /// DeepFeature(sent: int, m1: int, m2: int, f: string)
  std::vector<Tuple> deep;
};

/// Extracts features for every ordered mention pair in every sentence.
/// This is the phrase(m1, m2, sent) UDF whose return value the tied weight
/// w(f) keys on.
FeatureRows ExtractFeatures(const Corpus& corpus);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_FEATURES_H_
