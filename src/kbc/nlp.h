#ifndef DEEPDIVE_KBC_NLP_H_
#define DEEPDIVE_KBC_NLP_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace deepdive::kbc {

/// Minimal NLP preprocessing (the stand-in for DeepDive's standard NLP
/// pipeline): whitespace tokenization plus person-mention recognition over
/// the synthetic "PERSON_<id>" convention.
std::vector<std::string> TokenizeSentence(std::string_view content);

/// A recognized person mention: token position and the surface entity id.
struct MentionSpan {
  size_t token_index = 0;
  int64_t surface_entity = 0;  // from "PERSON_<id>"
};

/// Extracts person mentions from a tokenized sentence.
std::vector<MentionSpan> ExtractPersonMentions(const std::vector<std::string>& tokens);

/// If `token` is a person mention ("PERSON_<id>"), returns the id.
std::optional<int64_t> ParsePersonToken(std::string_view token);

/// Tokens strictly between two positions, joined with '_' — the phrase(m1,
/// m2, sent) UDF of Example 2.3. Empty when the mentions are adjacent.
std::string PhraseBetween(const std::vector<std::string>& tokens, size_t lo, size_t hi);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_NLP_H_
