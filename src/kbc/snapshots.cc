#include "kbc/snapshots.h"

#include "core/config.h"
#include "util/logging.h"

namespace deepdive::kbc {

StatusOr<SnapshotComparison> RunSnapshotComparison(const SystemProfile& profile,
                                                   const PipelineOptions& base_options) {
  SnapshotComparison result;

  PipelineOptions rerun_options = base_options;
  rerun_options.config.mode = core::ExecutionMode::kRerun;
  PipelineOptions inc_options = base_options;
  inc_options.config.mode = core::ExecutionMode::kIncremental;

  DD_ASSIGN_OR_RETURN(std::unique_ptr<KbcPipeline> rerun,
                      KbcPipeline::Build(profile, rerun_options));
  DD_ASSIGN_OR_RETURN(std::unique_ptr<KbcPipeline> inc,
                      KbcPipeline::Build(profile, inc_options));
  DD_RETURN_IF_ERROR(rerun->Initialize());
  DD_RETURN_IF_ERROR(inc->Initialize());
  result.materialization_seconds = inc->deepdive().materialization_stats().seconds;

  double rerun_cum = 0.0, inc_cum = 0.0;
  for (const std::string& rule : KbcPipeline::UpdateSequence()) {
    SnapshotRow row;
    row.rule = rule;

    DD_ASSIGN_OR_RETURN(incremental::UpdateReport rr, rerun->ApplyUpdate(rule));
    DD_ASSIGN_OR_RETURN(incremental::UpdateReport ir, inc->ApplyUpdate(rule));

    // The paper's Figure 9 reports statistical inference + learning time.
    row.rerun_seconds = rr.learning_seconds + rr.inference_seconds;
    row.incremental_seconds = ir.learning_seconds + ir.inference_seconds;
    row.speedup = row.incremental_seconds > 0
                      ? row.rerun_seconds / row.incremental_seconds
                      : 0.0;
    row.strategy = ir.strategy;
    row.acceptance_rate = ir.acceptance_rate;

    rerun_cum += rr.TotalSeconds();
    inc_cum += ir.TotalSeconds();
    row.rerun_cumulative = rerun_cum;
    row.incremental_cumulative = inc_cum;

    row.rerun_f1 = rerun->EvaluateMentions(0.5).f1;
    row.incremental_f1 = inc->EvaluateMentions(0.5).f1;

    const std::vector<double> pm = rerun->QueryMarginals();
    const std::vector<double> qm = inc->QueryMarginals();
    if (pm.size() == qm.size() && !pm.empty()) {
      row.high_confidence_agreement = HighConfidenceAgreement(pm, qm, 0.9);
      row.fraction_differing_05 = FractionDiffering(pm, qm, 0.05);
    }
    result.rows.push_back(row);
  }
  result.rerun_total_seconds = rerun_cum;
  result.incremental_total_seconds = inc_cum;
  return result;
}

}  // namespace deepdive::kbc
