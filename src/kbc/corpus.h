#ifndef DEEPDIVE_KBC_CORPUS_H_
#define DEEPDIVE_KBC_CORPUS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/random.h"

namespace deepdive::kbc {

/// Which of the paper's five KBC systems a synthetic corpus emulates
/// (Figure 7). Scale is reduced per DESIGN.md §4.1; the *relative* text
/// quality / ambiguity across systems follows Section 4.1's description.
enum class SystemKind { kAdversarial, kNews, kGenomics, kPharma, kPaleontology };

const char* SystemName(SystemKind kind);

/// Generation parameters for one system.
struct SystemProfile {
  SystemKind kind = SystemKind::kNews;
  std::string name;

  // Paper-reported statistics (Figure 7), for reporting only.
  size_t paper_docs = 0;
  size_t paper_relations = 0;
  size_t paper_rules = 0;

  // Scaled synthetic sizes.
  size_t num_documents = 400;
  size_t sentences_per_doc = 3;
  size_t num_entities = 120;
  size_t num_true_pairs = 60;

  // Text quality knobs.
  size_t num_indicative_phrases = 12;   // phrases that signal the relation
  size_t num_misleading_phrases = 8;    // phrases that co-occur with negatives
  size_t num_neutral_phrases = 30;
  double true_pair_rate = 0.35;     // P(sentence mentions a true pair)
  double phrase_noise = 0.2;        // P(wrong phrase class for the pair)
  double phrase_strength = 0.9;     // P(indicative phrase | true pair, no noise)
  double el_accuracy = 0.95;        // entity-linking correctness
  double kb_coverage = 0.5;         // fraction of true pairs in the distant KB
  size_t num_negative_pairs = 60;   // disjoint (sibling-like) KB
};

/// The five built-in profiles. Tuned so the relative quality ordering of
/// Figure 10(b) (Paleontology/Adversarial high, News lowest) is reproduced.
SystemProfile ProfileFor(SystemKind kind);
std::vector<SystemProfile> AllProfiles();

/// One generated sentence: surface text plus (hidden) generation truth.
struct SentenceRecord {
  int64_t doc_id = 0;
  int64_t sent_id = 0;
  std::string content;        // e.g. "PERSON_3 and his wife PERSON_17 ..."
  int64_t entity1 = 0;        // generation truth (not visible to the system)
  int64_t entity2 = 0;
  bool expresses_relation = false;
};

/// A synthetic corpus plus its gold standard.
struct Corpus {
  SystemProfile profile;
  std::vector<SentenceRecord> sentences;
  std::set<std::pair<int64_t, int64_t>> true_pairs;      // gold relation
  std::set<std::pair<int64_t, int64_t>> negative_pairs;  // disjoint relation
  /// Subset of true_pairs in the (incomplete) distant-supervision KB.
  std::set<std::pair<int64_t, int64_t>> known_pairs;
};

/// Generates a corpus for a profile. Deterministic given the seed.
Corpus GenerateCorpus(const SystemProfile& profile, uint64_t seed);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_CORPUS_H_
