#ifndef DEEPDIVE_KBC_SNAPSHOTS_H_
#define DEEPDIVE_KBC_SNAPSHOTS_H_

#include <string>
#include <vector>

#include "incremental/optimizer.h"
#include "kbc/pipeline.h"

namespace deepdive::kbc {

/// One row of the Figure 9 table: a rule update executed by both systems.
struct SnapshotRow {
  std::string rule;
  double rerun_seconds = 0.0;
  double incremental_seconds = 0.0;
  double speedup = 0.0;
  double rerun_f1 = 0.0;
  double incremental_f1 = 0.0;
  incremental::Strategy strategy = incremental::Strategy::kSampling;
  double acceptance_rate = -1.0;
  /// Cumulative wall clock after this update (Figure 10(a) x-axis).
  double rerun_cumulative = 0.0;
  double incremental_cumulative = 0.0;
  /// Marginal agreement between the two executions (Section 4.2).
  double high_confidence_agreement = 1.0;
  double fraction_differing_05 = 0.0;
};

struct SnapshotComparison {
  std::vector<SnapshotRow> rows;
  double rerun_total_seconds = 0.0;
  double incremental_total_seconds = 0.0;
  double materialization_seconds = 0.0;
};

/// Runs the six-update development loop (Figure 8) twice — Rerun vs
/// Incremental — on the same corpus, and collects the per-update timings,
/// qualities and agreement statistics of Section 4.2. Drives both pipelines'
/// update loops, so it runs on the serving thread.
StatusOr<SnapshotComparison> RunSnapshotComparison(const SystemProfile& profile,
                                                   const PipelineOptions& base_options)
    REQUIRES(serving_thread);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_SNAPSHOTS_H_
