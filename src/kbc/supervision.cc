#include "kbc/supervision.h"

namespace deepdive::kbc {

KnowledgeBaseRows BuildKnowledgeBase(const Corpus& corpus) {
  KnowledgeBaseRows rows;
  for (const auto& [a, b] : corpus.known_pairs) {
    rows.known_positive.push_back({Value(a), Value(b)});
    rows.known_positive.push_back({Value(b), Value(a)});
  }
  for (const auto& [a, b] : corpus.negative_pairs) {
    rows.known_negative.push_back({Value(a), Value(b)});
    rows.known_negative.push_back({Value(b), Value(a)});
  }
  return rows;
}

}  // namespace deepdive::kbc
