#include "kbc/nlp.h"

#include <cstdlib>

#include "util/string_util.h"

namespace deepdive::kbc {

std::vector<std::string> TokenizeSentence(std::string_view content) {
  return SplitString(content, ' ');
}

std::optional<int64_t> ParsePersonToken(std::string_view token) {
  constexpr std::string_view kPrefix = "PERSON_";
  if (!StartsWith(token, kPrefix)) return std::nullopt;
  const std::string digits(token.substr(kPrefix.size()));
  if (digits.empty()) return std::nullopt;
  char* end = nullptr;
  const long long id = std::strtoll(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<int64_t>(id);
}

std::vector<MentionSpan> ExtractPersonMentions(const std::vector<std::string>& tokens) {
  std::vector<MentionSpan> out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const auto id = ParsePersonToken(tokens[i]);
    if (id.has_value()) out.push_back(MentionSpan{i, *id});
  }
  return out;
}

std::string PhraseBetween(const std::vector<std::string>& tokens, size_t lo, size_t hi) {
  if (lo > hi) std::swap(lo, hi);
  std::string out;
  for (size_t i = lo + 1; i < hi && i < tokens.size(); ++i) {
    if (!out.empty()) out += '_';
    out += tokens[i];
  }
  return out;
}

}  // namespace deepdive::kbc
