#ifndef DEEPDIVE_KBC_CANDIDATES_H_
#define DEEPDIVE_KBC_CANDIDATES_H_

#include <vector>

#include "kbc/corpus.h"
#include "storage/value.h"

namespace deepdive::kbc {

/// Output of candidate generation (phase 1 of Figure 1): person-mention
/// candidates and their (noisy) entity links.
struct CandidateRows {
  /// PersonCandidate(sent: int, mention: int)
  std::vector<Tuple> person_candidates;
  /// EL(mention: int, entity: int) — wrong with prob 1 - el_accuracy.
  std::vector<Tuple> entity_links;
  /// Sentence(doc: int, sent: int, content: string)
  std::vector<Tuple> sentences;
};

/// Mention ids are sent_id * kMentionStride + token_index.
inline constexpr int64_t kMentionStride = 64;

/// Runs mention extraction over the corpus text (the candidate-mapping
/// "low-precision high-recall ETL" of Example 2.2) and entity linking with
/// profile-controlled noise.
CandidateRows GenerateCandidates(const Corpus& corpus, uint64_t seed);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_CANDIDATES_H_
