#ifndef DEEPDIVE_KBC_ERROR_ANALYSIS_H_
#define DEEPDIVE_KBC_ERROR_ANALYSIS_H_

#include <string>
#include <vector>

#include "storage/value.h"

namespace deepdive::kbc {

/// One misprediction surfaced to the developer.
struct ErrorCase {
  Tuple mention_pair;
  double marginal = 0.0;
  bool truth = false;
  std::vector<std::string> features;  // features firing on this pair
};

/// Aggregate behavior of one tied-weight feature.
struct FeatureStat {
  std::string feature;
  size_t on_true = 0;    // occurrences on genuinely-related pairs
  size_t on_false = 0;   // occurrences on unrelated pairs
  double weight = 0.0;   // current learned weight
  double precision = 0.0;
};

/// The error-analysis report of Section 2.2: "understanding the most common
/// mistakes (incorrect extractions, too-specific features, candidate
/// mistakes) and deciding how to correct them". In DeepDive this is SQL over
/// the output KB; here it is a structured report the examples print.
struct ErrorAnalysis {
  std::vector<ErrorCase> false_positives;  // confident but wrong, p desc
  std::vector<ErrorCase> false_negatives;  // missed, p asc
  std::vector<FeatureStat> feature_stats;  // by |weight| desc
  size_t total_predictions = 0;
  size_t total_correct = 0;
};

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_ERROR_ANALYSIS_H_
