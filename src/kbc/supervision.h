#ifndef DEEPDIVE_KBC_SUPERVISION_H_
#define DEEPDIVE_KBC_SUPERVISION_H_

#include <vector>

#include "kbc/corpus.h"
#include "storage/value.h"

namespace deepdive::kbc {

/// Distant-supervision knowledge base (Example 2.4): an incomplete list of
/// known positive pairs and a disjoint negative relation (sibling-like).
/// Supervision rules S1/S2 join these with entity links to label candidates.
struct KnowledgeBaseRows {
  /// KnownSpouse(e1: int, e2: int) — both orientations are emitted.
  std::vector<Tuple> known_positive;
  /// KnownNegative(e1: int, e2: int)
  std::vector<Tuple> known_negative;
};

KnowledgeBaseRows BuildKnowledgeBase(const Corpus& corpus);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_SUPERVISION_H_
