#include "kbc/pipeline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepdive::kbc {

namespace {

/// Base program: mention-level extraction plus an entity-level fact layer.
/// The SpouseKB aggregation factor "votes" over the mention-level variables
/// that link to an entity pair — the place where the g(n) semantics of
/// Section 2.4 (Example 2.5) changes behavior, parameterized below.
std::string BaseProgram(dsl::Semantics semantics, bool entity_layer) {
  std::string program = R"(
# Spouse-extraction KBC system (Example 2.2 shape).
relation Sentence(doc: int, sent: int, content: string).
relation PersonCandidate(sent: int, mention: int).
relation EL(mention: int, entity: int).
relation KnownSpouse(e1: int, e2: int).
relation KnownNegative(e1: int, e2: int).
query relation HasSpouse(m1: int, m2: int).
evidence HasSpouseLabel(m1: int, m2: int, l: bool) for HasSpouse.

# Candidate mapping (rule R1): every co-occurring mention pair.
rule CAND: HasSpouse(m1, m2) :-
  PersonCandidate(s, m1), PersonCandidate(s, m2), m1 != m2.

# Weak negative prior: most candidate pairs are not spouses.
factor PRIOR: HasSpouse(m1, m2) :-
  PersonCandidate(s, m1), PersonCandidate(s, m2), m1 != m2
  weight = -0.8 semantics = logical.
)";
  if (entity_layer) {
    program += StrFormat(R"(
# Entity-level fact layer: candidates via entity linking, a weak prior, and
# an aggregation factor in which mention-level extractions vote for the
# entity-level fact — n counts supporting mention pairs and g(n) is the
# configured semantics (Example 2.5's voting).
query relation SpouseKB(e1: int, e2: int).
rule KBCAND: SpouseKB(e1, e2) :-
  PersonCandidate(s, m1), PersonCandidate(s, m2),
  EL(m1, e1), EL(m2, e2), m1 != m2.
factor KBPRIOR: SpouseKB(e1, e2) :-
  PersonCandidate(s, m1), PersonCandidate(s, m2),
  EL(m1, e1), EL(m2, e2), m1 != m2
  weight = -0.6 semantics = logical.
factor AGG: SpouseKB(e1, e2) :-
  HasSpouse(m1, m2), EL(m1, e1), EL(m2, e2)
  weight = 1.2 semantics = %s.
)",
                         dsl::SemanticsName(semantics));
  }
  return program;
}

}  // namespace

const char* KbcPipeline::QueryRelation() { return "HasSpouse"; }

std::vector<std::string> KbcPipeline::UpdateSequence() {
  return {"A1", "FE1", "FE2", "I1", "S1", "S2"};
}

KbcPipeline::KbcPipeline(Corpus corpus, PipelineOptions options)
    : corpus_(std::move(corpus)), options_(std::move(options)) {}

StatusOr<std::unique_ptr<KbcPipeline>> KbcPipeline::Build(const SystemProfile& profile,
                                                          const PipelineOptions& options) {
  Corpus corpus = GenerateCorpus(profile, options.seed);
  std::unique_ptr<KbcPipeline> pipeline(new KbcPipeline(std::move(corpus), options));
  pipeline->candidates_ = GenerateCandidates(pipeline->corpus_, options.seed + 1);
  pipeline->features_ = ExtractFeatures(pipeline->corpus_);
  pipeline->kb_ = BuildKnowledgeBase(pipeline->corpus_);
  DD_ASSIGN_OR_RETURN(pipeline->dd_,
                      core::DeepDive::Create(
                          BaseProgram(options.semantics, options.entity_layer),
                          options.config));
  return pipeline;
}

Status KbcPipeline::Initialize() {
  DD_RETURN_IF_ERROR(dd_->LoadRows("Sentence", candidates_.sentences));
  DD_RETURN_IF_ERROR(dd_->LoadRows("PersonCandidate", candidates_.person_candidates));
  DD_RETURN_IF_ERROR(dd_->LoadRows("EL", candidates_.entity_links));
  DD_RETURN_IF_ERROR(dd_->LoadRows("KnownSpouse", kb_.known_positive));
  DD_RETURN_IF_ERROR(dd_->LoadRows("KnownNegative", kb_.known_negative));
  return dd_->Initialize();
}

StatusOr<incremental::UpdateReport> KbcPipeline::ApplyUpdate(const std::string& label) {
  core::UpdateSpec spec;
  spec.label = label;
  const char* semantics = dsl::SemanticsName(options_.semantics);

  if (label == "A1") {
    spec.analysis_only = true;
  } else if (label == "FE1") {
    spec.add_rules = StrFormat(
        R"(relation PhraseFeature(sent: int, m1: int, m2: int, f: string).
           factor FE1: HasSpouse(m1, m2) :- PhraseFeature(s, m1, m2, f)
             weight = w(f) semantics = %s.)",
        semantics);
    spec.inserts["PhraseFeature"] = features_.shallow;
  } else if (label == "FE2") {
    spec.add_rules = StrFormat(
        R"(relation DeepFeature(sent: int, m1: int, m2: int, f: string).
           factor FE2: HasSpouse(m1, m2) :- DeepFeature(s, m1, m2, f)
             weight = w(f) semantics = %s.)",
        semantics);
    spec.inserts["DeepFeature"] = features_.deep;
  } else if (label == "I1") {
    // Symmetry of the spouse relation.
    spec.add_rules =
        R"(factor I1: HasSpouse(m2, m1) :- HasSpouse(m1, m2)
             weight = 1.5 semantics = logical.)";
  } else if (label == "S1") {
    spec.add_rules =
        R"(rule S1: HasSpouseLabel(m1, m2, true) :-
             PersonCandidate(s, m1), PersonCandidate(s, m2),
             EL(m1, e1), EL(m2, e2), KnownSpouse(e1, e2), m1 != m2.)";
  } else if (label == "S2") {
    spec.add_rules =
        R"(rule S2: HasSpouseLabel(m1, m2, false) :-
             PersonCandidate(s, m1), PersonCandidate(s, m2),
             EL(m1, e1), EL(m2, e2), KnownNegative(e1, e2), m1 != m2.)";
  } else {
    return Status::InvalidArgument("unknown update '" + label + "'");
  }
  return dd_->ApplyUpdate(spec);
}

bool KbcPipeline::MentionPairTruth(const Tuple& tuple) const {
  const int64_t m1 = tuple[0].AsInt();
  const int64_t sent = m1 / kMentionStride;
  if (sent < 0 || static_cast<size_t>(sent) >= corpus_.sentences.size()) return false;
  return corpus_.sentences[static_cast<size_t>(sent)].expresses_relation;
}

namespace {

/// Entries of one relation under a pinned view (empty if absent). The
/// evaluation paths below pin a single view per pass so every metric reads
/// one epoch's marginals, even while updates stream on the serving thread.
const std::vector<std::pair<Tuple, double>>& ViewEntries(
    const incremental::ResultView& view, const std::string& relation) {
  static const std::vector<std::pair<Tuple, double>> kEmpty;
  const auto* entries = view.Relation(relation);
  return entries != nullptr ? *entries : kEmpty;
}

}  // namespace

PrecisionRecall KbcPipeline::EvaluateMentions(double threshold) const {
  const auto view = dd_->Query();
  std::vector<bool> predicted, actual;
  for (const auto& [tuple, marginal] : ViewEntries(*view, QueryRelation())) {
    predicted.push_back(marginal >= threshold);
    actual.push_back(MentionPairTruth(tuple));
  }
  return ComputePrecisionRecall(predicted, actual);
}

PrecisionRecall KbcPipeline::EvaluateFacts(double threshold) const {
  // One pinned view: the mention-level and entity-level relations are read
  // from the same epoch.
  const auto view = dd_->Query();
  // Predicted entity pairs: SpouseKB marginals (the entity-level layer
  // aggregating mention votes under the configured semantics).
  std::set<std::pair<int64_t, int64_t>> predicted_pairs;
  std::set<std::pair<int64_t, int64_t>> extractable;
  for (const SentenceRecord& s : corpus_.sentences) {
    const auto p = s.entity1 < s.entity2 ? std::make_pair(s.entity1, s.entity2)
                                         : std::make_pair(s.entity2, s.entity1);
    if (corpus_.true_pairs.count(p)) extractable.insert(p);
  }
  if (options_.entity_layer) {
    for (const auto& [tuple, marginal] : ViewEntries(*view, "SpouseKB")) {
      if (marginal < threshold) continue;
      const int64_t e1 = tuple[0].AsInt();
      const int64_t e2 = tuple[1].AsInt();
      predicted_pairs.insert(e1 < e2 ? std::make_pair(e1, e2)
                                     : std::make_pair(e2, e1));
    }
  } else {
    // No entity layer: promote confident mention pairs through the gold
    // mention -> entity mapping.
    for (const auto& [tuple, marginal] : ViewEntries(*view, QueryRelation())) {
      if (marginal < threshold) continue;
      const int64_t sent = tuple[0].AsInt() / kMentionStride;
      if (sent < 0 || static_cast<size_t>(sent) >= corpus_.sentences.size()) continue;
      const SentenceRecord& s = corpus_.sentences[static_cast<size_t>(sent)];
      predicted_pairs.insert(s.entity1 < s.entity2
                                 ? std::make_pair(s.entity1, s.entity2)
                                 : std::make_pair(s.entity2, s.entity1));
    }
  }
  PrecisionRecall pr;
  for (const auto& p : predicted_pairs) {
    if (corpus_.true_pairs.count(p)) {
      ++pr.true_positives;
    } else {
      ++pr.false_positives;
    }
  }
  for (const auto& p : extractable) {
    if (!predicted_pairs.count(p)) ++pr.false_negatives;
  }
  const size_t dp = pr.true_positives + pr.false_positives;
  const size_t dr = pr.true_positives + pr.false_negatives;
  pr.precision = dp > 0 ? static_cast<double>(pr.true_positives) / dp : 0.0;
  pr.recall = dr > 0 ? static_cast<double>(pr.true_positives) / dr : 0.0;
  pr.f1 = (pr.precision + pr.recall) > 0
              ? 2 * pr.precision * pr.recall / (pr.precision + pr.recall)
              : 0.0;
  return pr;
}

ErrorAnalysis KbcPipeline::AnalyzeErrors(double threshold, size_t top_k) const {
  ErrorAnalysis report;

  // Features firing per mention pair (shallow + deep).
  std::map<std::pair<int64_t, int64_t>, std::vector<std::string>> pair_features;
  for (const std::vector<Tuple>* rows : {&features_.shallow, &features_.deep}) {
    for (const Tuple& row : *rows) {
      pair_features[{row[1].AsInt(), row[2].AsInt()}].push_back(row[3].AsString());
    }
  }

  // Learned weights by feature value (tied-weight keys are "FE1/<f>" or
  // "FE2/<f>").
  std::map<std::string, double> feature_weights;
  const factor::FactorGraph& graph = dd_->ground().graph;
  for (factor::WeightId w = 0; w < graph.NumWeights(); ++w) {
    const factor::Weight& weight = graph.weight(w);
    const size_t slash = weight.description.find('/');
    if (!weight.learnable || slash == std::string::npos) continue;
    feature_weights[weight.description.substr(slash + 1)] = weight.value;
  }

  std::map<std::string, FeatureStat> stats;
  const auto view = dd_->Query();
  for (const auto& [tuple, marginal] : ViewEntries(*view, QueryRelation())) {
    const bool truth = MentionPairTruth(tuple);
    const bool predicted = marginal >= threshold;
    ++report.total_predictions;
    if (predicted == truth) ++report.total_correct;

    ErrorCase error;
    error.mention_pair = tuple;
    error.marginal = marginal;
    error.truth = truth;
    auto fit = pair_features.find({tuple[0].AsInt(), tuple[1].AsInt()});
    if (fit != pair_features.end()) error.features = fit->second;

    for (const std::string& f : error.features) {
      FeatureStat& stat = stats[f];
      stat.feature = f;
      if (truth) {
        ++stat.on_true;
      } else {
        ++stat.on_false;
      }
    }
    if (predicted && !truth) report.false_positives.push_back(std::move(error));
    if (!predicted && truth) report.false_negatives.push_back(std::move(error));
  }

  std::sort(report.false_positives.begin(), report.false_positives.end(),
            [](const ErrorCase& a, const ErrorCase& b) { return a.marginal > b.marginal; });
  std::sort(report.false_negatives.begin(), report.false_negatives.end(),
            [](const ErrorCase& a, const ErrorCase& b) { return a.marginal < b.marginal; });
  if (report.false_positives.size() > top_k) report.false_positives.resize(top_k);
  if (report.false_negatives.size() > top_k) report.false_negatives.resize(top_k);

  for (auto& [f, stat] : stats) {
    auto wit = feature_weights.find(f);
    if (wit != feature_weights.end()) stat.weight = wit->second;
    const size_t total = stat.on_true + stat.on_false;
    stat.precision = total > 0 ? static_cast<double>(stat.on_true) / total : 0.0;
    report.feature_stats.push_back(stat);
  }
  std::sort(report.feature_stats.begin(), report.feature_stats.end(),
            [](const FeatureStat& a, const FeatureStat& b) {
              return std::abs(a.weight) > std::abs(b.weight);
            });
  return report;
}

std::vector<double> KbcPipeline::QueryMarginals() const {
  const auto view = dd_->Query();
  std::vector<double> out;
  for (const auto& [tuple, marginal] : ViewEntries(*view, QueryRelation())) {
    (void)tuple;
    out.push_back(marginal);
  }
  return out;
}

}  // namespace deepdive::kbc
