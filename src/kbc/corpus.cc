#include "kbc/corpus.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace deepdive::kbc {

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kAdversarial:
      return "Adversarial";
    case SystemKind::kNews:
      return "News";
    case SystemKind::kGenomics:
      return "Genomics";
    case SystemKind::kPharma:
      return "Pharma.";
    case SystemKind::kPaleontology:
      return "Paleontology";
  }
  return "?";
}

SystemProfile ProfileFor(SystemKind kind) {
  SystemProfile p;
  p.kind = kind;
  p.name = SystemName(kind);
  switch (kind) {
    case SystemKind::kAdversarial:
      // 5M ad documents, 1 relation, 1-2 noisy sentences each. Quality is
      // decent (F1 ~0.72) because the relation is simple despite the noise.
      p.paper_docs = 5'000'000;
      p.paper_relations = 1;
      p.paper_rules = 10;
      p.num_documents = 600;
      p.sentences_per_doc = 1;
      p.num_entities = 150;
      p.num_true_pairs = 70;
      p.phrase_noise = 0.22;
      p.phrase_strength = 0.92;
      p.true_pair_rate = 0.45;
      p.el_accuracy = 0.9;
      p.kb_coverage = 0.55;
      break;
    case SystemKind::kNews:
      // 1.8M articles, 34 relations; ambiguous relations ("member of") and
      // slightly degraded writing -> the lowest F1 (~0.34).
      p.paper_docs = 1'800'000;
      p.paper_relations = 34;
      p.paper_rules = 22;
      p.num_documents = 450;
      p.sentences_per_doc = 2;
      p.num_entities = 160;
      p.num_true_pairs = 60;
      p.phrase_noise = 0.4;
      p.phrase_strength = 0.55;
      p.true_pair_rate = 0.22;
      p.el_accuracy = 0.85;
      p.kb_coverage = 0.4;
      break;
    case SystemKind::kGenomics:
      // Precise text, linguistically ambiguous relationships (F1 ~0.53).
      p.paper_docs = 200'000;
      p.paper_relations = 3;
      p.paper_rules = 15;
      p.num_documents = 300;
      p.sentences_per_doc = 2;
      p.num_entities = 100;
      p.num_true_pairs = 45;
      p.phrase_noise = 0.3;
      p.phrase_strength = 0.65;
      p.true_pair_rate = 0.3;
      p.el_accuracy = 0.95;
      p.kb_coverage = 0.45;
      break;
    case SystemKind::kPharma:
      p.paper_docs = 600'000;
      p.paper_relations = 9;
      p.paper_rules = 24;
      p.num_documents = 350;
      p.sentences_per_doc = 2;
      p.num_entities = 110;
      p.num_true_pairs = 50;
      p.phrase_noise = 0.28;
      p.phrase_strength = 0.7;
      p.true_pair_rate = 0.3;
      p.el_accuracy = 0.95;
      p.kb_coverage = 0.5;
      break;
    case SystemKind::kPaleontology:
      // Well-curated journal articles, precise writing (F1 ~0.81).
      p.paper_docs = 300'000;
      p.paper_relations = 8;
      p.paper_rules = 29;
      p.num_documents = 350;
      p.sentences_per_doc = 2;
      p.num_entities = 100;
      p.num_true_pairs = 50;
      p.phrase_noise = 0.08;
      p.phrase_strength = 0.95;
      p.true_pair_rate = 0.4;
      p.el_accuracy = 0.98;
      p.kb_coverage = 0.6;
      break;
  }
  return p;
}

std::vector<SystemProfile> AllProfiles() {
  return {ProfileFor(SystemKind::kAdversarial), ProfileFor(SystemKind::kNews),
          ProfileFor(SystemKind::kGenomics), ProfileFor(SystemKind::kPharma),
          ProfileFor(SystemKind::kPaleontology)};
}

namespace {

std::vector<std::string> MakePhrases(const char* stem, size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(StrFormat("%s_%zu", stem, i));
  return out;
}

std::pair<int64_t, int64_t> OrderedPair(int64_t a, int64_t b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Corpus GenerateCorpus(const SystemProfile& profile, uint64_t seed) {
  Corpus corpus;
  corpus.profile = profile;
  Rng rng(seed);

  // Gold relation pairs and a disjoint negative relation.
  while (corpus.true_pairs.size() < profile.num_true_pairs) {
    const int64_t a = static_cast<int64_t>(rng.UniformInt(profile.num_entities));
    const int64_t b = static_cast<int64_t>(rng.UniformInt(profile.num_entities));
    if (a == b) continue;
    corpus.true_pairs.insert(OrderedPair(a, b));
  }
  while (corpus.negative_pairs.size() < profile.num_negative_pairs) {
    const int64_t a = static_cast<int64_t>(rng.UniformInt(profile.num_entities));
    const int64_t b = static_cast<int64_t>(rng.UniformInt(profile.num_entities));
    if (a == b) continue;
    const auto p = OrderedPair(a, b);
    if (corpus.true_pairs.count(p)) continue;
    corpus.negative_pairs.insert(p);
  }
  for (const auto& p : corpus.true_pairs) {
    if (rng.Bernoulli(profile.kb_coverage)) corpus.known_pairs.insert(p);
  }

  const std::vector<std::string> indicative =
      MakePhrases("and_his_wife", profile.num_indicative_phrases);
  const std::vector<std::string> misleading =
      MakePhrases("and_his_sister", profile.num_misleading_phrases);
  const std::vector<std::string> neutral =
      MakePhrases("met_with", profile.num_neutral_phrases);
  // Ambiguous phrases appear with BOTH true and negative pairs ("member
  // of"-style): they acquire mildly positive learned weights and repeat, so
  // linear g(n) lets their votes saturate entity-level facts while ratio /
  // logical stay robust (Example 2.5).
  const std::vector<std::string> ambiguous = MakePhrases("together_with", 4);
  std::vector<std::pair<int64_t, int64_t>> true_list(corpus.true_pairs.begin(),
                                                     corpus.true_pairs.end());
  std::vector<std::pair<int64_t, int64_t>> neg_list(corpus.negative_pairs.begin(),
                                                    corpus.negative_pairs.end());

  int64_t sent_id = 0;
  for (size_t d = 0; d < profile.num_documents; ++d) {
    for (size_t s = 0; s < profile.sentences_per_doc; ++s) {
      SentenceRecord rec;
      rec.doc_id = static_cast<int64_t>(d);
      rec.sent_id = sent_id++;

      // Pick the entity pair.
      const double r = rng.Uniform();
      if (r < profile.true_pair_rate && !true_list.empty()) {
        const auto& p = true_list[rng.UniformInt(true_list.size())];
        rec.entity1 = p.first;
        rec.entity2 = p.second;
        rec.expresses_relation = true;
      } else if (r < profile.true_pair_rate + 0.2 && !neg_list.empty()) {
        const auto& p = neg_list[rng.UniformInt(neg_list.size())];
        rec.entity1 = p.first;
        rec.entity2 = p.second;
      } else {
        rec.entity1 = static_cast<int64_t>(rng.UniformInt(profile.num_entities));
        do {
          rec.entity2 = static_cast<int64_t>(rng.UniformInt(profile.num_entities));
        } while (rec.entity2 == rec.entity1);
        rec.expresses_relation =
            corpus.true_pairs.count(OrderedPair(rec.entity1, rec.entity2)) > 0;
      }

      // Pick the inter-mention phrase.
      const bool noisy = rng.Bernoulli(profile.phrase_noise);
      std::string phrase;
      if (rng.Bernoulli(0.35)) {
        // Ambiguous context, regardless of the pair's truth.
        phrase = ambiguous[rng.UniformInt(ambiguous.size())];
      } else if (rec.expresses_relation != noisy) {
        // Clean true pair or noisy false pair: indicative w.p. strength.
        phrase = rng.Bernoulli(profile.phrase_strength)
                     ? indicative[rng.UniformInt(indicative.size())]
                     : neutral[rng.UniformInt(neutral.size())];
      } else {
        // Clean false pair or noisy true pair: misleading or neutral.
        phrase = rng.Bernoulli(0.4) ? misleading[rng.UniformInt(misleading.size())]
                                    : neutral[rng.UniformInt(neutral.size())];
      }

      rec.content = StrFormat("PERSON_%lld %s PERSON_%lld .",
                              static_cast<long long>(rec.entity1), phrase.c_str(),
                              static_cast<long long>(rec.entity2));
      corpus.sentences.push_back(std::move(rec));
    }
  }
  return corpus;
}

}  // namespace deepdive::kbc
