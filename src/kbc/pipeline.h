#ifndef DEEPDIVE_KBC_PIPELINE_H_
#define DEEPDIVE_KBC_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/deepdive.h"
#include "kbc/candidates.h"
#include "kbc/corpus.h"
#include "kbc/error_analysis.h"
#include "kbc/features.h"
#include "kbc/metrics.h"
#include "kbc/supervision.h"

namespace deepdive::kbc {

struct PipelineOptions {
  core::DeepDiveConfig config;
  /// Semantics used by the entity-level aggregation factor (Figure 10(b)
  /// compares linear / logical / ratio — the voting of Example 2.5).
  dsl::Semantics semantics = dsl::Semantics::kRatio;
  /// Include the entity-level SpouseKB layer. It densifies the graph into
  /// one connected component (entities shared across sentences); disable it
  /// to study per-sentence decomposition (Figure 14).
  bool entity_layer = true;
  uint64_t seed = 5;
};

/// An end-to-end KBC system in the shape of Figure 1 / Example 2.2: a
/// spouse-like binary relation extracted from a synthetic corpus. The system
/// starts with only candidate generation and a prior, and grows through the
/// six rule updates of Figure 8:
///   A1  analysis (recompute marginals)         FE1 shallow phrase features
///   FE2 deeper (direction-aware) features      I1  symmetry inference rule
///   S1  distant-supervision positives          S2  negative examples
///
/// Threading: the pipeline inherits DeepDive's contract. Build / Initialize /
/// ApplyUpdate / AnalyzeErrors / deepdive() run on the serving thread
/// (REQUIRES(serving_thread)); the evaluation helpers read only pinned
/// ResultViews via Query() and are callable from any thread.
class KbcPipeline {
 public:
  static StatusOr<std::unique_ptr<KbcPipeline>> Build(const SystemProfile& profile,
                                                      const PipelineOptions& options)
      REQUIRES(serving_thread);

  /// Loads corpus-derived base data and initializes the DeepDive engine
  /// (views, grounding, materialization in incremental mode).
  Status Initialize() REQUIRES(serving_thread);

  /// The canonical update sequence (Figure 8 / Figure 9 rows).
  static std::vector<std::string> UpdateSequence();

  /// Applies one update by label ("A1", "FE1", "FE2", "I1", "S1", "S2").
  StatusOr<incremental::UpdateReport> ApplyUpdate(const std::string& label)
      REQUIRES(serving_thread);

  /// Mention-level quality: a candidate pair is correct iff its sentence
  /// genuinely expresses the relation. Reads a pinned view; any thread.
  PrecisionRecall EvaluateMentions(double threshold) const;

  /// Fact-level quality: entity pairs (via gold mentions) vs gold relation,
  /// restricted to extractable pairs (those co-occurring in some sentence).
  PrecisionRecall EvaluateFacts(double threshold) const;

  /// Marginal vector aligned with query-variable ids, for agreement stats.
  std::vector<double> QueryMarginals() const;

  /// The error-analysis phase (Section 2.2): confident mistakes, misses,
  /// and per-feature precision/weight statistics, capped at `top_k` cases.
  /// Reads the ground graph's learned weights, so serving thread only.
  ErrorAnalysis AnalyzeErrors(double threshold, size_t top_k = 10) const
      REQUIRES(serving_thread);

  core::DeepDive& deepdive() REQUIRES(serving_thread) { return *dd_; }
  const Corpus& corpus() const { return corpus_; }
  const PipelineOptions& options() const { return options_; }

  /// Name of the query relation ("HasSpouse").
  static const char* QueryRelation();

 private:
  KbcPipeline(Corpus corpus, PipelineOptions options);

  /// Truth of a mention pair: does its sentence express the relation?
  bool MentionPairTruth(const Tuple& tuple) const;

  Corpus corpus_;
  PipelineOptions options_;
  CandidateRows candidates_;
  FeatureRows features_;
  KnowledgeBaseRows kb_;
  /// Set once in Build and immutable afterwards, so the *pointer* is safe to
  /// read from any thread (the evaluation helpers do, for Query()); the
  /// pointee's serving surface is protected by its own annotations.
  std::unique_ptr<core::DeepDive> dd_;
};

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_PIPELINE_H_
