#include "kbc/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace deepdive::kbc {

PrecisionRecall ComputePrecisionRecall(const std::vector<bool>& predicted,
                                       const std::vector<bool>& actual) {
  DD_CHECK_EQ(predicted.size(), actual.size());
  PrecisionRecall pr;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && actual[i]) ++pr.true_positives;
    if (predicted[i] && !actual[i]) ++pr.false_positives;
    if (!predicted[i] && actual[i]) ++pr.false_negatives;
  }
  const size_t denom_p = pr.true_positives + pr.false_positives;
  const size_t denom_r = pr.true_positives + pr.false_negatives;
  pr.precision = denom_p > 0 ? static_cast<double>(pr.true_positives) / denom_p : 0.0;
  pr.recall = denom_r > 0 ? static_cast<double>(pr.true_positives) / denom_r : 0.0;
  pr.f1 = (pr.precision + pr.recall) > 0
              ? 2.0 * pr.precision * pr.recall / (pr.precision + pr.recall)
              : 0.0;
  return pr;
}

std::vector<CalibrationBucket> CalibrationCurve(const std::vector<double>& probabilities,
                                                const std::vector<bool>& actual,
                                                size_t buckets) {
  DD_CHECK_EQ(probabilities.size(), actual.size());
  DD_CHECK_GT(buckets, 0u);
  std::vector<CalibrationBucket> out(buckets);
  std::vector<size_t> correct(buckets, 0);
  for (size_t b = 0; b < buckets; ++b) {
    out[b].lo = static_cast<double>(b) / buckets;
    out[b].hi = static_cast<double>(b + 1) / buckets;
  }
  for (size_t i = 0; i < probabilities.size(); ++i) {
    size_t b = static_cast<size_t>(probabilities[i] * buckets);
    if (b >= buckets) b = buckets - 1;
    ++out[b].count;
    out[b].mean_probability += probabilities[i];
    if (actual[i]) ++correct[b];
  }
  for (size_t b = 0; b < buckets; ++b) {
    if (out[b].count > 0) {
      out[b].mean_probability /= static_cast<double>(out[b].count);
      out[b].empirical_accuracy =
          static_cast<double>(correct[b]) / static_cast<double>(out[b].count);
    }
  }
  return out;
}

double MeanSymmetricKL(const std::vector<double>& p, const std::vector<double>& q) {
  DD_CHECK_EQ(p.size(), q.size());
  if (p.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double a = std::clamp(p[i], 1e-6, 1.0 - 1e-6);
    const double b = std::clamp(q[i], 1e-6, 1.0 - 1e-6);
    total += (a - b) * (std::log(a / b) + std::log((1.0 - b) / (1.0 - a)));
  }
  return total / static_cast<double>(p.size());
}

double FractionDiffering(const std::vector<double>& p, const std::vector<double>& q,
                         double tolerance) {
  DD_CHECK_EQ(p.size(), q.size());
  if (p.empty()) return 0.0;
  size_t differing = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (std::abs(p[i] - q[i]) > tolerance) ++differing;
  }
  return static_cast<double>(differing) / static_cast<double>(p.size());
}

double HighConfidenceAgreement(const std::vector<double>& p, const std::vector<double>& q,
                               double threshold) {
  DD_CHECK_EQ(p.size(), q.size());
  size_t high = 0, agree = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] >= threshold) {
      ++high;
      if (q[i] >= threshold) ++agree;
    }
  }
  return high > 0 ? static_cast<double>(agree) / static_cast<double>(high) : 1.0;
}

}  // namespace deepdive::kbc
