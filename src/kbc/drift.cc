#include "kbc/drift.h"

#include <cmath>

#include "inference/gibbs.h"
#include "inference/world.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace deepdive::kbc {

using factor::VarId;

std::vector<DriftDocument> GenerateDriftStream(const DriftOptions& options) {
  Rng rng(options.seed);
  // Token polarity: +1 tokens appear in spam, -1 in ham; 0 neutral.
  std::vector<int> polarity(options.vocab_size, 0);
  for (size_t t = 0; t < options.vocab_size; ++t) {
    const double r = rng.Uniform();
    polarity[t] = r < 0.4 ? +1 : (r < 0.8 ? -1 : 0);
  }
  std::vector<int> polarity2(options.new_vocab_size, 0);
  for (size_t t = 0; t < options.new_vocab_size; ++t) {
    const double r = rng.Uniform();
    polarity2[t] = r < 0.4 ? +1 : (r < 0.8 ? -1 : 0);
  }
  const size_t new_vocab_from = static_cast<size_t>(
      options.new_vocab_at * static_cast<double>(options.num_docs));

  std::vector<DriftDocument> docs;
  docs.reserve(options.num_docs);
  const size_t drift_at =
      static_cast<size_t>(options.drift_point * static_cast<double>(options.num_docs));
  for (size_t d = 0; d < options.num_docs; ++d) {
    if (d == drift_at) {
      // Concept drift: part of the vocabulary flips polarity.
      for (size_t t = 0; t < options.vocab_size; ++t) {
        if (rng.Bernoulli(options.drifting_fraction)) polarity[t] = -polarity[t];
      }
    }
    DriftDocument doc;
    doc.doc_id = static_cast<int64_t>(d);
    doc.spam = rng.Bernoulli(0.5);
    const int want = doc.spam ? +1 : -1;
    for (size_t k = 0; k < options.tokens_per_doc; ++k) {
      // Later documents draw half their tokens from the second vocabulary.
      const bool use_new = d >= new_vocab_from && rng.Bernoulli(0.5);
      const std::vector<int>& pol = use_new ? polarity2 : polarity;
      const size_t vocab = use_new ? options.new_vocab_size : options.vocab_size;
      const char* stem = use_new ? "ntok_%zu" : "tok_%zu";
      // Mostly on-polarity tokens, occasional noise.
      for (int attempt = 0; attempt < 40; ++attempt) {
        const size_t t = rng.UniformInt(vocab);
        const bool match = pol[t] == want || pol[t] == 0;
        if (match || rng.Bernoulli(0.05)) {
          doc.tokens.push_back(StrFormat(stem, t));
          break;
        }
      }
    }
    if (rng.Bernoulli(options.label_noise)) doc.spam = !doc.spam;
    docs.push_back(std::move(doc));
  }
  return docs;
}

DriftModel BuildDriftModel(const std::vector<DriftDocument>& docs, double train_frac) {
  DriftModel model;
  model.doc_vars.reserve(docs.size());
  for (const DriftDocument& doc : docs) {
    const VarId v = model.graph.AddVariable();
    model.doc_vars.push_back(v);
    model.labels.push_back(doc.spam);
    for (const std::string& tok : doc.tokens) {
      const factor::WeightId w = model.graph.GetOrCreateTiedWeight("tok/" + tok);
      // Classifier rule Class(x) :- R(x, f) with weight w(f): an empty-body
      // clause contributes w * sign(x) per token occurrence.
      model.graph.AddSimpleFactor(v, {}, w, factor::Semantics::kLinear);
    }
  }
  ExtendTraining(&model, train_frac);
  return model;
}

void ExtendTraining(DriftModel* model, double train_frac) {
  const size_t train =
      static_cast<size_t>(train_frac * static_cast<double>(model->doc_vars.size()));
  for (size_t d = 0; d < train; ++d) {
    model->graph.SetEvidence(model->doc_vars[d], model->labels[d]);
  }
  model->train_count = train;
}

double TestLoss(const DriftModel& model) {
  inference::World world(&model.graph);
  inference::GibbsSampler sampler(&model.graph);
  inference::GibbsScratch scratch;
  double loss = 0.0;
  size_t count = 0;
  for (size_t d = model.train_count; d < model.doc_vars.size(); ++d) {
    const double log_odds = sampler.ConditionalLogOdds(world, model.doc_vars[d], &scratch);
    const double z = model.labels[d] ? log_odds : -log_odds;
    loss += z > 0 ? std::log1p(std::exp(-z)) : -z + std::log1p(std::exp(z));
    ++count;
  }
  return count > 0 ? loss / static_cast<double>(count) : 0.0;
}

}  // namespace deepdive::kbc
