#ifndef DEEPDIVE_KBC_DRIFT_H_
#define DEEPDIVE_KBC_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "factor/factor_graph.h"
#include "util/status.h"

namespace deepdive::kbc {

/// A chronological spam-like document stream whose token-label association
/// flips for part of the vocabulary at `drift_point` — the stand-in for the
/// email corpus of Appendix B.4 [63].
struct DriftOptions {
  size_t num_docs = 400;
  size_t tokens_per_doc = 6;
  size_t vocab_size = 40;
  /// Fraction of the vocabulary whose polarity flips at the drift point.
  double drifting_fraction = 0.4;
  /// Position in the stream (0..1) where the distribution changes.
  double drift_point = 0.35;
  double label_noise = 0.05;
  /// Position (0..1) after which documents also draw from a *second*
  /// vocabulary — new features arriving mid-stream, the F2-style update of
  /// Appendix B.3's learning experiment. 1.0 disables.
  double new_vocab_at = 1.0;
  size_t new_vocab_size = 40;
  uint64_t seed = 77;
};

struct DriftDocument {
  int64_t doc_id = 0;
  std::vector<std::string> tokens;
  bool spam = false;
};

std::vector<DriftDocument> GenerateDriftStream(const DriftOptions& options);

/// A logistic-regression-style classifier graph (Example 2.6): one query
/// variable per document, one tied weight per token. Labels are applied as
/// evidence for documents in [0, train_frac); the rest are the test split.
struct DriftModel {
  factor::FactorGraph graph;
  std::vector<factor::VarId> doc_vars;   // doc i -> variable
  std::vector<bool> labels;              // gold labels, all docs
  size_t train_count = 0;
};

DriftModel BuildDriftModel(const std::vector<DriftDocument>& docs, double train_frac);

/// Extends the evidence of an existing model to a larger training prefix
/// (the incremental arrival of labeled data).
void ExtendTraining(DriftModel* model, double train_frac);

/// Mean logistic loss of the current weights on the test split
/// (documents >= train_count).
double TestLoss(const DriftModel& model);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_DRIFT_H_
