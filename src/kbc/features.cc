#include "kbc/features.h"

#include "kbc/candidates.h"
#include "kbc/nlp.h"

namespace deepdive::kbc {

FeatureRows ExtractFeatures(const Corpus& corpus) {
  FeatureRows rows;
  for (const SentenceRecord& sent : corpus.sentences) {
    const auto tokens = TokenizeSentence(sent.content);
    const auto mentions = ExtractPersonMentions(tokens);
    for (size_t i = 0; i < mentions.size(); ++i) {
      for (size_t j = 0; j < mentions.size(); ++j) {
        if (i == j) continue;
        const int64_t m1 =
            sent.sent_id * kMentionStride + static_cast<int64_t>(mentions[i].token_index);
        const int64_t m2 =
            sent.sent_id * kMentionStride + static_cast<int64_t>(mentions[j].token_index);
        const std::string phrase =
            PhraseBetween(tokens, mentions[i].token_index, mentions[j].token_index);
        if (phrase.empty()) continue;
        rows.shallow.push_back(
            {Value(sent.sent_id), Value(m1), Value(m2), Value(phrase)});
        // "Deeper NLP feature": the phrase plus mention order — a cheap
        // stand-in for a dependency path, which distinguishes subject/object
        // direction the shallow feature conflates.
        const std::string deep =
            (mentions[i].token_index < mentions[j].token_index ? "fwd:" : "rev:") +
            phrase;
        rows.deep.push_back({Value(sent.sent_id), Value(m1), Value(m2), Value(deep)});
      }
    }
  }
  return rows;
}

}  // namespace deepdive::kbc
