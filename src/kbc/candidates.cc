#include "kbc/candidates.h"

#include "kbc/nlp.h"
#include "util/random.h"

namespace deepdive::kbc {

CandidateRows GenerateCandidates(const Corpus& corpus, uint64_t seed) {
  CandidateRows rows;
  Rng rng(seed);
  for (const SentenceRecord& sent : corpus.sentences) {
    rows.sentences.push_back(
        {Value(sent.doc_id), Value(sent.sent_id), Value(sent.content)});
    const auto tokens = TokenizeSentence(sent.content);
    for (const MentionSpan& span : ExtractPersonMentions(tokens)) {
      const int64_t mention_id =
          sent.sent_id * kMentionStride + static_cast<int64_t>(span.token_index);
      rows.person_candidates.push_back({Value(sent.sent_id), Value(mention_id)});
      int64_t entity = span.surface_entity;
      if (!rng.Bernoulli(corpus.profile.el_accuracy)) {
        entity = static_cast<int64_t>(rng.UniformInt(corpus.profile.num_entities));
      }
      rows.entity_links.push_back({Value(mention_id), Value(entity)});
    }
  }
  return rows;
}

}  // namespace deepdive::kbc
