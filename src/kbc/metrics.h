#ifndef DEEPDIVE_KBC_METRICS_H_
#define DEEPDIVE_KBC_METRICS_H_

#include <cstddef>
#include <vector>

namespace deepdive::kbc {

struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
};

/// Computes precision/recall/F1 from per-item (predicted, actual) pairs.
PrecisionRecall ComputePrecisionRecall(const std::vector<bool>& predicted,
                                       const std::vector<bool>& actual);

/// Calibration curve (Section 1: "if one examined all facts with probability
/// 0.9, approximately 90% would be correct"): per probability bucket, the
/// empirical accuracy.
struct CalibrationBucket {
  double lo = 0.0;
  double hi = 0.0;
  size_t count = 0;
  double mean_probability = 0.0;
  double empirical_accuracy = 0.0;
};

std::vector<CalibrationBucket> CalibrationCurve(const std::vector<double>& probabilities,
                                                const std::vector<bool>& actual,
                                                size_t buckets = 10);

/// Mean symmetric KL divergence between two Bernoulli marginal vectors
/// (clamped away from 0/1). Used by the λ search and the quality-parity
/// checks of Section 4.2.
double MeanSymmetricKL(const std::vector<double>& p, const std::vector<double>& q);

/// Fraction of entries whose |p - q| exceeds `tolerance` (the "fewer than 4%
/// of facts differ by more than 0.05" statistic).
double FractionDiffering(const std::vector<double>& p, const std::vector<double>& q,
                         double tolerance);

/// Of the items with p >= threshold, the fraction whose q is also >=
/// threshold ("99% of high-confidence facts also appear", Section 4.2).
double HighConfidenceAgreement(const std::vector<double>& p,
                               const std::vector<double>& q, double threshold);

}  // namespace deepdive::kbc

#endif  // DEEPDIVE_KBC_METRICS_H_
