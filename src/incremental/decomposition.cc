#include "incremental/decomposition.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace deepdive::incremental {

using factor::FactorGraph;
using factor::VarId;

namespace {

/// Union of two sorted unique vectors.
std::vector<VarId> SortedUnion(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  std::vector<VarId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<DecompositionGroup> DecomposeWithInactive(const FactorGraph& graph,
                                                      const std::vector<bool>& is_active) {
  const size_t n = graph.NumVariables();
  DD_CHECK_EQ(is_active.size(), n);

  // Line 1: connected components among inactive variables (edges through
  // active variables do not connect).
  std::vector<int> component(n, -1);
  int num_components = 0;
  std::vector<VarId> stack;
  for (VarId start = 0; start < n; ++start) {
    if (is_active[start] || component[start] >= 0) continue;
    const int c = num_components++;
    component[start] = c;
    stack.push_back(start);
    while (!stack.empty()) {
      const VarId v = stack.back();
      stack.pop_back();
      for (VarId u : graph.Neighbors(v)) {
        if (is_active[u] || component[u] >= 0) continue;
        component[u] = c;
        stack.push_back(u);
      }
    }
  }

  // Line 2: per-component inactive sets and minimal active boundaries.
  std::vector<DecompositionGroup> groups(num_components);
  for (VarId v = 0; v < n; ++v) {
    if (component[v] >= 0) groups[component[v]].inactive.push_back(v);
  }
  for (DecompositionGroup& g : groups) {
    std::set<VarId> boundary;
    for (VarId v : g.inactive) {
      for (VarId u : graph.Neighbors(v)) {
        if (is_active[u]) boundary.insert(u);
      }
    }
    g.active.assign(boundary.begin(), boundary.end());
  }

  // Lines 4-6: greedily merge pairs whose active sets nest, i.e.
  // |A_j ∪ A_k| == max(|A_j|, |A_k|). Repeat until no pair merges.
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t j = 0; j < groups.size() && !merged; ++j) {
      for (size_t k = j + 1; k < groups.size() && !merged; ++k) {
        const std::vector<VarId> u = SortedUnion(groups[j].active, groups[k].active);
        // Merge only when boundaries nest *and* sharing is real — merging
        // groups with no active boundary would fuse independent components
        // for no materialization saving.
        if (u.empty()) continue;
        if (u.size() == std::max(groups[j].active.size(), groups[k].active.size())) {
          groups[j].inactive.insert(groups[j].inactive.end(), groups[k].inactive.begin(),
                                    groups[k].inactive.end());
          std::sort(groups[j].inactive.begin(), groups[j].inactive.end());
          groups[j].active = u;
          groups.erase(groups.begin() + static_cast<ptrdiff_t>(k));
          merged = true;
        }
      }
    }
  }
  return groups;
}

std::vector<std::vector<VarId>> ConnectedComponents(const FactorGraph& graph) {
  const size_t n = graph.NumVariables();
  std::vector<int> component(n, -1);
  int num_components = 0;
  std::vector<VarId> stack;
  for (VarId start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    const int c = num_components++;
    component[start] = c;
    stack.push_back(start);
    while (!stack.empty()) {
      const VarId v = stack.back();
      stack.pop_back();
      for (VarId u : graph.Neighbors(v)) {
        if (component[u] >= 0) continue;
        component[u] = c;
        stack.push_back(u);
      }
    }
  }
  std::vector<std::vector<VarId>> out(num_components);
  for (VarId v = 0; v < n; ++v) out[component[v]].push_back(v);
  return out;
}

}  // namespace deepdive::incremental
