#include "incremental/engine.h"

#include <algorithm>
#include <limits>

#include "incremental/decomposition.h"
#include "inference/parallel_gibbs.h"
#include "inference/world.h"
#include "util/thread_pool.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace deepdive::incremental {

using factor::GraphDelta;
using factor::GroupId;
using factor::VarId;

IncrementalEngine::IncrementalEngine(factor::FactorGraph* graph) : graph_(graph) {}

Status IncrementalEngine::Materialize(const MaterializationOptions& options) {
  Timer timer;
  store_.Clear();
  cumulative_ = GraphDelta{};

  // Sampling materialization: draw as many samples as the budget allows.
  // The chain runs through the parallel sampler — num_threads == 1 keeps the
  // historical sequential chain bit-for-bit; more threads Hogwild the sweeps.
  inference::GibbsOptions gopts;
  gopts.burn_in_sweeps = options.gibbs_burn_in;
  gopts.seed = options.seed;
  gopts.num_threads = options.num_threads;
  inference::ParallelGibbsSampler sampler(graph_, options.num_threads);
  sampler.SampleChain(gopts, options.num_samples, options.gibbs_thin,
                      [&](const BitVector& bits) {
                        store_.Add(bits);
                        return !(options.time_budget_seconds > 0 &&
                                 timer.Seconds() > options.time_budget_seconds);
                      });

  // Materialized marginals: sample averages.
  marginals_.assign(graph_->NumVariables(), 0.5);
  if (!store_.empty()) {
    std::vector<double> sums(graph_->NumVariables(), 0.0);
    for (size_t s = 0; s < store_.size(); ++s) {
      const BitVector& bits = store_.sample(s);
      for (VarId v = 0; v < graph_->NumVariables(); ++v) {
        sums[v] += bits.Get(v) ? 1.0 : 0.0;
      }
    }
    for (VarId v = 0; v < graph_->NumVariables(); ++v) {
      marginals_[v] = sums[v] / static_cast<double>(store_.size());
    }
  }
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) marginals_[v] = *ev ? 1.0 : 0.0;
  }
  materialized_marginals_ = marginals_;

  // Variational materialization.
  VariationalOptions vopts = options.variational;
  vopts.seed = options.seed + 101;
  auto vmat = VariationalMaterialization::Materialize(*graph_, vopts);
  if (vmat.ok()) {
    variational_ = std::move(vmat).value();
  } else {
    variational_.reset();
    DD_LOG(Warning) << "variational materialization failed: "
                    << vmat.status().ToString();
  }

  // Optional strawman (tiny graphs only).
  strawman_.reset();
  mat_stats_.strawman_built = false;
  if (options.materialize_strawman) {
    auto sm = StrawmanMaterialization::Materialize(*graph_);
    if (sm.ok()) {
      strawman_ = std::move(sm).value();
      mat_stats_.strawman_built = true;
    }
  }

  mat_stats_.samples_collected = store_.size();
  mat_stats_.sample_bytes = store_.ByteSize();
  mat_stats_.variational_edges = variational_ ? variational_->NumEdges() : 0;
  mat_stats_.seconds = timer.Seconds();
  return Status::OK();
}

std::vector<bool> IncrementalEngine::TouchedVars(const GraphDelta& delta) const {
  std::vector<bool> touched(graph_->NumVariables(), false);
  auto touch_group = [&](GroupId g) {
    const factor::FactorGroup& group = graph_->group(g);
    touched[group.head] = true;
    for (factor::ClauseId cid : group.clauses) {
      for (const factor::Literal& lit : graph_->clause(cid).literals) {
        touched[lit.var] = true;
      }
    }
  };
  for (GroupId g : delta.new_groups) touch_group(g);
  for (GroupId g : delta.removed_groups) touch_group(g);
  for (const GraphDelta::GroupMod& mod : delta.modified_groups) touch_group(mod.group);
  for (const GraphDelta::WeightChange& wc : delta.weight_changes) {
    for (GroupId g : graph_->GroupsForWeight(wc.weight)) touch_group(g);
  }
  for (const GraphDelta::EvidenceChange& ec : delta.evidence_changes) {
    touched[ec.var] = true;
  }
  for (VarId v : delta.new_variables) touched[v] = true;
  return touched;
}

std::vector<VarId> IncrementalEngine::AffectedVars(const GraphDelta& delta,
                                                   bool decomposition_enabled) const {
  std::vector<VarId> out;
  if (!decomposition_enabled) {
    out.resize(graph_->NumVariables());
    for (VarId v = 0; v < graph_->NumVariables(); ++v) out[v] = v;
    return out;
  }
  const std::vector<bool> touched = TouchedVars(delta);
  // Expand to full components: a delta factor shifts the distribution of
  // everything connected to it; disconnected components are untouched.
  const auto components = ConnectedComponents(*graph_);
  for (const auto& comp : components) {
    bool hit = false;
    for (VarId v : comp) {
      if (touched[v]) {
        hit = true;
        break;
      }
    }
    if (hit) out.insert(out.end(), comp.begin(), comp.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<UpdateOutcome> IncrementalEngine::ApplyDelta(const GraphDelta& delta,
                                                      const EngineOptions& options) {
  Timer timer;
  cumulative_.Merge(delta);
  ++update_seq_;
  marginals_.resize(graph_->NumVariables(), 0.5);

  if (cumulative_.empty() && (!options.forced_strategy.has_value() ||
                              *options.forced_strategy == Strategy::kSampling)) {
    // Analysis-only workload (rule A1): the distribution equals the
    // materialized one, so its marginals are the exact answer — the 100%-
    // acceptance case where the sampling approach needs no computation.
    UpdateOutcome outcome;
    outcome.marginals = materialized_marginals_;
    outcome.marginals.resize(graph_->NumVariables(), 0.5);
    outcome.strategy = Strategy::kSampling;
    outcome.reason = "no change; materialized marginals";
    outcome.acceptance_rate = 1.0;
    marginals_ = outcome.marginals;
    outcome.seconds = timer.Seconds();
    return outcome;
  }

  const std::vector<VarId> affected =
      AffectedVars(cumulative_, options.decomposition_enabled);

  OptimizerDecision decision;
  if (options.forced_strategy.has_value()) {
    decision.strategy = *options.forced_strategy;
    decision.reason = "forced";
  } else {
    RuleBasedOptimizer optimizer(options.optimizer);
    decision = optimizer.Choose(*graph_, delta, !store_.exhausted());
    if (decision.strategy == Strategy::kVariational && !variational_.has_value()) {
      decision.strategy = Strategy::kRerun;
      decision.reason += " (no variational materialization)";
    }
  }

  UpdateOutcome outcome;
  if (!options.forced_strategy.has_value() && options.per_group_strategy &&
      options.decomposition_enabled && decision.strategy != Strategy::kRerun) {
    DD_ASSIGN_OR_RETURN(outcome, RunPerGroup(options, affected));
    outcome.affected_vars = affected.size();
    marginals_ = outcome.marginals;
    outcome.seconds = timer.Seconds();
    return outcome;
  }
  switch (decision.strategy) {
    case Strategy::kSampling: {
      DD_ASSIGN_OR_RETURN(outcome, RunSampling(options, affected));
      break;
    }
    case Strategy::kVariational:
      outcome = RunVariational(options, affected);
      break;
    case Strategy::kStrawman: {
      if (!strawman_.has_value()) {
        return Status::FailedPrecondition("strawman was not materialized");
      }
      auto marginals = strawman_->InferUpdated(*graph_, cumulative_);
      if (!marginals.ok()) return marginals.status();
      outcome.marginals = std::move(marginals).value();
      break;
    }
    case Strategy::kRerun:
      outcome = RunRerun(options);
      break;
  }
  outcome.strategy = decision.strategy;
  if (outcome.reason.empty()) outcome.reason = decision.reason;
  outcome.affected_vars = affected.size();

  // Fold into the engine's marginal state.
  marginals_ = outcome.marginals;
  outcome.seconds = timer.Seconds();
  return outcome;
}

StatusOr<UpdateOutcome> IncrementalEngine::RunPerGroup(
    const EngineOptions& options, const std::vector<VarId>& affected) {
  // Classify each affected component by what the cumulative delta does to
  // it: evidence-modified components go variational (rule 2), the rest ride
  // the sampling chain (rules 1/3) while samples last.
  std::vector<bool> is_affected(graph_->NumVariables(), false);
  for (VarId v : affected) is_affected[v] = true;
  // Per-variable classification signals: evidence modified (rule 2) and
  // fixed-weight structural changes such as inference rules, whose many
  // correlated factors collapse MH acceptance (see RuleBasedOptimizer).
  std::vector<bool> wants_variational(graph_->NumVariables(), false);
  for (const GraphDelta::EvidenceChange& ec : cumulative_.evidence_changes) {
    wants_variational[ec.var] = true;
  }
  auto mark_group = [&](GroupId gid) {
    const factor::FactorGroup& group = graph_->group(gid);
    if (graph_->weight(group.weight).learnable) return;  // new feature: sampling
    wants_variational[group.head] = true;
    for (factor::ClauseId cid : group.clauses) {
      for (const factor::Literal& lit : graph_->clause(cid).literals) {
        wants_variational[lit.var] = true;
      }
    }
  };
  for (GroupId gid : cumulative_.new_groups) mark_group(gid);
  for (GroupId gid : cumulative_.removed_groups) mark_group(gid);

  std::vector<VarId> sampling_vars, variational_vars;
  for (const auto& component : ConnectedComponents(*graph_)) {
    bool touched = false, variational = false;
    for (VarId v : component) {
      touched |= is_affected[v];
      variational |= wants_variational[v];
    }
    if (!touched) continue;
    auto& bucket = (variational && variational_.has_value() &&
                    options.optimizer.variational_enabled)
                       ? variational_vars
                       : sampling_vars;
    bucket.insert(bucket.end(), component.begin(), component.end());
  }
  if (!options.optimizer.sampling_enabled) {
    variational_vars.insert(variational_vars.end(), sampling_vars.begin(),
                            sampling_vars.end());
    sampling_vars.clear();
  }

  UpdateOutcome outcome;
  outcome.marginals = materialized_marginals_;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  outcome.sampling_vars = sampling_vars.size();
  outcome.variational_vars = variational_vars.size();

  if (!sampling_vars.empty()) {
    DD_ASSIGN_OR_RETURN(UpdateOutcome s, RunSampling(options, sampling_vars));
    for (VarId v : sampling_vars) outcome.marginals[v] = s.marginals[v];
    outcome.acceptance_rate = s.acceptance_rate;
    outcome.fell_back_to_variational = s.fell_back_to_variational;
    if (s.fell_back_to_variational) {
      outcome.sampling_vars = 0;
      outcome.variational_vars += sampling_vars.size();
    }
  }
  if (!variational_vars.empty()) {
    if (!variational_.has_value()) {
      UpdateOutcome r = RunRerun(options);
      for (VarId v : variational_vars) outcome.marginals[v] = r.marginals[v];
    } else {
      UpdateOutcome v_outcome = RunVariational(options, variational_vars);
      for (VarId v : variational_vars) outcome.marginals[v] = v_outcome.marginals[v];
    }
  }
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  outcome.strategy = outcome.variational_vars > outcome.sampling_vars
                         ? Strategy::kVariational
                         : Strategy::kSampling;
  outcome.reason =
      StrFormat("per-group: %zu vars sampling, %zu vars variational",
                outcome.sampling_vars, outcome.variational_vars);
  return outcome;
}

StatusOr<UpdateOutcome> IncrementalEngine::RunSampling(
    const EngineOptions& options, const std::vector<VarId>& affected) {
  UpdateOutcome outcome;
  IndependentMH mh(graph_, &cumulative_);
  MHOptions mh_options;
  // The paper's cost model: the chain consumes proposals until it has
  // gathered enough *effective* (accepted) samples — SI samples cost SI/rho
  // proposals — or until the store runs dry.
  mh_options.target_steps = std::numeric_limits<size_t>::max();  // store-bounded
  mh_options.target_accepted = options.mh_target_steps;
  mh_options.seed = 977 * (update_seq_ + 1);
  mh_options.track_vars = &affected;  // untouched components keep Pr(0) marginals
  mh_options.num_threads = options.gibbs.num_threads;  // proposal extension only
  DD_ASSIGN_OR_RETURN(MHResult result, mh.Run(&store_, mh_options));
  outcome.acceptance_rate = result.acceptance_rate;

  const bool too_few_steps =
      result.exhausted &&
      result.accepted < std::max<size_t>(2, options.mh_target_steps / 2);
  if (too_few_steps) {
    // Optimizer rule 4 at execution time: the store ran dry before the chain
    // gathered enough accepted moves.
    if (variational_.has_value() && options.optimizer.variational_enabled) {
      outcome = RunVariational(options, affected);
      outcome.fell_back_to_variational = true;
      outcome.acceptance_rate = result.acceptance_rate;
      outcome.reason = "samples exhausted; fell back to variational";
    } else {
      outcome = RunRerun(options);
      outcome.acceptance_rate = result.acceptance_rate;
      outcome.reason = "samples exhausted; no variational; rerunning";
    }
    return outcome;
  }

  // Refresh only affected variables; untouched components keep their
  // materialized marginals (exact, since the cumulative delta does not
  // reach them).
  outcome.marginals = materialized_marginals_;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  for (VarId v : affected) outcome.marginals[v] = result.marginals[v];
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  return outcome;
}

UpdateOutcome IncrementalEngine::RunVariational(const EngineOptions& options,
                                                const std::vector<VarId>& affected) {
  UpdateOutcome outcome;
  DD_CHECK(variational_.has_value());
  factor::FactorGraph inference_graph = BuildVariationalInferenceGraph(
      *graph_, variational_->approx_graph(), cumulative_);

  std::vector<VarId> sweep_vars;
  for (VarId v : affected) {
    if (!inference_graph.IsEvidence(v)) sweep_vars.push_back(v);
  }
  // Warm start from the current marginal estimates.
  auto warm_value = [&](VarId v) {
    const auto ev = inference_graph.EvidenceValue(v);
    return ev.has_value() ? *ev : (v < marginals_.size() && marginals_[v] > 0.5);
  };
  std::vector<double> sums(inference_graph.NumVariables(), 0.0);
  const size_t sample_sweeps = std::max<size_t>(1, options.gibbs.sample_sweeps);
  const size_t num_threads = options.gibbs.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : options.gibbs.num_threads;
  if (num_threads > 1) {
    // Hogwild over the (sparse) inference graph, confined to the affected
    // variables: the component decomposition shards across workers.
    inference::ParallelGibbsSampler sampler(&inference_graph, num_threads);
    inference::AtomicWorld world(&inference_graph);
    for (VarId v = 0; v < inference_graph.NumVariables(); ++v) {
      world.Flip(v, warm_value(v));
    }
    std::vector<Rng> rngs =
        sampler.MakeRngStreams(options.gibbs.seed + update_seq_);
    for (size_t i = 0; i < options.gibbs.burn_in_sweeps; ++i) {
      sampler.SweepVars(&world, &rngs, sweep_vars);
    }
    for (size_t i = 0; i < sample_sweeps; ++i) {
      sampler.SweepVars(&world, &rngs, sweep_vars);
      for (VarId v : sweep_vars) sums[v] += world.value(v) ? 1.0 : 0.0;
    }
  } else {
    inference::GibbsSampler sampler(&inference_graph);
    inference::World world(&inference_graph);
    Rng rng(options.gibbs.seed + update_seq_);
    for (VarId v = 0; v < inference_graph.NumVariables(); ++v) {
      world.Flip(v, warm_value(v));
    }
    world.RecomputeStats();
    for (size_t i = 0; i < options.gibbs.burn_in_sweeps; ++i) {
      sampler.SweepVars(&world, &rng, sweep_vars);
    }
    for (size_t i = 0; i < sample_sweeps; ++i) {
      sampler.SweepVars(&world, &rng, sweep_vars);
      for (VarId v : sweep_vars) sums[v] += world.value(v) ? 1.0 : 0.0;
    }
  }

  outcome.marginals = materialized_marginals_;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  for (VarId v : sweep_vars) {
    outcome.marginals[v] = sums[v] / static_cast<double>(sample_sweeps);
  }
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  return outcome;
}

UpdateOutcome IncrementalEngine::RunRerun(const EngineOptions& options) {
  UpdateOutcome outcome;
  inference::GibbsOptions gopts = options.rerun_gibbs;
  gopts.seed += update_seq_;
  inference::ParallelGibbsSampler sampler(graph_, gopts.num_threads);
  outcome.marginals = sampler.EstimateMarginals(gopts).marginals;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  outcome.reason = "rerun";
  return outcome;
}

}  // namespace deepdive::incremental
