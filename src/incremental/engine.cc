#include "incremental/engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "incremental/decomposition.h"
#include "inference/compiled_inference.h"
#include "inference/parallel_gibbs.h"
#include "inference/replicated_gibbs.h"
#include "inference/world.h"
#include "util/thread_pool.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace deepdive::incremental {

using factor::GraphDelta;
using factor::GroupId;
using factor::VarId;

IncrementalEngine::IncrementalEngine(factor::FactorGraph* graph)
    : graph_(graph), snapshot_(std::make_shared<MaterializationSnapshot>()) {
  // The constructing thread is the serving thread: it owns every
  // serving_thread-guarded member it is about to initialize, and the role
  // stays bound to it for the engine's lifetime (trusted root; see
  // util/thread_role.h).
  serving_thread.AssertHeld();
  // Publish the empty pre-materialization state so Query() is answerable
  // (epoch 1, generation 0) from any thread as soon as the engine exists.
  PublishView(nullptr);
}

IncrementalEngine::~IncrementalEngine() {
  // A background build may still be sampling its private graph copy; cancel
  // and drain it so it cannot touch the handoff slot after we are gone (the
  // background pool's destructor joins the worker).
  // ordering: relaxed — the builder only polls this flag; the mu_ critical
  // sections below and in the builder provide the actual synchronization.
  cancel_build_.store(true, std::memory_order_relaxed);
  MutexLock lock(mu_);
  while (build_in_flight_) build_done_cv_.Wait(mu_);
}

Status IncrementalEngine::Materialize(const MaterializationOptions& options) {
  AbortInFlightBuild();
  mat_options_ = options;
  mat_options_valid_ = true;
  DD_ASSIGN_OR_RETURN(std::shared_ptr<MaterializationSnapshot> snap,
                      BuildMaterializationSnapshot(*graph_, options));
  snap->rule_set_version = rule_set_version_;
  InstallSnapshot(std::move(snap));
  return Status::OK();
}

Status IncrementalEngine::MaterializeAsync(const MaterializationOptions& options) {
  {
    MutexLock lock(mu_);
    if (build_in_flight_ || pending_ != nullptr) {
      return Status::FailedPrecondition("a materialization is already in flight");
    }
    build_in_flight_ = true;
    pending_status_ = Status::OK();
  }
  MaterializationOptions opts = options;  // survives self-scheduled remats
  mat_options_ = opts;
  mat_options_valid_ = true;
  // ordering: relaxed — no build is running (we just claimed the in-flight
  // slot under mu_), so nothing can observe the flag concurrently; the
  // builder first sees it through the Submit/mu_ handoff.
  cancel_build_.store(false, std::memory_order_relaxed);
  since_build_ = GraphDelta{};
  since_build_updates_ = 0;
  // The build samples a private copy: the serving thread keeps mutating the
  // live graph with later updates while the chain runs, and those updates
  // accumulate in since_build_ for the post-swap rebase.
  auto graph_copy = std::make_shared<const factor::FactorGraph>(*graph_);
  if (!background_) {
    background_ = std::make_unique<ThreadPool>(1, /*inline_when_single=*/false);
  }
  // The build materializes the program as of this call: stamp the current
  // rule-set version so the install points can recognize (and discard) a
  // build obsoleted by a rule delta that landed while the chain ran.
  const uint64_t rule_version = rule_set_version_;
  background_->Submit([this, graph_copy, rule_version, opts = std::move(opts)] {
    auto built = BuildMaterializationSnapshot(*graph_copy, opts, &cancel_build_);
    if (built.ok()) (*built)->rule_set_version = rule_version;
    if (opts.on_before_publish) opts.on_before_publish();
    MutexLock lock(mu_);
    // ordering: relaxed — the flag is a best-effort cancellation hint; the
    // decisions below are serialized with the canceller through mu_ (it sets
    // the flag before taking mu_ to drain, so a post-lock read here is
    // never stale in a way that matters: a cancel set after this read still
    // discards `pending_` in AbortInFlightBuild's own critical section).
    if (built.ok()) {
      if (!cancel_build_.load(std::memory_order_relaxed)) {
        pending_ = std::move(built).value();
      }
    } else if (!cancel_build_.load(std::memory_order_relaxed)) {
      // Deliberate cancellation (abort/shutdown) is not a failure; only
      // organic build errors are recorded and reported.
      pending_status_ = built.status();
      DD_LOG(Warning) << "background materialization failed: "
                      << built.status().ToString();
    }
    build_in_flight_ = false;
    build_done_cv_.NotifyAll();
  });
  return Status::OK();
}

bool IncrementalEngine::MaterializationInFlight() const {
  MutexLock lock(mu_);
  return build_in_flight_ || pending_ != nullptr;
}

Status IncrementalEngine::WaitForMaterialization() {
  std::shared_ptr<MaterializationSnapshot> ready;
  Status status;
  {
    MutexLock lock(mu_);
    while (build_in_flight_) build_done_cv_.Wait(mu_);
    ready = std::move(pending_);
    status = pending_status_;
    pending_status_ = Status::OK();
  }
  if (ready != nullptr && DiscardIfStale(&ready)) {
    // The finished build predates a rule delta: installing it would
    // resurrect retracted factors. The remat triggers re-arm on the next
    // update (the in-flight slot is clear), which rebuilds at the current
    // rule-set version.
    return status;
  }
  if (ready != nullptr) InstallSnapshot(std::move(ready));
  return status;
}

bool IncrementalEngine::DiscardIfStale(
    std::shared_ptr<MaterializationSnapshot>* ready) {
  if ((*ready)->rule_set_version == rule_set_version_) return false;
  DD_LOG(Info) << "discarding materialization built at rule-set version "
               << (*ready)->rule_set_version << " (current "
               << rule_set_version_ << ")";
  ready->reset();
  return true;
}

void IncrementalEngine::AbortInFlightBuild() {
  // ordering: relaxed — the builder polls the flag between sweeps; the
  // drain below synchronizes with its exit through mu_ / the condvar.
  cancel_build_.store(true, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    while (build_in_flight_) build_done_cv_.Wait(mu_);
    pending_.reset();
    pending_status_ = Status::OK();
  }
  // ordering: relaxed — no build is in flight anymore (drained above), so
  // this reset is unobservable until the next Submit's mu_ handoff.
  cancel_build_.store(false, std::memory_order_relaxed);
  since_build_ = GraphDelta{};
  since_build_updates_ = 0;
}

void IncrementalEngine::InstallSnapshot(
    std::shared_ptr<MaterializationSnapshot> snapshot) {
  // Variables are append-only, so a snapshot can only cover a prefix of the
  // serving graph (built from a copy taken at or before this point).
  DD_CHECK_LE(snapshot->graph_width, graph_->NumVariables());
  // Install points filter stale builds (DiscardIfStale); this is the
  // last-line defense that the invariant held.
  DD_CHECK(snapshot->rule_set_version == rule_set_version_);
  snapshot_ = std::move(snapshot);
  snapshot_->generation = ++generation_;
  // Rebase: deltas that arrived while the build ran are not covered by the
  // new snapshot and must survive the swap; everything older is absorbed.
  cumulative_ = std::move(since_build_);
  since_build_ = GraphDelta{};
  updates_since_snapshot_ = since_build_updates_;
  since_build_updates_ = 0;
  if (cumulative_.empty()) {
    marginals_ = snapshot_->materialized_marginals;
    marginals_.resize(graph_->NumVariables(), 0.5);
  }
  // The install changed what the engine serves (new stats/generation, and
  // possibly new marginals): make it visible to concurrent Query() readers.
  PublishView(nullptr);
}

uint64_t IncrementalEngine::PublishView(const UpdateOutcome* outcome) {
  auto view = std::make_shared<incremental::ResultView>();
  view->marginals = marginals_;
  view->materialization = snapshot_->stats;
  view->snapshot_generation = snapshot_->generation;
  view->samples_remaining = snapshot_->store.remaining();
  // Pin (don't copy) the snapshot's Pr(0) marginals: the aliasing pointer
  // keeps the whole snapshot alive for readers across later swaps.
  view->materialized_marginals = std::shared_ptr<const std::vector<double>>(
      snapshot_, &snapshot_->materialized_marginals);
  if (outcome != nullptr) {
    // Engine views have no label/timings; surface the execution facts.
    view->report.strategy = outcome->fell_back_to_variational
                                ? Strategy::kVariational
                                : outcome->strategy;
    view->report.acceptance_rate = outcome->acceptance_rate;
    view->report.affected_vars = outcome->affected_vars;
    view->report.epoch = publisher_.next_epoch();
  }
  const uint64_t epoch = publisher_.Publish(std::move(view));
  serving_view_ = publisher_.Current();
  return epoch;
}

const std::vector<double>& IncrementalEngine::materialized_marginals() const {
  static const std::vector<double> kEmpty;
  const auto& pinned = serving_view_->materialized_marginals;
  return pinned ? *pinned : kEmpty;
}

bool IncrementalEngine::MaybeInstallPending() {
  std::shared_ptr<MaterializationSnapshot> ready;
  bool still_building = false;
  {
    MutexLock lock(mu_);
    ready = std::move(pending_);
    still_building = build_in_flight_;
  }
  if (ready != nullptr && !DiscardIfStale(&ready)) {
    InstallSnapshot(std::move(ready));
  }
  return still_building;
}

void IncrementalEngine::MaybeScheduleRemat(const UpdateOutcome& outcome) {
  if (!mat_options_valid_ || !mat_options_.async) return;
  {
    // No remat while one is in flight — and a *failed* build disarms the
    // triggers until WaitForMaterialization observes the error, so a
    // deterministically failing build cannot retry (and pay a full graph
    // copy) on every update, and the failure is never silently clobbered.
    MutexLock lock(mu_);
    if (build_in_flight_ || pending_ != nullptr || !pending_status_.ok()) return;
  }
  const char* trigger = nullptr;
  if (mat_options_.remat_on_exhaustion && !snapshot_->store.empty() &&
      snapshot_->store.exhausted()) {
    trigger = "sample store exhausted";
  } else if (mat_options_.remat_acceptance_floor > 0.0 &&
             outcome.acceptance_rate >= 0.0 &&
             outcome.acceptance_rate < mat_options_.remat_acceptance_floor) {
    trigger = "acceptance rate below floor";
  } else if (mat_options_.remat_after_updates > 0 &&
             updates_since_snapshot_ >= mat_options_.remat_after_updates &&
             !cumulative_.empty()) {
    // The count trigger only fires once something actually drifted: a pure
    // analysis stream (empty cumulative delta) would rebuild an identical
    // snapshot.
    trigger = "update count since snapshot";
  }
  if (trigger == nullptr) return;
  DD_LOG(Info) << "scheduling background rematerialization (" << trigger << ")";
  // A remat exists because the distribution drifted: it must re-sample the
  // current graph, never replay the persisted store the initial
  // materialization may have loaded (which covers the original Pr(0) and
  // may not even match the graph's width anymore) — and it must not
  // overwrite the store the user deliberately saved for overnight reuse
  // with drifted-graph samples.
  MaterializationOptions remat_options = mat_options_;
  remat_options.load_sample_store.clear();
  remat_options.save_sample_store.clear();
  remat_options.on_before_publish = nullptr;
  const Status status = MaterializeAsync(remat_options);
  if (!status.ok()) {
    DD_LOG(Warning) << "failed to schedule rematerialization: "
                    << status.ToString();
  }
}

std::vector<bool> IncrementalEngine::TouchedVars(const GraphDelta& delta) const {
  std::vector<bool> touched(graph_->NumVariables(), false);
  auto touch_group = [&](GroupId g) {
    const factor::FactorGroup& group = graph_->group(g);
    touched[group.head] = true;
    for (factor::ClauseId cid : group.clauses) {
      for (const factor::Literal& lit : graph_->clause(cid).literals) {
        touched[lit.var] = true;
      }
    }
  };
  for (GroupId g : delta.new_groups) touch_group(g);
  for (GroupId g : delta.removed_groups) touch_group(g);
  for (const GraphDelta::GroupMod& mod : delta.modified_groups) touch_group(mod.group);
  for (const GraphDelta::WeightChange& wc : delta.weight_changes) {
    for (GroupId g : graph_->GroupsForWeight(wc.weight)) touch_group(g);
  }
  for (const GraphDelta::EvidenceChange& ec : delta.evidence_changes) {
    touched[ec.var] = true;
  }
  for (VarId v : delta.new_variables) touched[v] = true;
  return touched;
}

const std::vector<std::vector<VarId>>& IncrementalEngine::Components() {
  if (!components_valid_ || components_width_ != graph_->NumVariables()) {
    components_cache_ = ConnectedComponents(*graph_);
    components_width_ = graph_->NumVariables();
    components_valid_ = true;
  }
  return components_cache_;
}

std::vector<VarId> IncrementalEngine::AffectedVars(const GraphDelta& delta,
                                                   bool decomposition_enabled) {
  std::vector<VarId> out;
  if (!decomposition_enabled) {
    out.resize(graph_->NumVariables());
    for (VarId v = 0; v < graph_->NumVariables(); ++v) out[v] = v;
    return out;
  }
  const std::vector<bool> touched = TouchedVars(delta);
  // Expand to full components: a delta factor shifts the distribution of
  // everything connected to it; disconnected components are untouched.
  for (const auto& comp : Components()) {
    bool hit = false;
    for (VarId v : comp) {
      if (touched[v]) {
        hit = true;
        break;
      }
    }
    if (hit) out.insert(out.end(), comp.begin(), comp.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<UpdateOutcome> IncrementalEngine::ApplyDelta(const GraphDelta& delta,
                                                      const EngineOptions& options) {
  Timer timer;
  // Swap in a finished background snapshot before serving; while a build is
  // still running we serve from the previous snapshot and record the delta
  // for the post-swap rebase.
  const bool mid_build = MaybeInstallPending();
  cumulative_.Merge(delta);
  if (mid_build) {
    since_build_.Merge(delta);
    ++since_build_updates_;
  }
  ++update_seq_;
  ++updates_since_snapshot_;
  if (delta.structure_changed()) components_valid_ = false;
  // The compiled kernel freezes structure, weights and evidence, so any
  // non-empty delta (weight updates from learning included) obsoletes it.
  if (!delta.empty()) compiled_kernel_.reset();
  marginals_.resize(graph_->NumVariables(), 0.5);

  StatusOr<UpdateOutcome> result = ExecuteUpdate(delta, options);
  if (!result.ok()) return result;
  result->snapshot_generation = snapshot_->generation;
  result->served_during_remat = mid_build;

  // Fold into the engine's marginal state and publish it for concurrent
  // Query() readers; the outcome records the epoch it published at.
  marginals_ = result->marginals;
  result->epoch = PublishView(&*result);
  // Scheduling a remat copies the graph on this thread; stamp the latency
  // after it so the update's reported cost includes that stall.
  MaybeScheduleRemat(*result);
  result->seconds = timer.Seconds();
  return result;
}

StatusOr<UpdateOutcome> IncrementalEngine::AddRule(const GraphDelta& delta,
                                                   const EngineOptions& options) {
  // Bump the program version *before* the entry bookkeeping: ApplyDelta may
  // install a finished background build, and the version check must already
  // see the new program so a pre-rule build is discarded, not installed.
  ++rule_set_version_;
  compiled_kernel_.reset();
  return ApplyDelta(delta, options);
}

StatusOr<UpdateOutcome> IncrementalEngine::RetractRule(
    const GraphDelta& delta, const EngineOptions& options,
    const std::vector<double>* restore_marginals) {
  ++rule_set_version_;
  compiled_kernel_.reset();
  if (restore_marginals == nullptr) return ApplyDelta(delta, options);
  // Exact restore: same entry bookkeeping as ApplyDelta, but the caller
  // proved (rule journal: no update intervened since the matching AddRule)
  // that the pre-add marginals are the exact posterior of the restored
  // graph, so inference is skipped and they are adopted verbatim.
  Timer timer;
  const bool mid_build = MaybeInstallPending();
  cumulative_.Merge(delta);
  if (mid_build) {
    since_build_.Merge(delta);
    ++since_build_updates_;
  }
  ++update_seq_;
  ++updates_since_snapshot_;
  if (delta.structure_changed()) components_valid_ = false;
  UpdateOutcome outcome;
  outcome.marginals = *restore_marginals;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  outcome.strategy = Strategy::kSampling;
  outcome.reason = "rule retracted; exact restore from journal";
  outcome.acceptance_rate = 1.0;
  outcome.affected_vars = 0;
  outcome.snapshot_generation = snapshot_->generation;
  outcome.served_during_remat = mid_build;
  marginals_ = outcome.marginals;
  outcome.epoch = PublishView(&outcome);
  MaybeScheduleRemat(outcome);
  outcome.seconds = timer.Seconds();
  return outcome;
}

const factor::CompiledGraph* IncrementalEngine::CompiledKernel() {
  if (compiled_kernel_ == nullptr) {
    compiled_kernel_ = std::make_unique<const factor::CompiledGraph>(
        factor::CompiledGraph::Compile(*graph_));
  }
  return compiled_kernel_.get();
}

StatusOr<UpdateOutcome> IncrementalEngine::ExecuteUpdate(
    const GraphDelta& delta, const EngineOptions& options) {
  if (cumulative_.empty() && snapshot_->generation > 0 &&
      (!options.forced_strategy.has_value() ||
       *options.forced_strategy == Strategy::kSampling)) {
    // Analysis-only workload (rule A1): the distribution equals the
    // materialized one, so its marginals are the exact answer — the 100%-
    // acceptance case where the sampling approach needs no computation.
    UpdateOutcome outcome;
    outcome.marginals = snapshot_->materialized_marginals;
    outcome.marginals.resize(graph_->NumVariables(), 0.5);
    outcome.strategy = Strategy::kSampling;
    outcome.reason = "no change; materialized marginals";
    outcome.acceptance_rate = 1.0;
    return outcome;
  }

  const std::vector<VarId> affected =
      AffectedVars(cumulative_, options.decomposition_enabled);

  OptimizerDecision decision;
  if (options.forced_strategy.has_value()) {
    decision.strategy = *options.forced_strategy;
    decision.reason = "forced";
  } else {
    RuleBasedOptimizer optimizer(options.optimizer);
    decision = optimizer.Choose(*graph_, delta, !snapshot_->store.exhausted());
    if (decision.strategy == Strategy::kVariational &&
        !snapshot_->variational.has_value()) {
      decision.strategy = Strategy::kRerun;
      decision.reason += " (no variational materialization)";
    }
  }

  UpdateOutcome outcome;
  if (!options.forced_strategy.has_value() && options.per_group_strategy &&
      options.decomposition_enabled && decision.strategy != Strategy::kRerun) {
    DD_ASSIGN_OR_RETURN(outcome, RunPerGroup(options, affected));
    outcome.affected_vars = affected.size();
    return outcome;
  }
  switch (decision.strategy) {
    case Strategy::kSampling: {
      DD_ASSIGN_OR_RETURN(outcome, RunSampling(options, affected));
      break;
    }
    case Strategy::kVariational:
      outcome = RunVariational(options, affected);
      break;
    case Strategy::kStrawman: {
      if (!snapshot_->strawman.has_value()) {
        return Status::FailedPrecondition("strawman was not materialized");
      }
      auto marginals = snapshot_->strawman->InferUpdated(*graph_, cumulative_);
      if (!marginals.ok()) return marginals.status();
      outcome.marginals = std::move(marginals).value();
      break;
    }
    case Strategy::kRerun:
      outcome = RunRerun(options);
      break;
  }
  outcome.strategy = decision.strategy;
  if (outcome.reason.empty()) outcome.reason = decision.reason;
  outcome.affected_vars = affected.size();
  return outcome;
}

StatusOr<UpdateOutcome> IncrementalEngine::RunPerGroup(
    const EngineOptions& options, const std::vector<VarId>& affected) {
  // Classify each affected component by what the cumulative delta does to
  // it: evidence-modified components go variational (rule 2), the rest ride
  // the sampling chain (rules 1/3) while samples last.
  std::vector<bool> is_affected(graph_->NumVariables(), false);
  for (VarId v : affected) is_affected[v] = true;
  // Per-variable classification signals: evidence modified (rule 2) and
  // fixed-weight structural changes such as inference rules, whose many
  // correlated factors collapse MH acceptance (see RuleBasedOptimizer).
  std::vector<bool> wants_variational(graph_->NumVariables(), false);
  for (const GraphDelta::EvidenceChange& ec : cumulative_.evidence_changes) {
    wants_variational[ec.var] = true;
  }
  auto mark_group = [&](GroupId gid) {
    const factor::FactorGroup& group = graph_->group(gid);
    if (graph_->weight(group.weight).learnable) return;  // new feature: sampling
    wants_variational[group.head] = true;
    for (factor::ClauseId cid : group.clauses) {
      for (const factor::Literal& lit : graph_->clause(cid).literals) {
        wants_variational[lit.var] = true;
      }
    }
  };
  for (GroupId gid : cumulative_.new_groups) mark_group(gid);
  for (GroupId gid : cumulative_.removed_groups) mark_group(gid);

  std::vector<VarId> sampling_vars, variational_vars;
  for (const auto& component : Components()) {
    bool touched = false, variational = false;
    for (VarId v : component) {
      touched |= is_affected[v];
      variational |= wants_variational[v];
    }
    if (!touched) continue;
    auto& bucket = (variational && snapshot_->variational.has_value() &&
                    options.optimizer.variational_enabled)
                       ? variational_vars
                       : sampling_vars;
    bucket.insert(bucket.end(), component.begin(), component.end());
  }
  if (!options.optimizer.sampling_enabled) {
    variational_vars.insert(variational_vars.end(), sampling_vars.begin(),
                            sampling_vars.end());
    sampling_vars.clear();
  }

  UpdateOutcome outcome;
  outcome.marginals = snapshot_->materialized_marginals;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  outcome.sampling_vars = sampling_vars.size();
  outcome.variational_vars = variational_vars.size();

  if (!sampling_vars.empty()) {
    DD_ASSIGN_OR_RETURN(UpdateOutcome s, RunSampling(options, sampling_vars));
    for (VarId v : sampling_vars) outcome.marginals[v] = s.marginals[v];
    outcome.acceptance_rate = s.acceptance_rate;
    outcome.fell_back_to_variational = s.fell_back_to_variational;
    if (s.fell_back_to_variational) {
      outcome.sampling_vars = 0;
      outcome.variational_vars += sampling_vars.size();
    }
  }
  if (!variational_vars.empty()) {
    if (!snapshot_->variational.has_value()) {
      UpdateOutcome r = RunRerun(options);
      for (VarId v : variational_vars) outcome.marginals[v] = r.marginals[v];
    } else {
      UpdateOutcome v_outcome = RunVariational(options, variational_vars);
      for (VarId v : variational_vars) outcome.marginals[v] = v_outcome.marginals[v];
    }
  }
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  outcome.strategy = outcome.variational_vars > outcome.sampling_vars
                         ? Strategy::kVariational
                         : Strategy::kSampling;
  outcome.reason =
      StrFormat("per-group: %zu vars sampling, %zu vars variational",
                outcome.sampling_vars, outcome.variational_vars);
  return outcome;
}

StatusOr<UpdateOutcome> IncrementalEngine::RunSampling(
    const EngineOptions& options, const std::vector<VarId>& affected) {
  UpdateOutcome outcome;
  IndependentMH mh(graph_, &cumulative_);
  MHOptions mh_options;
  // The paper's cost model: the chain consumes proposals until it has
  // gathered enough *effective* (accepted) samples — SI samples cost SI/rho
  // proposals — or until the store runs dry.
  mh_options.target_steps = std::numeric_limits<size_t>::max();  // store-bounded
  mh_options.target_accepted = options.mh_target_steps;
  mh_options.seed = Rng::MixSeed(options.gibbs.seed, update_seq_, /*substream=*/1);
  mh_options.track_vars = &affected;  // untouched components keep Pr(0) marginals
  mh_options.num_threads = options.gibbs.num_threads;  // proposal extension only
  DD_ASSIGN_OR_RETURN(MHResult result, mh.Run(&snapshot_->store, mh_options));
  outcome.acceptance_rate = result.acceptance_rate;

  const bool too_few_steps =
      result.exhausted &&
      result.accepted < std::max<size_t>(2, options.mh_target_steps / 2);
  if (too_few_steps) {
    // Optimizer rule 4 at execution time: the store ran dry before the chain
    // gathered enough accepted moves.
    if (snapshot_->variational.has_value() && options.optimizer.variational_enabled) {
      outcome = RunVariational(options, affected);
      outcome.fell_back_to_variational = true;
      outcome.acceptance_rate = result.acceptance_rate;
      outcome.reason = "samples exhausted; fell back to variational";
    } else {
      outcome = RunRerun(options);
      outcome.acceptance_rate = result.acceptance_rate;
      outcome.reason = "samples exhausted; no variational; rerunning";
    }
    return outcome;
  }

  // Refresh only affected variables; untouched components keep their
  // materialized marginals (exact, since the cumulative delta does not
  // reach them).
  outcome.marginals = snapshot_->materialized_marginals;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  for (VarId v : affected) outcome.marginals[v] = result.marginals[v];
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  return outcome;
}

UpdateOutcome IncrementalEngine::RunVariational(const EngineOptions& options,
                                                const std::vector<VarId>& affected) {
  UpdateOutcome outcome;
  DD_CHECK(snapshot_->variational.has_value());
  factor::FactorGraph inference_graph = BuildVariationalInferenceGraph(
      *graph_, snapshot_->variational->approx_graph(), cumulative_);

  std::vector<VarId> sweep_vars;
  for (VarId v : affected) {
    if (!inference_graph.IsEvidence(v)) sweep_vars.push_back(v);
  }
  // Warm start from the current marginal estimates.
  auto warm_value = [&](VarId v) {
    const auto ev = inference_graph.EvidenceValue(v);
    return ev.has_value() ? *ev : (v < marginals_.size() && marginals_[v] > 0.5);
  };
  std::vector<double> sums(inference_graph.NumVariables(), 0.0);
  const size_t sample_sweeps = std::max<size_t>(1, options.gibbs.sample_sweeps);
  const size_t num_threads = options.gibbs.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : options.gibbs.num_threads;
  if (num_threads > 1) {
    // Hogwild over the (sparse) inference graph, confined to the affected
    // variables: the component decomposition shards across workers.
    inference::ParallelGibbsSampler sampler(&inference_graph, num_threads);
    inference::AtomicWorld world(&inference_graph);
    for (VarId v = 0; v < inference_graph.NumVariables(); ++v) {
      world.Flip(v, warm_value(v));
    }
    std::vector<Rng> rngs = sampler.MakeRngStreams(
        Rng::MixSeed(options.gibbs.seed, update_seq_, /*substream=*/2));
    for (size_t i = 0; i < options.gibbs.burn_in_sweeps; ++i) {
      sampler.SweepVars(&world, &rngs, sweep_vars);
    }
    for (size_t i = 0; i < sample_sweeps; ++i) {
      sampler.SweepVars(&world, &rngs, sweep_vars);
      for (VarId v : sweep_vars) sums[v] += world.value(v) ? 1.0 : 0.0;
    }
  } else {
    inference::GibbsSampler sampler(&inference_graph);
    inference::World world(&inference_graph);
    Rng rng(Rng::MixSeed(options.gibbs.seed, update_seq_, /*substream=*/2));
    for (VarId v = 0; v < inference_graph.NumVariables(); ++v) {
      world.Flip(v, warm_value(v));
    }
    world.RecomputeStats();
    for (size_t i = 0; i < options.gibbs.burn_in_sweeps; ++i) {
      sampler.SweepVars(&world, &rng, sweep_vars);
    }
    for (size_t i = 0; i < sample_sweeps; ++i) {
      sampler.SweepVars(&world, &rng, sweep_vars);
      for (VarId v : sweep_vars) sums[v] += world.value(v) ? 1.0 : 0.0;
    }
  }

  outcome.marginals = snapshot_->materialized_marginals;
  outcome.marginals.resize(graph_->NumVariables(), 0.5);
  for (VarId v : sweep_vars) {
    outcome.marginals[v] = sums[v] / static_cast<double>(sample_sweeps);
  }
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  return outcome;
}

UpdateOutcome IncrementalEngine::RunRerun(const EngineOptions& options) {
  UpdateOutcome outcome;
  inference::GibbsOptions gopts = options.rerun_gibbs;
  gopts.seed = Rng::MixSeed(gopts.seed, update_seq_);
  // Reuse (or lazily rebuild) the cached CSR kernel instead of recompiling
  // per rerun; rule/structural deltas invalidate it.
  const factor::CompiledGraph* kernel =
      gopts.use_compiled_graph ? CompiledKernel() : nullptr;
  outcome.marginals =
      inference::EstimateMarginalsAuto(*graph_, kernel, gopts).marginals;
  for (VarId v = 0; v < graph_->NumVariables(); ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) outcome.marginals[v] = *ev ? 1.0 : 0.0;
  }
  outcome.reason = "rerun";
  return outcome;
}

}  // namespace deepdive::incremental
