#ifndef DEEPDIVE_INCREMENTAL_VARIATIONAL_H_
#define DEEPDIVE_INCREMENTAL_VARIATIONAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "factor/factor_graph.h"
#include "factor/graph_delta.h"
#include "util/status.h"

namespace deepdive::incremental {

struct VariationalOptions {
  /// N of Algorithm 1: Gibbs samples for covariance estimation.
  size_t num_samples = 200;
  /// λ: the regularization/sparsification parameter. Larger -> sparser
  /// approximate graph, faster inference, worse approximation (Figure 6).
  double lambda = 0.1;
  size_t gibbs_burn_in = 50;
  size_t gibbs_thin = 1;
  /// Weight-fitting epochs (maximum-likelihood projection onto the sparse
  /// pairwise family; stands in for the log-det solve, see DESIGN.md §4.3).
  size_t fit_epochs = 60;
  double fit_learning_rate = 0.25;
  double fit_decay = 0.96;
  uint64_t seed = 23;
  /// Worker threads for the covariance-estimation sample draw and the λ
  /// search's approximate-graph inference. 1 = sequential (deterministic).
  size_t num_threads = 1;
};

/// The variational approach (Section 3.2.3 / Algorithm 1): replace the
/// materialized distribution with a *sparser* pairwise factor graph.
///
/// Materialization: (1) draw N samples from the original graph; (2) estimate
/// spin covariances restricted to NZ (pairs co-occurring in some factor);
/// (3) select the edges whose |covariance| exceeds λ — the sparsity-inducing
/// extreme point of Algorithm 1's box constraint |X_kj - M_kj| <= λ; (4) fit
/// unary and pairwise weights by maximum likelihood against the samples
/// (standard learning already in the engine, as the paper notes). The exact
/// log-det interior-point solve is substituted per DESIGN.md §4.3; the λ ->
/// sparsity -> speed/quality tradeoff it exposes is preserved.
///
/// Inference: append the update's delta factors to the approximate graph and
/// run Gibbs on the (much sparser) result.
class VariationalMaterialization {
 public:
  struct EdgeStat {
    factor::VarId a = 0;
    factor::VarId b = 0;
    double covariance = 0.0;
  };

  static StatusOr<VariationalMaterialization> Materialize(
      const factor::FactorGraph& graph, const VariationalOptions& options);

  /// The sparse pairwise approximation (same variable ids as the original).
  /// Structurally immutable after Materialize; the serving thread tweaks
  /// only weight values (delta application), per FactorGraph's contract.
  const factor::FactorGraph& approx_graph() const { return *approx_graph_; }
  factor::FactorGraph* mutable_approx_graph() { return approx_graph_.get(); }

  size_t NumEdges() const { return num_edges_; }
  size_t NumNzPairs() const { return num_nz_pairs_; }

  /// All NZ-pair covariances (before thresholding); exposed for tests and
  /// for the λ search protocol. Immutable after Materialize.
  const std::vector<EdgeStat>& edge_stats() const { return edge_stats_; }

 private:
  std::unique_ptr<factor::FactorGraph> approx_graph_;
  std::vector<EdgeStat> edge_stats_;
  size_t num_edges_ = 0;
  size_t num_nz_pairs_ = 0;
};

/// Builds an inference graph for the variational path: clones `approx`, then
/// copies the delta's new groups / added clauses / evidence / weight values
/// from `original` (weights are duplicated into the clone; variable ids are
/// shared). Removed original factors are already absorbed into the
/// approximation and cannot be subtracted — the inherent approximation of
/// this approach.
factor::FactorGraph BuildVariationalInferenceGraph(const factor::FactorGraph& original,
                                                   const factor::FactorGraph& approx,
                                                   const factor::GraphDelta& delta);

/// The λ search protocol of Section 3.2.3: starting from λ = lambda_min,
/// multiply by 10 until the symmetric KL divergence between original and
/// approximate marginals exceeds `kl_threshold`; returns the last safe λ.
StatusOr<double> SearchLambda(const factor::FactorGraph& graph,
                              const VariationalOptions& base_options, double lambda_min,
                              double kl_threshold,
                              const std::vector<double>& reference_marginals);

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_VARIATIONAL_H_
