#include "incremental/result_view.h"

#include <algorithm>
#include <cstring>

#include "storage/text_io.h"

namespace deepdive::incremental {

const std::vector<std::pair<Tuple, double>>* ResultView::Relation(
    const std::string& relation) const {
  const auto it = relations.find(relation);
  return it == relations.end() ? nullptr : &it->second;
}

double ResultView::MarginalOf(const std::string& relation,
                              const Tuple& tuple) const {
  const auto* entries = Relation(relation);
  if (entries == nullptr) return 0.5;
  const auto it = std::lower_bound(
      entries->begin(), entries->end(), tuple,
      [](const std::pair<Tuple, double>& entry, const Tuple& t) {
        return entry.first < t;
      });
  if (it == entries->end() || it->first != tuple) return 0.5;
  return it->second;
}

uint64_t ResultView::Fingerprint() const {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(epoch);
  mix(marginals.size());
  for (const double m : marginals) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(m));
    std::memcpy(&bits, &m, sizeof(bits));
    mix(bits);
  }
  return h;
}

ResultPublisher::ResultPublisher() {
  auto initial = std::make_shared<ResultView>();
  initial->content_hash = initial->Fingerprint();
  // ordering: release — the constructing thread may hand the publisher to
  // readers through some other channel; the release pairs with Current()'s
  // acquire load so the epoch-0 view's fields travel with the pointer.
  slot_.store(std::shared_ptr<const ResultView>(std::move(initial)),
              std::memory_order_release);
}

uint64_t ResultPublisher::Publish(std::shared_ptr<ResultView> view) {
  view->epoch = ++last_epoch_;
  view->content_hash = view->Fingerprint();
  // ordering: release — publishes the fully-built view; pairs with the
  // acquire load in Current() so readers never observe a half-written view.
  slot_.store(std::shared_ptr<const ResultView>(std::move(view)),
              std::memory_order_release);
  {
    MutexLock lock(wait_mu_);
    published_epoch_ = last_epoch_;
  }
  published_cv_.NotifyAll();
  return last_epoch_;
}

void ResultPublisher::WaitForEpoch(uint64_t min_epoch) const {
  MutexLock lock(wait_mu_);
  while (published_epoch_ < min_epoch) published_cv_.Wait(wait_mu_);
}

Status WriteRelationTsv(const ResultView& view, const std::string& relation,
                        std::FILE* out, double threshold) {
  const auto* entries = view.Relation(relation);
  if (entries == nullptr) return Status::OK();
  for (const auto& [tuple, marginal] : *entries) {
    if (marginal < threshold) continue;
    auto line = FormatMarginalLine(marginal, tuple);
    if (!line.ok()) continue;  // unprintable tuple: same skip as FormatTsvLine
    std::fprintf(out, "%s\n", line->c_str());
  }
  return Status::OK();
}

}  // namespace deepdive::incremental
