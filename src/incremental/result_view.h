#ifndef DEEPDIVE_INCREMENTAL_RESULT_VIEW_H_
#define DEEPDIVE_INCREMENTAL_RESULT_VIEW_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "incremental/update_report.h"
#include "incremental/snapshot.h"
#include "storage/value.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_role.h"

namespace deepdive::incremental {

/// An immutable, versioned snapshot of the serving state, published
/// RCU-style. The writer (the one serving thread) builds a fresh view after
/// every update and materialization swap and publishes it with a release
/// store; any number of reader threads pin the current view via
/// ResultPublisher::Current() (surfaced as DeepDive::Query() /
/// IncrementalEngine::Query()) without taking a lock and without ever
/// blocking the writer. A pinned view keeps answering with its epoch's
/// marginals for as long as the shared_ptr is held, no matter how many
/// updates or snapshot swaps happen meanwhile — snapshot isolation for
/// queries while updates stream.
struct ResultView {
  /// Monotonically increasing publication counter of the publishing object
  /// (a DeepDive instance and its IncrementalEngine each count their own).
  /// 0 = the empty pre-initialization view.
  uint64_t epoch = 0;

  /// Full marginal vector indexed by VarId, frozen at publication.
  std::vector<double> marginals;

  /// Per-relation tuple -> marginal index, entries sorted by tuple. Filled
  /// on views published by DeepDive; engine-level views (which have no
  /// relation knowledge) leave it empty.
  std::unordered_map<std::string, std::vector<std::pair<Tuple, double>>>
      relations;

  /// Names of the program's query relations in declaration order, frozen at
  /// publication. Lets a view-only consumer (the serving stack's export
  /// handler) enumerate relations deterministically without touching the
  /// serving-thread-only program() accessor. Empty on engine-level views.
  std::vector<std::string> query_relations;

  /// Copy of the report of the update that published this view. DeepDive
  /// views carry the full report (label "initialize" for the view published
  /// at the end of Initialize); engine views fill only the
  /// strategy/acceptance/affected_vars/epoch fields of their UpdateOutcome.
  UpdateReport report;

  /// Copy of the serving materialization's build statistics.
  MaterializationStats materialization;
  /// Install counter of the serving materialization snapshot (0 = none).
  uint64_t snapshot_generation = 0;
  /// Proposals left in the serving snapshot's sample store at publication.
  size_t samples_remaining = 0;

  /// The serving snapshot's Pr(0) marginals, pinned rather than copied: the
  /// aliasing shared_ptr keeps the whole MaterializationSnapshot alive, so a
  /// swap on the serving thread can no longer invalidate a reader mid-read.
  /// Null on views published before the first materialization (and on all
  /// views of a Rerun-mode DeepDive).
  std::shared_ptr<const std::vector<double>> materialized_marginals;

  /// Program version of the publishing DeepDive: bumped on every rule
  /// addition/retraction (first-class rule deltas and fragment updates
  /// alike), so clients can observe program evolution, not just data
  /// evolution. 0 on engine-level views (no program knowledge).
  uint64_t program_version = 0;
  /// Number of rules (deductive + factor) in the program at publication.
  uint64_t rule_count = 0;
  /// FNV-1a fingerprint over the canonical text of every rule in
  /// declaration order — two replicas serving the same program agree on it
  /// regardless of the add/retract path that got them there.
  uint64_t rules_fingerprint = 0;

  /// FNV-1a checksum over (epoch, marginals) stamped by Publish().
  /// Fingerprint() recomputes it from the fields, so a reader can assert
  /// that the view it pinned is internally consistent — the epoch matches
  /// the marginal vector contents it was published with.
  uint64_t content_hash = 0;

  /// Marginal probability of `tuple` under this view (0.5 if the relation or
  /// tuple is unknown), by binary search of the relation index.
  double MarginalOf(const std::string& relation, const Tuple& tuple) const;

  /// Sorted (tuple, marginal) entries of one relation, or nullptr if the
  /// view has no index for it.
  const std::vector<std::pair<Tuple, double>>* Relation(
      const std::string& relation) const;

  /// Recomputes the (epoch, marginals) checksum; equals content_hash on any
  /// correctly published view.
  uint64_t Fingerprint() const;
};

/// Single-writer / many-reader publication slot for ResultViews. Publish()
/// must be called from the one serving thread — REQUIRES(serving_thread),
/// so a stray writer is a compile error under Clang; Current() is callable
/// from any thread concurrently with Publish() and pins the view it read.
/// Current() never returns null: an empty epoch-0 view is installed at
/// construction.
class ResultPublisher {
 public:
  ResultPublisher();

  /// Pins the current view (any thread; an atomic acquire load).
  std::shared_ptr<const ResultView> Current() const {
    // ordering: acquire — pairs with Publish()'s release store so a reader
    // that pins a view also observes every field the writer froze into it.
    return slot_.load(std::memory_order_acquire);
  }

  /// Blocks until a view with epoch >= `min_epoch` has been published, then
  /// returns. Callable from any thread — this is the explicit readiness
  /// signal for readers that must not start before the writer's first real
  /// publication (min_epoch = 1): they block on the publication CondVar
  /// instead of polling Current() or sleeping through a grace window.
  void WaitForEpoch(uint64_t min_epoch) const EXCLUDES(wait_mu_);

  /// Epoch the next Publish() will stamp. Writer thread only.
  uint64_t next_epoch() const REQUIRES(serving_thread) { return last_epoch_ + 1; }
  /// Epoch of the most recently published view. Writer thread only.
  uint64_t last_epoch() const REQUIRES(serving_thread) { return last_epoch_; }

  /// Stamps `view` with the next epoch and its content checksum, then
  /// publishes it (release store). Writer thread only; the view must not be
  /// mutated afterwards. Returns the stamped epoch.
  uint64_t Publish(std::shared_ptr<ResultView> view) REQUIRES(serving_thread);

 private:
  std::atomic<std::shared_ptr<const ResultView>> slot_;
  uint64_t last_epoch_ GUARDED_BY(serving_thread) = 0;

  /// Readiness signaling for WaitForEpoch: Publish() mirrors the epoch it
  /// stamped into this guarded copy and notifies. Kept separate from the
  /// lock-free slot_ so Current() stays a single acquire load.
  mutable Mutex wait_mu_;
  mutable CondVar published_cv_;
  uint64_t published_epoch_ GUARDED_BY(wait_mu_) = 0;
};

/// Writes one relation of a pinned view as "<marginal>\t<cols...>" TSV
/// lines, skipping entries below `threshold`. A relation absent from the
/// view (e.g. a query relation with no candidate tuples yet) writes nothing.
/// The view is immutable, so this is safe on any thread while updates keep
/// streaming on the serving thread.
Status WriteRelationTsv(const ResultView& view, const std::string& relation,
                        std::FILE* out, double threshold);

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_RESULT_VIEW_H_
