#include "incremental/variational.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "inference/world.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace deepdive::incremental {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::GroupId;
using factor::Literal;
using factor::VarId;
using factor::WeightId;

StatusOr<VariationalMaterialization> VariationalMaterialization::Materialize(
    const FactorGraph& graph, const VariationalOptions& options) {
  VariationalMaterialization m;
  const size_t n = graph.NumVariables();

  // 1. Draw N samples from the original graph (Algorithm 1, line 1).
  inference::GibbsOptions gopts;
  gopts.burn_in_sweeps = options.gibbs_burn_in;
  gopts.seed = options.seed;
  gopts.num_threads = options.num_threads;
  inference::ParallelGibbsSampler sampler(&graph, options.num_threads);
  std::vector<BitVector> samples =
      sampler.DrawSamples(options.num_samples, options.gibbs_thin, gopts);
  if (samples.empty()) return Status::InvalidArgument("num_samples must be > 0");

  // 2. NZ pairs: variables co-occurring in some factor (line 2), and spin
  //    means/covariances over the samples (line 3).
  std::vector<double> mean(n, 0.0);  // E[s], s = 2x - 1
  for (const BitVector& s : samples) {
    for (VarId v = 0; v < n; ++v) mean[v] += s.Get(v) ? 1.0 : -1.0;
  }
  for (VarId v = 0; v < n; ++v) mean[v] /= static_cast<double>(samples.size());

  std::set<std::pair<VarId, VarId>> nz;
  for (VarId v = 0; v < n; ++v) {
    for (VarId u : graph.Neighbors(v)) {
      if (u > v) nz.emplace(v, u);
    }
  }
  m.num_nz_pairs_ = nz.size();

  for (const auto& [a, b] : nz) {
    double e_ab = 0.0;
    for (const BitVector& s : samples) {
      const double sa = s.Get(a) ? 1.0 : -1.0;
      const double sb = s.Get(b) ? 1.0 : -1.0;
      e_ab += sa * sb;
    }
    e_ab /= static_cast<double>(samples.size());
    m.edge_stats_.push_back(EdgeStat{a, b, e_ab - mean[a] * mean[b]});
  }

  // 3. Build the sparse pairwise skeleton: unary group per variable, one
  //    tied symmetric pair of groups per surviving edge (lines 4-7).
  m.approx_graph_ = std::make_unique<FactorGraph>();
  FactorGraph& ag = *m.approx_graph_;
  if (n > 0) ag.AddVariables(n);
  for (VarId v = 0; v < n; ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) ag.SetEvidence(v, ev);
  }
  std::vector<WeightId> unary(n);
  for (VarId v = 0; v < n; ++v) {
    unary[v] = ag.AddWeight(0.0, /*learnable=*/true, StrFormat("vh/%u", v));
    ag.AddSimpleFactor(v, {}, unary[v]);  // empty clause: bias on sign(v)
  }
  for (const EdgeStat& e : m.edge_stats_) {
    if (std::abs(e.covariance) <= options.lambda) continue;
    const WeightId w =
        ag.AddWeight(0.0, /*learnable=*/true, StrFormat("vJ/%u-%u", e.a, e.b));
    // Symmetric interaction: w * (sign(a) 1{b} + sign(b) 1{a}).
    ag.AddSimpleFactor(e.a, {Literal{e.b, false}}, w);
    ag.AddSimpleFactor(e.b, {Literal{e.a, false}}, w);
    ++m.num_edges_;
  }

  // 4. Fit weights by maximum likelihood against the drawn samples:
  //    gradient(w) = E_samples[f_w] - E_model[f_w].
  std::vector<double> empirical(ag.NumWeights(), 0.0);
  {
    inference::World sw(&ag);
    for (const BitVector& s : samples) {
      sw.LoadBits(s);
      for (WeightId w = 0; w < ag.NumWeights(); ++w) {
        empirical[w] += sw.WeightFeature(w);
      }
    }
    for (double& e : empirical) e /= static_cast<double>(samples.size());
  }
  {
    inference::GibbsSampler fit_sampler(&ag);
    Rng rng(Rng::MixSeed(options.seed, /*stream=*/1));
    inference::World model(&ag);
    model.InitValues(&rng, /*random_init=*/true);
    double lr = options.fit_learning_rate;
    for (size_t epoch = 0; epoch < options.fit_epochs; ++epoch) {
      // The model chain samples every variable (the approximation targets
      // the full materialized distribution, evidence included).
      fit_sampler.Sweep(&model, &rng, /*sample_evidence=*/true);
      for (WeightId w = 0; w < ag.NumWeights(); ++w) {
        const double grad = empirical[w] - model.WeightFeature(w);
        ag.SetWeightValue(w, ag.WeightValue(w) + lr * grad);
      }
      lr *= options.fit_decay;
    }
  }
  return m;
}

FactorGraph BuildVariationalInferenceGraph(const FactorGraph& original,
                                           const FactorGraph& approx,
                                           const GraphDelta& delta) {
  FactorGraph out;
  // Clone the approximation (variables, evidence, weights, groups, clauses),
  // pre-sizing once so the clone loop never rehashes or reallocates.
  out.ReserveVariables(original.NumVariables());
  out.ReserveWeights(approx.NumWeights());
  out.ReserveGroups(approx.NumGroups() + delta.new_groups.size() +
                    delta.modified_groups.size());
  out.ReserveClauses(approx.NumClauses());
  if (original.NumVariables() > 0) out.AddVariables(original.NumVariables());
  for (VarId v = 0; v < approx.NumVariables(); ++v) {
    out.SetEvidence(v, approx.EvidenceValue(v));
  }
  std::vector<WeightId> approx_wmap(approx.NumWeights());
  for (WeightId w = 0; w < approx.NumWeights(); ++w) {
    approx_wmap[w] = out.AddWeight(approx.weight(w).value, approx.weight(w).learnable,
                                   approx.weight(w).description);
  }
  for (GroupId g = 0; g < approx.NumGroups(); ++g) {
    const factor::FactorGroup& group = approx.group(g);
    if (!group.active) continue;
    const GroupId ng =
        out.AddGroup(group.rule_id, group.head, approx_wmap[group.weight],
                     group.semantics);
    for (factor::ClauseId cid : group.clauses) {
      const factor::Clause& clause = approx.clause(cid);
      if (clause.active) out.AddClause(ng, clause.literals);
    }
  }

  // Append delta factors from the original graph (copying their weights).
  std::map<WeightId, WeightId> orig_wmap;
  auto map_weight = [&](WeightId w) {
    auto it = orig_wmap.find(w);
    if (it != orig_wmap.end()) return it->second;
    const WeightId nw = out.AddWeight(original.weight(w).value,
                                      original.weight(w).learnable,
                                      original.weight(w).description);
    orig_wmap.emplace(w, nw);
    return nw;
  };
  auto copy_group = [&](GroupId g, const std::vector<factor::ClauseId>* only_clauses) {
    const factor::FactorGroup& group = original.group(g);
    if (!group.active) return;  // added then retracted within the window
    const GroupId ng =
        out.AddGroup(group.rule_id, group.head, map_weight(group.weight),
                     group.semantics);
    std::vector<std::vector<factor::Literal>> literal_lists;
    if (only_clauses != nullptr) {
      literal_lists.reserve(only_clauses->size());
      for (factor::ClauseId cid : *only_clauses) {
        literal_lists.push_back(original.clause(cid).literals);
      }
    } else {
      literal_lists.reserve(group.clauses.size());
      for (factor::ClauseId cid : group.clauses) {
        const factor::Clause& clause = original.clause(cid);
        if (clause.active) literal_lists.push_back(clause.literals);
      }
    }
    out.AddClauses(ng, std::move(literal_lists));
  };
  for (GroupId g : delta.new_groups) copy_group(g, nullptr);
  for (const GraphDelta::GroupMod& mod : delta.modified_groups) {
    if (!mod.added.empty()) copy_group(mod.group, &mod.added);
    // Removed clauses were part of the approximated distribution; they
    // cannot be subtracted from the learned pairwise weights.
  }
  for (const GraphDelta::EvidenceChange& ec : delta.evidence_changes) {
    out.SetEvidence(ec.var, ec.new_value);
  }
  return out;
}

StatusOr<double> SearchLambda(const FactorGraph& graph,
                              const VariationalOptions& base_options, double lambda_min,
                              double kl_threshold,
                              const std::vector<double>& reference_marginals) {
  double best = lambda_min;
  for (double lambda = lambda_min; lambda <= 10.0; lambda *= 10.0) {
    VariationalOptions options = base_options;
    options.lambda = lambda;
    DD_ASSIGN_OR_RETURN(VariationalMaterialization m,
                        VariationalMaterialization::Materialize(graph, options));
    inference::GibbsOptions gopts;
    gopts.seed = Rng::MixSeed(options.seed, /*stream=*/17);
    gopts.num_threads = options.num_threads;
    inference::ParallelGibbsSampler sampler(&m.approx_graph(), options.num_threads);
    const auto marginals = sampler.EstimateMarginals(gopts).marginals;
    // Symmetric KL between Bernoulli marginals, averaged over variables.
    double kl = 0.0;
    size_t count = 0;
    for (VarId v = 0; v < graph.NumVariables(); ++v) {
      if (graph.IsEvidence(v)) continue;
      const double p = std::clamp(reference_marginals[v], 1e-6, 1.0 - 1e-6);
      const double q = std::clamp(marginals[v], 1e-6, 1.0 - 1e-6);
      kl += (p - q) * (std::log(p / q) + std::log((1 - q) / (1 - p)));
      ++count;
    }
    if (count > 0) kl /= static_cast<double>(count);
    if (kl > kl_threshold) break;
    best = lambda;
  }
  return best;
}

}  // namespace deepdive::incremental
