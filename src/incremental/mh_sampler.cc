#include "incremental/mh_sampler.h"

#include <cmath>
#include <optional>

#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepdive::incremental {

using factor::GraphDelta;
using factor::VarId;

IndependentMH::IndependentMH(const factor::FactorGraph* graph, const GraphDelta* delta)
    : graph_(graph), delta_(delta) {}

StatusOr<MHResult> IndependentMH::Run(SampleStore* store, const MHOptions& options) {
  MHResult result;
  const size_t n = graph_->NumVariables();
  result.marginals.assign(n, 0.0);
  if (store->exhausted()) {
    result.exhausted = true;
    return result;
  }

  Rng rng(options.seed);

  // Variables created after materialization need proposal extension by
  // restricted Gibbs; that path pays for a World per proposal. The common
  // fast path (no new variables) evaluates the delta's log-density ratio
  // directly on the stored bits — per proposal cost O(|delta|), never
  // O(graph), which is the whole point of the sampling approach.
  std::vector<VarId> extension_vars;
  for (VarId v = static_cast<VarId>(store->num_vars()); v < n; ++v) {
    extension_vars.push_back(v);
  }

  inference::GibbsSampler sampler(graph_);
  // Parallel proposal extension (Hogwild sweeps over the new variables).
  // Worth it only when there are extension variables at all; the MH chain
  // proper stays sequential either way.
  const size_t num_threads = options.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : options.num_threads;
  const bool parallel_extension = num_threads > 1 && !extension_vars.empty();
  std::optional<inference::World> extension_world;
  std::optional<inference::AtomicWorld> extension_aworld;
  std::optional<inference::ParallelGibbsSampler> psampler;
  std::vector<Rng> extension_rngs;
  if (!extension_vars.empty()) {
    if (parallel_extension) {
      psampler.emplace(graph_, num_threads);
      extension_aworld.emplace(graph_);
      // Extension sweeps are their own chain (replica 1): keyed off the MH
      // seed but decorrelated from any replica-0 sampler sharing it.
      extension_rngs = psampler->MakeRngStreams(options.seed, /*replica=*/1);
    } else {
      extension_world.emplace(graph_);
    }
  }

  // The proposal world as a full-width bit vector.
  BitVector proposal_bits(n);
  auto load_proposal = [&](const BitVector& raw) {
    if (extension_vars.empty()) {
      proposal_bits = raw;
      return;
    }
    // Raw sample bits verbatim; evidence added after materialization is
    // handled by the acceptance test, not coerced into the proposal. New
    // *evidence* variables take their labels (they have no Pr(0)
    // coordinate); other new variables get extension sweeps.
    if (parallel_extension) {
      extension_aworld->LoadBitsPrefix(raw, /*fill=*/false, /*apply_evidence=*/false,
                                       psampler->pool());
      for (VarId v : extension_vars) {
        const auto ev = graph_->EvidenceValue(v);
        if (ev.has_value()) extension_aworld->Flip(v, *ev);
      }
      for (size_t s = 0; s < options.extension_sweeps; ++s) {
        psampler->SweepVars(&*extension_aworld, &extension_rngs, extension_vars);
      }
      proposal_bits = extension_aworld->ToBits();
      return;
    }
    extension_world->LoadBitsPrefix(raw, /*fill=*/false, /*apply_evidence=*/false);
    for (VarId v : extension_vars) {
      const auto ev = graph_->EvidenceValue(v);
      if (ev.has_value()) extension_world->Flip(v, *ev);
    }
    for (size_t s = 0; s < options.extension_sweeps; ++s) {
      sampler.SweepVars(&*extension_world, &rng, extension_vars);
    }
    proposal_bits = extension_world->ToBits();
  };

  BitVector current(n);
  auto current_of = [&](VarId v) { return current.Get(v); };
  auto proposal_of = [&](VarId v) { return proposal_bits.Get(v); };

  const BitVector* first = store->NextProposal();
  DD_CHECK(first != nullptr);
  load_proposal(*first);
  current = proposal_bits;
  double current_ratio = factor::DeltaLogDensityRatio(*graph_, *delta_, current_of);
  ++result.proposals;
  ++result.accepted;  // the chain starts at the first proposal

  // ---- marginal accumulation ----
  // The chain sits in each accepted state for a run of consecutive steps, so
  // per-step adds are deferred until the state changes and applied as one
  // batched pass (marginals[v] += run * I[v]). The run counts are integers
  // well below 2^53, so the batched double adds are bit-identical to the
  // historical step-by-step loop. When the tracked set is large — the
  // ROADMAP's data-parallel reduction — the pass shards over it on a pool:
  // tracked ids are unique (component expansions), so shard slices write
  // disjoint entries of the marginal vector and each worker effectively owns
  // a private accumulation buffer (its slice), reduced for free in place.
  const std::vector<VarId>* tracked = options.track_vars;
  const size_t tracked_count = tracked != nullptr ? tracked->size() : n;
  constexpr size_t kParallelTrackThreshold = 2048;
  std::optional<ThreadPool> accum_pool;
  ThreadPool* accum = nullptr;
  if (num_threads > 1 && tracked_count >= kParallelTrackThreshold) {
    if (psampler.has_value()) {
      accum = psampler->pool();
    } else {
      accum_pool.emplace(num_threads);
      accum = &*accum_pool;
    }
  }
  size_t run_length = 0;
  double* marginals = result.marginals.data();
  auto flush_run = [&]() {
    if (run_length == 0) return;
    const double run = static_cast<double>(run_length);
    run_length = 0;
    auto add_range = [&](size_t begin, size_t end) {
      if (tracked != nullptr) {
        for (size_t i = begin; i < end; ++i) {
          const VarId v = (*tracked)[i];
          if (current.Get(v)) marginals[v] += run;
        }
      } else {
        for (size_t v = begin; v < end; ++v) {
          if (current.Get(static_cast<VarId>(v))) marginals[v] += run;
        }
      }
    };
    if (accum != nullptr) {
      accum->ParallelFor(tracked_count,
                         [&](size_t /*shard*/, size_t begin, size_t end) {
                           add_range(begin, end);
                         });
    } else {
      add_range(0, tracked_count);
    }
  };

  size_t steps = 1;
  run_length = 1;  // the initial state is counted once

  while (steps < options.target_steps &&
         (options.target_accepted == 0 || result.accepted < options.target_accepted)) {
    const BitVector* raw = store->NextProposal();
    if (raw == nullptr) {
      result.exhausted = true;
      break;
    }
    ++result.proposals;
    load_proposal(*raw);
    const double proposed_ratio =
        factor::DeltaLogDensityRatio(*graph_, *delta_, proposal_of);
    bool accept;
    if (std::isinf(current_ratio) && current_ratio < 0.0) {
      // Current state has zero probability under Pr(Δ) (e.g. it violates new
      // evidence): escape to any supported proposal.
      accept = !(std::isinf(proposed_ratio) && proposed_ratio < 0.0);
    } else {
      const double log_alpha = proposed_ratio - current_ratio;
      accept = log_alpha >= 0.0 || rng.Uniform() < std::exp(log_alpha);
    }
    if (accept) {
      ++result.accepted;
      flush_run();  // batch out the departing state before replacing it
      current = proposal_bits;
      current_ratio = proposed_ratio;
    }
    ++steps;
    ++run_length;  // the (possibly new) current state is counted this step
  }
  flush_run();

  // Only tracked variables carry chain averages; with a tracked set the
  // untracked entries stay exactly 0 and are neither divided nor overwritten
  // with evidence labels as if they were estimates — the caller replaces
  // only the tracked subset and keeps its own values for the rest.
  const double steps_d = static_cast<double>(steps);
  if (tracked != nullptr) {
    for (VarId v : *tracked) {
      result.marginals[v] /= steps_d;
      const auto ev = graph_->EvidenceValue(v);
      if (ev.has_value()) result.marginals[v] = *ev ? 1.0 : 0.0;
    }
  } else {
    for (VarId v = 0; v < n; ++v) {
      result.marginals[v] /= steps_d;
    }
    // Evidence variables report their labels exactly.
    for (VarId v = 0; v < n; ++v) {
      const auto ev = graph_->EvidenceValue(v);
      if (ev.has_value()) result.marginals[v] = *ev ? 1.0 : 0.0;
    }
  }
  result.acceptance_rate =
      result.proposals > 0
          ? static_cast<double>(result.accepted) / static_cast<double>(result.proposals)
          : 0.0;
  return result;
}

}  // namespace deepdive::incremental
