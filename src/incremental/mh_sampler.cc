#include "incremental/mh_sampler.h"

#include <cmath>

#include "inference/gibbs.h"
#include "inference/parallel_gibbs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace deepdive::incremental {

using factor::GraphDelta;
using factor::VarId;

IndependentMH::IndependentMH(const factor::FactorGraph* graph, const GraphDelta* delta)
    : graph_(graph), delta_(delta) {}

StatusOr<MHResult> IndependentMH::Run(SampleStore* store, const MHOptions& options) {
  MHResult result;
  const size_t n = graph_->NumVariables();
  result.marginals.assign(n, 0.0);
  if (store->exhausted()) {
    result.exhausted = true;
    return result;
  }

  Rng rng(options.seed);

  // Variables created after materialization need proposal extension by
  // restricted Gibbs; that path pays for a World per proposal. The common
  // fast path (no new variables) evaluates the delta's log-density ratio
  // directly on the stored bits — per proposal cost O(|delta|), never
  // O(graph), which is the whole point of the sampling approach.
  std::vector<VarId> extension_vars;
  for (VarId v = static_cast<VarId>(store->num_vars()); v < n; ++v) {
    extension_vars.push_back(v);
  }

  inference::GibbsSampler sampler(graph_);
  // Parallel proposal extension (Hogwild sweeps over the new variables).
  // Worth it only when there are extension variables at all; the MH chain
  // proper stays sequential either way.
  const size_t num_threads = options.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : options.num_threads;
  const bool parallel_extension = num_threads > 1 && !extension_vars.empty();
  std::optional<inference::World> extension_world;
  std::optional<inference::AtomicWorld> extension_aworld;
  std::optional<inference::ParallelGibbsSampler> psampler;
  std::vector<Rng> extension_rngs;
  if (!extension_vars.empty()) {
    if (parallel_extension) {
      psampler.emplace(graph_, num_threads);
      extension_aworld.emplace(graph_);
      extension_rngs = psampler->MakeRngStreams(options.seed + 1);
    } else {
      extension_world.emplace(graph_);
    }
  }

  // The proposal world as a full-width bit vector.
  BitVector proposal_bits(n);
  auto load_proposal = [&](const BitVector& raw) {
    if (extension_vars.empty()) {
      proposal_bits = raw;
      return;
    }
    // Raw sample bits verbatim; evidence added after materialization is
    // handled by the acceptance test, not coerced into the proposal. New
    // *evidence* variables take their labels (they have no Pr(0)
    // coordinate); other new variables get extension sweeps.
    if (parallel_extension) {
      extension_aworld->LoadBitsPrefix(raw, /*fill=*/false, /*apply_evidence=*/false,
                                       psampler->pool());
      for (VarId v : extension_vars) {
        const auto ev = graph_->EvidenceValue(v);
        if (ev.has_value()) extension_aworld->Flip(v, *ev);
      }
      for (size_t s = 0; s < options.extension_sweeps; ++s) {
        psampler->SweepVars(&*extension_aworld, &extension_rngs, extension_vars);
      }
      proposal_bits = extension_aworld->ToBits();
      return;
    }
    extension_world->LoadBitsPrefix(raw, /*fill=*/false, /*apply_evidence=*/false);
    for (VarId v : extension_vars) {
      const auto ev = graph_->EvidenceValue(v);
      if (ev.has_value()) extension_world->Flip(v, *ev);
    }
    for (size_t s = 0; s < options.extension_sweeps; ++s) {
      sampler.SweepVars(&*extension_world, &rng, extension_vars);
    }
    proposal_bits = extension_world->ToBits();
  };

  BitVector current(n);
  auto current_of = [&](VarId v) { return current.Get(v); };
  auto proposal_of = [&](VarId v) { return proposal_bits.Get(v); };

  const BitVector* first = store->NextProposal();
  DD_CHECK(first != nullptr);
  load_proposal(*first);
  current = proposal_bits;
  double current_ratio = factor::DeltaLogDensityRatio(*graph_, *delta_, current_of);
  ++result.proposals;
  ++result.accepted;  // the chain starts at the first proposal

  auto accumulate = [&]() {
    if (options.track_vars != nullptr) {
      for (VarId v : *options.track_vars) result.marginals[v] += current.Get(v);
    } else {
      for (VarId v = 0; v < n; ++v) result.marginals[v] += current.Get(v);
    }
  };

  size_t steps = 1;
  accumulate();

  while (steps < options.target_steps &&
         (options.target_accepted == 0 || result.accepted < options.target_accepted)) {
    const BitVector* raw = store->NextProposal();
    if (raw == nullptr) {
      result.exhausted = true;
      break;
    }
    ++result.proposals;
    load_proposal(*raw);
    const double proposed_ratio =
        factor::DeltaLogDensityRatio(*graph_, *delta_, proposal_of);
    bool accept;
    if (std::isinf(current_ratio) && current_ratio < 0.0) {
      // Current state has zero probability under Pr(Δ) (e.g. it violates new
      // evidence): escape to any supported proposal.
      accept = !(std::isinf(proposed_ratio) && proposed_ratio < 0.0);
    } else {
      const double log_alpha = proposed_ratio - current_ratio;
      accept = log_alpha >= 0.0 || rng.Uniform() < std::exp(log_alpha);
    }
    if (accept) {
      ++result.accepted;
      current = proposal_bits;
      current_ratio = proposed_ratio;
    }
    ++steps;
    accumulate();
  }

  for (VarId v = 0; v < n; ++v) {
    result.marginals[v] /= static_cast<double>(steps);
  }
  // Evidence variables report their labels exactly.
  for (VarId v = 0; v < n; ++v) {
    const auto ev = graph_->EvidenceValue(v);
    if (ev.has_value()) result.marginals[v] = *ev ? 1.0 : 0.0;
  }
  result.acceptance_rate =
      result.proposals > 0
          ? static_cast<double>(result.accepted) / static_cast<double>(result.proposals)
          : 0.0;
  return result;
}

}  // namespace deepdive::incremental
