#include "incremental/optimizer.h"

namespace deepdive::incremental {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSampling:
      return "sampling";
    case Strategy::kVariational:
      return "variational";
    case Strategy::kStrawman:
      return "strawman";
    case Strategy::kRerun:
      return "rerun";
  }
  return "?";
}

OptimizerDecision RuleBasedOptimizer::Pick(Strategy preferred, std::string reason,
                                           bool samples_available) const {
  // Rule 4: if the preferred strategy is sampling but the store is dry,
  // switch to variational.
  if (preferred == Strategy::kSampling && !samples_available) {
    preferred = Strategy::kVariational;
    reason += " (out of samples)";
  }
  if (preferred == Strategy::kSampling && !config_.sampling_enabled) {
    preferred = config_.variational_enabled ? Strategy::kVariational : Strategy::kRerun;
    reason += " (sampling disabled)";
  }
  if (preferred == Strategy::kVariational && !config_.variational_enabled) {
    preferred = (config_.sampling_enabled && samples_available) ? Strategy::kSampling
                                                                : Strategy::kRerun;
    reason += " (variational disabled)";
  }
  return OptimizerDecision{preferred, std::move(reason)};
}

OptimizerDecision RuleBasedOptimizer::Choose(const factor::FactorGraph& graph,
                                             const factor::GraphDelta& delta,
                                             bool samples_available) const {
  // Rule 1: structure unchanged -> sampling (acceptance stays high; for a
  // pure analysis query the acceptance rate is 100%).
  if (!delta.structure_changed() && !delta.evidence_changed()) {
    return Pick(Strategy::kSampling, "structure unchanged", samples_available);
  }
  // Rule 2: evidence modified -> variational (new labels collapse the MH
  // acceptance rate).
  if (delta.evidence_changed()) {
    return Pick(Strategy::kVariational, "evidence modified", samples_available);
  }
  // Rule 3: new features (new learnable weights on new groups) -> sampling.
  bool new_features = false;
  for (factor::GroupId g : delta.new_groups) {
    if (graph.weight(graph.group(g).weight).learnable) {
      new_features = true;
      break;
    }
  }
  if (new_features) {
    return Pick(Strategy::kSampling, "new features", samples_available);
  }
  // Other structural changes (fixed-weight inference rules like I1) add
  // many correlated factors at once; the distribution shifts enough that MH
  // acceptance collapses, so go straight to the variational approach.
  return Pick(Strategy::kVariational, "structural change (inference rule)",
              samples_available);
}

}  // namespace deepdive::incremental
