#ifndef DEEPDIVE_INCREMENTAL_OPTIMIZER_H_
#define DEEPDIVE_INCREMENTAL_OPTIMIZER_H_

#include <string>

#include "factor/graph_delta.h"

namespace deepdive::incremental {

enum class Strategy {
  kSampling,
  kVariational,
  kStrawman,   // only viable on tiny graphs; never auto-chosen
  kRerun,      // full Gibbs from scratch (the baseline executor)
};

const char* StrategyName(Strategy strategy);

struct OptimizerDecision {
  Strategy strategy = Strategy::kSampling;
  std::string reason;
};

/// Flags for the lesion studies of Section 4.3 (Figure 11).
struct OptimizerConfig {
  bool sampling_enabled = true;
  bool variational_enabled = true;
};

/// The rule-based materialization optimizer of Section 3.3:
///   1. update does not change the structure of the graph -> sampling;
///   2. update modifies the evidence                      -> variational;
///   3. update introduces new features (new learnable tied weights /
///      feature groups)                                   -> sampling;
///   4. out of samples                                    -> variational.
/// Disabled strategies fall through to the other one; if both are disabled
/// the decision is kRerun.
class RuleBasedOptimizer {
 public:
  explicit RuleBasedOptimizer(OptimizerConfig config = {}) : config_(config) {}

  OptimizerDecision Choose(const factor::FactorGraph& graph,
                           const factor::GraphDelta& delta,
                           bool samples_available) const;

 private:
  OptimizerDecision Pick(Strategy preferred, std::string reason,
                         bool samples_available) const;

  OptimizerConfig config_;
};

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_OPTIMIZER_H_
