#ifndef DEEPDIVE_INCREMENTAL_SNAPSHOT_H_
#define DEEPDIVE_INCREMENTAL_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "factor/factor_graph.h"
#include "incremental/sample_store.h"
#include "incremental/strawman.h"
#include "incremental/variational.h"
#include "util/status.h"

namespace deepdive::incremental {

struct MaterializationOptions {
  /// Samples stored for the sampling approach (SM of Figure 5's cost model).
  /// Sized so several updates' worth of effective samples fit before rule 4
  /// (out of samples) forces the variational path.
  size_t num_samples = 5000;
  size_t gibbs_burn_in = 50;
  size_t gibbs_thin = 1;
  VariationalOptions variational;
  /// Also build the strawman (only succeeds on tiny graphs).
  bool materialize_strawman = false;
  /// Best-effort time budget in seconds (0 = none): sample collection stops
  /// early when exceeded — enforced during burn-in too, so a long burn-in
  /// cannot blow the budget before the first sample lands. Mirrors
  /// DeepDive's "as many samples as possible in a user-specified interval"
  /// policy (Section 3.3 / Appendix B.2).
  double time_budget_seconds = 0.0;
  uint64_t seed = 31;
  /// Worker threads for the sampling materialization's Gibbs chain
  /// (Hogwild; see ParallelGibbsSampler). 1 = sequential/deterministic.
  /// The variational materialization has its own `variational.num_threads`.
  /// With num_replicas > 1 this is the total budget split across replicas.
  size_t num_threads = 1;
  /// Model replicas for the sampling chain (ReplicatedGibbsSampler): each
  /// replica owns a private world and samples are drawn round-robin across
  /// the replica chains. 1 = single chain, bit-identical to the historical
  /// materialization. Deterministic for any replica count at one thread per
  /// replica.
  size_t num_replicas = 1;
  /// Replica synchronization cadence (consensus model averaging) in sweeps;
  /// 0 disables periodic synchronization. See GibbsOptions.
  size_t sync_every_sweeps = 50;
  /// Run the materialization chain on the flat CSR CompiledGraph kernel (the
  /// graph is frozen for the duration of a snapshot build anyway). Samples
  /// are bit-identical either way; see GibbsOptions::use_compiled_graph.
  bool use_compiled_kernel = true;

  // ---- async materialization / rematerialization policy (Section 3.3's
  // "materialize during idle time"): the build runs on a background worker
  // while updates keep being served from the previous snapshot. ----

  /// Build snapshots in the background (MaterializeAsync); the engine also
  /// schedules its own background rebuilds from the triggers below.
  bool async = false;
  /// Remat when the sample store runs dry (rule 4 would otherwise pin every
  /// later update on the variational path). Only acted on when `async`.
  bool remat_on_exhaustion = true;
  /// Remat when an update's MH acceptance rate drops below this floor —
  /// the distribution has drifted far from Pr(0) and stored samples are
  /// mostly wasted proposals. 0 disables.
  double remat_acceptance_floor = 0.0;
  /// Remat after this many updates since the serving snapshot was built.
  /// 0 disables.
  size_t remat_after_updates = 0;

  /// Overnight-materialization reuse: when set, the sample store is loaded
  /// from / saved to these paths. A loaded store skips the sampling chain
  /// entirely (its width is validated against the target graph).
  std::string load_sample_store;
  std::string save_sample_store;

  /// Test-only synchronization hook: invoked on the build thread after the
  /// snapshot is fully built, immediately before it is published for the
  /// swap. Lets tests hold a build "in flight" deterministically.
  std::function<void()> on_before_publish;
};

struct MaterializationStats {
  size_t samples_collected = 0;
  size_t sample_bytes = 0;
  size_t variational_edges = 0;
  double seconds = 0.0;
  bool strawman_built = false;
  /// True when the store was loaded from `load_sample_store` instead of
  /// being drawn by the sampling chain.
  bool store_loaded = false;
};

/// Everything the incremental engine serves updates from, built in one piece
/// against a fixed graph state (Pr(0)): the sampling approach's proposal
/// store, the variational approximation, the optional strawman, and the
/// materialized marginals. Built either inline (Materialize) or on a
/// background worker against a private graph copy (MaterializeAsync), then
/// swapped in atomically.
///
/// Lifetime & sharing: snapshots are reference-counted because published
/// ResultViews pin them — a view's `materialized_marginals` aliases this
/// struct, so a snapshot stays alive (and its build-time fields stay
/// readable from any thread) until the last reader drops its view, even
/// after the serving thread has swapped in a successor. Post-install, the
/// build-time fields (`materialized_marginals`, `stats`, `variational`,
/// `strawman`, `graph_width`, `generation`) are immutable; only `store`
/// keeps mutating — its cursor advances as MH consumes proposals — and it
/// is serving-thread territory that pinned readers must not touch.
struct MaterializationSnapshot {
  SampleStore store;
  std::optional<VariationalMaterialization> variational;
  std::optional<StrawmanMaterialization> strawman;
  /// Marginals under Pr(0). Variables untouched by the cumulative delta
  /// keep exactly these values (their distribution has not changed).
  std::vector<double> materialized_marginals;
  MaterializationStats stats;
  /// NumVariables of the graph state this snapshot materializes.
  size_t graph_width = 0;
  /// Install counter stamped by the engine (1 = first materialization).
  uint64_t generation = 0;
  /// Rule-set version of the program this snapshot was built against,
  /// stamped at build-schedule time. The engine refuses to install a
  /// snapshot whose version no longer matches: a rule added or retracted
  /// while the build ran changed the graph's *program*, and installing the
  /// stale build would resurrect retracted factors (its materialized
  /// marginals cover a distribution that no longer exists).
  uint64_t rule_set_version = 0;
};

/// Builds a complete snapshot of `graph`'s current distribution, returned
/// already reference-counted (see the sharing contract above). Pure with
/// respect to engine state, so the same (graph, options) pair yields
/// bit-identical snapshots whether built inline or on a background worker
/// (at num_threads == 1). `cancel`, when set, is polled between chain sweeps
/// and between build phases — the variational fit and strawman enumeration
/// run to completion once started (they are short relative to the chain), so
/// cancellation latency is bounded by the longest single phase, not zero. A
/// cancelled build returns FailedPrecondition and its partial result is
/// discarded.
StatusOr<std::shared_ptr<MaterializationSnapshot>> BuildMaterializationSnapshot(
    const factor::FactorGraph& graph, const MaterializationOptions& options,
    const std::atomic<bool>* cancel = nullptr);

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_SNAPSHOT_H_
