#include "incremental/strawman.h"

#include <cmath>

#include "util/string_util.h"

namespace deepdive::incremental {

using factor::FactorGraph;
using factor::GraphDelta;
using factor::VarId;

StatusOr<StrawmanMaterialization> StrawmanMaterialization::Materialize(
    const FactorGraph& graph, size_t max_free_vars) {
  StrawmanMaterialization m;
  m.evidence_values_.assign(graph.NumVariables(), 0);
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) {
      m.evidence_values_[v] = *ev ? 1 : 0;
    } else {
      m.free_vars_.push_back(v);
    }
  }
  const size_t k = m.free_vars_.size();
  if (k > max_free_vars) {
    return Status::OutOfRange(StrFormat(
        "strawman materialization of %zu free variables needs 2^%zu worlds", k, k));
  }

  std::vector<uint8_t> values = m.evidence_values_;
  auto value_of = [&](VarId v) { return values[v] != 0; };
  const uint64_t num_worlds = uint64_t{1} << k;
  m.log_weights_.resize(num_worlds);
  for (uint64_t world = 0; world < num_worlds; ++world) {
    for (size_t i = 0; i < k; ++i) values[m.free_vars_[i]] = (world >> i) & 1;
    m.log_weights_[world] = graph.TotalLogWeight(value_of);
  }

  // Original marginals (also validates normalization).
  double max_log = -1e300;
  for (double lw : m.log_weights_) max_log = std::max(max_log, lw);
  double z = 0.0;
  for (double lw : m.log_weights_) z += std::exp(lw - max_log);
  m.original_marginals_.assign(graph.NumVariables(), 0.0);
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    if (graph.EvidenceValue(v).has_value()) {
      m.original_marginals_[v] = m.evidence_values_[v];
    }
  }
  for (uint64_t world = 0; world < num_worlds; ++world) {
    const double p = std::exp(m.log_weights_[world] - max_log) / z;
    for (size_t i = 0; i < k; ++i) {
      if ((world >> i) & 1) m.original_marginals_[m.free_vars_[i]] += p;
    }
  }
  return m;
}

StatusOr<std::vector<double>> StrawmanMaterialization::InferUpdated(
    const FactorGraph& graph, const GraphDelta& delta) const {
  if (graph.NumVariables() != evidence_values_.size()) {
    return Status::FailedPrecondition(
        "strawman cannot cover variables added after materialization");
  }
  const size_t k = free_vars_.size();
  const uint64_t num_worlds = uint64_t{1} << k;

  std::vector<uint8_t> values = evidence_values_;
  auto value_of = [&](VarId v) { return values[v] != 0; };

  std::vector<double> new_log(num_worlds);
  double max_log = -1e300;
  for (uint64_t world = 0; world < num_worlds; ++world) {
    for (size_t i = 0; i < k; ++i) values[free_vars_[i]] = (world >> i) & 1;
    const double r = factor::DeltaLogDensityRatio(graph, delta, value_of);
    new_log[world] = log_weights_[world] + r;
    if (new_log[world] > max_log) max_log = new_log[world];
  }
  if (!std::isfinite(max_log)) {
    return Status::Internal("updated distribution has empty support");
  }
  double z = 0.0;
  for (double lw : new_log) z += std::exp(lw - max_log);

  // Enumerated (free-at-materialization) variables accumulate world mass —
  // including any that acquired evidence later (their conflicting worlds
  // carry zero mass). Only variables fixed at materialization time are
  // pre-set from their stored values.
  std::vector<bool> enumerated(evidence_values_.size(), false);
  for (VarId v : free_vars_) enumerated[v] = true;
  std::vector<double> marginals(evidence_values_.size(), 0.0);
  for (VarId v = 0; v < marginals.size(); ++v) {
    if (!enumerated[v]) marginals[v] = evidence_values_[v] ? 1.0 : 0.0;
  }
  for (uint64_t world = 0; world < num_worlds; ++world) {
    const double p = std::exp(new_log[world] - max_log) / z;
    for (size_t i = 0; i < k; ++i) {
      if ((world >> i) & 1) marginals[free_vars_[i]] += p;
    }
  }
  return marginals;
}

}  // namespace deepdive::incremental
