#ifndef DEEPDIVE_INCREMENTAL_MH_SAMPLER_H_
#define DEEPDIVE_INCREMENTAL_MH_SAMPLER_H_

#include <vector>

#include "factor/factor_graph.h"
#include "factor/graph_delta.h"
#include "incremental/sample_store.h"
#include "inference/world.h"
#include "util/random.h"
#include "util/status.h"

namespace deepdive::incremental {

struct MHOptions {
  /// Stop after this many chain steps (or when the store runs dry).
  size_t target_steps = 1000;
  /// If nonzero, additionally stop once this many proposals were *accepted*
  /// — the paper's cost model (SI effective samples cost SI/ρ proposals,
  /// Figure 5's sampling column).
  size_t target_accepted = 0;
  uint64_t seed = 11;
  /// Gibbs sweeps used to extend a proposal onto variables that did not
  /// exist when the samples were materialized.
  size_t extension_sweeps = 2;
  /// If set, marginals are accumulated only for these variables (the
  /// decomposition optimization: untouched components keep materialized
  /// marginals, so the chain need not track them). Entries must be unique
  /// (the engine passes component expansions, which are). All untracked
  /// variables — evidence included — report exactly 0: the caller keeps its
  /// own values for everything outside the tracked set. Large tracked sets
  /// are accumulated as a sharded data-parallel reduction on `num_threads`
  /// workers, bit-identical to the sequential accumulation.
  const std::vector<factor::VarId>* track_vars = nullptr;
  /// Worker threads for the proposal-extension Gibbs sweeps and the
  /// tracked-marginal accumulation (the two data-parallel stages: the MH
  /// chain itself is inherently sequential). 1 = sequential, bit-identical
  /// to the historical behavior.
  size_t num_threads = 1;
};

struct MHResult {
  std::vector<double> marginals;
  size_t proposals = 0;
  size_t accepted = 0;
  double acceptance_rate = 0.0;
  /// True if the store ran out before target_steps proposals were made —
  /// the optimizer's "out of samples -> variational" trigger.
  bool exhausted = false;
};

/// The sampling approach's inference phase (Section 3.2.2): an independent
/// Metropolis-Hastings chain whose proposal distribution is the materialized
/// Pr(0) (realized by replaying stored samples). Because proposal and target
/// differ only by the delta, the acceptance test
///     a = min(1, exp(r(I') - r(I))),   r = log Pr(Δ)/Pr(0)
/// touches only ΔV/ΔF — no factor of the original graph is fetched.
class IndependentMH {
 public:
  IndependentMH(const factor::FactorGraph* graph, const factor::GraphDelta* delta);

  /// Consumes proposals from `store` (advancing its cursor). Marginals are
  /// averaged over the chain. Variables beyond the stored sample width are
  /// extended by restricted Gibbs sweeps.
  StatusOr<MHResult> Run(SampleStore* store, const MHOptions& options);

 private:
  const factor::FactorGraph* graph_;
  const factor::GraphDelta* delta_;
};

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_MH_SAMPLER_H_
