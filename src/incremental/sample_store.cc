#include "incremental/sample_store.h"

#include <cstdint>
#include <fstream>

#include "util/logging.h"

namespace deepdive::incremental {

namespace {
constexpr uint64_t kStoreMagic = 0xdd5a3b1e'20260611ULL;
}  // namespace

void SampleStore::Add(BitVector sample) {
  if (!samples_.empty()) DD_CHECK_EQ(sample.size(), samples_[0].size());
  samples_.push_back(std::move(sample));
}

void SampleStore::AddAll(std::vector<BitVector> samples) {
  for (BitVector& s : samples) Add(std::move(s));
}

size_t SampleStore::ByteSize() const {
  size_t total = 0;
  for (const BitVector& s : samples_) total += s.ByteSize();
  return total;
}

const BitVector* SampleStore::NextProposal() {
  if (cursor_ >= samples_.size()) return nullptr;
  return &samples_[cursor_++];
}

void SampleStore::Clear() {
  samples_.clear();
  cursor_ = 0;
}

Status SampleStore::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  const uint64_t magic = kStoreMagic;
  const uint64_t count = samples_.size();
  const uint64_t width = num_vars();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  for (const BitVector& sample : samples_) {
    for (size_t i = 0; i < width; i += 8) {
      uint8_t byte = 0;
      for (size_t b = 0; b < 8 && i + b < width; ++b) {
        if (sample.Get(i + b)) byte |= static_cast<uint8_t>(1u << b);
      }
      out.write(reinterpret_cast<const char*>(&byte), 1);
    }
  }
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<SampleStore> SampleStore::Load(const std::string& path,
                                        size_t expected_width) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  uint64_t magic = 0, count = 0, width = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  if (!in || magic != kStoreMagic) {
    return Status::InvalidArgument("'" + path + "' is not a sample store");
  }
  if (expected_width != 0 && width != expected_width) {
    return Status::InvalidArgument(
        "sample store '" + path + "' holds " + std::to_string(width) +
        "-variable samples but the target graph has " +
        std::to_string(expected_width) + " variables");
  }
  SampleStore store;
  for (uint64_t s = 0; s < count; ++s) {
    BitVector sample(width);
    for (size_t i = 0; i < width; i += 8) {
      uint8_t byte = 0;
      in.read(reinterpret_cast<char*>(&byte), 1);
      if (!in) return Status::InvalidArgument("truncated sample store");
      for (size_t b = 0; b < 8 && i + b < width; ++b) {
        sample.Set(i + b, (byte >> b) & 1);
      }
    }
    store.Add(std::move(sample));
  }
  return store;
}

}  // namespace deepdive::incremental
