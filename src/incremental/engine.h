#ifndef DEEPDIVE_INCREMENTAL_ENGINE_H_
#define DEEPDIVE_INCREMENTAL_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "factor/graph_delta.h"
#include "incremental/mh_sampler.h"
#include "incremental/optimizer.h"
#include "incremental/sample_store.h"
#include "incremental/snapshot.h"
#include "incremental/strawman.h"
#include "incremental/variational.h"
#include "inference/gibbs.h"
#include "incremental/result_view.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/thread_role.h"

namespace deepdive::incremental {

struct EngineOptions {
  OptimizerConfig optimizer;
  std::optional<Strategy> forced_strategy;
  /// Confine re-inference to graph components touched by the delta
  /// (Appendix B.1). Disable to reproduce the NoDecomposition lesion.
  bool decomposition_enabled = true;
  /// Choose the strategy *per affected component* from what the delta does
  /// there (Section 3.3 / Figure 11: "different materialization strategies
  /// for different groups of variables"): components whose local delta
  /// modifies evidence go to the variational approach, the rest ride the
  /// sampling chain. Disable to classify once per update (the
  /// NoWorkloadInfo-adjacent behavior).
  bool per_group_strategy = true;
  size_t mh_target_steps = 1000;
  /// Gibbs budget for the (warm-started, component-confined) variational path.
  inference::GibbsOptions gibbs;
  /// Gibbs budget for a full rerun fallback — a cold chain over the whole
  /// graph, so typically a larger budget than `gibbs`.
  inference::GibbsOptions rerun_gibbs;
};

struct UpdateOutcome {
  std::vector<double> marginals;   // full vector, all variables
  Strategy strategy = Strategy::kSampling;
  std::string reason;
  double seconds = 0.0;
  double acceptance_rate = -1.0;   // sampling path only
  size_t affected_vars = 0;
  bool fell_back_to_variational = false;
  /// Per-group execution accounting (per_group_strategy mode).
  size_t sampling_vars = 0;
  size_t variational_vars = 0;
  /// Generation of the snapshot this update was served from.
  uint64_t snapshot_generation = 0;
  /// True when a background rematerialization was running while this update
  /// was served (it ran against the previous snapshot).
  bool served_during_remat = false;
  /// Epoch of the engine ResultView this update published (Query()).
  /// Strictly increasing across successful ApplyDelta calls.
  uint64_t epoch = 0;
};

/// Orchestrates incremental inference (Section 3.3): materializes *both* the
/// sampling and the variational approaches up front, then, per update,
/// classifies the delta with the rule-based optimizer and executes the
/// chosen strategy, confined to the affected graph components. Successive
/// updates accumulate into one delta against the materialized distribution,
/// so the sampling approach's acceptance rate decays naturally as the
/// distribution drifts — exactly the dynamics the optimizer arbitrates.
///
/// Materialization lifecycle: all approximation state lives in an immutable-
/// build MaterializationSnapshot. Materialize builds one inline;
/// MaterializeAsync builds one on a dedicated background worker against a
/// private copy of the graph ("during idle time", Section 3.3) while
/// ApplyDelta keeps serving from the previous snapshot and its cumulative
/// delta. The finished snapshot is swapped in at the next ApplyDelta /
/// WaitForMaterialization, and the cumulative delta is rebased: deltas that
/// arrived mid-build survive the swap (they are not covered by the new
/// snapshot), everything older is absorbed by it. When remat triggers are
/// configured (store exhausted, acceptance floor, update count), the engine
/// schedules its own background rebuilds after serving an update.
///
/// Threading contract: one writer, any number of readers. Materialize /
/// MaterializeAsync / ApplyDelta / WaitForMaterialization and the
/// reference-returning accessors must be called from one serving thread —
/// enforced at compile time under Clang: they are REQUIRES(serving_thread)
/// (the fake-lock role capability of util/thread_role.h), so calling them
/// from code that has not claimed the role is a -Wthread-safety error, not
/// a comment violation. The internal background build runs concurrently
/// with them and touches only `mu_`-guarded handoff state. Query() is the
/// read surface for every other thread: it pins the engine's current
/// immutable ResultView (published RCU-style after every ApplyDelta and
/// every snapshot install) without blocking the serving thread, and needs
/// no capability.
class IncrementalEngine {
 public:
  explicit IncrementalEngine(factor::FactorGraph* graph);
  ~IncrementalEngine();

  IncrementalEngine(const IncrementalEngine&) = delete;
  IncrementalEngine& operator=(const IncrementalEngine&) = delete;

  /// Builds and installs a snapshot inline (blocking). Cancels and discards
  /// any background build in flight first.
  Status Materialize(const MaterializationOptions& options)
      REQUIRES(serving_thread);

  /// Schedules a snapshot build on the background worker and returns
  /// immediately. Fails (FailedPrecondition) if a build is already in
  /// flight. The build materializes the graph state as of this call; deltas
  /// applied afterwards accumulate for the post-swap rebase.
  Status MaterializeAsync(const MaterializationOptions& options)
      REQUIRES(serving_thread);

  /// True while a background build is running or finished-but-not-swapped.
  /// Any thread.
  bool MaterializationInFlight() const EXCLUDES(mu_);

  /// Blocks until the in-flight background build (if any) completes and
  /// installs it — the forced synchronous drain. Returns the build's status
  /// (OK when idle). Observing a failure here clears it and re-arms the
  /// automatic remat triggers, which stay disarmed after a failed build.
  Status WaitForMaterialization() REQUIRES(serving_thread);

  /// Pins the engine's current immutable result view. Callable from any
  /// thread, concurrently with ApplyDelta / Materialize(Async) / snapshot
  /// swaps on the serving thread; the read is a single atomic acquire load
  /// and never blocks the writer. The returned view keeps answering with
  /// the epoch it was published at (snapshot isolation) — call again to
  /// observe newer epochs. Never null.
  std::shared_ptr<const incremental::ResultView> Query() const {
    return publisher_.Current();
  }

  /// Serving-thread-only convenience accessors, routed through the serving
  /// thread's current ResultView: the view pins the snapshot it was
  /// published from, so a background build finishing (or any later install)
  /// can no longer invalidate these references mid-read — they stay valid
  /// until this thread's next ApplyDelta / Materialize / Wait publishes a
  /// successor view. Readers on other threads must pin their own view via
  /// Query() instead.
  const MaterializationStats& materialization_stats() const
      REQUIRES(serving_thread) {
    return serving_view_->materialization;
  }
  /// Marginals under the serving snapshot's Pr(0) (empty before the first
  /// materialization).
  const std::vector<double>& materialized_marginals() const
      REQUIRES(serving_thread);
  /// Install counter of the serving snapshot (0 = never materialized).
  uint64_t snapshot_generation() const REQUIRES(serving_thread) {
    return snapshot_->generation;
  }

  /// Applies one update's delta (already applied to the graph structure) and
  /// refreshes marginals.
  StatusOr<UpdateOutcome> ApplyDelta(const factor::GraphDelta& delta,
                                     const EngineOptions& options)
      REQUIRES(serving_thread);

  /// First-class *rule* deltas (online program evolution). The caller has
  /// already grounded only the new rule into the graph (via the incremental
  /// grounder's AddFactorRule path) and hands the resulting GraphDelta here;
  /// retraction hands the delta of the rule's deactivated factor groups.
  /// Both entry points bump the rule-set version, drop the cached compiled
  /// kernel (lazily recompiled at next use) and the components cache, then
  /// run the normal incremental update path and publish a new ResultView
  /// epoch — never a re-ground, and never a blocking wait on a background
  /// materialization: a build in flight keeps running, and its result is
  /// discarded at install time because its rule_set_version no longer
  /// matches (see MaterializationSnapshot::rule_set_version).
  StatusOr<UpdateOutcome> AddRule(const factor::GraphDelta& delta,
                                  const EngineOptions& options)
      REQUIRES(serving_thread);

  /// `restore_marginals`, when non-null, short-circuits inference: the
  /// caller proved (via its rule journal) that no update intervened since
  /// the matching AddRule, so the pre-add marginals are the exact posterior
  /// of the restored graph and are adopted verbatim — the bit-identical
  /// round-trip guarantee.
  StatusOr<UpdateOutcome> RetractRule(
      const factor::GraphDelta& delta, const EngineOptions& options,
      const std::vector<double>* restore_marginals = nullptr)
      REQUIRES(serving_thread);

  /// Program version counter: one tick per AddRule/RetractRule. Snapshots
  /// record the version they were built against; installs require a match.
  uint64_t rule_set_version() const REQUIRES(serving_thread) {
    return rule_set_version_;
  }

  /// Update sequence number (one tick per ApplyDelta/AddRule/RetractRule).
  /// Callers journal it to detect whether updates intervened between an add
  /// and its retraction.
  uint64_t update_seq() const REQUIRES(serving_thread) { return update_seq_; }

  /// The cached flat CSR kernel of the current graph, compiling it on first
  /// use after an invalidation. Every structural or rule delta (and any
  /// weight/evidence change) drops the cache, so the pointer always reflects
  /// the live graph; it stays valid until the next mutating call on this
  /// thread.
  const factor::CompiledGraph* CompiledKernel() REQUIRES(serving_thread);

  /// Current marginal estimates (materialized values for untouched vars).
  /// Serving thread only — concurrent readers use Query().
  const std::vector<double>& marginals() const REQUIRES(serving_thread) {
    return marginals_;
  }

  size_t SamplesRemaining() const REQUIRES(serving_thread) {
    return snapshot_->store.remaining();
  }
  bool HasVariational() const REQUIRES(serving_thread) {
    return snapshot_->variational.has_value();
  }
  const factor::GraphDelta& cumulative_delta() const REQUIRES(serving_thread) {
    return cumulative_;
  }

 private:
  /// Variables directly referenced by a delta.
  std::vector<bool> TouchedVars(const factor::GraphDelta& delta) const
      REQUIRES(serving_thread);

  /// Expands touched variables to whole connected components (or all
  /// variables when decomposition is disabled).
  std::vector<factor::VarId> AffectedVars(const factor::GraphDelta& delta,
                                          bool decomposition_enabled)
      REQUIRES(serving_thread);

  /// Connected components of the current graph, cached across updates and
  /// invalidated by structural deltas (new variables/groups/clauses) — one
  /// computation per ApplyDelta at most, shared by AffectedVars and
  /// RunPerGroup.
  const std::vector<std::vector<factor::VarId>>& Components()
      REQUIRES(serving_thread);

  /// Strategy selection + execution for one update (everything downstream of
  /// the entry bookkeeping). Factored out so ApplyDelta can evaluate remat
  /// triggers on every successful path.
  StatusOr<UpdateOutcome> ExecuteUpdate(const factor::GraphDelta& delta,
                                        const EngineOptions& options)
      REQUIRES(serving_thread);

  StatusOr<UpdateOutcome> RunSampling(const EngineOptions& options,
                                      const std::vector<factor::VarId>& affected)
      REQUIRES(serving_thread);
  UpdateOutcome RunVariational(const EngineOptions& options,
                               const std::vector<factor::VarId>& affected)
      REQUIRES(serving_thread);
  UpdateOutcome RunRerun(const EngineOptions& options) REQUIRES(serving_thread);

  /// Splits the affected variables into per-component strategy buckets from
  /// the cumulative delta (Section 3.3 applied per group) and executes each
  /// bucket with its strategy.
  StatusOr<UpdateOutcome> RunPerGroup(const EngineOptions& options,
                                      const std::vector<factor::VarId>& affected)
      REQUIRES(serving_thread);

  /// Installs a finished snapshot as the serving one and rebases the
  /// cumulative delta onto it (cumulative := deltas since the build's graph
  /// copy). Publishes a fresh ResultView. Serving thread only.
  void InstallSnapshot(std::shared_ptr<MaterializationSnapshot> snapshot)
      REQUIRES(serving_thread);

  /// Builds a view of the current serving state (marginals_, snapshot stats,
  /// pinned Pr(0) marginals, `outcome`'s strategy fields when present) and
  /// publishes it. Serving thread only. Returns the published epoch.
  uint64_t PublishView(const UpdateOutcome* outcome) REQUIRES(serving_thread);

  /// Swaps in the pending background result if one is ready. Returns true
  /// while a build is still running (the caller is serving mid-build).
  bool MaybeInstallPending() REQUIRES(serving_thread);

  /// Drops `*ready` (returning true) when its rule_set_version no longer
  /// matches the engine's — the build predates a rule delta and must never
  /// be installed.
  bool DiscardIfStale(std::shared_ptr<MaterializationSnapshot>* ready)
      REQUIRES(serving_thread);

  /// Cancels an in-flight background build and discards its result.
  void AbortInFlightBuild() REQUIRES(serving_thread);

  /// Fires a background rebuild when a remat trigger matches `outcome`.
  void MaybeScheduleRemat(const UpdateOutcome& outcome) REQUIRES(serving_thread);

  factor::FactorGraph* graph_;

  /// Serving state, GUARDED_BY the serving-thread role capability (compile-
  /// enforced under Clang). `snapshot_` is never null — a default empty
  /// snapshot stands in before the first materialization. It is shared (not
  /// unique) because published ResultViews pin the snapshot they were served
  /// from; a swap retires it only once the last reader drops its view.
  std::shared_ptr<MaterializationSnapshot> snapshot_ GUARDED_BY(serving_thread);
  std::vector<double> marginals_ GUARDED_BY(serving_thread);
  factor::GraphDelta cumulative_ GUARDED_BY(serving_thread);
  uint64_t update_seq_ GUARDED_BY(serving_thread) = 0;
  uint64_t generation_ GUARDED_BY(serving_thread) = 0;
  /// Bumped by AddRule/RetractRule; stamped into scheduled snapshot builds
  /// and checked at install time (stale-program builds are discarded).
  uint64_t rule_set_version_ GUARDED_BY(serving_thread) = 0;
  /// Lazily compiled CSR kernel of the current graph (see CompiledKernel()).
  /// Null = invalidated; reset by any delta that mutates the graph.
  std::unique_ptr<const factor::CompiledGraph> compiled_kernel_
      GUARDED_BY(serving_thread);
  /// Updates served from the current snapshot (remat trigger input).
  uint64_t updates_since_snapshot_ GUARDED_BY(serving_thread) = 0;
  /// Deltas merged while the current background build runs; becomes the new
  /// cumulative delta at swap time.
  factor::GraphDelta since_build_ GUARDED_BY(serving_thread);
  uint64_t since_build_updates_ GUARDED_BY(serving_thread) = 0;
  /// Options of the last materialization request; drives self-scheduled
  /// remats with identical parameters (deterministic rebuilds).
  MaterializationOptions mat_options_ GUARDED_BY(serving_thread);
  bool mat_options_valid_ GUARDED_BY(serving_thread) = false;

  /// Connected-components cache (serving thread only).
  std::vector<std::vector<factor::VarId>> components_cache_
      GUARDED_BY(serving_thread);
  size_t components_width_ GUARDED_BY(serving_thread) = 0;
  bool components_valid_ GUARDED_BY(serving_thread) = false;

  /// RCU publication slot for Query(), plus the serving thread's own pin of
  /// the latest published view (what the reference-returning accessors read).
  /// The publisher itself carries the single-writer annotations (Publish is
  /// REQUIRES(serving_thread); Current() is any-thread).
  incremental::ResultPublisher publisher_;
  std::shared_ptr<const incremental::ResultView> serving_view_
      GUARDED_BY(serving_thread);

  /// Background build plumbing. `mu_` guards the handoff slot; the builder
  /// only touches its private graph copy plus this slot.
  mutable Mutex mu_;
  CondVar build_done_cv_;
  bool build_in_flight_ GUARDED_BY(mu_) = false;
  std::shared_ptr<MaterializationSnapshot> pending_ GUARDED_BY(mu_);
  Status pending_status_ GUARDED_BY(mu_);
  /// Build-cancellation flag, shared with the builder thread; plain atomic
  /// (not mu_-guarded) so Build can poll it between sweeps without locking.
  std::atomic<bool> cancel_build_{false};
  /// One dedicated worker, lazily created; touched by the serving thread
  /// only (the worker runs *inside* it).
  std::unique_ptr<ThreadPool> background_ GUARDED_BY(serving_thread);
};

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_ENGINE_H_
