#ifndef DEEPDIVE_INCREMENTAL_ENGINE_H_
#define DEEPDIVE_INCREMENTAL_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "factor/factor_graph.h"
#include "factor/graph_delta.h"
#include "incremental/mh_sampler.h"
#include "incremental/optimizer.h"
#include "incremental/sample_store.h"
#include "incremental/strawman.h"
#include "incremental/variational.h"
#include "inference/gibbs.h"
#include "util/status.h"

namespace deepdive::incremental {

struct MaterializationOptions {
  /// Samples stored for the sampling approach (SM of Figure 5's cost model).
  /// Sized so several updates' worth of effective samples fit before rule 4
  /// (out of samples) forces the variational path.
  size_t num_samples = 5000;
  size_t gibbs_burn_in = 50;
  size_t gibbs_thin = 1;
  VariationalOptions variational;
  /// Also build the strawman (only succeeds on tiny graphs).
  bool materialize_strawman = false;
  /// Best-effort time budget in seconds (0 = none): sample collection stops
  /// early when exceeded, mirroring DeepDive's "as many samples as possible
  /// in a user-specified interval" policy (Section 3.3 / Appendix B.2).
  double time_budget_seconds = 0.0;
  uint64_t seed = 31;
  /// Worker threads for the sampling materialization's Gibbs chain
  /// (Hogwild; see ParallelGibbsSampler). 1 = sequential/deterministic.
  /// The variational materialization has its own `variational.num_threads`.
  size_t num_threads = 1;
};

struct MaterializationStats {
  size_t samples_collected = 0;
  size_t sample_bytes = 0;
  size_t variational_edges = 0;
  double seconds = 0.0;
  bool strawman_built = false;
};

struct EngineOptions {
  OptimizerConfig optimizer;
  std::optional<Strategy> forced_strategy;
  /// Confine re-inference to graph components touched by the delta
  /// (Appendix B.1). Disable to reproduce the NoDecomposition lesion.
  bool decomposition_enabled = true;
  /// Choose the strategy *per affected component* from what the delta does
  /// there (Section 3.3 / Figure 11: "different materialization strategies
  /// for different groups of variables"): components whose local delta
  /// modifies evidence go to the variational approach, the rest ride the
  /// sampling chain. Disable to classify once per update (the
  /// NoWorkloadInfo-adjacent behavior).
  bool per_group_strategy = true;
  size_t mh_target_steps = 1000;
  /// Gibbs budget for the (warm-started, component-confined) variational path.
  inference::GibbsOptions gibbs;
  /// Gibbs budget for a full rerun fallback — a cold chain over the whole
  /// graph, so typically a larger budget than `gibbs`.
  inference::GibbsOptions rerun_gibbs;
};

struct UpdateOutcome {
  std::vector<double> marginals;   // full vector, all variables
  Strategy strategy = Strategy::kSampling;
  std::string reason;
  double seconds = 0.0;
  double acceptance_rate = -1.0;   // sampling path only
  size_t affected_vars = 0;
  bool fell_back_to_variational = false;
  /// Per-group execution accounting (per_group_strategy mode).
  size_t sampling_vars = 0;
  size_t variational_vars = 0;
};

/// Orchestrates incremental inference (Section 3.3): materializes *both* the
/// sampling and the variational approaches up front, then, per update,
/// classifies the delta with the rule-based optimizer and executes the
/// chosen strategy, confined to the affected graph components. Successive
/// updates accumulate into one delta against the materialized distribution,
/// so the sampling approach's acceptance rate decays naturally as the
/// distribution drifts — exactly the dynamics the optimizer arbitrates.
class IncrementalEngine {
 public:
  explicit IncrementalEngine(factor::FactorGraph* graph);

  Status Materialize(const MaterializationOptions& options);
  const MaterializationStats& materialization_stats() const { return mat_stats_; }

  /// Applies one update's delta (already applied to the graph structure) and
  /// refreshes marginals.
  StatusOr<UpdateOutcome> ApplyDelta(const factor::GraphDelta& delta,
                                     const EngineOptions& options);

  /// Current marginal estimates (materialized values for untouched vars).
  const std::vector<double>& marginals() const { return marginals_; }

  size_t SamplesRemaining() const { return store_.remaining(); }
  bool HasVariational() const { return variational_.has_value(); }
  const factor::GraphDelta& cumulative_delta() const { return cumulative_; }

 private:
  /// Variables directly referenced by a delta.
  std::vector<bool> TouchedVars(const factor::GraphDelta& delta) const;

  /// Expands touched variables to whole connected components (or all
  /// variables when decomposition is disabled).
  std::vector<factor::VarId> AffectedVars(const factor::GraphDelta& delta,
                                          bool decomposition_enabled) const;

  StatusOr<UpdateOutcome> RunSampling(const EngineOptions& options,
                                      const std::vector<factor::VarId>& affected);
  UpdateOutcome RunVariational(const EngineOptions& options,
                               const std::vector<factor::VarId>& affected);
  UpdateOutcome RunRerun(const EngineOptions& options);

  /// Splits the affected variables into per-component strategy buckets from
  /// the cumulative delta (Section 3.3 applied per group) and executes each
  /// bucket with its strategy.
  StatusOr<UpdateOutcome> RunPerGroup(const EngineOptions& options,
                                      const std::vector<factor::VarId>& affected);

  factor::FactorGraph* graph_;
  SampleStore store_;
  std::optional<VariationalMaterialization> variational_;
  std::optional<StrawmanMaterialization> strawman_;
  /// Marginals under Pr(0). Variables untouched by the cumulative delta
  /// keep exactly these values (their distribution has not changed).
  std::vector<double> materialized_marginals_;
  std::vector<double> marginals_;
  factor::GraphDelta cumulative_;
  MaterializationStats mat_stats_;
  uint64_t update_seq_ = 0;
};

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_ENGINE_H_
