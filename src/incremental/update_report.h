#ifndef DEEPDIVE_INCREMENTAL_UPDATE_REPORT_H_
#define DEEPDIVE_INCREMENTAL_UPDATE_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "incremental/optimizer.h"

namespace deepdive::incremental {

/// Timing/diagnostics for one update. Lives in the incremental module (below
/// core) so the ResultView layer (incremental/result_view.h) can embed a
/// copy of the publishing update's report without reaching up the layering.
struct UpdateReport {
  std::string label;
  double grounding_seconds = 0.0;   // view maintenance + factor grounding
  double learning_seconds = 0.0;
  double inference_seconds = 0.0;
  double TotalSeconds() const {
    return grounding_seconds + learning_seconds + inference_seconds;
  }
  Strategy strategy = Strategy::kRerun;
  double acceptance_rate = -1.0;
  size_t affected_vars = 0;
  /// Groundings emitted while applying this update. For a first-class rule
  /// addition this equals the new rule's match count — the witness that the
  /// add evaluated only that rule, not the whole program.
  uint64_t grounding_work = 0;
  size_t graph_variables = 0;
  size_t graph_factors = 0;  // active clauses
  /// Epoch of the ResultView this update published (DeepDive::Query()).
  /// Strictly increasing across the update history; 0 = not yet published.
  uint64_t epoch = 0;
};

}  // namespace deepdive::incremental

namespace deepdive::core {
/// Back-compat alias: the report type moved down to the incremental module
/// so the view layer no longer depends on core.
using UpdateReport = incremental::UpdateReport;
}  // namespace deepdive::core

#endif  // DEEPDIVE_INCREMENTAL_UPDATE_REPORT_H_
