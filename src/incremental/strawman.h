#ifndef DEEPDIVE_INCREMENTAL_STRAWMAN_H_
#define DEEPDIVE_INCREMENTAL_STRAWMAN_H_

#include <vector>

#include "factor/factor_graph.h"
#include "factor/graph_delta.h"
#include "util/status.h"

namespace deepdive::incremental {

/// Complete materialization (Section 3.2.1): stores log Pr(0)[I] for every
/// possible world I. Exponential space/time in the number of free variables
/// — the paper's baseline, infeasible beyond ~20 variables but exact.
/// Incremental inference reweights each stored world by the delta's
/// log-density ratio and renormalizes.
class StrawmanMaterialization {
 public:
  /// Enumerates and stores every world. Errors if the graph has more than
  /// `max_free_vars` non-evidence variables.
  static StatusOr<StrawmanMaterialization> Materialize(const factor::FactorGraph& graph,
                                                       size_t max_free_vars = 22);

  /// Exact marginals under Pr(0). Immutable after Materialize; references
  /// follow the owning snapshot's thread contract.
  const std::vector<double>& OriginalMarginals() const { return original_marginals_; }

  /// Exact marginals under Pr(Δ). Errors if the delta introduced variables
  /// that were not enumerated.
  StatusOr<std::vector<double>> InferUpdated(const factor::FactorGraph& graph,
                                             const factor::GraphDelta& delta) const;

  /// Stored bytes: 2^k log-weights (the exponential blowup of Figure 5(a)).
  size_t ByteSize() const { return log_weights_.size() * sizeof(double); }

  size_t NumWorlds() const { return log_weights_.size(); }

 private:
  std::vector<double> log_weights_;        // per enumerated world
  std::vector<factor::VarId> free_vars_;   // bit order
  std::vector<uint8_t> evidence_values_;   // fixed values per variable
  std::vector<double> original_marginals_;
};

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_STRAWMAN_H_
