#ifndef DEEPDIVE_INCREMENTAL_DECOMPOSITION_H_
#define DEEPDIVE_INCREMENTAL_DECOMPOSITION_H_

#include <vector>

#include "factor/factor_graph.h"

namespace deepdive::incremental {

/// One materialization unit of Algorithm 2 (Appendix B.1): a set of inactive
/// variables that is conditionally independent of all other inactive
/// variables given its active boundary.
struct DecompositionGroup {
  std::vector<factor::VarId> inactive;
  std::vector<factor::VarId> active;  // minimal conditioning set
};

/// Algorithm 2: (1) connected components of the factor graph restricted to
/// inactive variables (active variables cut the graph); (2) each component's
/// minimal active boundary; (3) greedy merge of pairs whose boundaries nest
/// (|A_j ∪ A_k| == max(|A_j|, |A_k|)), so shared active variables are not
/// materialized twice.
std::vector<DecompositionGroup> DecomposeWithInactive(
    const factor::FactorGraph& graph, const std::vector<bool>& is_active);

/// Connected components of the whole graph (every variable "inactive").
/// Used by the engine to confine re-inference to components touched by a
/// delta; untouched components keep their materialized marginals exactly.
std::vector<std::vector<factor::VarId>> ConnectedComponents(
    const factor::FactorGraph& graph);

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_DECOMPOSITION_H_
