#ifndef DEEPDIVE_INCREMENTAL_SAMPLE_STORE_H_
#define DEEPDIVE_INCREMENTAL_SAMPLE_STORE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/bitvector.h"
#include "util/status.h"

namespace deepdive::incremental {

/// MCDB-style tuple-bundle storage (Section 3.2.2): worlds drawn from the
/// materialized distribution Pr(0), one bit per variable per sample. The
/// inference phase consumes samples as Metropolis-Hastings proposals through
/// a cursor; when the cursor reaches the end the store is exhausted and the
/// optimizer falls back to the variational approach.
class SampleStore {
 public:
  SampleStore() = default;

  void Add(BitVector sample);
  void AddAll(std::vector<BitVector> samples);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  /// Aliases the store. A store inside an installed MaterializationSnapshot
  /// is consumed by the serving thread only (proposal draws pop it); during
  /// a background build, only the builder thread touches it.
  const BitVector& sample(size_t i) const { return samples_[i]; }

  /// Number of variables per sample (0 if empty).
  size_t num_vars() const { return samples_.empty() ? 0 : samples_[0].size(); }

  /// Storage footprint (the "<5% of the factor graph" accounting).
  size_t ByteSize() const;

  /// Next unconsumed sample, or nullptr when exhausted.
  const BitVector* NextProposal();

  size_t remaining() const { return samples_.size() - cursor_; }
  bool exhausted() const { return cursor_ >= samples_.size(); }

  void ResetCursor() { cursor_ = 0; }
  void Clear();

  /// Persists the store (bit-packed) so an overnight materialization can be
  /// reused by later sessions. The cursor is not persisted (a loaded store
  /// starts fresh). When `expected_width` is nonzero, Load rejects a store
  /// whose sample width differs — a store materialized for one graph must
  /// not be replayed as MH proposals against a differently-shaped one.
  Status Save(const std::string& path) const;
  static StatusOr<SampleStore> Load(const std::string& path,
                                    size_t expected_width = 0);

 private:
  std::vector<BitVector> samples_;
  size_t cursor_ = 0;
};

}  // namespace deepdive::incremental

#endif  // DEEPDIVE_INCREMENTAL_SAMPLE_STORE_H_
