#include "incremental/snapshot.h"

#include <utility>

#include "inference/compiled_inference.h"
#include "inference/replicated_gibbs.h"
#include "util/logging.h"
#include "util/timer.h"

namespace deepdive::incremental {

using factor::VarId;

StatusOr<std::shared_ptr<MaterializationSnapshot>> BuildMaterializationSnapshot(
    const factor::FactorGraph& graph, const MaterializationOptions& options,
    const std::atomic<bool>* cancel) {
  Timer timer;
  auto snapshot = std::make_shared<MaterializationSnapshot>();
  MaterializationSnapshot& snap = *snapshot;
  snap.graph_width = graph.NumVariables();

  const auto cancelled = [cancel] {
    // ordering: relaxed — best-effort poll; a stale read only delays
    // cancellation by one sweep, and the discard decision is serialized
    // with the canceller under the engine's handoff mutex.
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };

  if (!options.load_sample_store.empty()) {
    // Overnight-materialization reuse: a persisted store stands in for the
    // sampling chain. Width validation keeps a store materialized for one
    // graph from being replayed against a differently-shaped one.
    DD_ASSIGN_OR_RETURN(
        snap.store,
        SampleStore::Load(options.load_sample_store, graph.NumVariables()));
    snap.stats.store_loaded = true;
  } else {
    // Sampling materialization: draw as many samples as the budget allows.
    // The chain runs through the replicated sampler — num_replicas == 1 and
    // num_threads == 1 keep the historical sequential chain bit-for-bit;
    // more threads Hogwild the sweeps, more replicas draw round-robin from
    // private-world chains with periodic consensus averaging. The interrupt
    // hook enforces the time budget during burn-in as well as between
    // samples, and doubles as the cancellation point for superseded
    // background builds (with replicas it is polled from replica workers,
    // which this atomic-flag + monotonic-timer hook tolerates).
    inference::GibbsOptions gopts;
    gopts.burn_in_sweeps = options.gibbs_burn_in;
    gopts.seed = options.seed;
    gopts.num_threads = options.num_threads;
    gopts.num_replicas = options.num_replicas;
    gopts.sync_every_sweeps = options.sync_every_sweeps;
    gopts.use_compiled_graph = options.use_compiled_kernel;
    gopts.interrupt = [&] {
      return cancelled() || (options.time_budget_seconds > 0 &&
                             timer.Seconds() > options.time_budget_seconds);
    };
    inference::SampleChainAuto(graph, gopts, options.num_samples,
                               options.gibbs_thin, [&](const BitVector& bits) {
                                 snap.store.Add(bits);
                                 return !gopts.interrupt();
                               });
  }
  if (cancelled()) return Status::FailedPrecondition("materialization cancelled");

  // Materialized marginals: sample averages.
  snap.materialized_marginals.assign(graph.NumVariables(), 0.5);
  if (!snap.store.empty()) {
    std::vector<double> sums(graph.NumVariables(), 0.0);
    for (size_t s = 0; s < snap.store.size(); ++s) {
      const BitVector& bits = snap.store.sample(s);
      for (VarId v = 0; v < graph.NumVariables(); ++v) {
        sums[v] += bits.Get(v) ? 1.0 : 0.0;
      }
    }
    for (VarId v = 0; v < graph.NumVariables(); ++v) {
      snap.materialized_marginals[v] =
          sums[v] / static_cast<double>(snap.store.size());
    }
  }
  for (VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) snap.materialized_marginals[v] = *ev ? 1.0 : 0.0;
  }

  // Variational materialization.
  VariationalOptions vopts = options.variational;
  vopts.seed = Rng::MixSeed(options.seed, /*stream=*/101);
  auto vmat = VariationalMaterialization::Materialize(graph, vopts);
  if (vmat.ok()) {
    snap.variational = std::move(vmat).value();
  } else {
    DD_LOG(Warning) << "variational materialization failed: "
                    << vmat.status().ToString();
  }
  if (cancelled()) return Status::FailedPrecondition("materialization cancelled");

  // Optional strawman (tiny graphs only).
  if (options.materialize_strawman) {
    auto sm = StrawmanMaterialization::Materialize(graph);
    if (sm.ok()) {
      snap.strawman = std::move(sm).value();
      snap.stats.strawman_built = true;
    }
  }

  if (!options.save_sample_store.empty() && !snap.stats.store_loaded) {
    // (A loaded store is skipped outright: rewriting byte-identical content
    // would only open a truncation window on the file it was read from.)
    if (snap.store.empty() || cancelled()) {
      // Never truncate a (possibly good) persisted store with the output of
      // a budget-starved or cancelled build.
      DD_LOG(Warning) << "not saving sample store to '"
                      << options.save_sample_store
                      << "': " << (snap.store.empty() ? "no samples collected"
                                                      : "build cancelled");
    } else {
      // Persistence is an optional step: a failed write (unwritable path,
      // disk full) must not discard the otherwise valid snapshot — same
      // policy as a failed variational build above.
      const Status saved = snap.store.Save(options.save_sample_store);
      if (!saved.ok()) {
        DD_LOG(Warning) << "failed to save sample store: " << saved.ToString();
      }
    }
  }

  snap.stats.samples_collected = snap.store.size();
  snap.stats.sample_bytes = snap.store.ByteSize();
  snap.stats.variational_edges = snap.variational ? snap.variational->NumEdges() : 0;
  snap.stats.seconds = timer.Seconds();
  return snapshot;
}

}  // namespace deepdive::incremental
