#!/usr/bin/env python3
"""Project lint for the single-writer/many-reader concurrency contracts.

Clang Thread Safety Analysis proves lock/role discipline at compile time, but
four conventions the analysis cannot see are enforced here instead:

  ordering       Every explicit std::memory_order_{relaxed,acquire,release,
                 acq_rel,consume} use must carry a `// ordering:` comment (same
                 line or within the preceding twelve lines) justifying why that
                 ordering is sufficient. Default (seq_cst) operations are
                 exempt: the convention is "explicit weakening demands an
                 explicit argument".

  suppression    Every entry in .tsan-suppressions must sit under a comment
                 block containing `rationale:` that explains the false
                 positive and names how it was verified. No drive-by
                 suppressions.

  raw-thread     `std::thread` is constructed in exactly one sanctioned place
                 (src/util/thread_pool.*). Any other file spelling std::thread
                 must carry a `lint:allow(raw-thread)` comment explaining why
                 a plain thread (and not a ThreadPool task) is required.

  ref-accessor   A reference-returning method in a src/ header hands out
                 aliasing state, so its declaration must document the thread
                 contract: a REQUIRES/RETURN_CAPABILITY annotation, a nearby
                 comment mentioning the threading rules, or an explicit
                 `lint:allow(ref-accessor)` waiver.

  layering       Module dependencies follow the declarative DAG in
                 tools/static_analysis/check_layering.py (util -> factor ->
                 grounding/inference -> incremental -> core -> serve tiers;
                 tools/bench/tests are sinks). Every quoted #include is
                 validated against that table — this subsumes the two
                 hard-coded serve-tier rules this linter used to carry (comm/
                 handlers must not reach incremental/engine.h or
                 core/deepdive.h): those edges are simply absent from the DAG.

Run with no arguments from the repository root (CI does); pass file paths to
lint a subset; pass --self-test to verify the rules still bite on seeded
violations.
"""

import argparse
import os
import re
import sys
import tempfile

SCAN_DIRS = ["src", "tools", "tests", "bench", "examples"]
SOURCE_EXTS = (".h", ".cc", ".cpp")
THREAD_POOL_FILES = ("src/util/thread_pool.h", "src/util/thread_pool.cc")

ORDERING_RE = re.compile(
    r"std::memory_order_(relaxed|acquire|release|acq_rel|consume)\b")
ORDERING_COMMENT = "ordering:"
ORDERING_WINDOW = 12  # lines above that a justification block may span

RAW_THREAD_RE = re.compile(r"std::thread\b")
RAW_THREAD_WAIVER = "lint:allow(raw-thread)"

REF_ACCESSOR_WAIVER = "lint:allow(ref-accessor)"
# A member-ish declaration returning T& (not T&&): indented, a return type
# ending in a single '&', a name, an open paren on the same line.
REF_ACCESSOR_RE = re.compile(
    r"^\s+(?:virtual\s+)?(?:const\s+)?[\w:<>,\* ]+?&\s+(\w+)\s*\(")
REF_ACCESSOR_DOC_WINDOW = 8
REF_ACCESSOR_DOC_TOKENS = (
    "thread", "immutable", "guarded", "caller", "requires(", "serving",
    "synchroniz", "lock", "concurren",
)
REF_ACCESSOR_ANNOTATIONS = ("REQUIRES(", "RETURN_CAPABILITY(", "GUARDED_BY(")

SUPPRESSION_RATIONALE = "rationale:"

# Layering rule: delegated to the declarative module DAG shared with the
# invariant analyzer suite (single source of truth for the layering).
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "static_analysis"))
import check_layering  # noqa: E402  (needs the sys.path entry above)


def find_ordering_violations(path, lines):
    findings = []
    for i, line in enumerate(lines):
        if not ORDERING_RE.search(line):
            continue
        window = lines[max(0, i - ORDERING_WINDOW):i + 1]
        if not any(ORDERING_COMMENT in w for w in window):
            findings.append((path, i + 1, "ordering",
                             "explicit memory_order without an "
                             "'// ordering:' justification comment"))
    return findings


def find_raw_thread_violations(path, lines):
    rel = path.replace(os.sep, "/")
    if rel.endswith(THREAD_POOL_FILES):
        return []
    text = "\n".join(lines)
    if RAW_THREAD_WAIVER in text:
        return []
    findings = []
    for i, line in enumerate(lines):
        if RAW_THREAD_RE.search(line):
            findings.append((path, i + 1, "raw-thread",
                             "std::thread outside ThreadPool; wrap the work "
                             "in util/thread_pool.h or add a "
                             "'lint:allow(raw-thread)' comment with the "
                             "reason"))
    return findings


def _declaration_has_annotation(lines, i):
    """The declaration may continue past line i; scan to its ';' or '{'."""
    j = i
    while j < len(lines):
        chunk = lines[j]
        if any(a in chunk for a in REF_ACCESSOR_ANNOTATIONS):
            return True
        if ";" in chunk or "{" in chunk:
            return False
        j += 1
    return False


def find_ref_accessor_violations(path, lines):
    rel = path.replace(os.sep, "/")
    if not (rel.startswith("src/") or "/src/" in rel) or not rel.endswith(".h"):
        return []
    findings = []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("//") or stripped.startswith("*"):
            continue
        m = REF_ACCESSOR_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        # Control-flow keywords and operators are not accessors.
        if name in ("if", "for", "while", "switch", "return", "operator"):
            continue
        if REF_ACCESSOR_WAIVER in line:
            continue
        if _declaration_has_annotation(lines, i):
            continue
        doc = lines[max(0, i - REF_ACCESSOR_DOC_WINDOW):i]
        doc_comments = " ".join(
            d.strip() for d in doc if d.strip().startswith(("//", "*", "/*")))
        haystack = (doc_comments + " " + line).lower()
        if REF_ACCESSOR_WAIVER in doc_comments:
            continue
        if any(tok in haystack for tok in REF_ACCESSOR_DOC_TOKENS):
            continue
        findings.append((path, i + 1, "ref-accessor",
                         f"'{name}' returns a reference without a documented "
                         "thread contract (REQUIRES(...) annotation, a "
                         "comment stating the threading rules, or "
                         "'lint:allow(ref-accessor)')"))
    return findings


def find_suppression_violations(path, lines):
    findings = []
    comment_block = []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            comment_block = []
            continue
        if stripped.startswith("#"):
            comment_block.append(stripped.lower())
            continue
        if not any(SUPPRESSION_RATIONALE in c for c in comment_block):
            findings.append((path, i + 1, "suppression",
                             f"suppression '{stripped}' lacks a preceding "
                             "comment block containing 'rationale:'"))
        # Consecutive suppression lines share one rationale block.
    return findings


def _repo_rel(path):
    """Repo-relative form of `path` so module resolution works on absolute
    paths (and on self-test files seeded under a tempdir)."""
    rel = path.replace(os.sep, "/")
    for top in ("src/", "tools/", "tests/", "bench/", "examples/"):
        if rel.startswith(top):
            return rel
        idx = rel.rfind("/" + top)
        if idx >= 0:
            return rel[idx + 1:]
    return rel


def find_layering_violations(path, lines):
    rel = _repo_rel(path)
    return [(path, f.line, f.rule, f.msg)
            for f in check_layering.check_file(rel, lines)]


def lint_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [(path, 0, "io", str(e))]
    if os.path.basename(path) == ".tsan-suppressions":
        return find_suppression_violations(path, lines)
    findings = []
    findings += find_ordering_violations(path, lines)
    findings += find_raw_thread_violations(path, lines)
    findings += find_ref_accessor_violations(path, lines)
    findings += find_layering_violations(path, lines)
    return findings


def collect_default_files(root):
    files = []
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    supp = os.path.join(root, ".tsan-suppressions")
    if os.path.exists(supp):
        files.append(supp)
    return files


def run(files, root):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root) if os.path.isabs(path) else path
        for (p, line, rule, msg) in lint_file(path):
            findings.append((rel, line, rule, msg))
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    return 1 if findings else 0


def self_test():
    """Seed one violation and one clean sample per rule; both must behave."""
    cases = []  # (filename, content, expected_rule_or_None)
    cases.append(("src/bad_ordering.cc",
                  "int f(std::atomic<int>& a) {\n"
                  "  return a.load(std::memory_order_relaxed);\n}\n",
                  "ordering"))
    cases.append(("src/good_ordering.cc",
                  "int f(std::atomic<int>& a) {\n"
                  "  // ordering: relaxed — monotone counter, join publishes.\n"
                  "  return a.load(std::memory_order_relaxed);\n}\n",
                  None))
    cases.append(("src/bad_thread.cc",
                  "#include <thread>\nvoid g() { std::thread t([]{}); t.join(); }\n",
                  "raw-thread"))
    cases.append(("src/good_thread.cc",
                  "// lint:allow(raw-thread) the thread under test must be raw.\n"
                  "#include <thread>\nvoid g() { std::thread t([]{}); t.join(); }\n",
                  None))
    cases.append(("src/bad_ref.h",
                  "class C {\n public:\n  std::vector<int>& data() { return d_; }\n"
                  " private:\n  std::vector<int> d_;\n};\n",
                  "ref-accessor"))
    cases.append(("src/good_ref.h",
                  "class C {\n public:\n"
                  "  /// Serving thread only: aliases state the writer mutates.\n"
                  "  std::vector<int>& data() { return d_; }\n"
                  " private:\n  std::vector<int> d_;\n};\n",
                  None))
    cases.append(("src/serve/handlers/bad_layer.cc",
                  '#include "incremental/engine.h"\n'
                  "void h() {}\n",
                  "layering"))
    cases.append(("src/serve/comm/bad_layer2.cc",
                  '#include "core/deepdive.h"\n'
                  "void h() {}\n",
                  "layering"))
    cases.append(("src/serve/handlers/good_layer.cc",
                  '#include "serve/service/tenant.h"\n'
                  '#include "serve/comm/messages.h"\n'
                  "void h() {}\n",
                  None))
    cases.append(("src/serve/service/good_service.cc",
                  "// The service tier owns the engine; this include is its\n"
                  "// whole point.\n"
                  '#include "incremental/engine.h"\n'
                  "void h() {}\n",
                  None))
    # The DAG generalizes past the two historical hard-coded rules: any
    # edge absent from the table is a violation, not just the engine pair.
    cases.append(("src/serve/comm/bad_layer3.cc",
                  '#include "incremental/result_view.h"\n'
                  "void h() {}\n",
                  "layering"))
    cases.append(("src/util/bad_upward.cc",
                  '#include "factor/factor_graph.h"\n'
                  "void h() {}\n",
                  "layering"))
    cases.append(("tests/sink_is_free.cc",
                  '#include "core/deepdive.h"\n'
                  '#include "incremental/engine.h"\n'
                  "int main() {}\n",
                  None))
    cases.append((".tsan-suppressions",
                  "# no reason given\nrace:some_header.h\n",
                  "suppression"))
    cases.append(("good/.tsan-suppressions",
                  "# Rationale: lock-bit artifact, verified 2026-08 by\n"
                  "# rebuilding concurrent_query_test without suppressions.\n"
                  "race:bits/shared_ptr_atomic.h\n",
                  None))

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for name, content, expected in cases:
            path = os.path.join(tmp, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(content)
            found = [rule for (_, _, rule, _) in lint_file(path)]
            if expected is None and found:
                failures.append(f"{name}: expected clean, got {found}")
            elif expected is not None and expected not in found:
                failures.append(f"{name}: expected [{expected}], got {found}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print(f"self-test OK: {len(cases)} cases")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: the whole tree)")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules flag seeded violations")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    files = args.files or collect_default_files(args.root)
    return run(files, args.root)


if __name__ == "__main__":
    sys.exit(main())
