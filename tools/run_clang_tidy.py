#!/usr/bin/env python3
"""Full-tree clang-tidy gate with a tracked baseline.

Runs clang-tidy (checks from .clang-tidy) over every compiled source in the
compile database and compares the findings against .clang-tidy-baseline:

  - a finding NOT in the baseline fails the run (new debt is blocked);
  - a baseline entry with no current finding is reported as stale (payable
    down: delete the line), but does not fail the run;
  - `--update-baseline` rewrites the baseline from the current findings.

Baseline keys are `<repo-relative-file> <check-name>` — deliberately not
line numbers, so unrelated edits that shift lines don't churn the file. A
candidate baseline is always written next to the build dir so CI can upload
it as an artifact when the gate fails.

Usage:
    python3 tools/run_clang_tidy.py --build build-tidy [--jobs N]
                                    [--update-baseline] [--clang-tidy BIN]
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): .* \[(?P<checks>[\w\-.,]+)\]$")


def find_clang_tidy(explicit):
    if explicit:
        return explicit
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_db_sources(build_dir, root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    with open(db_path) as f:
        db = json.load(f)
    files = set()
    for entry in db:
        src = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = os.path.relpath(src, root)
        if rel.startswith(".."):
            continue
        # Gate the library and tools; tests/bench ride the compiler warnings
        # and sanitizers instead (keeps the run under control).
        if rel.startswith(("src/", "tools/")) and rel.endswith(
                (".cc", ".cpp")):
            files.add(rel)
    return sorted(files)


def run_one(clang_tidy, build_dir, root, rel):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", os.path.join(root, rel)],
        capture_output=True, text=True)
    keys = set()
    lines = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        path = os.path.relpath(m.group("path"), root)
        if path.startswith(".."):
            continue  # findings in system/third-party headers are not ours
        for check in m.group("checks").split(","):
            keys.add(f"{path} {check}")
        lines.append(line)
    return keys, lines


def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def write_baseline(path, keys, header=True):
    with open(path, "w") as f:
        if header:
            f.write("# clang-tidy baseline: `<file> <check>` pairs that are\n"
                    "# accepted pre-existing findings. New findings must be\n"
                    "# fixed or explicitly added here (with review); delete\n"
                    "# lines as the debt is paid down. Regenerate with\n"
                    "#   python3 tools/run_clang_tidy.py --build <dir> "
                    "--update-baseline\n")
        for k in sorted(keys):
            f.write(k + "\n")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", required=True, help="build dir with "
                    "compile_commands.json")
    ap.add_argument("--root", default=".")
    ap.add_argument("--baseline", default=".clang-tidy-baseline")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        print("run_clang_tidy: no clang-tidy binary found", file=sys.stderr)
        return 2

    files = compile_db_sources(args.build, root)
    print(f"clang-tidy ({clang_tidy}) over {len(files)} files...")

    all_keys = set()
    all_lines = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for keys, lines in pool.map(
                lambda rel: run_one(clang_tidy, args.build, root, rel),
                files):
            all_keys |= keys
            all_lines += lines

    candidate = os.path.join(args.build, "clang-tidy-baseline.candidate")
    write_baseline(candidate, all_keys)

    baseline_path = os.path.join(root, args.baseline)
    if args.update_baseline:
        write_baseline(baseline_path, all_keys)
        print(f"baseline updated: {len(all_keys)} entries -> {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    new = sorted(all_keys - baseline)
    stale = sorted(baseline - all_keys)
    for line in all_lines:
        print(line)
    if stale:
        print(f"\n{len(stale)} stale baseline entry(s) — debt paid down; "
              "delete these lines:", file=sys.stderr)
        for s in stale:
            print(f"  {s}", file=sys.stderr)
    if new:
        print(f"\n{len(new)} finding(s) not in the baseline:",
              file=sys.stderr)
        for n in new:
            print(f"  {n}", file=sys.stderr)
        print(f"candidate baseline written to {candidate}", file=sys.stderr)
        return 1
    print(f"clang-tidy gate clean ({len(all_keys)} baselined finding(s), "
          f"{len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
