"""Layering-DAG checker.

The module layering is declared once, as data, and validated over the full
`#include` graph:

    util -> storage -> dsl -> engine
    util -> factor -> grounding/inference -> incremental -> core -> serve/*
    kbc above core; tools/bench/tests/examples are sinks.

MODULE_DAG maps each module to the modules its files may directly include.
The table is deliberately *direct* (no transitive closure): serve/handlers
may include serve/service, and serve/service may include core, but a
serve/handlers file including core/deepdive.h is still a violation — the
engine's writer surface is the service tier's private capability. This
subsumes (and extends to every header, not two hard-coded ones) the two
serve-tier rules that used to live inline in tools/concurrency_lint.py,
which now imports this table.

Three failure classes:
  layering        an include edge absent from MODULE_DAG
  layering-cycle  a cycle in the file-level include graph (witness printed)
  layering-dag    the declared table itself is cyclic or names unknown
                  modules (defends the declaration, not just the tree)

Waiver: `// analysis:allow(layering): <rationale>` on/above the include.
"""

import os
import re

from sa_common import Finding, allow_waiver, project_includes

# Module -> modules whose headers its files may #include (besides its own).
# Order within the lists is cosmetic; the DAG property is validated.
MODULE_DAG = {
    "util": [],
    "storage": ["util"],
    "dsl": ["storage", "util"],
    "engine": ["dsl", "storage", "util"],
    "factor": ["util"],
    "grounding": ["dsl", "engine", "factor", "storage", "util"],
    "inference": ["factor", "storage", "util"],
    "incremental": ["factor", "inference", "storage", "util"],
    "core": ["dsl", "engine", "factor", "grounding", "incremental",
             "inference", "storage", "util"],
    "kbc": ["core", "dsl", "factor", "incremental", "inference", "storage",
            "util"],
    # Rule mining drives the engine's public rule-delta surface from above:
    # it may see core (DeepDive) and the layers core re-exports, but nothing
    # below core may ever include mining — the miner is a client, not a
    # dependency, of the engine.
    "mining": ["core", "dsl", "engine", "inference", "storage", "util"],
    # Serving tiers: comm is pure framing/codec (util only); handlers dispatch
    # verbs onto the service tier; only service may touch the engine (via
    # core); srv accepts connections and feeds handlers.
    "serve/comm": ["util"],
    "serve/handlers": ["serve/comm", "serve/service", "storage", "util"],
    "serve/service": ["core", "factor", "incremental", "inference", "mining",
                      "serve/comm", "storage", "util"],
    "serve/srv": ["serve/comm", "serve/handlers", "util"],
    # The serve.h umbrella re-exports the whole stack for out-of-tree users.
    "serve": ["serve/comm", "serve/handlers", "serve/service", "serve/srv",
              "util"],
}

# Directories whose files may include anything (consumers of the library).
SINK_DIRS = ("tools", "bench", "tests", "examples")

RULE = "layering"


def module_of(rel_path):
    """Module name for a repo-relative file path, or None for sinks/unknown.

    Returns (module, is_sink)."""
    parts = rel_path.replace(os.sep, "/").split("/")
    if parts[0] in SINK_DIRS:
        return parts[0], True
    if parts[0] != "src" or len(parts) < 3:
        return None, True  # not ours, or a file directly under src/
    if parts[1] == "serve":
        if len(parts) >= 4 and parts[2] in ("comm", "handlers", "service", "srv"):
            return "serve/" + parts[2], False
        return "serve", False
    return parts[1], False


def module_of_include(include_path):
    """Module a quoted include path points into (paths are src-relative)."""
    return module_of("src/" + include_path)[0]


def edge_allowed(from_module, include_path):
    """Shared with tools/concurrency_lint.py: may a file in `from_module`
    include `include_path`? Unknown modules are allowed here — the full
    checker reports them as layering-dag problems instead."""
    to_module = module_of_include(include_path)
    if to_module is None or from_module is None:
        return True
    if from_module == to_module:
        return True
    allowed = MODULE_DAG.get(from_module)
    if allowed is None:
        return True
    return to_module in allowed


def validate_dag():
    """Findings about the declared table itself (unknown refs, cycles)."""
    findings = []
    for mod, deps in MODULE_DAG.items():
        for d in deps:
            if d not in MODULE_DAG:
                findings.append(Finding(
                    "tools/static_analysis/check_layering.py", 0,
                    "layering-dag", f"module '{mod}' depends on unknown "
                    f"module '{d}'"))
    # Cycle check by DFS over the declared edges.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in MODULE_DAG}
    stack = []

    def dfs(m):
        color[m] = GRAY
        stack.append(m)
        for d in MODULE_DAG.get(m, ()):
            if d not in color:
                continue
            if color[d] == GRAY:
                cyc = stack[stack.index(d):] + [d]
                findings.append(Finding(
                    "tools/static_analysis/check_layering.py", 0,
                    "layering-dag",
                    "declared module table is cyclic: " + " -> ".join(cyc)))
            elif color[d] == WHITE:
                dfs(d)
        stack.pop()
        color[m] = BLACK

    for m in MODULE_DAG:
        if color[m] == WHITE:
            dfs(m)
    return findings


def _find_file_cycle(graph):
    """One cycle in the file-level include graph, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def dfs(f):
        color[f] = GRAY
        stack.append(f)
        for g in sorted(graph.get(f, ())):
            st = color.get(g, WHITE)
            if st == GRAY:
                return stack[stack.index(g):] + [g]
            if st == WHITE:
                cyc = dfs(g)
                if cyc:
                    return cyc
        stack.pop()
        color[f] = BLACK
        return None

    for f in sorted(graph):
        if color.get(f, WHITE) == WHITE:
            cyc = dfs(f)
            if cyc:
                return cyc
    return None


def check_file(rel, lines, assume_module=None):
    """Per-file edge validation (also the entry point concurrency_lint and
    the self-test fixtures use). `assume_module` overrides path-derived
    module resolution so fixture files can impersonate a tier."""
    module, is_sink = module_of(rel)
    if assume_module is not None:
        module, is_sink = assume_module, False
    if is_sink or module is None:
        return []
    findings = []
    if module not in MODULE_DAG:
        findings.append(Finding(rel, 1, "layering-dag",
                                f"file's module '{module}' is not declared in "
                                "MODULE_DAG — add it with its dependencies"))
        return findings
    for line_no, inc in project_includes(lines):
        to_module = module_of_include(inc)
        if to_module is None:
            continue  # system-style or unresolvable: not ours to judge
        if edge_allowed(module, inc):
            continue
        if allow_waiver(lines, line_no, RULE):
            continue
        findings.append(Finding(
            rel, line_no, RULE,
            f"module '{module}' must not include '{inc}' (module "
            f"'{to_module}'): allowed direct deps are "
            f"[{', '.join(MODULE_DAG[module]) or 'none'}] — move the "
            "dependency down a layer or route through an allowed tier"))
    return findings


def run(root, sources, assume_module=None):
    findings = list(validate_dag())
    include_graph = {}
    for sf in sources:
        findings += check_file(sf.path, sf.lines, assume_module=assume_module)
        edges = set()
        for _, inc in project_includes(sf.lines):
            target = "src/" + inc
            if os.path.exists(os.path.join(root, target)):
                edges.add(target)
        include_graph[sf.path] = edges
    cyc = _find_file_cycle(include_graph)
    if cyc:
        findings.append(Finding(
            cyc[0], 1, "layering-cycle",
            "include cycle: " + " -> ".join(cyc)))
    return findings


# ---------------------------------------------------------------------------
# Self-test: seeded positive/negative cases per failure class.

SELF_TEST_CASES = [
    # (name, assume_module, content, expected_rule_or_None)
    ("handlers_includes_engine.cc", "serve/handlers",
     '#include "incremental/engine.h"\nvoid h() {}\n', "layering"),
    ("comm_includes_deepdive.cc", "serve/comm",
     '#include "core/deepdive.h"\nvoid h() {}\n', "layering"),
    ("comm_includes_inference.cc", "serve/comm",
     '#include "inference/result_view.h"\nvoid h() {}\n', "layering"),
    ("inference_includes_core.cc", "inference",
     '#include "core/deepdive.h"\nvoid f() {}\n', "layering"),
    ("util_includes_factor.cc", "util",
     '#include "factor/factor_graph.h"\nvoid f() {}\n', "layering"),
    ("core_includes_mining.cc", "core",
     '#include "mining/miner.h"\nvoid f() {}\n', "layering"),
    ("handlers_include_mining.cc", "serve/handlers",
     '#include "mining/candidates.h"\nvoid h() {}\n', "layering"),
    ("mining_above_core_ok.cc", "mining",
     '#include "core/deepdive.h"\n#include "dsl/ast.h"\n'
     '#include "engine/view_maintenance.h"\nvoid m() {}\n', None),
    ("service_owns_miner.cc", "serve/service",
     '#include "mining/miner.h"\nvoid h() {}\n', None),
    ("handlers_ok.cc", "serve/handlers",
     '#include "serve/service/tenant.h"\n#include "serve/comm/messages.h"\n'
     '#include "util/status.h"\nvoid h() {}\n', None),
    ("service_owns_engine.cc", "serve/service",
     '#include "incremental/engine.h"\n#include "core/deepdive.h"\n'
     "void h() {}\n", None),
    ("waived_edge.cc", "serve/comm",
     "// analysis:allow(layering): test-only shim, torn out in PR 10.\n"
     '#include "core/deepdive.h"\nvoid h() {}\n', None),
    ("waiver_needs_rationale.cc", "serve/comm",
     "// analysis:allow(layering):\n"
     '#include "core/deepdive.h"\nvoid h() {}\n', "layering"),
    ("sink_is_free.cc", None,  # resolved by path below: tests/ sink
     '#include "core/deepdive.h"\n#include "incremental/engine.h"\n'
     "int main() {}\n", None),
]


def self_test():
    failures = []
    for name, mod, content, expected in SELF_TEST_CASES:
        rel = ("tests/" + name) if mod is None else ("src/x/" + name)
        found = [f.rule for f in
                 check_file(rel, content.split("\n"), assume_module=mod)]
        if expected is None and found:
            failures.append(f"{name}: expected clean, got {found}")
        elif expected is not None and expected not in found:
            failures.append(f"{name}: expected [{expected}], got {found}")
    # The declared table must itself be a DAG over known modules...
    if validate_dag():
        failures.append("MODULE_DAG: validate_dag() found problems")
    # ...and the validator must bite on a bad table.
    saved = dict(MODULE_DAG)
    try:
        MODULE_DAG["util"] = ["core"]  # closes util -> core -> util
        if not any(f.rule == "layering-dag" for f in validate_dag()):
            failures.append("validate_dag: seeded cycle not detected")
    finally:
        MODULE_DAG.clear()
        MODULE_DAG.update(saved)
    # File-level cycle detector on a synthetic 3-cycle.
    cyc = _find_file_cycle({"a": {"b"}, "b": {"c"}, "c": {"a"}})
    if not cyc:
        failures.append("file cycle: synthetic a->b->c->a not detected")
    acyclic = _find_file_cycle({"a": {"b", "c"}, "b": {"c"}, "c": set()})
    if acyclic:
        failures.append(f"file cycle: false positive on a DAG: {acyclic}")
    return failures
