"""Untrusted-input checker.

Every value decoded from the wire (serve/comm/wire.cc, messages.cc,
frame.cc) and every section read from a graph image
(factor/compiled_graph.cc) is attacker-controlled until it flows through a
bounds-check. This checker does per-function lexical taint tracking:

  sources     r.GetU32()/GetU64()/GetString()/GetBytes() results, frame
              length fields, and header_/hdr-> field reads in the image
              profile
  sanitizers  Need(x), ValidateShallow(...), CheckOffsets(...), an explicit
              comparison of the variable against a bound (`x > kMax`,
              `x <= limit`, `x >= n`, `x < n`) before the sink, or — for
              decode loops — an `ok()` conjunct in the loop condition
              (the codec is sticky-error: every Get inside the loop
              re-checks, so the loop cannot overrun on a lying count)
  sinks       resize(x), reserve(x), substr(_, x) and friends, `new T[x]`,
              container indexing `v[x]`, and `for (...; i < x; ...)` loop
              bounds

A tainted variable reaching a sink with no prior sanitizer in the same
function body is a finding. Waive with
`// analysis:allow(untrusted-input): <rationale>` when the bound is
enforced structurally (and say where).

This is an approximation — same-function, name-level — tuned so the blessed
patterns in the tree (Need-before-substr, `i < n && r.ok()` decode loops,
ValidateShallow-before-reinterpret_cast) pass without waivers and their
absence fails.
"""

import re

from sa_common import Finding, allow_waiver

RULE = "untrusted-input"

# Files under contract, with their taint profile.
SCOPE = {
    "src/serve/comm/wire.cc": "codec",
    "src/serve/comm/messages.cc": "codec",
    "src/serve/comm/frame.cc": "codec",
    "src/factor/compiled_graph.cc": "image",
}

_DECODE_CALL = re.compile(
    r"\b(?:\w+\s*[.\->]+\s*)?(GetU8|GetU16|GetU32|GetU64|GetI64|GetF64|"
    r"GetVarint|GetLength|GetCount|GetString|GetBytes)\s*\(")
_ASSIGN_FROM_DECODE = re.compile(
    r"\b(?:(?:const\s+)?(?:auto|uint8_t|uint16_t|uint32_t|uint64_t|int64_t|"
    r"size_t|std::string)\s+)?([A-Za-z_]\w*)\s*=\s*"
    r"(?:\w+\s*[.\->]+\s*)?(?:GetU8|GetU16|GetU32|GetU64|GetI64|GetVarint|"
    r"GetLength|GetCount)\s*\(")
_IMAGE_SOURCE = re.compile(
    r"\b(?:(?:const\s+)?(?:auto|uint32_t|uint64_t|size_t)\s+)?"
    r"([A-Za-z_]\w*)\s*=\s*(?:header_|hdr|h)\s*(?:->|\.)\s*([A-Za-z_]\w*)")

_SANITIZER_CALLS = ("Need", "ValidateShallow", "CheckOffsets")

_SINKS = [
    ("resize", re.compile(r"\bresize\s*\(\s*([A-Za-z_]\w*)")),
    ("reserve", re.compile(r"\breserve\s*\(\s*([A-Za-z_]\w*)")),
    ("substr", re.compile(r"\bsubstr\s*\([^;)]*?\b([A-Za-z_]\w*)\s*\)")),
    ("new[]", re.compile(r"\bnew\s+[A-Za-z_][\w:<>]*\s*\[\s*([A-Za-z_]\w*)")),
    ("alloc", re.compile(r"\b(?:malloc|calloc|alloca)\s*\(\s*([A-Za-z_]\w*)")),
]
_INDEX_SINK = re.compile(r"\w\s*\[\s*([A-Za-z_]\w*)\s*\]")
_LOOP_BOUND = re.compile(
    r"\bfor\s*\(([^;]*);([^;]*?)<=?\s*([A-Za-z_]\w*)\s*(&&[^;]*)?;")


def _sanitized_before(body, var, offset):
    """Has `var` passed through a bounds check earlier in this body?"""
    prefix = body[:offset]
    for call in _SANITIZER_CALLS:
        if re.search(r"\b" + call + r"\s*\([^;]*\b" + re.escape(var) + r"\b",
                     prefix):
            return True
        # ValidateShallow/CheckOffsets sanitize the whole image, argument
        # list or not: once the header is validated every count it carries
        # is in-bounds by construction.
        if call != "Need" and re.search(r"\b" + call + r"\s*\(", prefix):
            return True
    # Explicit comparison against anything: `var > kMax`, `var >= n`,
    # `var <= cap`, `var < n`, or the symmetric forms.
    v = re.escape(var)
    if re.search(r"\b" + v + r"\s*(?:[<>]=?|==|!=)", prefix):
        return True
    # Lookbehind keeps `hdr->var` and `a >> var` from reading as comparisons.
    if re.search(r"(?<![-<>=])(?:[<>]=?|==|!=)\s*" + v + r"\b", prefix):
        return True
    # min()-clamping counts as a bound.
    if re.search(r"\bmin\s*\([^;]*\b" + v + r"\b", prefix):
        return True
    return False


def _line_at(fn, offset):
    return fn.start_line + fn.body.count("\n", 0, offset)


def _tainted_vars(fn, profile):
    """var -> first-definition offset for attacker-controlled values."""
    tainted = {}
    for m in _ASSIGN_FROM_DECODE.finditer(fn.body):
        tainted.setdefault(m.group(1), m.start())
    if profile == "image":
        for m in _IMAGE_SOURCE.finditer(fn.body):
            # Only count/offset-ish fields are dangerous as sizes.
            field = m.group(2)
            if re.search(r"(count|size|len|off|num|bytes)", field,
                         re.IGNORECASE):
                tainted.setdefault(m.group(1), m.start())
    return tainted


def check_function(fn, lines, profile):
    findings = []
    tainted = _tainted_vars(fn, profile)
    if not tainted:
        return findings

    def emit(offset, var, sink):
        line = _line_at(fn, offset)
        if allow_waiver(lines, line, RULE):
            return
        findings.append(Finding(
            fn.path, line, RULE,
            f"{fn.qual}: untrusted '{var}' reaches {sink} without a prior "
            f"bounds check — guard with Need()/an explicit limit (or "
            f"ValidateShallow for image headers) before using it as a "
            f"size/index"))

    for sink_name, sink_re in _SINKS:
        for m in sink_re.finditer(fn.body):
            var = m.group(1)
            if var not in tainted or m.start() < tainted[var]:
                continue
            if _sanitized_before(fn.body, var, m.start()):
                continue
            emit(m.start(), var, f"{sink_name}({var})")

    for m in _INDEX_SINK.finditer(fn.body):
        var = m.group(1)
        if var not in tainted or m.start() < tainted[var]:
            continue
        if _sanitized_before(fn.body, var, m.start()):
            continue
        emit(m.start(), var, f"index [{var}]")

    for m in _LOOP_BOUND.finditer(fn.body):
        bound = m.group(3)
        if bound not in tainted or m.start() < tainted[bound]:
            continue
        cond_tail = m.group(4) or ""
        # A sticky-error conjunct makes the loop self-limiting: each Get
        # inside re-checks remaining bytes and trips the error state.
        if re.search(r"\bok\s*\(\s*\)", cond_tail) or \
           re.search(r"\bok\s*\(\s*\)", m.group(2)):
            continue
        if _sanitized_before(fn.body, bound, m.start()):
            continue
        emit(m.start(), bound, f"loop bound '{bound}'")

    return findings


def run(root, sources, scope_all=False):
    findings = []
    for sf in sources:
        profile = SCOPE.get(sf.path)
        if profile is None:
            if not scope_all:
                continue
            profile = "codec"
        for fn in sf.functions:
            findings += check_function(fn, sf.lines, profile)
    return findings


# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    # (name, profile, content, expect_finding)
    ("unchecked_resize.cc", "codec", """
namespace deepdive {
struct D {
  void Decode(WireReader& r, std::vector<int>* out) {
    uint32_t n = r.GetU32();
    out->resize(n);
  }
};
}
""", True),
    ("need_before_resize.cc", "codec", """
namespace deepdive {
struct D {
  void Decode(WireReader& r, std::vector<int>* out) {
    uint32_t n = r.GetU32();
    if (!r.Need(n)) return;
    out->resize(n);
  }
};
}
""", False),
    ("limit_before_resize.cc", "codec", """
namespace deepdive {
struct D {
  void Decode(WireReader& r, std::vector<int>* out) {
    uint32_t n = r.GetU32();
    if (n > kMaxItems) return;
    out->resize(n);
  }
};
}
""", False),
    ("unchecked_loop.cc", "codec", """
namespace deepdive {
struct D {
  void Decode(WireReader& r, std::vector<int>* out) {
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n; ++i) out->push_back(r.GetU32());
  }
};
}
""", True),
    ("sticky_ok_loop.cc", "codec", """
namespace deepdive {
struct D {
  void Decode(WireReader& r, std::vector<int>* out) {
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) out->push_back(r.GetU32());
  }
};
}
""", False),
    ("unchecked_substr.cc", "codec", """
namespace deepdive {
struct D {
  std::string Decode(WireReader& r, const std::string& buf) {
    uint32_t len = r.GetU32();
    return buf.substr(0, len);
  }
};
}
""", True),
    ("image_unchecked_header.cc", "image", """
namespace deepdive {
struct G {
  void Load(const Header* hdr, std::vector<int>* v) {
    uint64_t var_count = hdr->var_count;
    v->resize(var_count);
  }
};
}
""", True),
    ("image_validated_header.cc", "image", """
namespace deepdive {
struct G {
  void Load(const Header* hdr, std::vector<int>* v) {
    if (!ValidateShallow(hdr, size_)) return;
    uint64_t var_count = hdr->var_count;
    v->resize(var_count);
  }
};
}
""", False),
    ("waived_sink.cc", "codec", """
namespace deepdive {
struct D {
  void Decode(WireReader& r, std::vector<int>* out) {
    uint32_t n = r.GetU32();
    // analysis:allow(untrusted-input): n is re-checked element-wise by the
    // sticky reader; resize is bounded by kMaxFrameBytes upstream.
    out->resize(n);
  }
};
}
""", False),
]


def self_test():
    import sa_common
    failures = []
    for name, profile, content, expect in SELF_TEST_CASES:
        rel = "src/selftest/" + name
        stripped = sa_common.strip_comments(content)
        sf = sa_common.SourceFile(path=rel, lines=content.split("\n"),
                                  stripped=stripped)
        sf.functions = sa_common.scan_functions(rel, stripped)
        findings = []
        for fn in sf.functions:
            findings += check_function(fn, sf.lines, profile)
        if expect and not findings:
            failures.append(f"{name}: expected a finding, got none")
        if not expect and findings:
            failures.append(f"{name}: expected clean, got "
                            f"{[f.msg for f in findings]}")
    return failures
