"""Lock-order checker.

Builds the global lock-acquisition graph and fails on cycles — each cycle is
a potential deadlock, reported with its witness path and the acquisition
sites that create every edge.

Edge sources, in order of authority:

  1. TSA annotations from PR 6: ACQUIRED_BEFORE/ACQUIRED_AFTER declarations
     on Mutex members are *declared* edges, merged into the graph.
  2. MutexLock RAII sites (and manual .Lock()/.Unlock() pairs) inside
     function bodies: acquiring B while A is held adds edge A -> B.
  3. REQUIRES(mu) on a function means mu is held on entry, so every lock the
     body acquires gets an edge mu -> lock.
  4. Holding a lock across a call into a function that acquires locks
     (directly or transitively) adds edges to the callee's acquisitions.
     Name-level resolution — an overapproximation, which for deadlock
     detection errs on the side of reporting.

Lock identity is `Class::member` when the member is declared in a known
class (global member table scanned from all sources), else the bare
expression. The serving_thread ThreadRole is a fake capability (asserted,
never blocking) and is excluded. Waive a reported edge with
`// analysis:allow(lock-order): <rationale>` at the acquisition site.
"""

import re

from sa_common import Finding, allow_waiver

RULE = "lock-order"

# Capabilities that are roles, not blocking locks.
EXCLUDED_CAPS = {"serving_thread"}

_MUTEX_MEMBER = re.compile(r"\bMutex\s+([A-Za-z_]\w*)\s*"
                           r"((?:GUARDED_BY|ACQUIRED_BEFORE|ACQUIRED_AFTER)"
                           r"\s*\(([^()]*)\))?\s*;")
_MUTEXLOCK = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*([^;()]+?)\s*[)}]\s*;")
_MANUAL_LOCK = re.compile(r"\b([A-Za-z_][\w.\->]*?)\s*[.\->]+\s*Lock\s*\(\s*\)")
_MANUAL_UNLOCK = re.compile(r"\b([A-Za-z_][\w.\->]*?)\s*[.\->]+\s*Unlock\s*\(\s*\)")
_REQUIRES = re.compile(r"\bREQUIRES\s*\(([^()]*)\)")
_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_ACQ_ORDER = re.compile(r"\bMutex\s+([A-Za-z_]\w*)\s*"
                        r"ACQUIRED_(BEFORE|AFTER)\s*\(([^()]*)\)")


def _normalize(expr, cls, member_owners):
    """Canonical lock key for an acquisition expression."""
    e = expr.strip()
    e = e.lstrip("&*").replace("this->", "").strip()
    # obj->mu_ / obj.mu_ : key by the member name, owner-qualified if the
    # member name is declared by exactly one class.
    m = re.search(r"([A-Za-z_]\w*)\s*$", e)
    if not m:
        return None
    member = m.group(1)
    owners = member_owners.get(member, set())
    if e == member and cls and (cls, member) in {(c, member) for c in owners}:
        return f"{cls}::{member}"
    if len(owners) == 1:
        return f"{next(iter(owners))}::{member}"
    return member


def build_member_tables(sources):
    """member name -> set of declaring classes, plus declared order edges."""
    member_owners = {}
    declared_edges = []  # (lock_a, lock_b, path, line) meaning a before b
    for sf in sources:
        # Re-scan with class context: walk functions' files via a light pass.
        cls_stack = []
        depth_stack = []
        depth = 0
        for line_no, line in enumerate(sf.stripped.split("\n"), start=1):
            m = re.search(r"\b(?:class|struct)\s+([A-Za-z_]\w*)"
                          r"(?:\s+final)?(?:\s*:[^;{]*)?\s*\{", line)
            if m:
                cls_stack.append(m.group(1))
                depth_stack.append(depth)
            depth += line.count("{") - line.count("}")
            while depth_stack and depth <= depth_stack[-1]:
                depth_stack.pop()
                cls_stack.pop()
            dm = _MUTEX_MEMBER.search(line)
            if dm and cls_stack:
                member_owners.setdefault(dm.group(1), set()).add(cls_stack[-1])
            om = _ACQ_ORDER.search(line)
            if om and cls_stack:
                cls = cls_stack[-1]
                this_lock = f"{cls}::{om.group(1)}"
                for other in re.findall(r"[A-Za-z_]\w*", om.group(3)):
                    other_lock = f"{cls}::{other}"
                    if om.group(2) == "BEFORE":
                        declared_edges.append((this_lock, other_lock,
                                               sf.path, line_no))
                    else:
                        declared_edges.append((other_lock, this_lock,
                                               sf.path, line_no))
    return member_owners, declared_edges


def _entry_locks(fn, member_owners):
    """Locks held on entry per REQUIRES annotations on the definition."""
    held = []
    for m in _REQUIRES.finditer(fn.decl):
        for expr in m.group(1).split(","):
            key = _normalize(expr, fn.cls, member_owners)
            if key and key.split("::")[-1] not in EXCLUDED_CAPS:
                held.append(key)
    return held


def _body_acquisitions(fn, member_owners):
    """[(offset, key)] for every acquisition in the body, in order."""
    acqs = []
    for m in _MUTEXLOCK.finditer(fn.body):
        key = _normalize(m.group(1), fn.cls, member_owners)
        if key and key.split("::")[-1] not in EXCLUDED_CAPS:
            acqs.append((m.start(), key, "scoped"))
    for m in _MANUAL_LOCK.finditer(fn.body):
        key = _normalize(m.group(1), fn.cls, member_owners)
        if key and key.split("::")[-1] not in EXCLUDED_CAPS:
            acqs.append((m.start(), key, "manual"))
    return sorted(acqs)


def _brace_depth_at(body, offset):
    return body.count("{", 0, offset) - body.count("}", 0, offset)


def _offset_line(fn, offset):
    return fn.start_line + fn.body.count("\n", 0, offset)


def build_lock_graph(sources):
    """edges: {(a, b): (path, line, why)}; functions' direct+transitive
    acquisition sets for call-edge propagation."""
    member_owners, declared_edges = build_member_tables(sources)
    index = {}
    for sf in sources:
        for fn in sf.functions:
            index.setdefault(fn.name, []).append(fn)

    lines_by_path = {sf.path: sf.lines for sf in sources}
    edges = {}

    def add_edge(a, b, path, line, why):
        if a == b:
            return
        if allow_waiver(lines_by_path.get(path, []), line, RULE):
            return
        edges.setdefault((a, b), (path, line, why))

    # Declared ACQUIRED_BEFORE/AFTER edges.
    for a, b, path, line in declared_edges:
        add_edge(a, b, path, line, "declared by annotation")

    # Direct acquisitions per function (for transitive call edges).
    direct = {}
    for sf in sources:
        for fn in sf.functions:
            acqs = _body_acquisitions(fn, member_owners)
            direct[(fn.path, fn.start_line)] = {k for (_, k, _) in acqs}

    # Transitive closure of "may acquire" through calls (name-level).
    may_acquire = dict(direct)
    changed = True
    while changed:
        changed = False
        for sf in sources:
            for fn in sf.functions:
                key = (fn.path, fn.start_line)
                acc = may_acquire[key]
                before = len(acc)
                for m in _CALL.finditer(fn.body):
                    for cand in index.get(m.group(1), []):
                        acc |= may_acquire.get((cand.path, cand.start_line),
                                               set())
                if len(acc) != before:
                    changed = True

    # Intra-function ordering + held-across-call edges.
    for sf in sources:
        for fn in sf.functions:
            entry = _entry_locks(fn, member_owners)
            acqs = _body_acquisitions(fn, member_owners)
            # Held set as (key, depth_acquired, kind, offset); scoped locks
            # release when depth drops below their depth, manual on Unlock.
            held = [(k, -1, "entry", 0) for k in entry]
            events = [(off, "acq", key, kind) for (off, key, kind) in acqs]
            for m in _MANUAL_UNLOCK.finditer(fn.body):
                k = _normalize(m.group(1), fn.cls, member_owners)
                if k:
                    events.append((m.start(), "rel", k, "manual"))
            for m in _CALL.finditer(fn.body):
                events.append((m.start(), "call", m.group(1), ""))
            events.sort()
            for off, kind, name, how in events:
                depth = _brace_depth_at(fn.body, off)
                held = [h for h in held
                        if h[2] != "scoped" or h[1] <= depth]
                if kind == "acq":
                    line = _offset_line(fn, off)
                    for (h, _, _, hoff) in held:
                        add_edge(h, name, fn.path, line,
                                 f"{fn.qual} acquires '{name}' while "
                                 f"holding '{h}'")
                    held.append((name, depth, how, off))
                elif kind == "rel":
                    held = [h for h in held if not (h[0] == name and
                                                    h[2] == "manual")]
                else:  # call while holding
                    if not held:
                        continue
                    if name == "MutexLock" or name in ("Lock", "Unlock"):
                        continue
                    for cand in index.get(name, []):
                        for target in sorted(
                                may_acquire.get((cand.path, cand.start_line),
                                                set())):
                            line = _offset_line(fn, off)
                            for (h, _, _, _) in held:
                                add_edge(h, target, fn.path, line,
                                         f"{fn.qual} calls {name}() (which "
                                         f"may acquire '{target}') while "
                                         f"holding '{h}'")
    return edges


def find_cycles(edges):
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []
    cycles = []

    def dfs(v):
        color[v] = GRAY
        stack.append(v)
        for w in sorted(graph.get(v, ())):
            st = color.get(w, WHITE)
            if st == GRAY:
                cycles.append(stack[stack.index(w):] + [w])
            elif st == WHITE:
                dfs(w)
        stack.pop()
        color[v] = BLACK

    for v in sorted(graph):
        if color.get(v, WHITE) == WHITE:
            dfs(v)
    return cycles


def run(root, sources):
    edges = build_lock_graph(sources)
    findings = []
    for cyc in find_cycles(edges):
        parts = []
        for a, b in zip(cyc, cyc[1:]):
            path, line, why = edges[(a, b)]
            parts.append(f"  {a} -> {b}   ({path}:{line}: {why})")
        anchor = edges[(cyc[0], cyc[1])]
        findings.append(Finding(
            anchor[0], anchor[1], RULE,
            "potential deadlock: lock-order cycle\n" + "\n".join(parts)))
    return findings


# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    ("ab_ba_cycle.cc", """
namespace deepdive {
class Pair {
 public:
  void First() {
    MutexLock la(a_mu_);
    MutexLock lb(b_mu_);
  }
  void Second() {
    MutexLock lb(b_mu_);
    MutexLock la(a_mu_);
  }
 private:
  Mutex a_mu_;
  Mutex b_mu_;
};
}
""", True),
    ("consistent_order.cc", """
namespace deepdive {
class Pair {
 public:
  void First() {
    MutexLock la(a_mu_);
    MutexLock lb(b_mu_);
  }
  void Second() {
    MutexLock la(a_mu_);
    Use();
    MutexLock lb(b_mu_);
  }
  void Use();
 private:
  Mutex a_mu_;
  Mutex b_mu_;
};
}
""", False),
    ("nested_scope_releases.cc", """
namespace deepdive {
class Scoped {
 public:
  void F() {
    {
      MutexLock la(a_mu_);
    }
    MutexLock lb(b_mu_);
  }
  void G() {
    {
      MutexLock lb(b_mu_);
    }
    MutexLock la(a_mu_);
  }
 private:
  Mutex a_mu_;
  Mutex b_mu_;
};
}
""", False),
    ("cross_function_cycle.cc", """
namespace deepdive {
class Deep {
 public:
  void Outer() {
    MutexLock la(a_mu_);
    Inner();
  }
  void Inner() {
    MutexLock lb(b_mu_);
  }
  void Reversed() {
    MutexLock lb(b_mu_);
    MutexLock la(a_mu_);
  }
 private:
  Mutex a_mu_;
  Mutex b_mu_;
};
}
""", True),
    ("requires_cycle.cc", """
namespace deepdive {
class Annotated {
 public:
  void TakesB() REQUIRES(b_mu_) {
    MutexLock la(a_mu_);
  }
  void Other() {
    MutexLock la(a_mu_);
    MutexLock lb(b_mu_);
  }
 private:
  Mutex a_mu_;
  Mutex b_mu_;
};
}
""", True),
    ("declared_before_cycle.cc", """
namespace deepdive {
class Declared {
 public:
  void F() {
    MutexLock lb(b_mu_);
    MutexLock la(a_mu_);
  }
 private:
  Mutex a_mu_ ACQUIRED_BEFORE(b_mu_);
  Mutex b_mu_;
};
}
""", True),
    ("waived_edge.cc", """
namespace deepdive {
class Waived {
 public:
  void First() {
    MutexLock la(a_mu_);
    MutexLock lb(b_mu_);
  }
  void Second() {
    MutexLock lb(b_mu_);
    // analysis:allow(lock-order): b is a leaf trylock here; proven
    // non-blocking by construction in this test fixture.
    MutexLock la(a_mu_);
  }
 private:
  Mutex a_mu_;
  Mutex b_mu_;
};
}
""", False),
]


def self_test():
    import sa_common
    failures = []
    for name, content, expect_cycle in SELF_TEST_CASES:
        rel = "src/selftest/" + name
        stripped = sa_common.strip_comments(content)
        sf = sa_common.SourceFile(path=rel, lines=content.split("\n"),
                                  stripped=stripped)
        sf.functions = sa_common.scan_functions(rel, stripped)
        findings = run(".", [sf])
        if expect_cycle and not findings:
            failures.append(f"{name}: expected a lock-order cycle, got none")
        if not expect_cycle and findings:
            failures.append(f"{name}: expected clean, got "
                            f"{[f.msg.splitlines()[0] for f in findings]}")
    return failures
