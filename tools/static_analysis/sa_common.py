"""Shared C++ parsing layer for the invariant analyzers.

Two front ends feed the same downstream checkers:

  libclang      When python `clang.cindex` is importable and a libclang
                shared object can be located, function extents come from real
                AST cursors (see sa_clang.py). Opt-in via --libclang or
                STATIC_ANALYSIS_LIBCLANG=1; never required.

  token/AST-lite  The canonical, dependency-free path (what CI and ctest
                gate on): comments and string literals are blanked with
                positions preserved, then a brace-matching scanner recovers
                namespace/class context and function bodies. It is an
                approximation — it may merge or miss exotic definitions
                (macro-generated functions, functions returning function
                pointers spelled C-style) — but it is deterministic, and the
                seeded self-tests in each checker pin the constructs the
                project actually uses.

Both front ends produce `Function` records; checkers only consume those plus
the raw line arrays, so they cannot tell which parser ran.
"""

import os
import re
from dataclasses import dataclass, field

SOURCE_EXTS = (".h", ".cc", ".cpp")

# Unified suppression syntax, checked by every analyzer:
#   // analysis:allow(<rule>): <non-empty rationale>
# The rationale is mandatory — a bare waiver is itself a finding.
ALLOW_RE = re.compile(r"analysis:allow\(([\w-]+)\)\s*:\s*(.*)")
ALLOW_WINDOW = 4  # lines above a flagged line that a waiver may sit on


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    msg: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


@dataclass
class Function:
    name: str            # unqualified name, e.g. "Merge"
    qual: str            # qualified, e.g. "GraphDelta::Merge"
    cls: str             # enclosing/explicit class ("" for free functions)
    path: str            # repo-relative path
    start_line: int      # 1-based line of the body's '{'
    end_line: int        # 1-based line of the body's '}'
    body: str            # stripped body text, braces included
    decl: str            # stripped declarator text preceding the body


@dataclass
class SourceFile:
    path: str                       # repo-relative
    lines: list                     # original lines (with comments)
    stripped: str                   # comment/string-blanked text
    functions: list = field(default_factory=list)

    def stripped_lines(self):
        return self.stripped.split("\n")


def strip_comments(text):
    """Blanks comments, string and char literals; preserves every newline and
    column so line/offset arithmetic on the result matches the original."""
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | "str" | "chr" | "raw"
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
                if m:
                    state, raw_delim = "raw", ")" + m.group(1) + '"'
                    out.append('"' + " " * (len(m.group(0)) - 1))
                    i += len(m.group(0))
                    continue
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append("\n")
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = None
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = None
                out.append("'")
            else:
                out.append(" ")
            i += 1
        else:  # raw string
            if text.startswith(raw_delim, i):
                state = None
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


_KEYWORDS_NOT_FUNCS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "static_assert", "decltype", "new", "delete", "defined", "alignas",
    "noexcept", "requires",
}

# Trailing qualifiers that may sit between the parameter list's ')' and the
# body '{' (thread-safety macros included — they look like calls).
_QUAL_RE = re.compile(
    r"(?:\s|const|noexcept|override|final|mutable|try|->\s*[\w:<>,&*\s]+?"
    r"|REQUIRES(?:_SHARED)?\s*\([^()]*\)|EXCLUDES\s*\([^()]*\)"
    r"|ACQUIRE(?:_SHARED)?\s*\([^()]*\)|RELEASE(?:_SHARED|_GENERIC)?\s*\([^()]*\)"
    r"|TRY_ACQUIRE(?:_SHARED)?\s*\([^()]*\)|ASSERT_CAPABILITY\s*\([^()]*\)"
    r"|RETURN_CAPABILITY\s*\([^()]*\)|NO_THREAD_SAFETY_ANALYSIS"
    r"|GUARDED_BY\s*\([^()]*\)|ACQUIRED_(?:BEFORE|AFTER)\s*\([^()]*\))*$")


def _match_brace(text, open_idx):
    """Index of the '}' matching text[open_idx] == '{' (or len(text))."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(text)


def _line_of(text, idx):
    return text.count("\n", 0, idx) + 1


def scan_functions(path, stripped):
    """Token-lite function-definition scanner. Walks top-level and nested
    braces, tracking namespace/class/struct context, and yields a Function for
    every body whose declarator looks like `name(params) quals... {`
    (constructor initializer lists are handled)."""
    functions = []
    stack = []  # per open brace: ("namespace", name) | ("class", name) | ("other", "")
    i = 0
    n = len(stripped)
    while i < n:
        c = stripped[i]
        if c == "}":
            if stack:
                stack.pop()
            i += 1
            continue
        if c != "{":
            i += 1
            continue
        # Classify this brace by what precedes it.
        seg_start = max(stripped.rfind(";", 0, i), stripped.rfind("}", 0, i),
                        stripped.rfind("{", 0, i)) + 1
        decl = stripped[seg_start:i]
        m = re.search(r"\bnamespace\s+([\w:]+)?\s*$", decl)
        if m:
            stack.append(("namespace", m.group(1) or "<anon>"))
            i += 1
            continue
        if re.search(r"\benum\b[^;{}]*$", decl):
            i = _match_brace(stripped, i) + 1  # enum bodies hold no functions
            continue
        m = re.search(r"\b(class|struct|union)\s+([A-Za-z_]\w*)"
                      r"(?:\s+final)?(?:\s*:[^;{]*)?\s*$", decl)
        if m:
            stack.append(("class", m.group(2)))
            i += 1
            continue
        ctx = [(k, name) for (k, name) in stack if k in ("namespace", "class")]
        func = _try_parse_function(path, stripped, decl, seg_start, i, ctx)
        if func is not None:
            functions.append(func)
            i = _match_brace(stripped, i) + 1  # lambdas inside stay in body
            continue
        # Some other brace (initializer list, array init, extern "C", …).
        stack.append(("other", ""))
        i += 1
    return functions


def _try_parse_function(path, stripped, decl, seg_start, brace_idx, ctx):
    d = decl.rstrip()
    # Constructor initializer list: strip `: member(expr), member{expr}...`
    # back to the parameter list's ')'.
    init = re.search(r"\)\s*(?:noexcept(?:\([^()]*\))?\s*)?:"
                     r"(?:\s*[\w:]+\s*(?:\([^()]*\)|\{[^{}]*\})\s*,?)+\s*$", d)
    if init:
        d = d[:init.start() + 1]
    if not d.endswith(")"):
        q = _QUAL_RE.search(d)
        if q is None or q.start() == len(d):
            return None
        d = d[:q.start()].rstrip()
        if not d.endswith(")"):
            return None
    # Find the '(' matching the trailing ')'.
    depth = 0
    open_idx = -1
    for j in range(len(d) - 1, -1, -1):
        if d[j] == ")":
            depth += 1
        elif d[j] == "(":
            depth -= 1
            if depth == 0:
                open_idx = j
                break
    if open_idx <= 0:
        return None
    before = d[:open_idx].rstrip()
    m = re.search(r"((?:~)?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*"
                  r"|operator\s*(?:[^\s\w]{1,3}|\(\)|\[\]|\s+[\w:&*<>]+))$",
                  before)
    if m is None:
        return None
    qual = re.sub(r"\s+", "", m.group(1))
    name = qual.split("::")[-1]
    if name in _KEYWORDS_NOT_FUNCS:
        return None
    # `Type x(args)` variable definitions end with ';', never '{' — safe.
    # But reject control-macros in all caps with no return type and args that
    # look like a macro invocation at namespace scope (e.g. TEST(a, b) is a
    # function-like macro that DOES open a body — treat as a function, its
    # name just isn't meaningful; keep it, harmless).
    cls = qual.split("::")[-2] if "::" in qual else ""
    if not cls:
        for kind, cname in reversed(ctx):
            if kind == "class":
                cls = cname
                break
    body_end = _match_brace(stripped, brace_idx)
    return Function(
        name=name.replace("~", ""),
        qual=(cls + "::" + name) if (cls and "::" not in qual) else qual,
        cls=cls,
        path=path,
        start_line=_line_of(stripped, brace_idx),
        end_line=_line_of(stripped, body_end),
        body=stripped[brace_idx:body_end + 1],
        decl=decl,
    )


def load_source(root, rel, use_libclang=False):
    abspath = os.path.join(root, rel)
    with open(abspath, encoding="utf-8", errors="replace") as f:
        text = f.read()
    stripped = strip_comments(text)
    sf = SourceFile(path=rel, lines=text.split("\n"), stripped=stripped)
    functions = None
    if use_libclang:
        try:
            from sa_clang import scan_functions_clang
            functions = scan_functions_clang(abspath, rel, stripped)
        except Exception:
            functions = None  # any cursor trouble: fall back per-file
    if functions is None:
        functions = scan_functions(rel, stripped)
    sf.functions = functions
    return sf


def collect_sources(root, dirs=("src",), exts=SOURCE_EXTS, files=None,
                    use_libclang=False):
    """Loaded SourceFile records for the tree (or an explicit file list)."""
    if files:
        rels = sorted(files)
    else:
        rels = []
        for d in dirs:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, names in os.walk(base):
                for name in sorted(names):
                    if name.endswith(exts):
                        rels.append(os.path.relpath(
                            os.path.join(dirpath, name), root))
        rels = sorted(rels)
    return [load_source(root, rel, use_libclang=use_libclang)
            for rel in rels]


def allow_waiver(lines, line_no, rule):
    """True if an `analysis:allow(rule): rationale` waiver covers 1-based
    line_no. An allow with an empty rationale never matches (the checkers
    report it separately via `bad_waivers`)."""
    lo = max(0, line_no - 1 - ALLOW_WINDOW)
    for raw in lines[lo:line_no]:
        m = ALLOW_RE.search(raw)
        if m and m.group(1) == rule and m.group(2).strip():
            return True
    return False


# Every rule any analyzer can emit — waivers must name one of these.
KNOWN_RULES = (
    "determinism-unordered", "determinism-fp", "determinism-rng",
    "layering", "layering-cycle", "layering-dag",
    "lock-order", "untrusted-input",
)


def bad_waivers(sources, known_rules=None):
    """Findings for malformed waivers: empty rationale or unknown rule."""
    known = set(known_rules or KNOWN_RULES)
    out = []
    for sf in sources:
        for i, raw in enumerate(sf.lines):
            m = ALLOW_RE.search(raw)
            if not m:
                continue
            rule, rationale = m.group(1), m.group(2).strip()
            if rule not in known:
                out.append(Finding(
                    sf.path, i + 1, "waiver",
                    f"analysis:allow names unknown rule '{rule}'"))
            elif not rationale:
                out.append(Finding(
                    sf.path, i + 1, "waiver",
                    f"analysis:allow({rule}) has no rationale — every "
                    "suppression must say why"))
    return out


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def project_includes(lines):
    """(line_no, include_path) for every quoted #include."""
    out = []
    for i, raw in enumerate(lines):
        m = INCLUDE_RE.match(raw)
        if m:
            out.append((i + 1, m.group(1)))
    return out
