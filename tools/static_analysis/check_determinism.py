"""Determinism checker.

The engine's headline guarantee is bit-identical marginals at any thread or
replica count; incremental-vs-rerun parity tests compare EXPECT_EQ, not NEAR.
Three hazard classes can silently break it:

  determinism-unordered   iterating a std::unordered_{map,set} in a path that
                          emits or merges ordered state (grounding emission,
                          delta merge, marginal/checksum computation) makes
                          output depend on hash-table layout.
  determinism-fp          floating-point accumulation inside a parallel
                          region (a lambda handed to ParallelFor/Submit)
                          makes the sum depend on thread interleaving unless
                          it goes through an ordered shard reduction.
  determinism-rng         an Rng constructed from seed arithmetic
                          (`seed + worker`) instead of Rng::MixSeed keying
                          produces correlated streams — the exact hazard
                          PR 4 fixed by hand; this rule keeps it fixed.

Scope: the first two rules apply to functions *reachable* from the seed set
below (name-level call-graph BFS over the whole library — an
overapproximation, which is the right direction for a determinism gate).
The RNG rule applies to all of src/. Waive with
`// analysis:allow(<rule>): <rationale>`.
"""

import re

from sa_common import Finding, allow_waiver

# Entry points of the grounding emission/merge paths and of marginal /
# checksum computation. Matched as qualified-name suffixes against the
# function index; everything they (transitively) call is in scope.
SCOPE_SEEDS = [
    # grounding emission + merge
    "IncrementalGrounder::GroundAll",
    "IncrementalGrounder::AddFactorRule",
    "IncrementalGrounder::ApplyRelationDeltas",
    "GraphDelta::Merge",
    # marginal and checksum computation
    "DeepDive::PublishView",
    "IncrementalEngine::PublishView",
    "ResultPublisher::Publish",
    "ResultView::Fingerprint",
    "CompiledGraph::Checksum",
    "Fnv1aHash",
    "EstimateMarginals",
    "EstimateMarginalsAuto",
    # rule mining: candidate generation and trial order must be
    # bit-reproducible (the miner's promote/reject decisions — and thus the
    # evolved program itself — depend on it)
    "GenerateCandidates",
    "CooccurrenceStats::Observe",
    "RuleMiner::Mine",
]

# Seed-derivation helpers that implement decorrelated stream keying; an Rng
# constructed through any of these is correctly keyed. (AuxSeed is
# replicated_gibbs' wrapper over MixSeed.)
BLESSED_SEED_HELPERS = ("MixSeed", "AuxSeed")

# Parallel-region introducers: a lambda passed to one of these runs
# concurrently, so FP accumulation inside it is order-sensitive.
PARALLEL_CALLS = ("ParallelFor", "Submit")

# Calls that perform a deterministically-ordered reduction; accumulation
# inside their callees is sequenced by construction.
BLESSED_REDUCERS = ("OrderedShardReduce",)

# Functions that ARE the blessed ordered-reduction helpers: their bodies may
# iterate unordered containers because they exist to impose order (collect,
# sort, then visit). Matched by unqualified name.
BLESSED_ORDERED_HELPERS = ("ForEachOrdered", "OrderedShardReduce")

RULES = ("determinism-unordered", "determinism-fp", "determinism-rng")

_UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set)\s*<")
_RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;:()]*?:\s*([^)]+)\)")
_RNG_CTOR = re.compile(r"\bRng\s+\w+\s*(?:\(([^;]*?)\)|\{([^;]*?)\})\s*[;,)]"
                       r"|=\s*Rng\s*\(([^;]*?)\)\s*;")
_STD_RNG = re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|"
                      r"random_device|default_random_engine)\b")
_SEED_ASSIGN = re.compile(r"[\w.\->]*\bseed\s*(?:[+\-*^|]=|=)\s*([^;=][^;]*);")
_STREAM_MAKER = re.compile(r"\bMakeRngStreams\s*\(([^;()]*)\)")
_FP_DECL = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*[;={]")
_FP_VEC_DECL = re.compile(r"\bvector\s*<\s*(?:double|float)\s*>[&\s]*"
                          r"([A-Za-z_]\w*)\s*[;={(]")
_ACCUM = re.compile(r"([A-Za-z_][\w.\->\[\]]*?)\s*(?:\[[^\]]*\]\s*)?"
                    r"[+\-*]=[^=]")


def _names_after_template(text):
    """Variable names declared with an unordered type: from each
    `unordered_map<`/`unordered_set<` occurrence, balance the angle brackets
    and read the declared identifier(s) after them."""
    names = set()
    for m in _UNORDERED_DECL.finditer(text):
        i = m.end() - 1  # at '<'
        depth = 0
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            elif text[i] in ";{}":
                break
            i += 1
        tail = text[i + 1:i + 200]
        dm = re.match(r"[&\s]*([A-Za-z_]\w*)\s*[;={(,]", tail)
        if dm:
            names.add(dm.group(1))
    return names


def build_symbol_tables(sources):
    """Global (cross-file) tables of unordered-container and floating-point
    variable/member names, keyed by bare name. Name-level resolution is an
    overapproximation shared with the call graph."""
    unordered = set()
    fp = set()
    for sf in sources:
        unordered |= _names_after_template(sf.stripped)
        for m in _FP_DECL.finditer(sf.stripped):
            fp.add(m.group(1))
        for m in _FP_VEC_DECL.finditer(sf.stripped):
            fp.add(m.group(1))
    return unordered, fp


def build_function_index(sources):
    index = {}
    for sf in sources:
        for fn in sf.functions:
            index.setdefault(fn.name, []).append(fn)
    return index


_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def reachable_functions(sources, seeds=SCOPE_SEEDS):
    """Name-level BFS: all Function records reachable from the seed set."""
    index = build_function_index(sources)
    work = []
    seen = set()
    for seed in seeds:
        last = seed.split("::")[-1]
        for fn in index.get(last, []):
            if fn.qual.endswith(seed) or fn.name == seed:
                key = (fn.path, fn.start_line)
                if key not in seen:
                    seen.add(key)
                    work.append(fn)
    reach = []
    while work:
        fn = work.pop()
        reach.append(fn)
        for m in _CALL.finditer(fn.body):
            callee = m.group(1)
            for cand in index.get(callee, []):
                key = (cand.path, cand.start_line)
                if key not in seen:
                    seen.add(key)
                    work.append(cand)
    return reach


def _base_identifier(expr):
    expr = expr.strip().rstrip(")")
    toks = re.findall(r"[A-Za-z_]\w*", expr)
    return toks[-1] if toks else ""


_ORDERED_TYPES = (r"\b(?:std\s*::\s*)?(?:vector|map|set|multimap|multiset|"
                  r"deque|array|span|list|basic_string|string)\s*<")


def _locally_ordered(fn, base):
    """True if this function declares `base` (param or local) with an ordered
    container type — which shadows any same-named unordered member elsewhere
    in the tree (the global table is name-level)."""
    pat = re.compile(_ORDERED_TYPES + r"[^;(){}]{0,200}?[&*\s]" +
                     re.escape(base) + r"\b")
    return bool(pat.search(fn.decl)) or bool(pat.search(fn.body))


def _lambda_regions(body, introducers):
    """(start, end) offsets of lambda bodies inside calls to `introducers`."""
    regions = []
    for name in introducers:
        for m in re.finditer(r"\b" + name + r"\s*\(", body):
            # First lambda after the call site, within its argument list.
            close = m.end()
            lb = body.find("[", m.end())
            if lb < 0:
                continue
            brace = body.find("{", lb)
            if brace < 0:
                continue
            depth = 0
            for j in range(brace, len(body)):
                if body[j] == "{":
                    depth += 1
                elif body[j] == "}":
                    depth -= 1
                    if depth == 0:
                        regions.append((brace, j + 1))
                        break
    return regions


def _offset_line(fn, offset):
    return fn.start_line + fn.body.count("\n", 0, offset)


def check_function(fn, lines, unordered, fp_names):
    findings = []
    if fn.name in BLESSED_ORDERED_HELPERS:
        return findings
    body = fn.body
    local_unordered = unordered | _names_after_template(body)

    # unordered iteration
    for m in _RANGE_FOR.finditer(body):
        expr = m.group(1).strip()
        if "(" in expr or expr.endswith(")"):
            # A call expression: `program_->relations()` returns whatever the
            # method returns; the name-level table only knows *variables*.
            # Accessor-returning-unordered is caught at the accessor's own
            # definition when it is in scope.
            continue
        base = _base_identifier(expr)
        if base in local_unordered and _locally_ordered(fn, base):
            continue  # ordered param/local shadows a same-named member
        if base in local_unordered:
            line = _offset_line(fn, m.start())
            if not allow_waiver(lines, line, "determinism-unordered"):
                findings.append(Finding(
                    fn.path, line, "determinism-unordered",
                    f"{fn.qual}: iterates unordered container '{base}' in a "
                    "determinism-scoped path — iterate a sorted/ordered "
                    "structure, or waive with a rationale proving order "
                    "independence"))

    # parallel FP accumulation
    blessed_spans = _lambda_regions(body, BLESSED_REDUCERS)
    for (s, e) in _lambda_regions(body, PARALLEL_CALLS):
        region = body[s:e]
        for m in _ACCUM.finditer(region):
            target = _base_identifier(m.group(1))
            if target not in fp_names:
                continue
            off = s + m.start()
            if any(bs <= off < be for (bs, be) in blessed_spans):
                continue
            line = _offset_line(fn, off)
            if not allow_waiver(lines, line, "determinism-fp"):
                findings.append(Finding(
                    fn.path, line, "determinism-fp",
                    f"{fn.qual}: floating-point accumulation into '{target}' "
                    "inside a parallel region — reduce per-shard and merge "
                    "in shard order (see util's ordered-reduction pattern), "
                    "or waive with a rationale"))
    if "std::reduce" in body or "std::execution" in body:
        off = body.find("std::reduce")
        if off < 0:
            off = body.find("std::execution")
        line = _offset_line(fn, off)
        if not allow_waiver(lines, line, "determinism-fp"):
            findings.append(Finding(
                fn.path, line, "determinism-fp",
                f"{fn.qual}: std::reduce/parallel execution policies have "
                "unspecified accumulation order"))
    return findings


def check_rng_in_file(sf):
    findings = []
    text = sf.stripped
    for m in _RNG_CTOR.finditer(text):
        args = next((g for g in m.groups() if g is not None), "")
        args = args.strip()
        line = text.count("\n", 0, m.start()) + 1
        if not args:
            continue  # default seed: a fixed constant
        if any(h + "(" in args.replace(" ", "") or h in args
               for h in BLESSED_SEED_HELPERS):
            continue
        # Arithmetic on the seed expression = hand-rolled stream derivation.
        if re.search(r"[+\-^|]|\*(?!\))", args) and not re.fullmatch(
                r"[\d'+\-*^| xXa-fA-F()uUlL]+", args):
            if not allow_waiver(sf.lines, line, "determinism-rng"):
                findings.append(Finding(
                    sf.path, line, "determinism-rng",
                    f"Rng seeded with arithmetic '{args}' — derive stream "
                    "seeds via Rng::MixSeed(seed, stream[, substream]) so "
                    "streams are decorrelated (seed+k collides with seed'=s+1"
                    ", k-1)"))
    # Seed plumbing that bypasses MixSeed: arithmetic assigned into a .seed
    # field, or arithmetic handed to a stream-maker helper. `x.seed = y.seed`
    # (plain copy) is fine; `x.seed = y.seed + k` / `x.seed += k` is the
    # correlated-streams hazard in option-struct form.
    for m in _SEED_ASSIGN.finditer(text):
        rhs = m.group(1)
        line = text.count("\n", 0, m.start()) + 1
        if any(h in rhs for h in BLESSED_SEED_HELPERS):
            continue
        # `->` is member access, not subtraction.
        if not re.search(r"[+\-^|]|\*(?!\))", rhs.replace("->", ".")):
            continue
        if not allow_waiver(sf.lines, line, "determinism-rng"):
            findings.append(Finding(
                sf.path, line, "determinism-rng",
                f"seed derived by arithmetic '{rhs.strip()}' — use "
                "Rng::MixSeed(seed, stream[, substream]) so derived streams "
                "are decorrelated"))
    for m in _STREAM_MAKER.finditer(text):
        args = m.group(1)
        line = text.count("\n", 0, m.start()) + 1
        if any(h in args for h in BLESSED_SEED_HELPERS):
            continue
        if not re.search(r"[+\-^|]|\*(?!\))", args):
            continue
        if not allow_waiver(sf.lines, line, "determinism-rng"):
            findings.append(Finding(
                sf.path, line, "determinism-rng",
                f"stream maker seeded with arithmetic '{args.strip()}' — "
                "key the base seed with Rng::MixSeed first"))
    for m in _STD_RNG.finditer(text):
        line = text.count("\n", 0, m.start()) + 1
        if not allow_waiver(sf.lines, line, "determinism-rng"):
            findings.append(Finding(
                sf.path, line, "determinism-rng",
                "standard-library RNG in engine code — use deepdive::Rng "
                "(explicitly seeded, MixSeed-keyable)"))
    return findings


def run(root, sources, scope_all=False):
    unordered, fp_names = build_symbol_tables(sources)
    by_path = {sf.path: sf for sf in sources}
    if scope_all:
        scoped = [fn for sf in sources for fn in sf.functions]
    else:
        scoped = reachable_functions(sources)
    findings = []
    for fn in scoped:
        sf = by_path.get(fn.path)
        if sf is None:
            continue
        findings += check_function(fn, sf.lines, unordered, fp_names)
    for sf in sources:
        if sf.path.startswith("src"):
            findings += check_rng_in_file(sf)
    # De-duplicate (a function reachable via several seeds is checked once).
    seen = set()
    unique = []
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    ("unordered_iteration.cc", """
#include <unordered_map>
namespace deepdive {
struct IncrementalGrounder {
  std::unordered_map<int, double> weights_;
  void GroundAll() { Helper(); }
  void Helper() {
    for (const auto& [k, v] : weights_) { Emit(k, v); }
  }
  void Emit(int, double);
};
}
""", ["determinism-unordered"]),
    ("unordered_waived.cc", """
#include <unordered_map>
namespace deepdive {
struct IncrementalGrounder {
  std::unordered_map<int, double> weights_;
  void GroundAll() {
    // analysis:allow(determinism-unordered): buckets are per-key
    // independent and sorted before publication below.
    for (const auto& [k, v] : weights_) { Emit(k, v); }
  }
  void Emit(int, double);
};
}
""", []),
    ("unordered_unreachable.cc", """
#include <unordered_map>
namespace deepdive {
struct NotInScope {
  std::unordered_map<int, double> cache_;
  void DebugDump() {
    for (const auto& [k, v] : cache_) { Print(k, v); }
  }
  void Print(int, double);
};
}
""", []),
    ("parallel_fp_accumulation.cc", """
namespace deepdive {
struct Est {
  double total_ = 0.0;
  void EstimateMarginals(ThreadPool& pool) {
    pool.ParallelFor(0, 8, [&](size_t t) { total_ += Chunk(t); });
  }
  double Chunk(size_t);
};
}
""", ["determinism-fp"]),
    ("sequential_fp_ok.cc", """
namespace deepdive {
struct Est {
  void EstimateMarginals() {
    double total = 0.0;
    for (int i = 0; i < 8; ++i) total += Chunk(i);
  }
  double Chunk(int);
};
}
""", []),
    ("rng_arithmetic.cc", """
namespace deepdive {
void Sweep(uint64_t seed, size_t worker) {
  Rng rng(seed + worker);
}
}
""", ["determinism-rng"]),
    ("rng_mixseed_ok.cc", """
namespace deepdive {
void Sweep(uint64_t seed, size_t worker) {
  Rng rng(Rng::MixSeed(seed, worker));
  Rng plain(seed);
}
}
""", []),
    ("std_rng.cc", """
namespace deepdive {
void F() { std::mt19937 gen(42); }
}
""", ["determinism-rng"]),
    # Candidate generation is in scope: hash-order iteration would make the
    # proposal order (and thus the mined program) layout-dependent.
    ("miner_unordered_candidates.cc", """
#include <unordered_map>
namespace deepdive::mining {
struct Gen {
  std::unordered_map<int, int> supports_;
  void GenerateCandidates() {
    for (const auto& [p, s] : supports_) { Emit(p, s); }
  }
  void Emit(int, int);
};
}
""", ["determinism-unordered"]),
    ("miner_ordered_candidates_ok.cc", """
#include <map>
namespace deepdive::mining {
struct Gen {
  std::map<int, int> supports_;
  void GenerateCandidates() {
    for (const auto& [p, s] : supports_) { Emit(p, s); }
  }
  void Emit(int, int);
};
}
""", []),
    # The blessed ordered helper may iterate unordered state: it imposes
    # order itself (collect, sort, visit).
    ("blessed_helper_exempt.cc", """
#include <unordered_map>
namespace deepdive {
struct IncrementalGrounder {
  std::unordered_map<int, double> entries_;
  void GroundAll() { ForEachOrdered(); }
  void ForEachOrdered() {
    for (const auto& [k, v] : entries_) { Collect(k, v); }
  }
  void Collect(int, double);
};
}
""", []),
    ("seed_assign_arith.cc", """
namespace deepdive {
void Configure(GibbsOptions& gopts, uint64_t base, size_t update) {
  gopts.seed = base + update;
}
}
""", ["determinism-rng"]),
    ("seed_assign_ok.cc", """
namespace deepdive {
void Configure(GibbsOptions& gopts, const Options& options, size_t update) {
  gopts.seed = options.seed;
  gopts.seed = Rng::MixSeed(options.seed, update);
}
}
""", []),
    ("stream_maker_arith.cc", """
namespace deepdive {
void Sweep(Sampler& s, uint64_t seed, size_t update) {
  auto rngs = s.MakeRngStreams(seed + update);
}
}
""", ["determinism-rng"]),
    # A vector parameter whose name collides with an unordered member
    # declared elsewhere must not be flagged (local shadows global table).
    ("ordered_param_shadows.cc", """
#include <unordered_map>
namespace deepdive {
struct View { std::unordered_map<int, int> relations; };
struct IncrementalGrounder {
  void GroundAll(const std::vector<int>& relations) {
    for (const int r : relations) { Emit(r); }
  }
  void Emit(int);
};
}
""", []),
    # Range over a call expression is not a variable lookup.
    ("call_range_not_flagged.cc", """
#include <unordered_map>
namespace deepdive {
struct View { std::unordered_map<int, int> relations; };
struct IncrementalGrounder {
  void GroundAll() {
    for (const int r : program_.relations()) { Emit(r); }
  }
  void Emit(int);
};
}
""", []),
]


def self_test():
    import sa_common
    failures = []
    for name, content, expected in SELF_TEST_CASES:
        rel = "src/selftest/" + name
        stripped = sa_common.strip_comments(content)
        sf = sa_common.SourceFile(path=rel, lines=content.split("\n"),
                                  stripped=stripped)
        sf.functions = sa_common.scan_functions(rel, stripped)
        found = sorted({f.rule for f in run(".", [sf])})
        if sorted(expected) != found:
            failures.append(f"{name}: expected {expected}, got {found}")
    return failures
