"""Optional libclang front end.

When python `clang.cindex` is importable (e.g. the CI image's pinned
python3-clang) this module recovers function extents from real AST cursors;
the checkers consume the same `Function` records either way. Import or parse
failure is never an error — sa_common.load_source falls back to the token
scanner per file — so the analyzers have zero hard dependencies beyond the
standard library.
"""

import os

_index = None
_unavailable = False


def _get_index():
    global _index, _unavailable
    if _index is not None or _unavailable:
        return _index
    try:
        from clang import cindex
        for lib in (os.environ.get("STATIC_ANALYSIS_LIBCLANG_SO"),
                    "libclang.so", "libclang-14.so.1", "libclang.so.1"):
            if not lib:
                continue
            try:
                cindex.Config.set_library_file(lib)
                _index = cindex.Index.create()
                return _index
            except Exception:
                cindex.Config.loaded = False
                continue
        _index = cindex.Index.create()  # default search path
        return _index
    except Exception:
        _unavailable = True
        return None


def scan_functions_clang(abspath, rel, stripped):
    """Function records from libclang cursors, or None to fall back."""
    index = _get_index()
    if index is None:
        return None
    from clang import cindex
    from sa_common import Function, _match_brace, _line_of

    src_root = os.path.join(os.path.dirname(os.path.dirname(abspath)), "src")
    args = ["-std=c++20", "-x", "c++", f"-I{src_root}"]
    try:
        tu = index.parse(abspath, args=args,
                         options=cindex.TranslationUnit.PARSE_INCOMPLETE)
    except Exception:
        return None

    line_starts = [0]
    for i, ch in enumerate(stripped):
        if ch == "\n":
            line_starts.append(i + 1)

    kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
             cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
             cindex.CursorKind.FUNCTION_TEMPLATE)
    out = []

    def visit(cursor):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or os.path.abspath(loc.file.name) != abspath:
                continue
            if child.kind in kinds and child.is_definition():
                ext = child.extent
                start = line_starts[min(ext.start.line - 1, len(line_starts) - 1)]
                brace = stripped.find("{", start)
                if brace < 0:
                    continue
                end = _match_brace(stripped, brace)
                cls = ""
                sem = child.semantic_parent
                if sem is not None and sem.kind in (
                        cindex.CursorKind.CLASS_DECL,
                        cindex.CursorKind.STRUCT_DECL):
                    cls = sem.spelling
                name = child.spelling
                out.append(Function(
                    name=name, qual=(cls + "::" + name) if cls else name,
                    cls=cls, path=rel,
                    start_line=_line_of(stripped, brace),
                    end_line=_line_of(stripped, end),
                    body=stripped[brace:end + 1],
                    decl=stripped[start:brace]))
            visit(child)

    visit(tu.cursor)
    return out or None
