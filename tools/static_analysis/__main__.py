"""Invariant analyzer suite driver.

Usage:
    python3 tools/static_analysis [--checker NAME|all] [--self-test]
                                  [--root DIR] [--files F...]
                                  [--assume-module MOD] [--scope-all]

Checkers: determinism, layering, lock-order, untrusted-input.
Exit 0 on clean, 1 on findings (or self-test failure), 2 on usage error.

All checkers run on the pure-python token scanner by default; when the
python clang bindings are importable the libclang front end takes over
transparently (see sa_clang.py). `--self-test` runs each checker's seeded
positive/negative cases instead of scanning the tree.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import sa_common
import check_determinism
import check_layering
import check_lock_order
import check_untrusted

CHECKERS = {
    "determinism": check_determinism,
    "layering": check_layering,
    "lock-order": check_lock_order,
    "untrusted-input": check_untrusted,
}


def main(argv=None):
    ap = argparse.ArgumentParser(prog="static_analysis")
    ap.add_argument("--checker", default="all",
                    choices=sorted(CHECKERS) + ["all"])
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded self-test cases instead of the tree")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two dirs up from this file)")
    ap.add_argument("--files", nargs="*", default=None,
                    help="restrict the scan to these repo-relative files")
    ap.add_argument("--assume-module", default=None,
                    help="treat scanned files as members of this module "
                    "(fixture support for the layering checker)")
    ap.add_argument("--scope-all", action="store_true",
                    help="widen determinism/untrusted checks beyond their "
                    "default scopes (exploratory, not the CI contract)")
    ap.add_argument("--no-libclang", action="store_true",
                    help="force the token scanner even if clang.cindex "
                    "is importable")
    args = ap.parse_args(argv)

    selected = sorted(CHECKERS) if args.checker == "all" else [args.checker]

    if args.self_test:
        failures = []
        for name in selected:
            fails = CHECKERS[name].self_test()
            for f in fails:
                failures.append(f"[{name}] {f}")
            print(f"self-test {name}: "
                  f"{'FAIL' if fails else 'ok'}")
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1 if failures else 0

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    # __file__ is tools/static_analysis/__main__.py -> root is two up.
    root = os.path.abspath(root)

    sources = sa_common.collect_sources(
        root, files=args.files, use_libclang=not args.no_libclang)

    findings = []
    for name in selected:
        mod = CHECKERS[name]
        if name == "layering":
            findings += mod.run(root, sources,
                                assume_module=args.assume_module)
        elif name in ("determinism", "untrusted-input"):
            findings += mod.run(root, sources, scope_all=args.scope_all)
        else:
            findings += mod.run(root, sources)

    # Waiver hygiene: unknown rules and empty rationales are findings too.
    findings += sa_common.bad_waivers(sources, set(sa_common.KNOWN_RULES))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.msg}")
    if findings:
        print(f"\nstatic_analysis: {len(findings)} finding(s) "
              f"across {len(sources)} file(s)", file=sys.stderr)
        return 1
    print(f"static_analysis: clean ({len(sources)} file(s), "
          f"checkers: {', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
