// deepdive_cli — run a DeepDive program from the command line.
//
//   deepdive_cli run PROGRAM.ddl [options]
//   deepdive_cli load-graph SNAPSHOT.bin [options]
//   deepdive_cli client ADDRESS VERB [options]
//
// `run` hosts a single in-process tenant on the same layered serving stack
// deepdive_serve uses: the CLI builds the exact comm::Request structs a
// remote client would send and dispatches them through the shared handler
// tier, so the in-process path and the daemon cannot drift (exports are
// byte-identical either way).
//
// `load-graph` is the cold-start path: it skips the DDL pipeline entirely,
// maps a compiled-graph snapshot written by `run --save-graph` (zero-parse
// mmap attach), and serves marginals straight from the flat CSR kernel. Both
// forms print `compiled graph checksum` and `marginals fingerprint` lines, so
// a save/load pair can be diffed to prove the reloaded snapshot reproduces
// the original process's inference bit-for-bit.
//
// `client` speaks the framed wire protocol to a running deepdive_serve:
//   deepdive_cli client 127.0.0.1:4750 status
//   deepdive_cli client 127.0.0.1:4750 query --tenant kb --relation HasSpouse
//   deepdive_cli client 127.0.0.1:4750 update --tenant kb --rules fe2.ddl
//   deepdive_cli client 127.0.0.1:4750 export --tenant kb --output R=out.tsv
//   deepdive_cli client 127.0.0.1:4750 add-rule --tenant kb --rule 'factor ...'
//   deepdive_cli client 127.0.0.1:4750 retract-rule --tenant kb --label r1
//   deepdive_cli client 127.0.0.1:4750 mine --tenant kb --max-promotions 2
//   deepdive_cli client 127.0.0.1:4750 shutdown
// A shed update (queue at its admission watermark) exits with code 3 and
// prints the server's retry-after hint.
//
// Options (run):
//   --data REL=FILE.tsv     load base rows (repeatable)
//   --output REL=FILE.tsv   write "<marginal>\t<cols...>" for a query
//                           relation (repeatable); default prints to stdout
//   --update FILE.ddl       apply a rule fragment incrementally after the
//                           initial run (repeatable, applied in order)
//   --update-data REL=FILE.tsv  data arriving with the *next* --update
//   --mode incremental|rerun    execution mode (default incremental)
//   --threshold P           only output facts with marginal >= P (default 0)
//   --seed N                RNG seed (default 42)
//   --epochs N              learning epochs (default 60)
//   --threads N             worker threads for grounding and Gibbs
//                           inference/learning (default 1 = sequential;
//                           0 = hardware threads)
//   --replicas R            Gibbs model replicas (NUMA-style replicated
//                           sampling with periodic model averaging; the
//                           thread budget is split across replicas).
//                           Default 1 = single shared world
//   --sync-every N          replica synchronization cadence in sweeps
//                           (consensus averaging + re-seed); 0 disables
//                           periodic synchronization (default 50)
//   --async-materialize     build materializations on a background worker;
//                           updates are served from the previous snapshot
//                           while a rebuild is in flight, and the engine
//                           re-materializes itself when the sample store
//                           runs dry
//   --save-materialization FILE   persist the sample store after
//                           materializing (overnight-materialization reuse)
//   --load-materialization FILE   load a persisted sample store instead of
//                           running the sampling chain (width-checked
//                           against the grounded graph)
//   --save-graph FILE       after the initial run, save the grounded graph
//                           (with learned weights) as a compiled binary
//                           snapshot and print its checksum + marginals
//                           fingerprint (see `load-graph`)
//   --serve-queries N       start N reader threads that hammer the
//                           versioned query API (DeepDive::Query) while the
//                           updates apply, verifying every pinned view's
//                           checksum and epoch monotonicity; per-thread
//                           query counts are reported at the end
//
// Example:
//   deepdive_cli run spouse.ddl --data Person=persons.tsv \
//       --data HasSpouseLabel=labels.tsv --output HasSpouse=out.tsv \
//       --update fe1.ddl --update-data PhraseFeature=phrases.tsv
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "factor/compiled_graph.h"
#include "factor/graph_io.h"
#include "inference/compiled_inference.h"
#include "serve/serve.h"
#include "util/string_util.h"

namespace deepdive::cli {
namespace {

/// The single in-process tenant `run` hosts.
constexpr char kDefaultTenant[] = "default";

struct Args {
  std::string program_path;
  std::vector<std::pair<std::string, std::string>> data;     // relation, file
  std::vector<std::pair<std::string, std::string>> outputs;  // relation, file ("" = stdout)
  struct Update {
    std::string rules_path;  // may be empty (data-only update)
    std::vector<std::pair<std::string, std::string>> data;
  };
  std::vector<Update> updates;
  core::ExecutionMode mode = core::ExecutionMode::kIncremental;
  double threshold = 0.0;
  uint64_t seed = 42;
  size_t epochs = 60;
  size_t threads = 1;
  size_t replicas = 1;
  size_t sync_every = 50;
  bool async_materialize = false;
  std::string save_materialization;
  std::string load_materialization;
  std::string save_graph;
  size_t serve_queries = 0;
};

/// `deepdive_cli load-graph` — cold-start service from a compiled snapshot.
struct LoadGraphArgs {
  std::string snapshot_path;
  uint64_t seed = 42;
  size_t threads = 1;
  size_t replicas = 1;
  size_t sync_every = 50;
  bool use_mmap = true;
  bool validate = true;
};

/// `deepdive_cli client` — one request against a running deepdive_serve.
struct ClientArgs {
  std::string address;
  serve::comm::Request request;
  /// Export only: (relation, file) pairs, aligned with request relations.
  std::vector<std::pair<std::string, std::string>> outputs;
};

void Usage() {
  std::fprintf(stderr,
               "usage: deepdive_cli run PROGRAM.ddl [--data REL=FILE]...\n"
               "       [--output REL[=FILE]]... [--update FILE.ddl]...\n"
               "       [--update-data REL=FILE]... [--mode incremental|rerun]\n"
               "       [--threshold P] [--seed N] [--epochs N] [--threads N]\n"
               "       [--replicas R] [--sync-every N]\n"
               "       [--async-materialize] [--save-materialization FILE]\n"
               "       [--load-materialization FILE] [--save-graph FILE]\n"
               "       [--serve-queries N]\n"
               "   or: deepdive_cli load-graph SNAPSHOT.bin [--seed N]\n"
               "       [--threads N] [--replicas R] [--sync-every N]\n"
               "       [--no-mmap] [--no-validate]\n"
               "   or: deepdive_cli client ADDRESS VERB [--tenant NAME]\n"
               "       (verbs: status, query, update, export, create-tenant,\n"
               "        list-tenants, save-graph, shutdown, add-rule,\n"
               "        retract-rule, mine)\n");
}

StatusOr<std::pair<std::string, std::string>> SplitAssignment(const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return std::make_pair(arg, std::string());
  return std::make_pair(arg.substr(0, eq), arg.substr(eq + 1));
}

/// Parses a bounded numeric flag value. strtoull silently wraps negatives to
/// huge values and accepts trailing garbage; every count-valued flag shares
/// this validation so they cannot drift.
StatusOr<size_t> ParseCount(const std::string& flag, const std::string& v,
                            size_t min, size_t max) {
  char* end = nullptr;
  const size_t value = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || v[0] == '-' || value < min ||
      value > max) {
    return Status::InvalidArgument(flag + " expects a number in [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "], got '" + v + "'");
  }
  return value;
}

StatusOr<Args> ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 3 || std::strcmp(argv[1], "run") != 0) {
    return Status::InvalidArgument("expected: deepdive_cli run PROGRAM.ddl ...");
  }
  args.program_path = argv[2];
  // --update-data attaches to the most recent --update; before any --update
  // it is an error.
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--data") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      if (kv.second.empty()) return Status::InvalidArgument("--data needs REL=FILE");
      args.data.push_back(kv);
    } else if (flag == "--output") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      args.outputs.push_back(kv);
    } else if (flag == "--update") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      Args::Update update;
      update.rules_path = v;
      args.updates.push_back(std::move(update));
    } else if (flag == "--update-data") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      if (kv.second.empty()) {
        return Status::InvalidArgument("--update-data needs REL=FILE");
      }
      if (args.updates.empty()) {
        return Status::InvalidArgument("--update-data must follow an --update");
      }
      args.updates.back().data.push_back(kv);
    } else if (flag == "--mode") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "incremental") {
        args.mode = core::ExecutionMode::kIncremental;
      } else if (v == "rerun") {
        args.mode = core::ExecutionMode::kRerun;
      } else {
        return Status::InvalidArgument("unknown mode '" + v + "'");
      }
    } else if (flag == "--threshold") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.threshold = std::strtod(v.c_str(), nullptr);
    } else if (flag == "--seed") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--epochs") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.epochs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--async-materialize") {
      args.async_materialize = true;
    } else if (flag == "--save-materialization") {
      DD_ASSIGN_OR_RETURN(args.save_materialization, next());
    } else if (flag == "--load-materialization") {
      DD_ASSIGN_OR_RETURN(args.load_materialization, next());
    } else if (flag == "--save-graph") {
      DD_ASSIGN_OR_RETURN(args.save_graph, next());
    } else if (flag == "--threads") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.threads, ParseCount(flag, v, 0, 4096));
    } else if (flag == "--replicas") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.replicas, ParseCount(flag, v, 1, 256));
    } else if (flag == "--sync-every") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.sync_every,
                          ParseCount(flag, v, 0, 1000000000));
    } else if (flag == "--serve-queries") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.serve_queries, ParseCount(flag, v, 1, 1024));
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  if (args.mode == core::ExecutionMode::kRerun &&
      (args.async_materialize || !args.save_materialization.empty() ||
       !args.load_materialization.empty())) {
    return Status::InvalidArgument(
        "--async-materialize/--save-materialization/--load-materialization "
        "require --mode incremental (rerun has no materialization)");
  }
  return args;
}

StatusOr<LoadGraphArgs> ParseLoadGraphArgs(int argc, char** argv) {
  LoadGraphArgs args;
  if (argc < 3) {
    return Status::InvalidArgument("expected: deepdive_cli load-graph SNAPSHOT.bin ...");
  }
  args.snapshot_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--seed") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--threads") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.threads, ParseCount(flag, v, 0, 4096));
    } else if (flag == "--replicas") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.replicas, ParseCount(flag, v, 1, 256));
    } else if (flag == "--sync-every") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.sync_every, ParseCount(flag, v, 0, 1000000000));
    } else if (flag == "--no-mmap") {
      args.use_mmap = false;
    } else if (flag == "--no-validate") {
      args.validate = false;
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  return args;
}

/// Identity lines shared by `run --save-graph` and `load-graph`: the image
/// checksum names the graph state, the fingerprint names the inference
/// result a fresh process must reproduce from it (see
/// inference::CompiledMarginalsFingerprint). Save runs print the values the
/// tenant's writer thread computed; load runs recompute them locally with
/// the same settings — the CI cold-start smoke diffs the two.
void PrintIdentityLines(uint64_t checksum, uint64_t fingerprint) {
  std::printf("compiled graph checksum = %016llx\n",
              static_cast<unsigned long long>(checksum));
  std::printf("marginals fingerprint = %016llx\n",
              static_cast<unsigned long long>(fingerprint));
}

Status RunLoadGraph(const LoadGraphArgs& args) {
  factor::GraphLoadOptions opts;
  opts.use_mmap = args.use_mmap;
  opts.validate = args.validate;
  DD_ASSIGN_OR_RETURN(factor::CompiledGraph graph,
                      factor::LoadCompiledGraph(args.snapshot_path, opts));
  std::fprintf(stderr,
               "loaded compiled snapshot: %zu variables, %zu groups, %zu "
               "clauses (%zu bytes%s)\n",
               graph.NumVariables(), graph.NumGroups(), graph.NumClauses(),
               graph.image_bytes(), args.use_mmap ? ", mmap" : "");
  PrintIdentityLines(graph.Checksum(),
                     inference::CompiledMarginalsFingerprint(
                         graph, args.seed, args.threads, args.replicas,
                         args.sync_every));
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

StatusOr<serve::comm::DataPayload> ReadPayload(const std::string& relation,
                                               const std::string& path) {
  serve::comm::DataPayload payload;
  payload.relation = relation;
  DD_ASSIGN_OR_RETURN(payload.tsv, ReadFile(path));
  return payload;
}

Status WriteChunk(const serve::comm::ExportChunk& chunk,
                  const std::string& path) {
  std::FILE* out = stdout;
  if (!path.empty()) {
    out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return Status::Internal("cannot open '" + path + "'");
  }
  const size_t written =
      std::fwrite(chunk.tsv.data(), 1, chunk.tsv.size(), out);
  if (out != stdout) std::fclose(out);
  if (written != chunk.tsv.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

void PrintUpdateReport(const serve::comm::UpdateResult& report) {
  std::fprintf(stderr,
               "%s: grounding %.3fs, learning %.3fs, inference %.3fs (%s, "
               "epoch %llu)\n",
               report.label.c_str(), report.grounding_seconds,
               report.learning_seconds, report.inference_seconds,
               report.strategy.c_str(),
               static_cast<unsigned long long>(report.epoch));
}

/// The --serve-queries reader pool: N threads hammering the versioned query
/// API while the tenant's writer thread keeps applying updates. Each reader
/// blocks on the publisher's readiness signal (WaitForView — no sleeps, no
/// grace windows), then pins views in a loop and verifies what the API
/// guarantees: the content checksum matches (the epoch's marginals are the
/// ones published with it) and epochs never move backwards for a reader.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<const core::DeepDive> dd, size_t num_readers)
      : dd_(std::move(dd)), counts_(std::make_unique<ReaderStats[]>(num_readers)),
        num_readers_(num_readers) {
    for (size_t t = 0; t < num_readers; ++t) {
      readers_.emplace_back([this, t] { ReadLoop(t); });
    }
  }

  /// Error-path cleanup: readers must be joined before the engine they
  /// query is torn down.
  ~QueryServer() {
    // ordering: relaxed — stop flags are quit hints polled by the readers;
    // join() below is the synchronization point.
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& reader : readers_) {
      if (reader.joinable()) reader.join();
    }
  }

  /// Stops the readers and reports their verified query counts. Returns an
  /// error if any reader observed an inconsistent view. Every reader is
  /// guaranteed at least one pin: ReadLoop blocks on the first-view
  /// publication signal and only then enters its check-then-poll loop.
  Status Finish() {
    // ordering: relaxed — quit hint; join() is the synchronization point
    // that makes every reader's writes visible to the tallies below.
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& reader : readers_) reader.join();
    uint64_t total = 0;
    for (size_t t = 0; t < num_readers_; ++t) {
      // ordering: relaxed — readers are joined; these are quiescent reads.
      const uint64_t queries = counts_[t].queries.load(std::memory_order_relaxed);
      std::fprintf(stderr, "reader %zu: %llu queries, last epoch %llu\n", t,
                   static_cast<unsigned long long>(queries),
                   static_cast<unsigned long long>(
                       counts_[t].last_epoch.load(std::memory_order_relaxed)));
      total += queries;
    }
    std::fprintf(stderr, "served %llu concurrent queries across %zu readers\n",
                 static_cast<unsigned long long>(total), num_readers_);
    // ordering: relaxed — read after join; violation_ is ordered by the
    // same join (written before the failing reader exited).
    if (failed_.load(std::memory_order_relaxed)) {
      return Status::Internal(violation_);
    }
    if (total == 0) return Status::Internal("query readers never ran");
    return Status::OK();
  }

 private:
  struct ReaderStats {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> last_epoch{0};
  };

  void ReadLoop(size_t t) {
    // Explicit readiness signal from the publisher: block until the first
    // real view (epoch >= 1) exists, instead of spinning on the empty
    // epoch-0 view and hoping a grace window at shutdown was long enough.
    dd_->WaitForView(1);
    uint64_t last_epoch = 0;
    // do/while: even if Finish() raced ahead, every reader completes at
    // least one verified pin.
    do {
      const auto view = dd_->Query();
      if (view == nullptr) {
        Fail("Query() returned null");
        break;
      }
      if (view->Fingerprint() != view->content_hash) {
        Fail("pinned view failed its consistency checksum");
        break;
      }
      if (view->epoch < last_epoch) {
        Fail("epoch moved backwards for a reader");
        break;
      }
      last_epoch = view->epoch;
      // Exercise the lookup path too: an indexed entry must answer its own
      // marginal (one relation per pin keeps readers fast).
      const auto first = view->relations.begin();
      if (first != view->relations.end() && !first->second.empty() &&
          view->MarginalOf(first->first, first->second.front().first) !=
              first->second.front().second) {
        Fail("relation index disagrees with MarginalOf");
        break;
      }
      // ordering: relaxed — per-reader monotone counters; published to the
      // main thread by the join in Finish().
      counts_[t].queries.fetch_add(1, std::memory_order_relaxed);
      counts_[t].last_epoch.store(last_epoch, std::memory_order_relaxed);
      // ordering: relaxed — quit hint; a slightly late observation only
      // costs one extra loop iteration.
    } while (!stop_.load(std::memory_order_relaxed));
  }

  void Fail(const std::string& message) {
    bool expected = false;
    // ordering: the CAS (seq_cst default) elects exactly one writer of
    // violation_; the main thread reads it only after joining this thread.
    if (failed_.compare_exchange_strong(expected, true)) violation_ = message;
    // ordering: relaxed — quit hint, as in ReadLoop.
    stop_.store(true, std::memory_order_relaxed);
  }

  /// Shared ownership: the pin keeps the engine alive even if the tenant
  /// stops underneath us.
  std::shared_ptr<const core::DeepDive> dd_;
  // lint:allow(raw-thread) the reader pool exists to exercise the lock-free
  // query surface from plain threads; ThreadPool's task queue would
  // serialize exactly the contention this smoke test is after.
  std::vector<std::thread> readers_;
  std::unique_ptr<ReaderStats[]> counts_;
  size_t num_readers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::string violation_;  // written once under the failed_ CAS
};

/// Dispatches one request against the in-process handler tier, unwrapping
/// the response envelope back into a Status.
StatusOr<serve::comm::Response> DispatchOrError(
    const serve::handlers::Dispatcher& dispatcher,
    serve::comm::Request request) {
  serve::comm::Response response = dispatcher.Dispatch(request);
  if (!response.ok()) return response.ToStatus();
  return response;
}

Status Run(const Args& args) {
  DD_ASSIGN_OR_RETURN(std::string source, ReadFile(args.program_path));

  // The in-process serving stack: one registry, one tenant, the same
  // handler tier deepdive_serve exposes over sockets.
  serve::service::TenantRegistry registry;
  serve::handlers::Dispatcher dispatcher(&registry);

  serve::comm::CreateTenantRequest create;
  create.name = kDefaultTenant;
  create.program = std::move(source);
  create.config.rerun_mode = args.mode == core::ExecutionMode::kRerun;
  create.config.seed = args.seed;
  create.config.epochs = static_cast<uint32_t>(args.epochs);
  create.config.threads = static_cast<uint32_t>(args.threads);
  create.config.replicas = static_cast<uint32_t>(args.replicas);
  create.config.sync_every = static_cast<uint32_t>(args.sync_every);
  create.config.async_materialize = args.async_materialize;
  create.config.save_materialization = args.save_materialization;
  create.config.load_materialization = args.load_materialization;
  for (const auto& [relation, file] : args.data) {
    DD_ASSIGN_OR_RETURN(serve::comm::DataPayload payload,
                        ReadPayload(relation, file));
    create.data.push_back(std::move(payload));
  }

  serve::comm::Request request;
  request.tenant = kDefaultTenant;
  request.body = std::move(create);
  DD_ASSIGN_OR_RETURN(serve::comm::Response created,
                      DispatchOrError(dispatcher, std::move(request)));
  const auto& info = std::get<serve::comm::CreateTenantResult>(created.body);
  std::fprintf(stderr, "grounded: %llu variables, %llu factors\n",
               static_cast<unsigned long long>(info.num_variables),
               static_cast<unsigned long long>(info.num_factors));

  serve::service::TenantInstance* tenant = registry.Find(kDefaultTenant);

  if (!args.save_graph.empty()) {
    // Snapshot Pr(0): the grounded graph with its learned weights, before
    // any incremental updates. A later `load-graph` run must reproduce the
    // same checksum and marginals fingerprint from this file.
    serve::comm::SaveGraphRequest body;
    body.path = args.save_graph;
    request = {};
    request.tenant = kDefaultTenant;
    request.body = std::move(body);
    DD_ASSIGN_OR_RETURN(serve::comm::Response response,
                        DispatchOrError(dispatcher, std::move(request)));
    const auto& saved = std::get<serve::comm::SaveGraphResult>(response.body);
    std::fprintf(stderr, "saved compiled graph snapshot to %s (%llu bytes)\n",
                 args.save_graph.c_str(),
                 static_cast<unsigned long long>(saved.image_bytes));
    PrintIdentityLines(saved.checksum, saved.fingerprint);
  }

  // Concurrent query serving: readers pin versioned views from here on,
  // racing every update and materialization swap below.
  std::unique_ptr<QueryServer> server;
  if (args.serve_queries > 0) {
    server = std::make_unique<QueryServer>(tenant->deepdive(),
                                           args.serve_queries);
  }

  for (size_t u = 0; u < args.updates.size(); ++u) {
    const Args::Update& update = args.updates[u];
    serve::comm::UpdateRequest body;
    body.label = StrFormat("update#%zu", u + 1);
    if (!update.rules_path.empty()) {
      DD_ASSIGN_OR_RETURN(body.rules, ReadFile(update.rules_path));
    }
    for (const auto& [relation, file] : update.data) {
      DD_ASSIGN_OR_RETURN(serve::comm::DataPayload payload,
                          ReadPayload(relation, file));
      body.inserts.push_back(std::move(payload));
    }
    request = {};
    request.tenant = kDefaultTenant;
    request.body = std::move(body);
    DD_ASSIGN_OR_RETURN(serve::comm::Response response,
                        DispatchOrError(dispatcher, std::move(request)));
    PrintUpdateReport(std::get<serve::comm::UpdateResult>(response.body));
  }

  // Drain any background (re)materialization so a failed build — e.g. a
  // --load-materialization store whose width mismatches the graph — surfaces
  // as an error instead of dying silently with the process. The query
  // readers keep racing this drain (and its snapshot install) on purpose.
  // Service-tier call: the embedding host owns the tenant, like the daemon
  // draining on SIGTERM.
  DD_ASSIGN_OR_RETURN(serve::service::TenantInstance::DrainReport drained,
                      tenant->Drain());
  if (args.async_materialize) {
    std::fprintf(stderr,
                 "materialization snapshot generation %llu: %zu samples\n",
                 static_cast<unsigned long long>(drained.snapshot_generation),
                 drained.samples_collected);
  }

  if (server != nullptr) DD_RETURN_IF_ERROR(server->Finish());

  // Export through the handler tier: every chunk comes from one pinned
  // view, byte-identical to what the daemon would serve.
  serve::comm::ExportRequest export_body;
  export_body.threshold = args.threshold;
  for (const auto& [relation, file] : args.outputs) {
    export_body.relations.push_back(relation);
  }
  request = {};
  request.tenant = kDefaultTenant;
  request.body = std::move(export_body);
  DD_ASSIGN_OR_RETURN(serve::comm::Response response,
                      DispatchOrError(dispatcher, std::move(request)));
  const auto& result = std::get<serve::comm::ExportResult>(response.body);
  std::fprintf(stderr, "writing marginals from result view epoch %llu\n",
               static_cast<unsigned long long>(result.epoch));
  if (args.outputs.empty()) {
    // Default: every query relation to stdout, with relation banners.
    for (const serve::comm::ExportChunk& chunk : result.chunks) {
      std::printf("# %s\n", chunk.relation.c_str());
      DD_RETURN_IF_ERROR(WriteChunk(chunk, ""));
    }
  } else {
    for (size_t i = 0; i < args.outputs.size(); ++i) {
      DD_RETURN_IF_ERROR(WriteChunk(result.chunks[i], args.outputs[i].second));
    }
  }
  return Status::OK();
}

StatusOr<ClientArgs> ParseClientArgs(int argc, char** argv) {
  ClientArgs args;
  if (argc < 4) {
    return Status::InvalidArgument(
        "expected: deepdive_cli client ADDRESS VERB ...");
  }
  args.address = argv[2];
  const std::string verb = argv[3];

  std::string tenant;
  std::string label;
  std::string rules_path;
  std::string program_path;
  std::string path;
  std::string relation;
  std::string tuple;
  std::string rule_text;
  double threshold = 0.0;
  std::vector<std::pair<std::string, std::string>> data;
  serve::comm::TenantConfig config;
  std::vector<std::string> relations;
  serve::comm::MineRequest mine;

  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--tenant") {
      DD_ASSIGN_OR_RETURN(tenant, next());
    } else if (flag == "--label") {
      DD_ASSIGN_OR_RETURN(label, next());
    } else if (flag == "--rules") {
      DD_ASSIGN_OR_RETURN(rules_path, next());
    } else if (flag == "--program") {
      DD_ASSIGN_OR_RETURN(program_path, next());
    } else if (flag == "--path") {
      DD_ASSIGN_OR_RETURN(path, next());
    } else if (flag == "--relation") {
      DD_ASSIGN_OR_RETURN(relation, next());
      relations.push_back(relation);
    } else if (flag == "--tuple") {
      DD_ASSIGN_OR_RETURN(tuple, next());
    } else if (flag == "--threshold") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      threshold = std::strtod(v.c_str(), nullptr);
    } else if (flag == "--data") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      if (kv.second.empty()) return Status::InvalidArgument("--data needs REL=FILE");
      data.push_back(kv);
    } else if (flag == "--output") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      args.outputs.push_back(kv);
    } else if (flag == "--seed") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      config.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--epochs") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 1, 1000000));
      config.epochs = static_cast<uint32_t>(n);
    } else if (flag == "--mode") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "incremental") {
        config.rerun_mode = false;
      } else if (v == "rerun") {
        config.rerun_mode = true;
      } else {
        return Status::InvalidArgument("unknown mode '" + v + "'");
      }
    } else if (flag == "--rule") {
      DD_ASSIGN_OR_RETURN(rule_text, next());
    } else if (flag == "--max-promotions") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 1, 1024));
      mine.max_promotions = n;
    } else if (flag == "--min-support") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 0, 1000000000));
      mine.min_support = static_cast<int64_t>(n);
    } else if (flag == "--min-confidence") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      mine.min_confidence = std::strtod(v.c_str(), nullptr);
    } else if (flag == "--max-body-atoms") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 1, 2));
      mine.max_body_atoms = static_cast<uint32_t>(n);
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }

  args.request.tenant = tenant;
  if (verb == "status") {
    args.request.body = serve::comm::StatusRequest{};
  } else if (verb == "query") {
    if (relation.empty()) {
      return Status::InvalidArgument("query needs --relation");
    }
    serve::comm::QueryRequest body;
    body.relation = relation;
    body.tuple_tsv = tuple;
    body.threshold = threshold;
    args.request.body = std::move(body);
  } else if (verb == "update") {
    serve::comm::UpdateRequest body;
    body.label = label;
    if (!rules_path.empty()) {
      DD_ASSIGN_OR_RETURN(body.rules, ReadFile(rules_path));
    }
    for (const auto& [rel, file] : data) {
      DD_ASSIGN_OR_RETURN(serve::comm::DataPayload payload,
                          ReadPayload(rel, file));
      body.inserts.push_back(std::move(payload));
    }
    args.request.body = std::move(body);
  } else if (verb == "export") {
    serve::comm::ExportRequest body;
    body.threshold = threshold;
    body.relations = relations;
    for (const auto& [rel, file] : args.outputs) {
      body.relations.push_back(rel);
    }
    args.request.body = std::move(body);
  } else if (verb == "create-tenant") {
    if (tenant.empty() || program_path.empty()) {
      return Status::InvalidArgument(
          "create-tenant needs --tenant and --program");
    }
    serve::comm::CreateTenantRequest body;
    body.name = tenant;
    DD_ASSIGN_OR_RETURN(body.program, ReadFile(program_path));
    body.config = config;
    for (const auto& [rel, file] : data) {
      DD_ASSIGN_OR_RETURN(serve::comm::DataPayload payload,
                          ReadPayload(rel, file));
      body.data.push_back(std::move(payload));
    }
    args.request.body = std::move(body);
  } else if (verb == "list-tenants") {
    args.request.body = serve::comm::ListTenantsRequest{};
  } else if (verb == "save-graph") {
    if (path.empty()) return Status::InvalidArgument("save-graph needs --path");
    serve::comm::SaveGraphRequest body;
    body.path = path;
    args.request.body = std::move(body);
  } else if (verb == "shutdown") {
    args.request.body = serve::comm::ShutdownRequest{};
  } else if (verb == "add-rule") {
    // The rule fragment travels inline (--rule) or from a file (--rules).
    serve::comm::AddRuleRequest body;
    if (!rule_text.empty()) {
      body.rule = rule_text;
    } else if (!rules_path.empty()) {
      DD_ASSIGN_OR_RETURN(body.rule, ReadFile(rules_path));
    } else {
      return Status::InvalidArgument("add-rule needs --rule or --rules");
    }
    args.request.body = std::move(body);
  } else if (verb == "retract-rule") {
    if (label.empty()) {
      return Status::InvalidArgument("retract-rule needs --label");
    }
    serve::comm::RetractRuleRequest body;
    body.label = label;
    args.request.body = std::move(body);
  } else if (verb == "mine") {
    args.request.body = mine;
  } else {
    return Status::InvalidArgument("unknown client verb '" + verb + "'");
  }
  return args;
}

/// Runs one client request; the returned int is the process exit code
/// (3 = update shed by admission control, retry later).
StatusOr<int> RunClient(const ClientArgs& args) {
  DD_ASSIGN_OR_RETURN(serve::comm::Client client,
                      serve::comm::Client::Dial(args.address));
  DD_ASSIGN_OR_RETURN(serve::comm::Response response,
                      client.Call(args.request));
  if (response.code == StatusCode::kUnavailable) {
    std::fprintf(stderr, "shed: %s (retry after %u ms)\n",
                 response.message.c_str(), response.retry_after_ms);
    return 3;
  }
  if (!response.ok()) return response.ToStatus();

  switch (args.request.verb()) {
    case serve::comm::Verb::kStatus: {
      const auto& result = std::get<serve::comm::StatusResult>(response.body);
      for (const serve::comm::TenantStatus& t : result.tenants) {
        std::printf(
            "tenant %s: ready=%d failed=%d epoch=%llu vars=%llu "
            "applied=%llu shed=%llu queue=%u/%u watermark=%u "
            "program=v%llu rules=%llu fingerprint=%016llx\n",
            t.name.c_str(), t.ready ? 1 : 0, t.failed ? 1 : 0,
            static_cast<unsigned long long>(t.epoch),
            static_cast<unsigned long long>(t.num_variables),
            static_cast<unsigned long long>(t.updates_applied),
            static_cast<unsigned long long>(t.updates_shed), t.queue_depth,
            t.queue_capacity, t.shed_watermark,
            static_cast<unsigned long long>(t.program_version),
            static_cast<unsigned long long>(t.rule_count),
            static_cast<unsigned long long>(t.rules_fingerprint));
      }
      break;
    }
    case serve::comm::Verb::kQuery: {
      const auto& result = std::get<serve::comm::QueryResult>(response.body);
      const auto& body = std::get<serve::comm::QueryRequest>(args.request.body);
      if (body.tuple_tsv.empty()) {
        std::printf("epoch=%llu entries=%llu\n",
                    static_cast<unsigned long long>(result.epoch),
                    static_cast<unsigned long long>(result.entries));
      } else {
        std::printf("epoch=%llu found=%d marginal=%.6f\n",
                    static_cast<unsigned long long>(result.epoch),
                    result.found ? 1 : 0, result.marginal);
      }
      break;
    }
    case serve::comm::Verb::kApplyUpdate:
      PrintUpdateReport(std::get<serve::comm::UpdateResult>(response.body));
      break;
    case serve::comm::Verb::kExport: {
      const auto& result = std::get<serve::comm::ExportResult>(response.body);
      std::fprintf(stderr, "writing marginals from result view epoch %llu\n",
                   static_cast<unsigned long long>(result.epoch));
      // Chunks answering --output flags come after the bare --relation ones
      // (the request was built in that order).
      const size_t named_offset = result.chunks.size() - args.outputs.size();
      for (size_t i = 0; i < result.chunks.size(); ++i) {
        if (i >= named_offset) {
          DD_RETURN_IF_ERROR(WriteChunk(
              result.chunks[i], args.outputs[i - named_offset].second));
        } else {
          std::printf("# %s\n", result.chunks[i].relation.c_str());
          DD_RETURN_IF_ERROR(WriteChunk(result.chunks[i], ""));
        }
      }
      break;
    }
    case serve::comm::Verb::kCreateTenant: {
      const auto& result =
          std::get<serve::comm::CreateTenantResult>(response.body);
      std::printf("created tenant %s: epoch=%llu vars=%llu factors=%llu\n",
                  args.request.tenant.c_str(),
                  static_cast<unsigned long long>(result.epoch),
                  static_cast<unsigned long long>(result.num_variables),
                  static_cast<unsigned long long>(result.num_factors));
      break;
    }
    case serve::comm::Verb::kListTenants: {
      const auto& result =
          std::get<serve::comm::ListTenantsResult>(response.body);
      for (const std::string& name : result.names) {
        std::printf("%s\n", name.c_str());
      }
      break;
    }
    case serve::comm::Verb::kSaveGraph: {
      const auto& result = std::get<serve::comm::SaveGraphResult>(response.body);
      std::fprintf(stderr, "saved compiled graph snapshot (%llu bytes)\n",
                   static_cast<unsigned long long>(result.image_bytes));
      PrintIdentityLines(result.checksum, result.fingerprint);
      break;
    }
    case serve::comm::Verb::kShutdown:
      std::printf("shutdown: %s\n", response.message.c_str());
      break;
    case serve::comm::Verb::kAddRule: {
      const auto& result = std::get<serve::comm::AddRuleResult>(response.body);
      std::printf(
          "added rule %s: epoch=%llu groundings=%llu strategy=%s "
          "program=v%llu rules=%llu fingerprint=%016llx\n",
          result.label.c_str(), static_cast<unsigned long long>(result.epoch),
          static_cast<unsigned long long>(result.grounding_work),
          result.strategy.c_str(),
          static_cast<unsigned long long>(result.program_version),
          static_cast<unsigned long long>(result.rule_count),
          static_cast<unsigned long long>(result.rules_fingerprint));
      break;
    }
    case serve::comm::Verb::kRetractRule: {
      const auto& result =
          std::get<serve::comm::RetractRuleResult>(response.body);
      std::printf(
          "retracted rule: epoch=%llu strategy=%s program=v%llu rules=%llu "
          "fingerprint=%016llx\n",
          static_cast<unsigned long long>(result.epoch),
          result.strategy.c_str(),
          static_cast<unsigned long long>(result.program_version),
          static_cast<unsigned long long>(result.rule_count),
          static_cast<unsigned long long>(result.rules_fingerprint));
      break;
    }
    case serve::comm::Verb::kMine: {
      const auto& result = std::get<serve::comm::MineResult>(response.body);
      std::printf(
          "mined: considered=%llu trialed=%llu promoted=%zu epoch=%llu "
          "program=v%llu rules=%llu\n",
          static_cast<unsigned long long>(result.candidates_considered),
          static_cast<unsigned long long>(result.candidates_trialed),
          result.promoted.size(), static_cast<unsigned long long>(result.epoch),
          static_cast<unsigned long long>(result.program_version),
          static_cast<unsigned long long>(result.rule_count));
      for (const std::string& promoted_label : result.promoted) {
        std::printf("promoted %s\n", promoted_label.c_str());
      }
      break;
    }
  }
  return 0;
}

}  // namespace
}  // namespace deepdive::cli

int main(int argc, char** argv) {
  // No serving-role assertion here anymore: the main thread never touches a
  // DeepDive writer surface — each tenant's dedicated writer thread claims
  // the role inside the service tier.
  if (argc >= 2 && std::strcmp(argv[1], "load-graph") == 0) {
    auto load_args = deepdive::cli::ParseLoadGraphArgs(argc, argv);
    if (!load_args.ok()) {
      std::fprintf(stderr, "%s\n", load_args.status().ToString().c_str());
      deepdive::cli::Usage();
      return 2;
    }
    const deepdive::Status status = deepdive::cli::RunLoadGraph(*load_args);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0) {
    auto client_args = deepdive::cli::ParseClientArgs(argc, argv);
    if (!client_args.ok()) {
      std::fprintf(stderr, "%s\n", client_args.status().ToString().c_str());
      deepdive::cli::Usage();
      return 2;
    }
    const deepdive::StatusOr<int> code = deepdive::cli::RunClient(*client_args);
    if (!code.ok()) {
      std::fprintf(stderr, "%s\n", code.status().ToString().c_str());
      return 1;
    }
    return *code;
  }
  auto args = deepdive::cli::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    deepdive::cli::Usage();
    return 2;
  }
  const deepdive::Status status = deepdive::cli::Run(*args);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
