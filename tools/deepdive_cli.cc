// deepdive_cli — run a DeepDive program from the command line.
//
//   deepdive_cli run PROGRAM.ddl [options]
//   deepdive_cli load-graph SNAPSHOT.bin [options]
//
// The second form is the cold-start path: it skips the DDL pipeline entirely,
// maps a compiled-graph snapshot written by `run --save-graph` (zero-parse
// mmap attach), and serves marginals straight from the flat CSR kernel. Both
// forms print `compiled graph checksum` and `marginals fingerprint` lines, so
// a save/load pair can be diffed to prove the reloaded snapshot reproduces
// the original process's inference bit-for-bit.
//
// Options:
//   --data REL=FILE.tsv     load base rows (repeatable)
//   --output REL=FILE.tsv   write "<marginal>\t<cols...>" for a query
//                           relation (repeatable); default prints to stdout
//   --update FILE.ddl       apply a rule fragment incrementally after the
//                           initial run (repeatable, applied in order)
//   --update-data REL=FILE.tsv  data arriving with the *next* --update
//   --mode incremental|rerun    execution mode (default incremental)
//   --threshold P           only output facts with marginal >= P (default 0)
//   --seed N                RNG seed (default 42)
//   --epochs N              learning epochs (default 60)
//   --threads N             worker threads for grounding and Gibbs
//                           inference/learning (default 1 = sequential;
//                           0 = hardware threads)
//   --replicas R            Gibbs model replicas (NUMA-style replicated
//                           sampling with periodic model averaging; the
//                           thread budget is split across replicas).
//                           Default 1 = single shared world
//   --sync-every N          replica synchronization cadence in sweeps
//                           (consensus averaging + re-seed); 0 disables
//                           periodic synchronization (default 50)
//   --async-materialize     build materializations on a background worker;
//                           updates are served from the previous snapshot
//                           while a rebuild is in flight, and the engine
//                           re-materializes itself when the sample store
//                           runs dry
//   --save-materialization FILE   persist the sample store after
//                           materializing (overnight-materialization reuse)
//   --load-materialization FILE   load a persisted sample store instead of
//                           running the sampling chain (width-checked
//                           against the grounded graph)
//   --save-graph FILE       after the initial run, save the grounded graph
//                           (with learned weights) as a compiled binary
//                           snapshot and print its checksum + marginals
//                           fingerprint (see `load-graph`)
//   --serve-queries N       start N reader threads that hammer the
//                           versioned query API (DeepDive::Query) while the
//                           updates apply, verifying every pinned view's
//                           checksum and epoch monotonicity; per-thread
//                           query counts are reported at the end
//
// Example:
//   deepdive_cli run spouse.ddl --data Person=persons.tsv \
//       --data HasSpouseLabel=labels.tsv --output HasSpouse=out.tsv \
//       --update fe1.ddl --update-data PhraseFeature=phrases.tsv
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/deepdive.h"
#include "factor/compiled_graph.h"
#include "factor/graph_io.h"
#include "inference/replicated_gibbs.h"
#include "inference/result_view.h"
#include "storage/text_io.h"
#include "util/string_util.h"
#include "util/thread_role.h"

namespace deepdive::cli {
namespace {

struct Args {
  std::string program_path;
  std::vector<std::pair<std::string, std::string>> data;     // relation, file
  std::vector<std::pair<std::string, std::string>> outputs;  // relation, file ("" = stdout)
  struct Update {
    std::string rules_path;  // may be empty (data-only update)
    std::vector<std::pair<std::string, std::string>> data;
  };
  std::vector<Update> updates;
  core::ExecutionMode mode = core::ExecutionMode::kIncremental;
  double threshold = 0.0;
  uint64_t seed = 42;
  size_t epochs = 60;
  size_t threads = 1;
  size_t replicas = 1;
  size_t sync_every = 50;
  bool async_materialize = false;
  std::string save_materialization;
  std::string load_materialization;
  std::string save_graph;
  size_t serve_queries = 0;
};

/// `deepdive_cli load-graph` — cold-start service from a compiled snapshot.
struct LoadGraphArgs {
  std::string snapshot_path;
  uint64_t seed = 42;
  size_t threads = 1;
  size_t replicas = 1;
  size_t sync_every = 50;
  bool use_mmap = true;
  bool validate = true;
};

void Usage() {
  std::fprintf(stderr,
               "usage: deepdive_cli run PROGRAM.ddl [--data REL=FILE]...\n"
               "       [--output REL[=FILE]]... [--update FILE.ddl]...\n"
               "       [--update-data REL=FILE]... [--mode incremental|rerun]\n"
               "       [--threshold P] [--seed N] [--epochs N] [--threads N]\n"
               "       [--replicas R] [--sync-every N]\n"
               "       [--async-materialize] [--save-materialization FILE]\n"
               "       [--load-materialization FILE] [--save-graph FILE]\n"
               "       [--serve-queries N]\n"
               "   or: deepdive_cli load-graph SNAPSHOT.bin [--seed N]\n"
               "       [--threads N] [--replicas R] [--sync-every N]\n"
               "       [--no-mmap] [--no-validate]\n");
}

StatusOr<std::pair<std::string, std::string>> SplitAssignment(const std::string& arg) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return std::make_pair(arg, std::string());
  return std::make_pair(arg.substr(0, eq), arg.substr(eq + 1));
}

/// Parses a bounded numeric flag value. strtoull silently wraps negatives to
/// huge values and accepts trailing garbage; every count-valued flag shares
/// this validation so they cannot drift.
StatusOr<size_t> ParseCount(const std::string& flag, const std::string& v,
                            size_t min, size_t max) {
  char* end = nullptr;
  const size_t value = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || v[0] == '-' || value < min ||
      value > max) {
    return Status::InvalidArgument(flag + " expects a number in [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "], got '" + v + "'");
  }
  return value;
}

StatusOr<Args> ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 3 || std::strcmp(argv[1], "run") != 0) {
    return Status::InvalidArgument("expected: deepdive_cli run PROGRAM.ddl ...");
  }
  args.program_path = argv[2];
  // --update-data attaches to the most recent --update; before any --update
  // it is an error.
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--data") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      if (kv.second.empty()) return Status::InvalidArgument("--data needs REL=FILE");
      args.data.push_back(kv);
    } else if (flag == "--output") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      args.outputs.push_back(kv);
    } else if (flag == "--update") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      Args::Update update;
      update.rules_path = v;
      args.updates.push_back(std::move(update));
    } else if (flag == "--update-data") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(auto kv, SplitAssignment(v));
      if (kv.second.empty()) {
        return Status::InvalidArgument("--update-data needs REL=FILE");
      }
      if (args.updates.empty()) {
        return Status::InvalidArgument("--update-data must follow an --update");
      }
      args.updates.back().data.push_back(kv);
    } else if (flag == "--mode") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "incremental") {
        args.mode = core::ExecutionMode::kIncremental;
      } else if (v == "rerun") {
        args.mode = core::ExecutionMode::kRerun;
      } else {
        return Status::InvalidArgument("unknown mode '" + v + "'");
      }
    } else if (flag == "--threshold") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.threshold = std::strtod(v.c_str(), nullptr);
    } else if (flag == "--seed") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--epochs") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.epochs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--async-materialize") {
      args.async_materialize = true;
    } else if (flag == "--save-materialization") {
      DD_ASSIGN_OR_RETURN(args.save_materialization, next());
    } else if (flag == "--load-materialization") {
      DD_ASSIGN_OR_RETURN(args.load_materialization, next());
    } else if (flag == "--save-graph") {
      DD_ASSIGN_OR_RETURN(args.save_graph, next());
    } else if (flag == "--threads") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.threads, ParseCount(flag, v, 0, 4096));
    } else if (flag == "--replicas") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.replicas, ParseCount(flag, v, 1, 256));
    } else if (flag == "--sync-every") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.sync_every,
                          ParseCount(flag, v, 0, 1000000000));
    } else if (flag == "--serve-queries") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.serve_queries, ParseCount(flag, v, 1, 1024));
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  if (args.mode == core::ExecutionMode::kRerun &&
      (args.async_materialize || !args.save_materialization.empty() ||
       !args.load_materialization.empty())) {
    return Status::InvalidArgument(
        "--async-materialize/--save-materialization/--load-materialization "
        "require --mode incremental (rerun has no materialization)");
  }
  return args;
}

StatusOr<LoadGraphArgs> ParseLoadGraphArgs(int argc, char** argv) {
  LoadGraphArgs args;
  if (argc < 3) {
    return Status::InvalidArgument("expected: deepdive_cli load-graph SNAPSHOT.bin ...");
  }
  args.snapshot_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--seed") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--threads") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.threads, ParseCount(flag, v, 0, 4096));
    } else if (flag == "--replicas") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.replicas, ParseCount(flag, v, 1, 256));
    } else if (flag == "--sync-every") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.sync_every, ParseCount(flag, v, 0, 1000000000));
    } else if (flag == "--no-mmap") {
      args.use_mmap = false;
    } else if (flag == "--no-validate") {
      args.validate = false;
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  return args;
}

/// Identity lines shared by `run --save-graph` and `load-graph`: the image
/// checksum names the graph state, the fingerprint names the inference result
/// a fresh process must reproduce from it. Marginals are estimated directly
/// on the compiled kernel (evidence clamped to its label, as the pipeline
/// does), so save/load runs with the same seed/replica settings print
/// identical lines — the CI cold-start smoke diffs them.
void PrintSnapshotIdentity(const factor::CompiledGraph& graph, uint64_t seed,
                           size_t threads, size_t replicas, size_t sync_every) {
  std::printf("compiled graph checksum = %016llx\n",
              static_cast<unsigned long long>(graph.Checksum()));
  inference::GibbsOptions gopts;
  gopts.seed = seed + 1;
  gopts.num_threads = threads;
  gopts.num_replicas = replicas;
  gopts.sync_every_sweeps = sync_every;
  inference::CompiledReplicatedGibbsSampler sampler(&graph, replicas, threads);
  std::vector<double> marginals = sampler.EstimateMarginals(gopts).marginals;
  for (factor::VarId v = 0; v < graph.NumVariables(); ++v) {
    const auto ev = graph.EvidenceValue(v);
    if (ev.has_value()) marginals[v] = *ev ? 1.0 : 0.0;
  }
  const uint64_t fingerprint = factor::Fnv1aHash(
      marginals.data(), marginals.size() * sizeof(double));
  std::printf("marginals fingerprint = %016llx\n",
              static_cast<unsigned long long>(fingerprint));
}

Status RunLoadGraph(const LoadGraphArgs& args) {
  factor::GraphLoadOptions opts;
  opts.use_mmap = args.use_mmap;
  opts.validate = args.validate;
  DD_ASSIGN_OR_RETURN(factor::CompiledGraph graph,
                      factor::LoadCompiledGraph(args.snapshot_path, opts));
  std::fprintf(stderr,
               "loaded compiled snapshot: %zu variables, %zu groups, %zu "
               "clauses (%zu bytes%s)\n",
               graph.NumVariables(), graph.NumGroups(), graph.NumClauses(),
               graph.image_bytes(), args.use_mmap ? ", mmap" : "");
  PrintSnapshotIdentity(graph, args.seed, args.threads, args.replicas,
                        args.sync_every);
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

StatusOr<std::vector<Tuple>> ReadRows(const core::DeepDive& dd,
                                      const std::string& relation,
                                      const std::string& path) {
  const dsl::RelationDecl* decl = dd.program().FindRelation(relation);
  if (decl == nullptr) return Status::NotFound("unknown relation '" + relation + "'");
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::vector<Tuple> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto tuple = ParseTsvLine(decl->schema, line);
    if (!tuple.ok()) {
      return Status::InvalidArgument(StrFormat("%s:%zu: %s", path.c_str(), line_number,
                                               tuple.status().message().c_str()));
    }
    rows.push_back(std::move(tuple).value());
  }
  return rows;
}

Status WriteMarginals(const core::DeepDive& dd,
                      const inference::ResultView& view,
                      const std::string& relation, const std::string& path,
                      double threshold) {
  if (!dd.program().IsQueryRelation(relation)) {
    return Status::InvalidArgument("'" + relation + "' is not a query relation");
  }
  std::FILE* out = stdout;
  if (!path.empty()) {
    out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return Status::Internal("cannot open '" + path + "'");
  }
  const Status status =
      inference::WriteRelationTsv(view, relation, out, threshold);
  if (out != stdout) std::fclose(out);
  return status;
}

/// The --serve-queries reader pool: N threads hammering the versioned query
/// API while the serving thread keeps applying updates. Each reader pins
/// views in a loop and verifies what the API guarantees — the content
/// checksum matches (the epoch's marginals are the ones published with it)
/// and epochs never move backwards for a reader.
class QueryServer {
 public:
  QueryServer(const core::DeepDive& dd, size_t num_readers)
      : dd_(dd), counts_(std::make_unique<ReaderStats[]>(num_readers)),
        num_readers_(num_readers) {
    for (size_t t = 0; t < num_readers; ++t) {
      readers_.emplace_back([this, t] { ReadLoop(t); });
    }
  }

  /// Error-path cleanup: readers must be joined before the DeepDive they
  /// query is torn down.
  ~QueryServer() {
    // ordering: relaxed — stop flags are quit hints polled by the readers;
    // join() below is the synchronization point.
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& reader : readers_) {
      if (reader.joinable()) reader.join();
    }
  }

  /// Stops the readers and reports their verified query counts. Returns an
  /// error if any reader observed an inconsistent view. Before stopping,
  /// grants a short grace window until every reader has pinned at least one
  /// view — on a loaded (or single-core) machine a tiny update stream can
  /// otherwise finish before the readers are even scheduled.
  Status Finish() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    // ordering: relaxed — monotone progress counters / flags used as a
    // polling heartbeat; exact values are read only after join() below.
    while (std::chrono::steady_clock::now() < deadline &&
           !failed_.load(std::memory_order_relaxed)) {
      bool all_started = true;
      for (size_t t = 0; t < num_readers_; ++t) {
        all_started &= counts_[t].queries.load(std::memory_order_relaxed) > 0;
      }
      if (all_started) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // ordering: relaxed — quit hint; join() is the synchronization point
    // that makes every reader's writes visible to the tallies below.
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& reader : readers_) reader.join();
    uint64_t total = 0;
    for (size_t t = 0; t < num_readers_; ++t) {
      // ordering: relaxed — readers are joined; these are quiescent reads.
      const uint64_t queries = counts_[t].queries.load(std::memory_order_relaxed);
      std::fprintf(stderr, "reader %zu: %llu queries, last epoch %llu\n", t,
                   static_cast<unsigned long long>(queries),
                   static_cast<unsigned long long>(
                       counts_[t].last_epoch.load(std::memory_order_relaxed)));
      total += queries;
    }
    std::fprintf(stderr, "served %llu concurrent queries across %zu readers\n",
                 static_cast<unsigned long long>(total), num_readers_);
    // ordering: relaxed — read after join; violation_ is ordered by the
    // same join (written before the failing reader exited).
    if (failed_.load(std::memory_order_relaxed)) {
      return Status::Internal(violation_);
    }
    if (total == 0) return Status::Internal("query readers never ran");
    return Status::OK();
  }

 private:
  struct ReaderStats {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> last_epoch{0};
  };

  void ReadLoop(size_t t) {
    uint64_t last_epoch = 0;
    // ordering: relaxed — quit hint; a slightly late observation only costs
    // one extra loop iteration.
    while (!stop_.load(std::memory_order_relaxed)) {
      const auto view = dd_.Query();
      if (view == nullptr) {
        Fail("Query() returned null");
        break;
      }
      if (view->Fingerprint() != view->content_hash) {
        Fail("pinned view failed its consistency checksum");
        break;
      }
      if (view->epoch < last_epoch) {
        Fail("epoch moved backwards for a reader");
        break;
      }
      last_epoch = view->epoch;
      // Exercise the lookup path too: an indexed entry must answer its own
      // marginal (one relation per pin keeps readers fast).
      const auto first = view->relations.begin();
      if (first != view->relations.end() && !first->second.empty() &&
          view->MarginalOf(first->first, first->second.front().first) !=
              first->second.front().second) {
        Fail("relation index disagrees with MarginalOf");
        break;
      }
      // ordering: relaxed — per-reader monotone counters; published to the
      // main thread by the join in Finish().
      counts_[t].queries.fetch_add(1, std::memory_order_relaxed);
      counts_[t].last_epoch.store(last_epoch, std::memory_order_relaxed);
    }
  }

  void Fail(const std::string& message) {
    bool expected = false;
    // ordering: the CAS (seq_cst default) elects exactly one writer of
    // violation_; the main thread reads it only after joining this thread.
    if (failed_.compare_exchange_strong(expected, true)) violation_ = message;
    // ordering: relaxed — quit hint, as in ReadLoop.
    stop_.store(true, std::memory_order_relaxed);
  }

  const core::DeepDive& dd_;
  // lint:allow(raw-thread) the reader pool exists to exercise the lock-free
  // query surface from plain threads; ThreadPool's task queue would
  // serialize exactly the contention this smoke test is after.
  std::vector<std::thread> readers_;
  std::unique_ptr<ReaderStats[]> counts_;
  size_t num_readers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::string violation_;  // written once under the failed_ CAS
};

Status Run(const Args& args) REQUIRES(serving_thread) {
  DD_ASSIGN_OR_RETURN(std::string source, ReadFile(args.program_path));

  core::DeepDiveConfig config;
  config.mode = args.mode;
  config.seed = args.seed;
  config.learner.epochs = args.epochs;
  // Parallel grounding and inference everywhere a chain or rule evaluation
  // runs (0 = hardware threads).
  config.grounding.num_threads = args.threads;
  config.gibbs.num_threads = args.threads;
  config.learner.num_threads = args.threads;
  config.materialization.num_threads = args.threads;
  config.materialization.variational.num_threads = args.threads;
  config.engine.gibbs.num_threads = args.threads;
  config.engine.rerun_gibbs.num_threads = args.threads;
  // Replicated sampling everywhere a full chain runs: initial/rerun
  // inference, the learner's clamped/free chains, and the materialization
  // chain (confined per-component sweeps keep the shared-world sampler).
  config.gibbs.num_replicas = args.replicas;
  config.gibbs.sync_every_sweeps = args.sync_every;
  config.learner.num_replicas = args.replicas;
  config.materialization.num_replicas = args.replicas;
  config.materialization.sync_every_sweeps = args.sync_every;
  config.engine.rerun_gibbs.num_replicas = args.replicas;
  config.engine.rerun_gibbs.sync_every_sweeps = args.sync_every;
  config.materialization.async = args.async_materialize;
  config.materialization.save_sample_store = args.save_materialization;
  config.materialization.load_sample_store = args.load_materialization;
  DD_ASSIGN_OR_RETURN(std::unique_ptr<core::DeepDive> dd,
                      core::DeepDive::Create(source, config));

  for (const auto& [relation, file] : args.data) {
    DD_ASSIGN_OR_RETURN(std::vector<Tuple> rows, ReadRows(*dd, relation, file));
    DD_RETURN_IF_ERROR(dd->LoadRows(relation, rows));
    std::fprintf(stderr, "loaded %zu rows into %s\n", rows.size(), relation.c_str());
  }

  DD_RETURN_IF_ERROR(dd->Initialize());
  std::fprintf(stderr, "grounded: %zu variables, %zu factors\n",
               dd->ground().graph.NumVariables(), dd->ground().graph.NumActiveClauses());

  if (!args.save_graph.empty()) {
    // Snapshot Pr(0): the grounded graph with its learned weights, before any
    // incremental updates. A later `load-graph` run must reproduce the same
    // checksum and marginals fingerprint from this file.
    const factor::CompiledGraph compiled =
        factor::CompiledGraph::Compile(dd->ground().graph);
    DD_RETURN_IF_ERROR(factor::SaveCompiledGraph(compiled, args.save_graph));
    std::fprintf(stderr, "saved compiled graph snapshot to %s (%zu bytes)\n",
                 args.save_graph.c_str(), compiled.image_bytes());
    PrintSnapshotIdentity(compiled, args.seed, args.threads, args.replicas,
                          args.sync_every);
  }

  // Concurrent query serving: readers pin versioned views from here on,
  // racing every update and materialization swap below.
  std::unique_ptr<QueryServer> server;
  if (args.serve_queries > 0) {
    server = std::make_unique<QueryServer>(*dd, args.serve_queries);
  }

  for (size_t u = 0; u < args.updates.size(); ++u) {
    const Args::Update& update = args.updates[u];
    core::UpdateSpec spec;
    spec.label = StrFormat("update#%zu", u + 1);
    if (!update.rules_path.empty()) {
      DD_ASSIGN_OR_RETURN(spec.add_rules, ReadFile(update.rules_path));
    }
    // Fragment relations must exist before reading their data, so apply a
    // rules-only spec first if the data targets a fragment relation.
    for (const auto& [relation, file] : update.data) {
      if (dd->program().FindRelation(relation) == nullptr && !spec.add_rules.empty()) {
        // Defer: parse data after the fragment is merged. Easiest correct
        // path: apply the rules first, then a second data-only update.
        core::UpdateSpec rules_only;
        rules_only.label = spec.label + "/rules";
        rules_only.add_rules = spec.add_rules;
        DD_RETURN_IF_ERROR(dd->ApplyUpdate(rules_only).status());
        spec.add_rules.clear();
      }
      DD_ASSIGN_OR_RETURN(std::vector<Tuple> rows, ReadRows(*dd, relation, file));
      spec.inserts[relation] = std::move(rows);
    }
    DD_ASSIGN_OR_RETURN(core::UpdateReport report, dd->ApplyUpdate(spec));
    std::fprintf(stderr,
                 "%s: grounding %.3fs, learning %.3fs, inference %.3fs (%s, "
                 "epoch %llu)\n",
                 report.label.c_str(), report.grounding_seconds,
                 report.learning_seconds, report.inference_seconds,
                 incremental::StrategyName(report.strategy),
                 static_cast<unsigned long long>(report.epoch));
  }

  // Drain any background (re)materialization so a failed build — e.g. a
  // --load-materialization store whose width mismatches the graph — surfaces
  // as an error instead of dying silently with the process. The query
  // readers keep racing this drain (and its snapshot install) on purpose.
  if (auto* engine = dd->incremental_engine(); engine != nullptr) {
    DD_RETURN_IF_ERROR(engine->WaitForMaterialization());
    if (args.async_materialize) {
      std::fprintf(stderr, "materialization snapshot generation %llu: %zu samples\n",
                   static_cast<unsigned long long>(engine->snapshot_generation()),
                   dd->materialization_stats().samples_collected);
    }
  }

  if (server != nullptr) DD_RETURN_IF_ERROR(server->Finish());

  // Export from one pinned view: all relations (and the epoch banner) come
  // from the same publication.
  const auto view = dd->Query();
  std::fprintf(stderr, "writing marginals from result view epoch %llu\n",
               static_cast<unsigned long long>(view->epoch));
  if (args.outputs.empty()) {
    // Default: every query relation to stdout.
    for (const dsl::RelationDecl& rel : dd->program().relations()) {
      if (rel.kind == dsl::RelationKind::kQuery) {
        std::printf("# %s\n", rel.name.c_str());
        DD_RETURN_IF_ERROR(
            WriteMarginals(*dd, *view, rel.name, "", args.threshold));
      }
    }
  } else {
    for (const auto& [relation, file] : args.outputs) {
      DD_RETURN_IF_ERROR(
          WriteMarginals(*dd, *view, relation, file, args.threshold));
    }
  }
  return Status::OK();
}

}  // namespace
}  // namespace deepdive::cli

int main(int argc, char** argv) {
  // Trusted root: the CLI process main thread is the serving thread; the
  // QueryServer readers touch only the capability-free Query() surface.
  deepdive::serving_thread.AssertHeld();
  if (argc >= 2 && std::strcmp(argv[1], "load-graph") == 0) {
    auto load_args = deepdive::cli::ParseLoadGraphArgs(argc, argv);
    if (!load_args.ok()) {
      std::fprintf(stderr, "%s\n", load_args.status().ToString().c_str());
      deepdive::cli::Usage();
      return 2;
    }
    const deepdive::Status status = deepdive::cli::RunLoadGraph(*load_args);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }
  auto args = deepdive::cli::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    deepdive::cli::Usage();
    return 2;
  }
  const deepdive::Status status = deepdive::cli::Run(*args);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
