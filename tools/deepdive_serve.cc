// deepdive_serve — the multi-tenant serving daemon.
//
//   deepdive_serve --listen HOST:PORT [options] \
//       --tenant NAME=PROGRAM.ddl [--data NAME:REL=FILE.tsv ...] ...
//
// Hosts N independent KB instances (tenants) behind one framed TCP/Unix
// socket endpoint. Each tenant owns a dedicated writer thread (the engine's
// serving-thread contract) fed by a bounded update queue with admission
// control; queries pin lock-free result views from any connection worker.
// Drive it with `deepdive_cli client ADDRESS VERB ...`, which speaks the
// same request structs through the same handler tier. Besides data updates,
// tenants evolve their *programs* online: the add_rule / retract_rule verbs
// apply first-class rule deltas on the writer thread (grounding only the new
// rule, never re-grounding), and the mine verb runs one incremental
// rule-mining pass (co-occurrence candidates trialed through the engine).
//
// Options:
//   --listen ADDR           "HOST:PORT" (port 0 = ephemeral) or "unix:PATH"
//                           (default 127.0.0.1:0)
//   --port-file FILE        write the bound address to FILE once every
//                           startup tenant is ready and the socket accepts
//                           connections (the readiness signal for scripts)
//   --conn-workers N        connection worker threads (default 8)
//   --tenant NAME=FILE.ddl  host a tenant from a DDL program (repeatable)
//   --data NAME:REL=FILE    base rows for tenant NAME (repeatable)
//   --mode incremental|rerun, --seed N, --epochs N, --threads N,
//   --replicas R, --sync-every N, --async-materialize
//                           engine settings applied to every startup tenant
//   --queue-capacity N      per-tenant update queue capacity (default 64)
//   --shed-watermark N      queue depth at which updates are shed with a
//                           retry-after (default 48; 0 = capacity)
//   --retry-after-ms N      retry hint attached to shed responses
//
// SIGTERM/SIGINT (or the shutdown verb) drain gracefully: stop accepting,
// wake every connection, join all workers, stop every tenant (queue close →
// writer drains queued updates and background materialization), exit 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.h"
#include "util/status.h"

namespace deepdive::serve {
namespace {

/// Async-signal flag: handlers only set it; the main thread polls.
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int) { g_signal = 1; }

struct TenantSpec {
  std::string name;
  std::string program_path;
  std::vector<std::pair<std::string, std::string>> data;  // (relation, file)
};

struct ServeArgs {
  std::string listen = "127.0.0.1:0";
  std::string port_file;
  size_t conn_workers = 8;
  std::vector<TenantSpec> tenants;
  comm::TenantConfig config;
};

void Usage() {
  std::fprintf(stderr,
               "usage: deepdive_serve --listen HOST:PORT --tenant "
               "NAME=PROGRAM.ddl [--data NAME:REL=FILE.tsv] [options]\n");
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

StatusOr<size_t> ParseCount(const std::string& flag, const std::string& value,
                            size_t min, size_t max) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || parsed < min || parsed > max) {
    return Status::InvalidArgument(flag + " expects an integer in [" +
                                   std::to_string(min) + ", " +
                                   std::to_string(max) + "]");
  }
  return static_cast<size_t>(parsed);
}

StatusOr<ServeArgs> ParseArgs(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) return Status::InvalidArgument(flag + " needs a value");
      return std::string(argv[++i]);
    };
    if (flag == "--listen") {
      DD_ASSIGN_OR_RETURN(args.listen, next());
    } else if (flag == "--port-file") {
      DD_ASSIGN_OR_RETURN(args.port_file, next());
    } else if (flag == "--conn-workers") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(args.conn_workers, ParseCount(flag, v, 1, 1024));
    } else if (flag == "--tenant") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      const size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= v.size()) {
        return Status::InvalidArgument("--tenant needs NAME=PROGRAM.ddl");
      }
      TenantSpec spec;
      spec.name = v.substr(0, eq);
      spec.program_path = v.substr(eq + 1);
      args.tenants.push_back(std::move(spec));
    } else if (flag == "--data") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      const size_t colon = v.find(':');
      const size_t eq = v.find('=', colon == std::string::npos ? 0 : colon);
      if (colon == std::string::npos || eq == std::string::npos ||
          colon == 0 || eq <= colon + 1 || eq + 1 >= v.size()) {
        return Status::InvalidArgument("--data needs NAME:REL=FILE.tsv");
      }
      const std::string name = v.substr(0, colon);
      TenantSpec* spec = nullptr;
      for (TenantSpec& t : args.tenants) {
        if (t.name == name) spec = &t;
      }
      if (spec == nullptr) {
        return Status::InvalidArgument("--data for unknown tenant '" + name +
                                       "' (declare --tenant first)");
      }
      spec->data.emplace_back(v.substr(colon + 1, eq - colon - 1),
                              v.substr(eq + 1));
    } else if (flag == "--mode") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "incremental") {
        args.config.rerun_mode = false;
      } else if (v == "rerun") {
        args.config.rerun_mode = true;
      } else {
        return Status::InvalidArgument("unknown mode '" + v + "'");
      }
    } else if (flag == "--seed") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      args.config.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--epochs") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 1, 1000000));
      args.config.epochs = static_cast<uint32_t>(n);
    } else if (flag == "--threads") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 0, 4096));
      args.config.threads = static_cast<uint32_t>(n);
    } else if (flag == "--replicas") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 1, 256));
      args.config.replicas = static_cast<uint32_t>(n);
    } else if (flag == "--sync-every") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 0, 1000000000));
      args.config.sync_every = static_cast<uint32_t>(n);
    } else if (flag == "--async-materialize") {
      args.config.async_materialize = true;
    } else if (flag == "--queue-capacity") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 1, 1000000));
      args.config.queue_capacity = static_cast<uint32_t>(n);
    } else if (flag == "--shed-watermark") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 0, 1000000));
      args.config.shed_watermark = static_cast<uint32_t>(n);
    } else if (flag == "--retry-after-ms") {
      DD_ASSIGN_OR_RETURN(std::string v, next());
      DD_ASSIGN_OR_RETURN(size_t n, ParseCount(flag, v, 0, 3600000));
      args.config.retry_after_ms = static_cast<uint32_t>(n);
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  if (args.tenants.empty()) {
    return Status::InvalidArgument("at least one --tenant is required");
  }
  return args;
}

Status RunDaemon(const ServeArgs& args, std::sig_atomic_t* drain_flag) {
  service::TenantRegistry registry;
  handlers::Dispatcher dispatcher(&registry);
  dispatcher.SetShutdownCallback([drain_flag] { *drain_flag = 1; });

  // Startup tenants go through the same create_tenant handler a remote
  // client would use; the response blocks until each engine is initialized,
  // so the port file below doubles as an "everything ready" signal.
  for (const TenantSpec& spec : args.tenants) {
    comm::CreateTenantRequest create;
    create.name = spec.name;
    DD_ASSIGN_OR_RETURN(create.program, ReadFile(spec.program_path));
    create.config = args.config;
    for (const auto& [relation, file] : spec.data) {
      comm::DataPayload payload;
      payload.relation = relation;
      DD_ASSIGN_OR_RETURN(payload.tsv, ReadFile(file));
      create.data.push_back(std::move(payload));
    }
    comm::Request request;
    request.tenant = spec.name;
    request.body = std::move(create);
    const comm::Response response = dispatcher.Dispatch(request);
    if (!response.ok()) return response.ToStatus();
    const auto& info = std::get<comm::CreateTenantResult>(response.body);
    std::fprintf(stderr,
                 "tenant %s: ready at epoch %llu (%llu variables, %llu "
                 "factors)\n",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(info.epoch),
                 static_cast<unsigned long long>(info.num_variables),
                 static_cast<unsigned long long>(info.num_factors));
  }

  srv::ServerOptions options;
  options.listen_address = args.listen;
  options.connection_workers = args.conn_workers;
  srv::Server server(&dispatcher, options);
  DD_RETURN_IF_ERROR(server.Start());
  std::fprintf(stderr, "deepdive_serve: listening on %s (%zu tenants)\n",
               server.address().c_str(), args.tenants.size());

  if (!args.port_file.empty()) {
    std::ofstream out(args.port_file);
    if (!out) {
      return Status::Internal("cannot write port file '" + args.port_file +
                              "'");
    }
    out << server.address() << "\n";
  }

  while (g_signal == 0 && *drain_flag == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "deepdive_serve: draining...\n");
  server.Stop();
  registry.StopAll();
  std::fprintf(stderr, "deepdive_serve: drained, exiting\n");
  return Status::OK();
}

}  // namespace
}  // namespace deepdive::serve

int main(int argc, char** argv) {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = deepdive::serve::HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  auto args = deepdive::serve::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    deepdive::serve::Usage();
    return 2;
  }
  static std::sig_atomic_t drain_flag = 0;
  const deepdive::Status status =
      deepdive::serve::RunDaemon(*args, &drain_flag);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
