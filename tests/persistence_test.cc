// Persistence round-trips: factor-graph snapshots and sample stores, plus a
// randomized (fuzz-style) round-trip sweep — materializations must survive a
// process restart bit-for-bit.
#include <gtest/gtest.h>

#include <cstdio>

#include "factor/compiled_graph.h"
#include "factor/factor_graph.h"
#include "factor/graph_io.h"
#include "incremental/sample_store.h"
#include "inference/exact.h"
#include "util/random.h"

namespace deepdive {
namespace {

using factor::FactorGraph;
using factor::Semantics;
using factor::VarId;

FactorGraph RandomGraph(uint64_t seed) {
  FactorGraph g;
  Rng rng(seed);
  const size_t n = 2 + rng.UniformInt(12);
  g.AddVariables(n);
  for (VarId v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.3)) g.SetEvidence(v, rng.Bernoulli(0.5));
  }
  const size_t groups = 1 + rng.UniformInt(10);
  for (size_t i = 0; i < groups; ++i) {
    const VarId head = static_cast<VarId>(rng.UniformInt(n));
    const auto w = rng.Bernoulli(0.5)
                       ? g.AddWeight(rng.Uniform(-2, 2), rng.Bernoulli(0.5),
                                     "w" + std::to_string(i))
                       : g.GetOrCreateTiedWeight("tied/" + std::to_string(i % 3));
    const auto sem = static_cast<Semantics>(rng.UniformInt(3));
    const auto grp = g.AddGroup(static_cast<uint32_t>(i), head, w, sem);
    const size_t clauses = rng.UniformInt(4);
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<factor::Literal> lits;
      const size_t n_lits = rng.UniformInt(3);
      for (size_t l = 0; l < n_lits; ++l) {
        const VarId v = static_cast<VarId>(rng.UniformInt(n));
        if (v == head) continue;
        bool dup = false;
        for (const auto& lit : lits) dup |= lit.var == v;
        if (!dup) lits.push_back({v, rng.Bernoulli(0.3)});
      }
      const auto cid = g.AddClause(grp, lits);
      if (rng.Bernoulli(0.15)) g.DeactivateClause(cid);
    }
    if (rng.Bernoulli(0.1)) g.DeactivateGroup(grp);
  }
  return g;
}

class GraphRoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphRoundTripFuzz, SaveLoadPreservesStructureAndDistribution) {
  const std::string path =
      ::testing::TempDir() + "/fuzz_graph_" + std::to_string(GetParam()) + ".bin";
  FactorGraph g = RandomGraph(GetParam());
  ASSERT_TRUE(factor::SaveGraph(g, path).ok());
  auto loaded = factor::LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The v2 format compacts inactive groups/clauses out at save time, so the
  // loaded graph is structurally equal to the compiled round-trip of the
  // original, not to the original itself when it carries retractions.
  EXPECT_TRUE(factor::GraphsEqual(factor::CompiledGraph::Compile(g).Decompile(),
                                  *loaded));

  // Compaction must not change the distribution: the loaded graph's exact
  // marginals match the original's (inactive elements contribute nothing).
  auto e1 = inference::ExactInference(g, 16);
  auto e2 = inference::ExactInference(*loaded, 16);
  if (e1.ok() && e2.ok()) {
    for (VarId v = 0; v < g.NumVariables(); ++v) {
      EXPECT_NEAR(e1->marginals[v], e2->marginals[v], 1e-12);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRoundTripFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                           14, 15, 16));

TEST(SampleStorePersistenceTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/store_roundtrip.bin";
  incremental::SampleStore store;
  Rng rng(5);
  for (int s = 0; s < 50; ++s) {
    BitVector bits(77);
    for (size_t i = 0; i < 77; ++i) bits.Set(i, rng.Bernoulli(0.4));
    store.Add(std::move(bits));
  }
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = incremental::SampleStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 50u);
  EXPECT_EQ(loaded->num_vars(), 77u);
  for (size_t s = 0; s < 50; ++s) {
    EXPECT_EQ(loaded->sample(s), store.sample(s)) << "sample " << s;
  }
  EXPECT_EQ(loaded->remaining(), 50u);  // cursor starts fresh
  std::remove(path.c_str());
}

TEST(SampleStorePersistenceTest, EmptyStoreRoundTrips) {
  const std::string path = ::testing::TempDir() + "/store_empty.bin";
  incremental::SampleStore store;
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = incremental::SampleStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(SampleStorePersistenceTest, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/store_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("garbage", f);
  fclose(f);
  EXPECT_FALSE(incremental::SampleStore::Load(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(incremental::SampleStore::Load("/nonexistent.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(SampleStorePersistenceTest, LoadValidatesExpectedWidth) {
  const std::string path = ::testing::TempDir() + "/store_width_check.bin";
  incremental::SampleStore store;
  store.Add(BitVector(77, true));
  ASSERT_TRUE(store.Save(path).ok());

  EXPECT_TRUE(incremental::SampleStore::Load(path, 77).ok());
  EXPECT_TRUE(incremental::SampleStore::Load(path).ok());  // 0 = unchecked
  const auto mismatched = incremental::SampleStore::Load(path, 64);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SampleStorePersistenceTest, NonMultipleOf8Width) {
  // Widths straddling byte boundaries must round-trip exactly.
  for (size_t width : {1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    const std::string path =
        ::testing::TempDir() + "/store_w" + std::to_string(width) + ".bin";
    incremental::SampleStore store;
    BitVector bits(width, true);
    if (width > 2) bits.Set(width / 2, false);
    store.Add(bits);
    ASSERT_TRUE(store.Save(path).ok());
    auto loaded = incremental::SampleStore::Load(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->sample(0), bits) << "width " << width;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace deepdive
