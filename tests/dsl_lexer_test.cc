#include <gtest/gtest.h>

#include "dsl/lexer.h"

namespace deepdive::dsl {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEof);
}

TEST(LexerTest, Identifiers) {
  auto tokens = Tokenize("Foo bar_1 _x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Foo");
  EXPECT_EQ((*tokens)[1].text, "bar_1");
  EXPECT_EQ((*tokens)[2].text, "_x");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 -7 0.5 -1.5 1e3 2.5e-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -7);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 0.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, -1.5);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[5].double_value, 0.025);
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize(R"("and his wife" "a\"b" "x\ny")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "and his wife");
  EXPECT_EQ((*tokens)[1].text, "a\"b");
  EXPECT_EQ((*tokens)[2].text, "x\ny");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("\"abc").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize(":- : != ! == = <= < >= > ( ) , . ?");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kColonDash, TokenKind::kColon, TokenKind::kNe,
                TokenKind::kBang, TokenKind::kEqEq, TokenKind::kEq, TokenKind::kLe,
                TokenKind::kLt, TokenKind::kGe, TokenKind::kGt, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kComma, TokenKind::kDot,
                TokenKind::kQuestion, TokenKind::kEof}));
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  auto tokens = Tokenize("a # comment with : symbols\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, TracksLineAndColumn) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  auto result = Tokenize("a @ b");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unexpected"), std::string::npos);
}

}  // namespace
}  // namespace deepdive::dsl
