// BoundedQueue: the admission-control primitive under every per-tenant
// update queue. FIFO + blocking semantics, the TryPush shed watermark, the
// Close-then-drain contract, and a multi-producer hammering drill (also run
// under the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"
#include "util/thread_pool.h"

namespace deepdive {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::optional<int>(3));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(BoundedQueueTest, TryPushShedsAtWatermark) {
  BoundedQueue<int> queue(/*capacity=*/8, /*shed_watermark=*/2);
  EXPECT_EQ(queue.capacity(), 8u);
  EXPECT_EQ(queue.shed_watermark(), 2u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  // Depth reached the watermark: admission control sheds, without blocking.
  EXPECT_FALSE(queue.TryPush(3));
  // Blocking Push ignores the watermark (admin headroom) up to capacity.
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.depth(), 3u);
  // Popping below the watermark re-admits.
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_TRUE(queue.TryPush(4));
}

TEST(BoundedQueueTest, WatermarkDefaultsToCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.shed_watermark(), 2u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  // A watermark above capacity clamps to capacity.
  BoundedQueue<int> clamped(2, 99);
  EXPECT_EQ(clamped.shed_watermark(), 2u);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedQueueTest, TryPopNeverBlocks) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  queue.TryPush(5);
  EXPECT_EQ(queue.TryPop(), std::optional<int>(5));
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseDrainsQueuedItemsThenSignalsExit) {
  BoundedQueue<int> queue(4);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // Graceful drain: items enqueued before Close stay poppable...
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  // ...then nullopt is the consumer's exit signal, and new pushes reject.
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_FALSE(queue.Push(3));
  queue.Close();  // idempotent
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(2);
  ThreadPool producer(1, /*inline_when_single=*/false);
  producer.Submit([&queue] { queue.Push(42); });
  // Pop blocks until the producer delivers; no spinning, no timeout.
  EXPECT_EQ(queue.Pop(), std::optional<int>(42));
}

TEST(BoundedQueueTest, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::atomic<bool> pushed{false};
  ThreadPool producer(1, /*inline_when_single=*/false);
  producer.Submit([&queue, &pushed] {
    queue.Push(2);  // blocks: queue is at capacity
    // ordering: relaxed — the consumer only checks this after Pop(2)
    // returns, which the queue's internal mutex already orders.
    pushed.store(true, std::memory_order_relaxed);
  });
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  // ordering: relaxed — see the producer side; Pop returning 2 proves the
  // Push completed.
  EXPECT_TRUE(pushed.load(std::memory_order_relaxed) ||
              queue.depth() == 0);  // Pop(2) implies the Push happened
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  ThreadPool pool(2, /*inline_when_single=*/false);
  std::atomic<int> rejected{0};
  pool.Submit([&queue, &rejected] {
    if (!queue.Push(2)) {
      // ordering: relaxed — tallied after the pool joins.
      rejected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  queue.Close();
  // The queued item still drains; the blocked Push is rejected.
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::nullopt);
  pool.Wait();
  // ordering: relaxed — Wait() joined the producer task.
  EXPECT_EQ(rejected.load(std::memory_order_relaxed), 1);
}

TEST(BoundedQueueTest, ConcurrentProducersSingleConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> queue(/*capacity=*/16, /*shed_watermark=*/8);
  std::atomic<int> shed{0};
  ThreadPool producers(kProducers, /*inline_when_single=*/false);
  for (int p = 0; p < kProducers; ++p) {
    producers.Submit([&queue, &shed] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!queue.TryPush(i)) {
          // ordering: relaxed — tallied after the pool joins.
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Single consumer (the tenant-writer shape): drain until every producer
  // is done and the queue is empty.
  int popped = 0;
  producers.Wait();
  while (queue.TryPop().has_value()) ++popped;
  // ordering: relaxed — producers joined above.
  EXPECT_EQ(popped + shed.load(std::memory_order_relaxed),
            kProducers * kPerProducer);
}

}  // namespace
}  // namespace deepdive
