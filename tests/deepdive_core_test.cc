#include <gtest/gtest.h>

#include "core/deepdive.h"
#include "kbc/metrics.h"
#include "util/thread_role.h"

namespace deepdive::core {
namespace {

constexpr char kProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor PRIOR: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
    weight = -0.5 semantics = logical.
)";

std::vector<Tuple> PersonRows() {
  return {{Value(1), Value(10)}, {Value(1), Value(11)},
          {Value(2), Value(20)}, {Value(2), Value(21)}};
}

std::unique_ptr<DeepDive> Make(ExecutionMode mode) REQUIRES(serving_thread) {
  DeepDiveConfig config = FastTestConfig();
  config.mode = mode;
  auto dd = DeepDive::Create(kProgram, config);
  EXPECT_TRUE(dd.ok()) << dd.status().ToString();
  EXPECT_TRUE(dd.value()->LoadRows("Person", PersonRows()).ok());
  EXPECT_TRUE(dd.value()->Initialize().ok());
  return std::move(dd).value();
}

TEST(DeepDiveTest, CreateRejectsBadProgram) {
  deepdive::serving_thread.AssertHeld();
  EXPECT_FALSE(DeepDive::Create("relation R(", FastTestConfig()).ok());
}

TEST(DeepDiveTest, InitializeGroundsCandidates) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  // 2 sentences x 2 ordered pairs each.
  EXPECT_EQ(dd->ground().graph.NumVariables(), 4u);
  EXPECT_EQ(dd->Marginals("HasSpouse").size(), 4u);
  // The negative prior pushes marginals below 0.5.
  for (const auto& [tuple, p] : dd->Marginals("HasSpouse")) {
    EXPECT_LT(p, 0.5) << TupleToString(tuple);
  }
}

TEST(DeepDiveTest, AnalysisUpdateUsesSamplingWithFullAcceptance) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec spec;
  spec.label = "A1";
  spec.analysis_only = true;
  auto report = dd->ApplyUpdate(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->strategy, incremental::Strategy::kSampling);
  EXPECT_DOUBLE_EQ(report->acceptance_rate, 1.0);
}

TEST(DeepDiveTest, DataUpdateCreatesVariables) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec spec;
  spec.label = "data";
  spec.inserts["Person"] = {{Value(3), Value(30)}, {Value(3), Value(31)}};
  auto report = dd->ApplyUpdate(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(dd->ground().graph.NumVariables(), 6u);
  EXPECT_NE(dd->MarginalOf("HasSpouse", {Value(30), Value(31)}), 0.5);
}

TEST(DeepDiveTest, DataDeletionRetractsCandidates) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec spec;
  spec.label = "del";
  spec.deletes["Person"] = {{Value(2), Value(21)}};
  auto report = dd->ApplyUpdate(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(dd->db()->GetTable("HasSpouse")->Contains({Value(20), Value(21)}));
  // Marginals are still reported for the surviving pairs.
  EXPECT_EQ(dd->Marginals("HasSpouse").size(), 4u);  // index keeps ghosts
}

TEST(DeepDiveTest, RuleUpdateAddsFactorsAndLearns) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec fe;
  fe.label = "FE1";
  fe.add_rules = R"(
    factor FE1: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f).
  )";
  fe.inserts["Feature"] = {{Value(10), Value(11), Value("wife")}};
  ASSERT_TRUE(dd->ApplyUpdate(fe).ok());

  UpdateSpec sup;
  sup.label = "S1";
  sup.inserts["HasSpouseEv"] = {{Value(10), Value(11), Value(true)}};
  auto report = dd->ApplyUpdate(sup);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Evidence variable reports its label.
  EXPECT_DOUBLE_EQ(dd->MarginalOf("HasSpouse", {Value(10), Value(11)}), 1.0);
  EXPECT_GT(report->learning_seconds, 0.0);
}

TEST(DeepDiveTest, RemoveRuleRetractsGroups) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec add;
  add.label = "I1";
  add.add_rules = R"(
    factor BONUS: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
      weight = 3.0 semantics = logical.
  )";
  ASSERT_TRUE(dd->ApplyUpdate(add).ok());
  UpdateSpec remove;
  remove.label = "undo";
  remove.remove_rule_labels = {"BONUS"};
  auto report = dd->ApplyUpdate(remove);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // After retraction the strong positive factor is gone: marginals low again.
  for (const auto& [tuple, p] : dd->Marginals("HasSpouse")) {
    EXPECT_LT(p, 0.6) << TupleToString(tuple);
  }
}

TEST(DeepDiveTest, FragmentRelationWithDataInSameUpdate) {
  deepdive::serving_thread.AssertHeld();
  // Regression: a rule fragment that *declares* a new relation and the same
  // update inserting rows into it — the view layer must pick up the new
  // relation or the rows are silently dropped.
  auto dd = Make(ExecutionMode::kIncremental);
  const size_t factors_before = dd->ground().graph.NumActiveClauses();
  UpdateSpec spec;
  spec.label = "FE-new";
  spec.add_rules = R"(
    relation NewFeature(m1: int, m2: int, f: string).
    factor FEN: HasSpouse(m1, m2) :- NewFeature(m1, m2, f) weight = w(f).
  )";
  spec.inserts["NewFeature"] = {{Value(10), Value(11), Value("wife")},
                                {Value(20), Value(21), Value("wife")}};
  auto report = dd->ApplyUpdate(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(dd->db()->GetTable("NewFeature")->size(), 2u);
  EXPECT_EQ(dd->ground().graph.NumActiveClauses(), factors_before + 2);
}

TEST(DeepDiveTest, UnknownRelationInUpdateIsError) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec spec;
  spec.inserts["Bogus"] = {{Value(1)}};
  EXPECT_FALSE(dd->ApplyUpdate(spec).ok());
}

TEST(DeepDiveTest, UnknownRemoveLabelIsError) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec spec;
  spec.remove_rule_labels = {"NOPE"};
  EXPECT_FALSE(dd->ApplyUpdate(spec).ok());
}

TEST(DeepDiveTest, RerunModeProducesSimilarMarginals) {
  deepdive::serving_thread.AssertHeld();
  auto inc = Make(ExecutionMode::kIncremental);
  auto rerun = Make(ExecutionMode::kRerun);
  UpdateSpec spec;
  spec.label = "FE1";
  spec.add_rules = R"(
    factor FE1: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f).
  )";
  spec.inserts["Feature"] = {{Value(10), Value(11), Value("wife")},
                             {Value(20), Value(21), Value("met")}};
  ASSERT_TRUE(inc->ApplyUpdate(spec).ok());
  ASSERT_TRUE(rerun->ApplyUpdate(spec).ok());

  std::vector<double> pi, pr;
  for (const auto& [tuple, p] : inc->Marginals("HasSpouse")) {
    pi.push_back(p);
    pr.push_back(rerun->MarginalOf("HasSpouse", tuple));
  }
  // Same facts at similar probabilities (Section 4.2's parity check).
  EXPECT_LT(kbc::MeanSymmetricKL(pi, pr), 0.25);
}

TEST(DeepDiveTest, HistoryAccumulates) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  UpdateSpec spec;
  spec.label = "A1";
  spec.analysis_only = true;
  ASSERT_TRUE(dd->ApplyUpdate(spec).ok());
  ASSERT_TRUE(dd->ApplyUpdate(spec).ok());
  ASSERT_EQ(dd->history().size(), 2u);
  EXPECT_EQ(dd->history()[0].label, "A1");
  EXPECT_GT(dd->history()[0].graph_variables, 0u);
}

TEST(DeepDiveTest, MaterializationStatsPopulated) {
  deepdive::serving_thread.AssertHeld();
  auto dd = Make(ExecutionMode::kIncremental);
  EXPECT_GT(dd->materialization_stats().samples_collected, 0u);
  auto rerun = Make(ExecutionMode::kRerun);
  EXPECT_EQ(rerun->materialization_stats().samples_collected, 0u);
}

}  // namespace
}  // namespace deepdive::core
