// Property tests: incremental grounding after arbitrary update sequences
// yields the same *distribution* (per-tuple exact marginals) as grounding
// the final state from scratch — for data insertions, deletions, evidence
// changes, and rule additions/removals.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "dsl/program.h"
#include "util/hash.h"
#include "engine/view_maintenance.h"
#include "grounding/grounder.h"
#include "grounding/incremental_grounder.h"
#include "inference/exact.h"
#include "storage/database.h"
#include "util/random.h"

namespace deepdive::grounding {
namespace {

constexpr char kProgram[] = R"(
  relation Person(s: int, m: int).
  relation Feature(m1: int, m2: int, f: string).
  query relation HasSpouse(m1: int, m2: int).
  evidence HasSpouseEv(m1: int, m2: int, l: bool) for HasSpouse.
  rule CAND: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2.
  factor FE: HasSpouse(m1, m2) :- Feature(m1, m2, f) weight = w(f) semantics = ratio.
  factor SYM: HasSpouse(m2, m1) :- HasSpouse(m1, m2) weight = 0.4.
)";

struct System {
  dsl::Program program;
  Database db;
  std::unique_ptr<engine::ViewMaintainer> vm;
  GroundGraph ground;
  std::unique_ptr<IncrementalGrounder> grounder;

  System() {
    auto p = dsl::CompileProgram(kProgram);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    program = std::move(p).value();
    EXPECT_TRUE(program.InstantiateSchema(&db).ok());
  }

  void Start() {
    vm = std::make_unique<engine::ViewMaintainer>(&program, &db);
    ASSERT_TRUE(vm->Initialize().ok());
    grounder = std::make_unique<IncrementalGrounder>(&program, &db, &ground);
    ASSERT_TRUE(grounder->Initialize().ok());
    // Grounding weights: give tied weights deterministic nonzero values so
    // marginals are sensitive to the feature structure.
    ASSERT_TRUE(grounder->GroundAll().ok());
    for (factor::WeightId w = 0; w < ground.graph.NumWeights(); ++w) {
      if (ground.graph.weight(w).learnable) {
        ground.graph.SetWeightValue(w, WeightFor(ground.graph.weight(w).description));
      }
    }
  }

  static double WeightFor(const std::string& description) {
    // Deterministic pseudo-weight from the tied-weight key, in [-1, 1].
    return static_cast<double>(HashString(description) % 2000) / 1000.0 - 1.0;
  }

  StatusOr<factor::GraphDelta> Apply(const engine::RelationDeltas& external) {
    DD_ASSIGN_OR_RETURN(engine::RelationDeltas set_deltas, vm->ApplyUpdate(external));
    DD_ASSIGN_OR_RETURN(factor::GraphDelta delta,
                        grounder->ApplyRelationDeltas(set_deltas));
    // New tied weights also get deterministic values.
    for (factor::WeightId w = 0; w < ground.graph.NumWeights(); ++w) {
      if (ground.graph.weight(w).learnable && ground.graph.WeightValue(w) == 0.0) {
        ground.graph.SetWeightValue(w, WeightFor(ground.graph.weight(w).description));
      }
    }
    return delta;
  }

  /// Exact marginal per HasSpouse tuple.
  std::map<std::string, double> TupleMarginals() {
    auto exact = inference::ExactInference(ground.graph, 24);
    EXPECT_TRUE(exact.ok()) << exact.status().ToString();
    std::map<std::string, double> out;
    for (const auto& [tuple, var] : ground.var_index["HasSpouse"]) {
      // Tuples whose variable became isolated (all groundings retracted and
      // not in the table) are skipped — they are not part of the output KB.
      if (db.GetTable("HasSpouse")->Contains(tuple)) {
        out[TupleToString(tuple)] = exact->marginals[var];
      }
    }
    return out;
  }
};

class IncrementalGroundingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalGroundingProperty, MatchesFromScratchDistribution) {
  Rng rng(GetParam());

  System inc;
  // Small random initial state.
  std::set<std::pair<int64_t, int64_t>> persons;  // (sentence, mention)
  std::set<std::tuple<int64_t, int64_t, std::string>> features;
  std::set<std::tuple<int64_t, int64_t, bool>> evidence;
  const std::vector<std::string> feature_names = {"fa", "fb"};

  for (int i = 0; i < 4; ++i) {
    persons.insert({static_cast<int64_t>(rng.UniformInt(2)),
                    static_cast<int64_t>(rng.UniformInt(4))});
  }
  for (const auto& [s, m] : persons) {
    ASSERT_TRUE(inc.db.GetTable("Person")->Insert({Value(s), Value(m)}).ok());
  }
  inc.Start();

  // Random update sequence over persons, features, and evidence.
  for (int step = 0; step < 5; ++step) {
    engine::RelationDeltas external;
    for (int i = 0; i < 2; ++i) {
      const int64_t s = static_cast<int64_t>(rng.UniformInt(2));
      const int64_t m = static_cast<int64_t>(rng.UniformInt(4));
      if (persons.count({s, m})) {
        if (rng.Bernoulli(0.35)) {
          external["Person"].Add({Value(s), Value(m)}, -1);
          persons.erase({s, m});
        }
      } else {
        external["Person"].Add({Value(s), Value(m)}, 1);
        persons.insert({s, m});
      }
    }
    {
      const int64_t m1 = static_cast<int64_t>(rng.UniformInt(4));
      const int64_t m2 = static_cast<int64_t>(rng.UniformInt(4));
      const std::string& f = feature_names[rng.UniformInt(feature_names.size())];
      if (!features.count({m1, m2, f})) {
        external["Feature"].Add({Value(m1), Value(m2), Value(f)}, 1);
        features.insert({m1, m2, f});
      }
    }
    if (rng.Bernoulli(0.5)) {
      const int64_t m1 = static_cast<int64_t>(rng.UniformInt(4));
      const int64_t m2 = static_cast<int64_t>(rng.UniformInt(4));
      const bool label = rng.Bernoulli(0.5);
      if (!evidence.count({m1, m2, label})) {
        external["HasSpouseEv"].Add({Value(m1), Value(m2), Value(label)}, 1);
        evidence.insert({m1, m2, label});
      }
    }
    ASSERT_TRUE(inc.Apply(external).ok());
  }

  // From-scratch system over the final base state.
  System scratch;
  for (const auto& [s, m] : persons) {
    ASSERT_TRUE(scratch.db.GetTable("Person")->Insert({Value(s), Value(m)}).ok());
  }
  for (const auto& [m1, m2, f] : features) {
    ASSERT_TRUE(
        scratch.db.GetTable("Feature")->Insert({Value(m1), Value(m2), Value(f)}).ok());
  }
  for (const auto& [m1, m2, l] : evidence) {
    ASSERT_TRUE(
        scratch.db.GetTable("HasSpouseEv")->Insert({Value(m1), Value(m2), Value(l)}).ok());
  }
  scratch.Start();

  auto inc_marginals = inc.TupleMarginals();
  auto scratch_marginals = scratch.TupleMarginals();
  ASSERT_EQ(inc_marginals.size(), scratch_marginals.size()) << "seed " << GetParam();
  for (const auto& [tuple, p] : scratch_marginals) {
    ASSERT_TRUE(inc_marginals.count(tuple)) << tuple << " seed " << GetParam();
    EXPECT_NEAR(inc_marginals[tuple], p, 1e-9) << tuple << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IncrementalGroundingProperty,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

TEST(IncrementalGrounderTest, AddAndRemoveFactorRule) {
  System sys;
  ASSERT_TRUE(sys.db.GetTable("Person")->Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(sys.db.GetTable("Person")->Insert({Value(1), Value(11)}).ok());
  sys.Start();
  const size_t groups_before = sys.ground.graph.NumGroups();

  auto fragment = dsl::AnalyzeFragment(sys.program, R"(
    factor PRIOR: HasSpouse(m1, m2) :- Person(s, m1), Person(s, m2), m1 != m2
      weight = -0.7 semantics = logical.
  )");
  ASSERT_TRUE(fragment.ok()) << fragment.status().ToString();
  auto delta = sys.grounder->AddFactorRule(fragment->factor_rules()[0]);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_GT(sys.ground.graph.NumGroups(), groups_before);
  EXPECT_FALSE(delta->new_groups.empty());

  auto removal = sys.grounder->RemoveFactorRule("PRIOR");
  ASSERT_TRUE(removal.ok());
  EXPECT_EQ(removal->removed_groups.size(), delta->new_groups.size());
  for (factor::GroupId g : removal->removed_groups) {
    EXPECT_FALSE(sys.ground.graph.group(g).active);
  }
  EXPECT_FALSE(sys.grounder->RemoveFactorRule("PRIOR").ok());
}

TEST(IncrementalGrounderTest, EvidenceRetractionClearsLabel) {
  System sys;
  ASSERT_TRUE(sys.db.GetTable("Person")->Insert({Value(1), Value(10)}).ok());
  ASSERT_TRUE(sys.db.GetTable("Person")->Insert({Value(1), Value(11)}).ok());
  sys.Start();

  engine::RelationDeltas add;
  add["HasSpouseEv"].Add({Value(10), Value(11), Value(true)}, 1);
  auto d1 = sys.Apply(add);
  ASSERT_TRUE(d1.ok());
  const factor::VarId v = sys.ground.FindVariable("HasSpouse", {Value(10), Value(11)});
  EXPECT_EQ(sys.ground.graph.EvidenceValue(v), std::optional<bool>(true));
  ASSERT_EQ(d1->evidence_changes.size(), 1u);

  engine::RelationDeltas remove;
  remove["HasSpouseEv"].Add({Value(10), Value(11), Value(true)}, -1);
  auto d2 = sys.Apply(remove);
  ASSERT_TRUE(d2.ok());
  EXPECT_FALSE(sys.ground.graph.IsEvidence(v));
}

}  // namespace
}  // namespace deepdive::grounding
