#include <gtest/gtest.h>

#include <cstdio>

#include "storage/text_io.h"

namespace deepdive {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble},
                 {"flag", ValueType::kBool}});
}

TEST(TextIoTest, ParseTsvLineAllTypes) {
  auto t = ParseTsvLine(MixedSchema(), "42\thello world\t2.5\ttrue");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)[0], Value(42));
  EXPECT_EQ((*t)[1], Value("hello world"));
  EXPECT_EQ((*t)[2], Value(2.5));
  EXPECT_EQ((*t)[3], Value(true));
}

TEST(TextIoTest, ParseTsvLineNulls) {
  auto t = ParseTsvLine(MixedSchema(), "\\N\t\\N\t\\N\t\\N");
  ASSERT_TRUE(t.ok());
  for (const Value& v : *t) EXPECT_TRUE(v.is_null());
}

TEST(TextIoTest, ParseBoolVariants) {
  Schema s({{"b", ValueType::kBool}});
  EXPECT_EQ((*ParseTsvLine(s, "t"))[0], Value(true));
  EXPECT_EQ((*ParseTsvLine(s, "1"))[0], Value(true));
  EXPECT_EQ((*ParseTsvLine(s, "f"))[0], Value(false));
  EXPECT_EQ((*ParseTsvLine(s, "0"))[0], Value(false));
  EXPECT_FALSE(ParseTsvLine(s, "yes").ok());
}

TEST(TextIoTest, ParseErrorsNameTheColumn) {
  auto t = ParseTsvLine(MixedSchema(), "notanint\tx\t1.0\ttrue");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("'id'"), std::string::npos);
}

TEST(TextIoTest, ArityMismatchRejected) {
  EXPECT_FALSE(ParseTsvLine(MixedSchema(), "1\tx").ok());
  EXPECT_FALSE(ParseTsvLine(MixedSchema(), "1\tx\t1.0\ttrue\textra").ok());
}

TEST(TextIoTest, EmptyStringFieldAllowed) {
  Schema s({{"a", ValueType::kInt}, {"s", ValueType::kString}});
  auto t = ParseTsvLine(s, "7\t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)[1], Value(""));
}

TEST(TextIoTest, LoadTsvStringSkipsCommentsAndBlanks) {
  Table table("T", Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}}));
  auto n = LoadTsvString("# header\n1\tx\n\n2\ty\n1\tx\n", &table);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 2u);  // duplicate counted once
  EXPECT_EQ(table.size(), 2u);
}

TEST(TextIoTest, LoadReportsLineNumbers) {
  Table table("T", Schema({{"a", ValueType::kInt}}));
  auto n = LoadTsvString("1\n2\nbogus\n", &table);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 3"), std::string::npos);
}

TEST(TextIoTest, FormatTsvLineRoundTrips) {
  const Tuple t = {Value(5), Value("abc"), Value(1.5), Value(false)};
  auto line = FormatTsvLine(t);
  ASSERT_TRUE(line.ok());
  auto parsed = ParseTsvLine(MixedSchema(), *line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TextIoTest, FormatRejectsEmbeddedTabs) {
  EXPECT_FALSE(FormatTsvLine({Value("a\tb")}).ok());
}

TEST(TextIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/text_io_roundtrip.tsv";
  Table table("T", Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}}));
  ASSERT_TRUE(table.Insert({Value(1), Value("x")}).ok());
  ASSERT_TRUE(table.Insert({Value(2), Value("y z")}).ok());
  ASSERT_TRUE(DumpTsvFile(table, path).ok());

  Table loaded("T2", table.schema());
  auto n = LoadTsvFile(path, &loaded);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_TRUE(loaded.Contains({Value(2), Value("y z")}));
  std::remove(path.c_str());
}

TEST(TextIoTest, MissingFileIsNotFound) {
  Table table("T", Schema({{"a", ValueType::kInt}}));
  EXPECT_EQ(LoadTsvFile("/nonexistent/file.tsv", &table).status().code(),
            StatusCode::kNotFound);
}

TEST(TextIoTest, CrLfTolerated) {
  Table table("T", Schema({{"a", ValueType::kInt}}));
  auto n = LoadTsvString("1\r\n2\r\n", &table);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

}  // namespace
}  // namespace deepdive
